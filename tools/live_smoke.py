#!/usr/bin/env python3
"""End-to-end smoke test for the live observability pipeline.

Launches `power_policy --serve-obs 0` (ephemeral port), waits for the
server banner, then validates every endpoint while the run is still
executing:

  * /metrics       — well-formed Prometheus text exposition
  * /timeseries.json — valid JSON with at least one retained series
  * /alerts.json   — valid JSON with the built-in rule catalog loaded
  * /healthz       — valid JSON with a signal grade
  * /nope          — 404
  * procap_top --once renders a frame against the live server

Usage: live_smoke.py POWER_POLICY_BIN PROCAP_TOP_BIN
"""

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

BANNER = re.compile(r"obs: serving http on 127\.0\.0\.1:(\d+)")


def fail(proc, msg):
    proc.terminate()
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def get(port, path, timeout=5):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as resp:
        return resp.status, resp.read().decode()


def check_prometheus(text):
    """Minimal exposition-format validation."""
    types = 0
    samples = 0
    metric_line = re.compile(
        r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.inf-]+$"
    )
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            types += 1
            continue
        if line.startswith("#"):
            continue
        if not metric_line.match(line):
            return f"bad exposition line: {line!r}"
        samples += 1
    if types == 0 or samples == 0:
        return f"no metrics in exposition ({types} types, {samples} samples)"
    if "procap_sim_ticks" not in text:
        return "procap_sim_ticks missing from exposition"
    return None


def main():
    power_policy, procap_top = sys.argv[1], sys.argv[2]
    proc = subprocess.Popen(
        [
            power_policy,
            "--app", "stream",
            "--scheme", "step",
            "--low", "80",
            "--period", "10",
            "--duration", "120",
            "--serve-obs", "0",
            "--pace", "8",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            m = BANNER.search(line)
            if m:
                port = int(m.group(1))
                break
        if port is None:
            fail(proc, "server banner never appeared")
        print(f"server on port {port}")

        # The first time-series sample lands at the engine's first obs
        # flush (~4 s simulated, ~0.5 s wall at pace 8); poll for it.
        deadline = time.monotonic() + 20
        ts = None
        while time.monotonic() < deadline:
            status, body = get(port, "/timeseries.json")
            if status != 200:
                fail(proc, f"/timeseries.json -> {status}")
            ts = json.loads(body)
            if ts.get("samples", 0) >= 1 and ts.get("series"):
                break
            time.sleep(0.2)
        if not ts or not ts.get("series"):
            fail(proc, "no time-series samples retained")
        names = {s["name"] for s in ts["series"]}
        if "sim.ticks" not in names:
            fail(proc, f"sim.ticks series missing (got {sorted(names)[:8]})")
        print(f"timeseries: {len(ts['series'])} series, "
              f"{ts['samples']} samples")

        status, body = get(port, "/metrics")
        if status != 200:
            fail(proc, f"/metrics -> {status}")
        err = check_prometheus(body)
        if err:
            fail(proc, err)
        print(f"metrics: {len(body.splitlines())} exposition lines")

        status, body = get(port, "/alerts.json")
        if status != 200:
            fail(proc, f"/alerts.json -> {status}")
        alerts = json.loads(body)
        if alerts.get("rules", 0) < 5:
            fail(proc, f"expected >=5 alert rules, got {alerts.get('rules')}")
        print(f"alerts: {alerts['rules']} rules, "
              f"{len(alerts.get('alerts', []))} instances")

        status, body = get(port, "/healthz")
        if status != 200:
            fail(proc, f"/healthz -> {status}")
        health = json.loads(body)
        if "grade" not in health:
            fail(proc, f"/healthz missing grade: {health}")
        print(f"healthz: grade={health['grade']}")

        try:
            status, _ = get(port, "/nope")
            fail(proc, f"/nope -> {status}, expected 404")
        except urllib.error.HTTPError as e:
            if e.code != 404:
                fail(proc, f"/nope -> {e.code}, expected 404")

        top = subprocess.run(
            [procap_top, "--port", str(port), "--once"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        if top.returncode != 0:
            fail(proc, f"procap_top failed: {top.stderr}")
        if "procap_top" not in top.stdout or "alerts" not in top.stdout:
            fail(proc, f"procap_top frame looks wrong:\n{top.stdout}")
        print("procap_top: rendered one frame")
        print("PASS")
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    main()
