// power_policy — the paper's power-policy tool (Section V-B).
//
// "The power-policy tool runs as a background daemon on the node.  It
// monitors power usage and applies the selected dynamic power-capping
// scheme on the package domain once every second."
//
// This version runs an application from the procap suite on the simulated
// node under the selected scheme, and writes the traces (applied cap,
// measured power, progress rate, effective frequency) as CSV files —
// everything needed to re-plot the paper's Fig. 3 panels for any
// app/scheme combination.
//
// Usage:
//   power_policy --app lammps --scheme step --low 70 --high 150
//                --period 15 --duration 90 --csv /tmp/run
//
// Observability outputs (any combination):
//   --trace-out run.json    Chrome trace-event JSON with cap→effect flow
//                           arrows; open at https://ui.perfetto.dev or
//                           chrome://tracing, or summarize with obs_report
//   --events-out run.jsonl  the same events as line-delimited JSON
//                           (tools/analyze reads this directly)
//   --metrics-out run.prom  Prometheus text exposition of every counter,
//                           gauge and histogram the run touched
//
// Live mode:
//   --serve-obs PORT   serve /metrics, /timeseries.json, /alerts.json and
//                      /healthz on 127.0.0.1:PORT while the run executes
//                      (0 picks an ephemeral port, printed on stdout);
//                      implies --pace 1 unless --pace is given.  Watch it
//                      live with `procap_top --port PORT`.
//   --pace X           advance X simulated seconds per wall second
//                      (0 = free-running)
//
// Schemes and parameters:
//   uncapped                   no capping
//   constant  --low W [--delay S]
//   linear    --high W --low W --rate W/s [--delay S]
//   step      --low W [--high W] --period S   (uncapped high if no --high)
//   jagged    --high W --low W --period S
//
// Controller zoo (supersedes --scheme; see DESIGN.md §15):
//   --controller NAME[:k=v,...]  pick any registered policy::Controller,
//                                e.g. --controller pi:setpoint=650000
//                                or   --controller fft:window=64
//                                Run with --help to list the registry.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include <mutex>
#include <sstream>

#include "apps/specfile.hpp"
#include "exp/measure.hpp"
#include "fault/plan.hpp"
#include "msgbus/bus.hpp"
#include "obs/alert.hpp"
#include "obs/http.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "policy/adapters.hpp"
#include "policy/controller.hpp"
#include "policy/daemon.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/monitor.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

namespace {

using namespace procap;

struct Options {
  std::string app = "lammps";
  std::string scheme = "step";
  std::string controller;  ///< registry spec; overrides --scheme when set
  double low = 70.0;
  double high = 0.0;  // 0 = uncapped for step
  double rate = 2.0;
  double period = 15.0;
  double delay = 10.0;
  double duration = 90.0;
  std::uint64_t seed = 1;
  std::string csv_prefix;
  std::string spec_path;
  std::string fault_plan_path;
  std::string trace_out;
  std::string events_out;
  std::string metrics_out;
  int serve_port = -1;  // -1 = no server, 0 = ephemeral
  double pace = -1.0;   // -1 = default (0, or 1 when serving)
};

void usage() {
  std::cerr
      << "usage: power_policy [--app NAME] [--scheme uncapped|constant|"
         "linear|step|jagged]\n"
         "                    [--controller NAME[:k=v,...]]  "
         "(overrides --scheme)\n"
         "                    [--low W] [--high W] [--rate W/s] "
         "[--period S] [--delay S]\n"
         "                    [--duration S] [--seed N] [--csv PREFIX]\n"
         "                    [--spec FILE]   (workload spec instead of --app)\n"
         "                    [--fault-plan FILE]  (scripted link/MSR faults)\n"
         "                    [--trace-out FILE.json]   (Chrome/Perfetto trace)\n"
         "                    [--events-out FILE.jsonl] (JSONL event dump)\n"
         "                    [--metrics-out FILE.prom] (Prometheus text)\n"
         "                    [--serve-obs PORT]  (live HTTP endpoints; "
         "0 = ephemeral)\n"
         "                    [--pace X]  (simulated seconds per wall "
         "second; 0 = free-run)\n"
         "apps: ";
  for (const auto& name : apps::suite_names()) {
    std::cerr << name << " ";
  }
  std::cerr << "\ncontrollers (for --controller):\n"
            << policy::controller_help();
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--app" && (value = next())) {
      opt.app = value;
    } else if (arg == "--scheme" && (value = next())) {
      opt.scheme = value;
    } else if (arg == "--controller" && (value = next())) {
      opt.controller = value;
    } else if (arg == "--low" && (value = next())) {
      opt.low = std::atof(value);
    } else if (arg == "--high" && (value = next())) {
      opt.high = std::atof(value);
    } else if (arg == "--rate" && (value = next())) {
      opt.rate = std::atof(value);
    } else if (arg == "--period" && (value = next())) {
      opt.period = std::atof(value);
    } else if (arg == "--delay" && (value = next())) {
      opt.delay = std::atof(value);
    } else if (arg == "--duration" && (value = next())) {
      opt.duration = std::atof(value);
    } else if (arg == "--seed" && (value = next())) {
      opt.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--csv" && (value = next())) {
      opt.csv_prefix = value;
    } else if (arg == "--spec" && (value = next())) {
      opt.spec_path = value;
    } else if (arg == "--fault-plan" && (value = next())) {
      opt.fault_plan_path = value;
    } else if (arg == "--trace-out" && (value = next())) {
      opt.trace_out = value;
    } else if (arg == "--events-out" && (value = next())) {
      opt.events_out = value;
    } else if (arg == "--metrics-out" && (value = next())) {
      opt.metrics_out = value;
    } else if (arg == "--serve-obs" && (value = next())) {
      opt.serve_port = std::atoi(value);
    } else if (arg == "--pace" && (value = next())) {
      opt.pace = std::atof(value);
    } else {
      usage();
      return false;
    }
  }
  return true;
}

std::unique_ptr<policy::CapSchedule> make_schedule(const Options& opt) {
  using namespace procap::policy;
  if (opt.scheme == "uncapped") {
    return std::make_unique<UncappedSchedule>();
  }
  if (opt.scheme == "constant") {
    return std::make_unique<ConstantCap>(opt.low, opt.delay);
  }
  if (opt.scheme == "linear") {
    const double from = opt.high > 0.0 ? opt.high : 150.0;
    return std::make_unique<LinearDecreasingCap>(from, opt.low, opt.rate,
                                                 opt.delay);
  }
  if (opt.scheme == "step") {
    const std::optional<Watts> high =
        opt.high > 0.0 ? std::optional<Watts>(opt.high) : std::nullopt;
    return std::make_unique<StepCap>(high, opt.low, opt.period, opt.period);
  }
  if (opt.scheme == "jagged") {
    const double from = opt.high > 0.0 ? opt.high : 150.0;
    return std::make_unique<JaggedCap>(from, opt.low, opt.period);
  }
  return nullptr;
}

void dump_csv(const std::string& path, const TimeSeries& series) {
  CsvWriter writer(path, {"t_seconds", series.name()});
  for (const auto& sample : series.samples()) {
    writer.row({to_seconds(sample.t), sample.value});
  }
  std::cout << "wrote " << path << " (" << series.size() << " rows)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    return 2;
  }
  // --controller picks from the policy registry; --scheme keeps the
  // paper's original five shapes (now thin ScheduleController wrappers).
  std::unique_ptr<policy::Controller> controller;
  if (!opt.controller.empty()) {
    try {
      controller = policy::make_controller(opt.controller);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      usage();
      return 2;
    }
    opt.scheme = controller->name();  // label outputs by the controller
  } else {
    auto schedule = make_schedule(opt);
    if (!schedule) {
      std::cerr << "unknown scheme: " << opt.scheme << "\n";
      usage();
      return 2;
    }
    controller =
        std::make_unique<policy::ScheduleController>(std::move(schedule));
  }

  apps::AppModel app;
  try {
    if (!opt.spec_path.empty()) {
      app.spec = apps::load_spec(opt.spec_path);
      opt.app = app.spec.name;
    } else {
      app = apps::by_name(opt.app);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    usage();
    return 2;
  }

  fault::FaultPlan fault_plan;
  exp::RunOptions run_options;
  run_options.duration = opt.duration;
  run_options.seed = opt.seed;
  if (!opt.fault_plan_path.empty()) {
    try {
      fault_plan = fault::FaultPlan::load(opt.fault_plan_path);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    run_options.fault_plan = &fault_plan;
  }

  obs::TraceCollector trace;
  const bool want_trace = !opt.trace_out.empty() || !opt.events_out.empty();
  if (want_trace) {
    trace.set_meta("app", opt.app);
    trace.set_meta("scheme", opt.scheme);
    trace.set_meta("self_ns_per_event",
                   num(obs::Registry::self_cost_ns(), 1));
    run_options.trace = &trace;
  }

  // Live observability: a time-series store sampled from the engine's
  // flush point, an alert engine evaluated at 1 Hz, and an HTTP server
  // exposing both plus /metrics and /healthz.  Everything is wired inside
  // on_setup so it attaches to the run's own engine/broker/daemon;
  // declaration order makes the server stop before the stores die.
  obs::TimeSeriesStore ts_store(obs::Registry::global());
  obs::Sampler sampler(ts_store);
  obs::AlertEngine alert_engine(ts_store);
  struct HealthCache {
    std::mutex mutex;
    progress::HealthReport report;
  };
  const auto health_cache = std::make_shared<HealthCache>();
  obs::HttpServer server;
  if (opt.serve_port >= 0) {
    run_options.pace = opt.pace < 0.0 ? 1.0 : opt.pace;
    ts_store.set_meta("app", opt.app);
    ts_store.set_meta("scheme", opt.scheme);
    alert_engine.add_builtin_rules();
    run_options.on_setup = [&](exp::LiveRun& live) {
      sampler.install();
      // Alert transitions go out over the run's msgbus; the daemon
      // listens so a firing power_overshoot forces cap reprogramming.
      const auto pub = live.broker.make_pub();
      alert_engine.set_sink([pub](const obs::AlertTransition& tr) {
        pub->publish(msgbus::alert_topic(tr.rule), tr.to_json());
      });
      live.daemon.watch_alerts(live.broker.make_sub());
      progress::Monitor* monitor = &live.monitor;
      live.engine.every(kNanosPerSecond, [&, monitor](Nanos now) {
        alert_engine.evaluate(now);
        // The Monitor is not thread-safe; snapshot its health report on
        // the sim thread for the HTTP thread to serve.
        const auto report = monitor->health_report();
        const std::lock_guard<std::mutex> lock(health_cache->mutex);
        health_cache->report = report;
      });
    };
    server.handle("/metrics", [](const std::string&) {
      std::ostringstream os;
      obs::Registry::global().write_prometheus(os);
      return obs::HttpResponse{200, "text/plain; version=0.0.4", os.str()};
    });
    // Query drill-down: ?since=SECONDS&name=METRIC&node=ID (node expands
    // to the labels filter node="ID" on the cluster per-node series).
    server.handle("/timeseries.json", [&ts_store](const std::string& query) {
      const auto params = obs::parse_query(query);
      Nanos since = 0;
      std::string name_filter;
      std::string labels_filter;
      if (const auto it = params.find("since"); it != params.end()) {
        since = to_nanos(std::atof(it->second.c_str()));
      }
      if (const auto it = params.find("name"); it != params.end()) {
        name_filter = it->second;
      }
      if (const auto it = params.find("node"); it != params.end()) {
        labels_filter = "node=\"" + it->second + "\"";
      }
      std::ostringstream os;
      ts_store.write_json(os, since, name_filter, labels_filter);
      return obs::HttpResponse{200, "application/json", os.str()};
    });
    server.handle("/alerts.json", [&alert_engine](const std::string&) {
      std::ostringstream os;
      alert_engine.write_json(os);
      return obs::HttpResponse{200, "application/json", os.str()};
    });
    server.handle("/healthz", [health_cache](const std::string&) {
      progress::HealthReport report;
      {
        const std::lock_guard<std::mutex> lock(health_cache->mutex);
        report = health_cache->report;
      }
      std::ostringstream os;
      os << "{\"app\":\"" << obs::json::escape(report.app)
         << "\",\"grade\":\""
         << progress::to_string(report.grade)
         << "\",\"samples\":" << report.samples
         << ",\"missing\":" << report.missing
         << ",\"reordered\":" << report.reordered
         << ",\"open_gaps\":" << report.open_gaps << ",\"staleness_s\":"
         << to_seconds(report.staleness) << ",\"progress_windows\":"
         << report.progress_windows << ",\"dropped_windows\":"
         << report.dropped_windows << "}";
      return obs::HttpResponse{200, "application/json", os.str()};
    });
    if (!server.start("127.0.0.1",
                      static_cast<std::uint16_t>(opt.serve_port))) {
      std::cerr << "cannot bind 127.0.0.1:" << opt.serve_port << "\n";
      return 1;
    }
    std::cout << "obs: serving http on 127.0.0.1:" << server.port()
              << std::endl;
  } else if (opt.pace > 0.0) {
    run_options.pace = opt.pace;
  }

  std::cout << "power-policy: " << opt.app << " under '" << opt.scheme
            << "' for " << opt.duration << " s (simulated node)\n";
  const auto traces =
      exp::run_under_controller(app, std::move(controller), run_options);
  server.stop();
  sampler.uninstall();
  if (opt.serve_port >= 0) {
    std::cout << "obs: served " << server.requests_served()
              << " http requests, retained " << ts_store.series_count()
              << " series (" << ts_store.samples_taken() << " samples), "
              << alert_engine.transitions().size()
              << " alert transitions\n";
  }

  // Per-second summary table.
  TablePrinter table({"t (s)", "cap W", "power W", "freq MHz",
                      "progress/s"});
  const auto step = static_cast<int>(std::max(1.0, opt.duration / 30.0));
  for (int t = 0; t + step <= static_cast<int>(opt.duration); t += step) {
    const auto t0 = to_nanos(static_cast<double>(t));
    const auto t1 = to_nanos(static_cast<double>(t + step));
    table.add_row({std::to_string(t), num(traces.cap.mean_in(t0, t1), 0),
                   num(traces.power.mean_in(t0, t1), 1),
                   num(traces.frequency.mean_in(t0, t1), 0),
                   num(traces.progress.mean_in(t0, t1), 1)});
  }
  table.print(std::cout);
  std::cout << "total progress: " << num(traces.total_progress, 0) << " "
            << app.spec.unit << "\n";

  if (!opt.fault_plan_path.empty()) {
    const auto& lf = traces.link_faults;
    const auto& mf = traces.msr_faults;
    std::cout << "fault injection: dropped " << lf.dropped << " (outage "
              << lf.outage_dropped << "), duplicated " << lf.duplicated
              << ", corrupted " << lf.corrupted << ", truncated "
              << lf.truncated << ", delayed " << lf.delayed
              << "; msr EIO reads " << mf.read_failures << ", EIO writes "
              << mf.write_failures << ", stuck writes " << mf.dropped_writes
              << "\n";
    std::uint64_t progress_w = 0, dropped_w = 0, true_zero_w = 0, pending_w = 0;
    for (const auto& v : traces.verdicts) {
      switch (v.label) {
        case progress::WindowLabel::kProgress: ++progress_w; break;
        case progress::WindowLabel::kDropped: ++dropped_w; break;
        case progress::WindowLabel::kTrueZero: ++true_zero_w; break;
        case progress::WindowLabel::kPending: ++pending_w; break;
      }
    }
    std::cout << "zero-window classification: " << progress_w << " progress, "
              << dropped_w << " dropped, " << true_zero_w << " true-zero, "
              << pending_w << " pending\n";
  }

  const auto& health = traces.health;
  std::cout << "signal health: " << progress::to_string(health.grade) << ", "
            << health.samples << " samples, " << health.missing
            << " missing, " << health.reordered << " reordered, cadence "
            << num(to_seconds(health.expected_cadence), 2) << " s\n";

  if (!opt.csv_prefix.empty()) {
    dump_csv(opt.csv_prefix + "_cap.csv", traces.cap);
    dump_csv(opt.csv_prefix + "_power.csv", traces.power);
    dump_csv(opt.csv_prefix + "_progress.csv", traces.progress);
    dump_csv(opt.csv_prefix + "_frequency.csv", traces.frequency);
    dump_csv(opt.csv_prefix + "_duty.csv", traces.duty);
  }
  if (!opt.trace_out.empty()) {
    std::ofstream out(opt.trace_out);
    if (!out) {
      std::cerr << "cannot write " << opt.trace_out << "\n";
      return 1;
    }
    trace.write_chrome(out);
    std::cout << "wrote " << opt.trace_out << " (" << trace.size()
              << " events, "
              << trace.cap_effect_latencies().size()
              << " cap-to-effect flows); open at https://ui.perfetto.dev "
                 "or summarize with obs_report\n";
  }
  if (!opt.events_out.empty()) {
    std::ofstream out(opt.events_out);
    if (!out) {
      std::cerr << "cannot write " << opt.events_out << "\n";
      return 1;
    }
    trace.write_jsonl(out);
    std::cout << "wrote " << opt.events_out << " (" << trace.size()
              << " events)\n";
  }
  if (!opt.metrics_out.empty()) {
    std::ofstream out(opt.metrics_out);
    if (!out) {
      std::cerr << "cannot write " << opt.metrics_out << "\n";
      return 1;
    }
    obs::Registry::global().write_prometheus(out);
    std::cout << "wrote " << opt.metrics_out << "\n";
  }
  return 0;
}
