// analyze — offline analysis of recorded progress traces.
//
// Consumes a raw trace ("t_seconds,amount,phase", written by
// progress::TraceWriter), an already-windowed rate series
// ("t_seconds,<name>", the power_policy tool's --csv output), or a JSONL
// event dump (power_policy --events-out; progress_window events carry the
// rates), and runs the paper's characterization over it: windowed rates,
// consistency (Section IV-C), detected phases, figure of merit,
// zero-window fraction (the dropped-report artifact of Section V-C), and
// a trace-based Category verdict.
//
// Usage: analyze FILE [--window S] [--cv-threshold X]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "obs/json.hpp"
#include "progress/analysis.hpp"
#include "progress/category.hpp"
#include "progress/tracefile.hpp"
#include "util/table.hpp"

namespace {

// Peek at the header to decide raw-trace vs rate-series format.
bool is_raw_trace(const std::string& path) {
  const auto trace = [&] {
    try {
      return procap::progress::load_trace(path);
    } catch (const std::invalid_argument&) {
      return std::vector<procap::progress::TraceSample>{};
    }
  }();
  return !trace.empty();
}

// JSONL dumps start with a JSON object on the first line; CSV inputs
// start with a header word.
bool is_jsonl(const std::string& path) {
  std::ifstream file(path);
  char c = 0;
  while (file.get(c)) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
      return c == '{';
    }
  }
  return false;
}

// Extract the progress_window rate series from a JSONL event dump.
procap::TimeSeries load_jsonl_rates(const std::string& path) {
  using procap::obs::json::Value;
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("analyze: cannot read " + path);
  }
  procap::TimeSeries rates("rate");
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    Value obj;
    try {
      obj = procap::obs::json::parse(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("analyze: " + path + ":" +
                                  std::to_string(line_no) + ": " + e.what());
    }
    if (obj.string_or("kind", "") != "progress_window") {
      continue;
    }
    rates.add(procap::to_nanos(obj.number_or("t_s", 0.0)),
              obj.number_or("rate", 0.0));
  }
  return rates;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  if (argc < 2) {
    std::cerr << "usage: analyze FILE [--window S] [--cv-threshold X]\n";
    return 2;
  }
  const std::string path = argv[1];
  double window_s = 1.0;
  double cv_threshold = 0.10;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--window" && i + 1 < argc) {
      window_s = std::atof(argv[++i]);
    } else if (arg == "--cv-threshold" && i + 1 < argc) {
      cv_threshold = std::atof(argv[++i]);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  TimeSeries rates;
  try {
    if (is_jsonl(path)) {
      rates = load_jsonl_rates(path);
      std::cout << "jsonl event dump: " << rates.size()
                << " progress windows\n";
    } else if (is_raw_trace(path)) {
      const auto trace = progress::load_trace(path);
      std::cout << "raw trace: " << trace.size() << " samples over "
                << num(to_seconds(trace.back().t - trace.front().t), 1)
                << " s\n";
      rates = progress::windowed_rates(trace, to_nanos(window_s));
    } else {
      rates = progress::load_rates_csv(path);
      std::cout << "rate series: " << rates.size() << " windows\n";
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (rates.size() < 2) {
    std::cerr << "not enough data to analyze\n";
    return 1;
  }

  const auto report = progress::analyze_consistency(rates, cv_threshold);
  const auto segments = progress::detect_phases(rates);
  const double fom = progress::figure_of_merit(rates);

  std::cout << "figure of merit:  " << num(fom, 2)
            << " units/s over the whole run\n"
            << "mean rate:        " << num(report.mean_rate, 2)
            << " units/s (non-zero windows)\n"
            << "cv:               " << num(report.cv * 100.0, 1) << "% -> "
            << (report.consistent ? "consistent" : "fluctuating") << "\n"
            << "zero windows:     " << num(report.zero_fraction * 100.0, 1)
            << "% (dropped-report artifact if > 0)\n";

  std::cout << "\ndetected phases:\n";
  TablePrinter table({"segment", "start s", "end s", "mean rate"});
  for (std::size_t i = 0; i < segments.size(); ++i) {
    table.add_row({std::to_string(i + 1),
                   num(to_seconds(segments[i].start), 1),
                   num(to_seconds(segments[i].end), 1),
                   num(segments[i].mean_rate, 2)});
  }
  table.print(std::cout);

  // Trace-only category verdict: assume the metric was claimed reliable
  // (the app is instrumented) and let the measurements argue.
  progress::AppTraits traits;
  traits.name = path;
  traits.measurable_online = true;
  traits.relates_to_science = true;
  const auto category = progress::categorize(traits, rates);
  std::cout << "\ntrace-based verdict: " << progress::to_string(category)
            << (category == progress::Category::kCategory3
                    ? " (metric too unstable to monitor reliably)"
                    : "")
            << "\n";
  return 0;
}
