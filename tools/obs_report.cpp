// obs_report — summarize recorded observability artifacts.
//
// Two modes:
//
//   obs_report TRACE.json
//     Chrome trace-event file from power_policy --trace-out: daemon
//     tick-latency histogram, cap-change and actuation counts, the
//     cap-to-effect latency distribution from the flow events (with an
//     orphaned count for flows that began but never closed — a node
//     died mid-epoch), NRM degraded-mode occupancy, per-app
//     progress-window counts, and the observer's own estimated
//     overhead.
//
//   obs_report --traces DUMP.json [DUMP.json ...]
//     Cap-to-effect flow dumps from cluster_sim --trace-out (or saved
//     from GET /traces.json): per-strategy latency histograms, the
//     slowest-flow table, and orphaned/open-span accounting.  Pass one
//     dump per run to compare redistribution strategies side by side.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hpp"

namespace {

void usage() {
  std::cerr << "usage: obs_report TRACE.json\n"
               "       obs_report --traces DUMP.json [DUMP.json ...]\n"
               "  TRACE.json: Chrome trace-event file from power_policy "
               "--trace-out\n"
               "  DUMP.json:  cap-to-effect flow dump from cluster_sim "
               "--trace-out or GET /traces.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  try {
    if (std::string(argv[1]) == "--traces") {
      if (argc < 3) {
        usage();
        return 2;
      }
      std::vector<procap::obs::FlowDumpReport> reports;
      for (int i = 2; i < argc; ++i) {
        reports.push_back(procap::obs::summarize_flow_dump(argv[i]));
      }
      procap::obs::print_flow_reports(reports, std::cout);
      return 0;
    }
    if (argc != 2) {
      usage();
      return 2;
    }
    const auto report = procap::obs::summarize_chrome_trace(argv[1]);
    procap::obs::print_report(report, std::cout);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
