// obs_report — summarize a Chrome trace produced by power_policy
// --trace-out.
//
// Reads the trace back through the in-repo JSON parser (the same one the
// golden-file test validates against) and prints the run's control-loop
// story: daemon tick-latency histogram, cap-change and actuation counts,
// the cap-to-effect latency distribution measured by the flow events,
// NRM degraded-mode occupancy, per-app progress-window counts, and the
// observer's own estimated overhead.
//
// Usage: obs_report TRACE.json
#include <exception>
#include <iostream>

#include "obs/report.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: obs_report TRACE.json\n"
                 "  TRACE.json: Chrome trace-event file from power_policy "
                 "--trace-out\n";
    return 2;
  }
  try {
    const auto report = procap::obs::summarize_chrome_trace(argv[1]);
    procap::obs::print_report(report, std::cout);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
