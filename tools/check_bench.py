#!/usr/bin/env python3
"""Compare bench JSON reports against committed baselines.

Every bench binary built on bench/harness.hpp emits a BENCH_<name>.json
with wall time, trials/s, thread count and the figure's headline metrics
(see the schema comment in bench/harness.hpp).  CI runs the short grid,
then gates on throughput.

Single-report mode:

    python3 tools/check_bench.py BENCH_fig4.json \
        bench/baselines/BENCH_fig4.json --max-regression 15

Directory mode — every BENCH_*.json in the baseline directory is gated
against the same-named report in the candidate directory (a missing
candidate is a failure: the bench silently dropping out of CI must not
pass the gate):

    python3 tools/check_bench.py bench_out/ bench/baselines/

Exit status: 0 when trials/s is within the allowed regression of the
baseline for every gated report (the deltas are printed either way), 1 on
a regression beyond the threshold, a failed trial, or a missing
candidate, 2 on usage/schema errors.

When running under GitHub Actions (GITHUB_STEP_SUMMARY set), a per-bench
speedup-vs-baseline markdown table is appended to the job summary;
--summary PATH writes the same table elsewhere (e.g. for local review).

To update a baseline after an intentional perf change, rerun the bench
with --bench-json pointed at bench/baselines/ and commit the diff (the
README "CI" section documents the procedure).
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"check_bench: cannot read {path}: {err}")
    for key in ("bench", "trials", "trials_per_s"):
        if key not in report:
            sys.exit(f"check_bench: {path} missing key '{key}'")
    return report


def check_one(candidate_path, baseline_path, max_regression, rows=None):
    """Gate one report; returns 0 (ok) or 1 (fail).

    When `rows` is a list, a summary-table row dict is appended for
    write_summary() regardless of pass/fail.
    """
    candidate = load(candidate_path)
    baseline = load(baseline_path)
    if candidate["bench"] != baseline["bench"]:
        sys.exit(f"check_bench: bench mismatch: candidate is "
                 f"'{candidate['bench']}', baseline is '{baseline['bench']}'")

    name = candidate["bench"]
    failures = int(candidate.get("trial_failures", 0))
    if failures:
        print(f"{name}: {failures} trial(s) failed — FAIL")
        if rows is not None:
            rows.append({"bench": name, "verdict": "FAIL (trial failures)"})
        return 1

    new = float(candidate["trials_per_s"])
    old = float(baseline["trials_per_s"])
    if old <= 0:
        sys.exit("check_bench: baseline trials_per_s must be positive")
    delta_pct = (new - old) / old * 100.0
    perf_ok = delta_pct >= -max_regression

    # Absolute metric gates: the *baseline's* [min, max] bands are hard
    # correctness bounds on the candidate's metrics (BenchReport::gate).
    # Unlike throughput, these fail like regressions: a metric leaving
    # its committed band means the simulation's answers changed.
    gate_failures = 0
    gates = baseline.get("metric_gates", {})
    candidate_metrics = candidate.get("metrics", {})
    for key in sorted(gates):
        band = gates[key]
        if not (isinstance(band, (list, tuple)) and len(band) == 2):
            sys.exit(f"check_bench: {baseline_path}: metric_gates['{key}'] "
                     f"must be a [min, max] pair")
        if key not in candidate_metrics:
            print(f"  gate {key}: metric missing from candidate — FAIL")
            gate_failures += 1
            continue
        value = float(candidate_metrics[key])
        lo, hi = float(band[0]), float(band[1])
        if not lo <= value <= hi:
            print(f"  gate {key}: {value:.6g} outside [{lo:.6g}, "
                  f"{hi:.6g}] — FAIL")
            gate_failures += 1

    if rows is not None:
        verdict = "OK"
        if not perf_ok:
            verdict = "FAIL (regression)"
        if gate_failures:
            verdict = f"FAIL ({gate_failures} metric gate(s))"
        rows.append({
            "bench": name,
            "new": new,
            "old": old,
            "speedup": new / old,
            "delta_pct": delta_pct,
            "threads": candidate.get("threads", "?"),
            "verdict": verdict,
        })
    direction = "faster" if delta_pct >= 0 else "slower"
    print(f"{name}: {new:.2f} trials/s vs baseline {old:.2f} "
          f"({delta_pct:+.1f}%, {direction}; threads "
          f"{candidate.get('threads', '?')} vs {baseline.get('threads', '?')})")

    # Headline metric drift is informational: values legitimately move
    # when the model or substrate changes; the committed baseline update
    # is the review point.
    shared = sorted(set(candidate.get("metrics", {}))
                    & set(baseline.get("metrics", {})))
    for key in shared:
        new_m = float(candidate["metrics"][key])
        old_m = float(baseline["metrics"][key])
        drift = new_m - old_m
        if abs(drift) > 1e-9:
            print(f"  metric {key}: {new_m:.4g} (baseline {old_m:.4g}, "
                  f"{drift:+.4g})")

    if gate_failures:
        print(f"{name}: {gate_failures} metric gate(s) violated — FAIL")
        return 1
    if delta_pct < -max_regression:
        print(f"{name}: throughput regression beyond "
              f"{max_regression:.0f}% — FAIL")
        return 1
    gated = f", {len(gates)} metric gate(s) in band" if gates else ""
    print(f"{name}: within the {max_regression:.0f}% gate{gated} — OK")
    return 0


def check_dirs(candidate_dir, baseline_dir, max_regression, rows=None):
    """Gate every baseline BENCH_*.json against the candidate directory."""
    names = sorted(n for n in os.listdir(baseline_dir)
                   if n.startswith("BENCH_") and n.endswith(".json"))
    if not names:
        sys.exit(f"check_bench: no BENCH_*.json baselines in {baseline_dir}")
    status = 0
    for name in names:
        candidate_path = os.path.join(candidate_dir, name)
        if not os.path.exists(candidate_path):
            print(f"{name}: no candidate report in {candidate_dir} — FAIL")
            if rows is not None:
                rows.append({"bench": name, "verdict": "FAIL (missing)"})
            status = 1
            continue
        status |= check_one(candidate_path, os.path.join(baseline_dir, name),
                            max_regression, rows)
    print(f"checked {len(names)} baseline(s): "
          f"{'FAIL' if status else 'all OK'}")
    return status


def write_summary(rows, path):
    """Append the per-bench speedup table (GitHub-flavored markdown)."""
    lines = ["## Bench throughput vs committed baselines", "",
             "| bench | trials/s | baseline | speedup | delta | threads "
             "| gate |",
             "|---|---:|---:|---:|---:|---:|---|"]
    for row in rows:
        if "new" in row:
            lines.append(
                f"| {row['bench']} | {row['new']:.2f} | {row['old']:.2f} "
                f"| {row['speedup']:.2f}x | {row['delta_pct']:+.1f}% "
                f"| {row['threads']} | {row['verdict']} |")
        else:
            lines.append(f"| {row['bench']} | — | — | — | — | — "
                         f"| {row['verdict']} |")
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as err:
        print(f"check_bench: cannot write summary {path}: {err}",
              file=sys.stderr)


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench JSON reports against baselines.")
    parser.add_argument("candidate",
                        help="freshly produced BENCH_*.json, or a directory "
                             "of them")
    parser.add_argument("baseline",
                        help="committed bench/baselines/*.json, or the "
                             "baselines directory")
    parser.add_argument(
        "--max-regression", type=float, default=15.0, metavar="PCT",
        help="maximum allowed trials/s drop vs baseline (default 15%%)")
    parser.add_argument(
        "--summary", metavar="PATH",
        default=os.environ.get("GITHUB_STEP_SUMMARY"),
        help="append a markdown speedup table to PATH (defaults to "
             "$GITHUB_STEP_SUMMARY when set)")
    args = parser.parse_args()

    if os.path.isdir(args.candidate) != os.path.isdir(args.baseline):
        sys.exit("check_bench: candidate and baseline must both be files or "
                 "both be directories")
    rows = []
    if os.path.isdir(args.candidate):
        status = check_dirs(args.candidate, args.baseline,
                            args.max_regression, rows)
    else:
        status = check_one(args.candidate, args.baseline,
                           args.max_regression, rows)
    if args.summary and rows:
        write_summary(rows, args.summary)
    return status


if __name__ == "__main__":
    sys.exit(main())
