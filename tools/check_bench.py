#!/usr/bin/env python3
"""Compare a bench JSON report against a committed baseline.

Every bench binary built on bench/harness.hpp emits a BENCH_<name>.json
with wall time, trials/s, thread count and the figure's headline metrics
(see the schema comment in bench/harness.hpp).  CI runs the short grid,
then gates on throughput:

    python3 tools/check_bench.py BENCH_fig4.json \
        bench/baselines/BENCH_fig4.json --max-regression 15

Exit status: 0 when trials/s is within the allowed regression of the
baseline (the delta is printed either way), 1 on a regression beyond the
threshold or a failed trial, 2 on usage/schema errors.

To update a baseline after an intentional perf change, rerun the bench
with --bench-json pointed at bench/baselines/ and commit the diff (the
README "CI" section documents the procedure).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"check_bench: cannot read {path}: {err}")
    for key in ("bench", "trials", "trials_per_s"):
        if key not in report:
            sys.exit(f"check_bench: {path} missing key '{key}'")
    return report


def main():
    parser = argparse.ArgumentParser(
        description="Gate a bench JSON report against a baseline.")
    parser.add_argument("candidate", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed bench/baselines/*.json")
    parser.add_argument(
        "--max-regression", type=float, default=15.0, metavar="PCT",
        help="maximum allowed trials/s drop vs baseline (default 15%%)")
    args = parser.parse_args()

    candidate = load(args.candidate)
    baseline = load(args.baseline)
    if candidate["bench"] != baseline["bench"]:
        sys.exit(f"check_bench: bench mismatch: candidate is "
                 f"'{candidate['bench']}', baseline is '{baseline['bench']}'")

    name = candidate["bench"]
    failures = int(candidate.get("trial_failures", 0))
    if failures:
        print(f"{name}: {failures} trial(s) failed — FAIL")
        return 1

    new = float(candidate["trials_per_s"])
    old = float(baseline["trials_per_s"])
    if old <= 0:
        sys.exit(f"check_bench: baseline trials_per_s must be positive")
    delta_pct = (new - old) / old * 100.0
    direction = "faster" if delta_pct >= 0 else "slower"
    print(f"{name}: {new:.2f} trials/s vs baseline {old:.2f} "
          f"({delta_pct:+.1f}%, {direction}; threads "
          f"{candidate.get('threads', '?')} vs {baseline.get('threads', '?')})")

    # Headline metric drift is informational: values legitimately move
    # when the model or substrate changes; the committed baseline update
    # is the review point.
    shared = sorted(set(candidate.get("metrics", {}))
                    & set(baseline.get("metrics", {})))
    for key in shared:
        new_m = float(candidate["metrics"][key])
        old_m = float(baseline["metrics"][key])
        drift = new_m - old_m
        if abs(drift) > 1e-9:
            print(f"  metric {key}: {new_m:.4g} (baseline {old_m:.4g}, "
                  f"{drift:+.4g})")

    if delta_pct < -args.max_regression:
        print(f"{name}: throughput regression beyond "
              f"{args.max_regression:.0f}% — FAIL")
        return 1
    print(f"{name}: within the {args.max_regression:.0f}% gate — OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
