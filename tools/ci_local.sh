#!/usr/bin/env bash
# ci_local.sh — reproduce the CI matrix (.github/workflows/ci.yml) on a
# dev box: same presets, same labels, same gates.  Green here means green
# in CI (modulo runner hardware for the perf/bench gates).
#
# usage: tools/ci_local.sh [--preset NAME]... [--skip-format] [--skip-bench]
#   --preset NAME   run only the named preset(s) (default, asan, tsan,
#                   noobs); may repeat.  Default: all four.
#   --skip-format   skip the clang-format check
#   --skip-bench    skip the bench smoke + regression gate
#   --soak          also run the 30 s telemetry scrape soak (CI runs it
#                   on the main / perf-labelled full lane only)
set -euo pipefail

cd "$(dirname "$0")/.."

presets=()
skip_format=0
skip_bench=0
soak=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --preset) presets+=("$2"); shift 2 ;;
    --skip-format) skip_format=1; shift ;;
    --skip-bench) skip_bench=1; shift ;;
    --soak) soak=1; shift ;;
    *) echo "ci_local.sh: unknown flag $1" >&2; exit 2 ;;
  esac
done
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(default asan tsan noobs)
fi

jobs="$(nproc)"
failed=()

run_step() {
  local name="$1"; shift
  echo
  echo "=== ${name} ==="
  if "$@"; then
    echo "=== ${name}: OK ==="
  else
    echo "=== ${name}: FAILED ==="
    failed+=("${name}")
  fi
}

# --- format job -----------------------------------------------------------
if [[ ${skip_format} -eq 0 ]]; then
  if command -v clang-format >/dev/null 2>&1; then
    check_format() {
      find src tests bench tools \( -name '*.cpp' -o -name '*.hpp' \) \
        -print0 | xargs -0 clang-format --dry-run -Werror
    }
    run_step "format (clang-format)" check_format
  else
    echo "format: clang-format not installed, skipping (CI will run it)"
  fi
fi

# --- build + test matrix --------------------------------------------------
launcher=()
if command -v ccache >/dev/null 2>&1; then
  launcher=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi
for preset in "${presets[@]}"; do
  run_step "configure ${preset}" cmake --preset "${preset}" "${launcher[@]}"
  run_step "build ${preset}" cmake --build --preset "${preset}" -j "${jobs}"
  run_step "ctest ${preset}" ctest --preset "${preset}" -j "${jobs}"
done

# --- chaos-labelled suites under ASan -------------------------------------
if [[ " ${presets[*]} " == *" asan "* ]]; then
  run_step "chaos gate under asan (ctest --preset chaos-asan)" \
    ctest --preset chaos-asan -j "${jobs}"
  run_step "obs gate under asan (ctest --preset obs-asan)" \
    ctest --preset obs-asan -j "${jobs}"
fi

# --- perf-labelled gates (timing sensitive: no -j) ------------------------
if [[ " ${presets[*]} " == *" default "* ]]; then
  run_step "perf gate (ctest --preset perf)" ctest --preset perf
fi

# --- engine determinism gate ----------------------------------------------
# Same grid at 1 thread, 8 threads, and with the per-tick fallback engine:
# BenchReport metrics must be bit-identical (DESIGN.md section 13).
if [[ ${skip_bench} -eq 0 && " ${presets[*]} " == *" default "* ]]; then
  determinism_gate() {
    local out=/tmp/det_out
    mkdir -p "${out}"
    ./build/bench/fig4_model_vs_measured --short --threads 1 \
      --bench-json "${out}/t1.json" &&
      ./build/bench/fig4_model_vs_measured --short --threads 8 \
        --bench-json "${out}/t8.json" &&
      PROCAP_SIM_ENGINE=pertick ./build/bench/fig4_model_vs_measured \
        --short --threads 8 --bench-json "${out}/pertick.json" &&
      python3 tools/check_determinism.py \
        "${out}/t1.json" "${out}/t8.json" "${out}/pertick.json" &&
      ./build/bench/policy_shootout --short --threads 1 \
        --bench-json "${out}/shootout_t1.json" &&
      ./build/bench/policy_shootout --short --threads 8 \
        --bench-json "${out}/shootout_t8.json" &&
      PROCAP_SIM_ENGINE=pertick ./build/bench/policy_shootout \
        --short --threads 8 --bench-json "${out}/shootout_pertick.json" &&
      python3 tools/check_determinism.py \
        "${out}/shootout_t1.json" "${out}/shootout_t8.json" \
        "${out}/shootout_pertick.json" &&
      ./build/tools/cluster_sim --nodes 96 --epochs 40 --seed 7 \
        --threads 1 --quiet --trace-out "${out}/traces_t1.json" &&
      ./build/tools/cluster_sim --nodes 96 --epochs 40 --seed 7 \
        --threads 8 --quiet --trace-out "${out}/traces_t8.json" &&
      python3 tools/check_determinism.py --traces \
        "${out}/traces_t1.json" "${out}/traces_t8.json" &&
      ./build/tools/cluster_sim --nodes 96 --epochs 40 --seed 7 \
        --controller target:setpoint=60 --threads 1 --quiet \
        --trace-out "${out}/traces_ctrl_t1.json" &&
      ./build/tools/cluster_sim --nodes 96 --epochs 40 --seed 7 \
        --controller target:setpoint=60 --threads 8 --quiet \
        --trace-out "${out}/traces_ctrl_t8.json" &&
      python3 tools/check_determinism.py --traces \
        "${out}/traces_ctrl_t1.json" "${out}/traces_ctrl_t8.json"
  }
  run_step "determinism gate (threads x batched/per-tick)" determinism_gate
fi

# --- bench smoke + regression gate ----------------------------------------
if [[ ${skip_bench} -eq 0 && " ${presets[*]} " == *" default "* ]]; then
  bench_gate() {
    local out=/tmp/bench_out
    mkdir -p "${out}"
    ./build/bench/fig4_model_vs_measured --short --threads 8 \
      --bench-json "${out}/BENCH_fig4.json" &&
      ./build/bench/tbl6_beta_mpo --short --threads 8 \
        --bench-json "${out}/BENCH_tbl6_beta_mpo.json" &&
      ./build/bench/abl_alpha_sensitivity --short --threads 8 \
        --bench-json "${out}/BENCH_abl_alpha_sensitivity.json" &&
      ./build/bench/abl_cap_tracking --short --threads 8 \
        --bench-json "${out}/BENCH_abl_cap_tracking.json" &&
      ./build/bench/abl_job_variability --short --threads 8 \
        --bench-json "${out}/BENCH_abl_job_variability.json" &&
      ./build/bench/policy_shootout --short --threads 8 \
        --bench-json "${out}/BENCH_policy_shootout.json" &&
      ./build/bench/cluster_churn --short --threads 8 \
        --bench-json "${out}/BENCH_cluster_churn.json" &&
      ./build/bench/obs_load --short \
        --bench-json "${out}/BENCH_obs_load.json" &&
      ./build/bench/trace_pipeline --short \
        --bench-json "${out}/BENCH_trace_pipeline.json" &&
      python3 tools/check_bench.py "${out}" bench/baselines \
        --max-regression 15
  }
  run_step "bench gate (short grid vs baselines)" bench_gate
fi

# --- telemetry scrape soak (opt-in; CI: main / perf-labelled lane) --------
if [[ ${soak} -eq 1 ]]; then
  run_step "telemetry scrape soak (8 scrapers, 30 s)" \
    python3 tools/cluster_live_smoke.py \
    build/tools/cluster_sim build/tools/procap_top --soak
fi

echo
if [[ ${#failed[@]} -gt 0 ]]; then
  echo "ci_local: ${#failed[@]} step(s) FAILED:"
  printf '  - %s\n' "${failed[@]}"
  exit 1
fi
echo "ci_local: all steps green"
