#!/usr/bin/env python3
"""Assert that bench reports from different execution modes are identical.

The event-driven engine promises bit-identical results across (a) thread
counts — trials share no mutable state, and (b) batched vs per-tick
execution — state folds only happen at event points common to both modes
(DESIGN.md section 13).  CI proves it by running the same short grid as

    fig4_model_vs_measured --short --threads 1 --bench-json ref.json
    fig4_model_vs_measured --short --threads 8 --bench-json t8.json
    PROCAP_SIM_ENGINE=pertick ... --threads 8 --bench-json pertick.json

and handing every report to this script:

    python3 tools/check_determinism.py ref.json t8.json pertick.json

The first report is the reference.  Every other report must match it on
trial count, shape/trial failure counts, and every headline metric
bit-for-bit (textual equality of the JSON numbers — no tolerance).
Exit status: 0 on full agreement, 1 on any divergence, 2 on bad usage.
"""

import json
import re
import sys

# Keys that must agree exactly across modes.  wall_s / trials_per_s /
# threads legitimately differ; metrics carry the simulation results.
EXACT_KEYS = ("bench", "trials", "shape_failures", "trial_failures")


def load_raw_metrics(path):
    """Return (report, metrics-as-text) — comparing the raw JSON number
    tokens sidesteps any float round-trip, making the check bit-exact."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        sys.exit(f"check_determinism: cannot read {path}: {err}")
    try:
        report = json.loads(text)
    except ValueError as err:
        sys.exit(f"check_determinism: {path}: bad JSON: {err}")
    raw = {}
    for key, value in re.findall(r'"([^"]+)":\s*(-?[0-9][^,\s}]*)', text):
        raw[key] = value
    metrics = {k: raw[k] for k in report.get("metrics", {}) if k in raw}
    return report, metrics


def main():
    if len(sys.argv) < 3:
        sys.exit("usage: check_determinism.py REFERENCE.json OTHER.json "
                 "[OTHER.json ...]")
    ref_path = sys.argv[1]
    ref, ref_metrics = load_raw_metrics(ref_path)
    if not ref_metrics:
        sys.exit(f"check_determinism: {ref_path} has no metrics to compare")
    status = 0
    for path in sys.argv[2:]:
        other, other_metrics = load_raw_metrics(path)
        diverged = []
        for key in EXACT_KEYS:
            if ref.get(key) != other.get(key):
                diverged.append(f"{key}: {ref.get(key)} vs {other.get(key)}")
        for key in sorted(set(ref_metrics) | set(other_metrics)):
            a = ref_metrics.get(key)
            b = other_metrics.get(key)
            if a != b:
                diverged.append(f"metrics.{key}: {a} vs {b}")
        if diverged:
            status = 1
            print(f"{path}: DIVERGES from {ref_path}:")
            for line in diverged:
                print(f"  {line}")
        else:
            print(f"{path}: identical to {ref_path} "
                  f"({len(ref_metrics)} metrics bit-exact)")
    print("determinism: " + ("FAIL" if status else "OK"))
    return status


if __name__ == "__main__":
    sys.exit(main())
