#!/usr/bin/env python3
"""Assert that bench reports from different execution modes are identical.

The event-driven engine promises bit-identical results across (a) thread
counts — trials share no mutable state, and (b) batched vs per-tick
execution — state folds only happen at event points common to both modes
(DESIGN.md section 13).  CI proves it by running the same short grid as

    fig4_model_vs_measured --short --threads 1 --bench-json ref.json
    fig4_model_vs_measured --short --threads 8 --bench-json t8.json
    PROCAP_SIM_ENGINE=pertick ... --threads 8 --bench-json pertick.json

and handing every report to this script:

    python3 tools/check_determinism.py ref.json t8.json pertick.json

The first report is the reference.  Every other report must match it on
trial count, shape/trial failure counts, and every headline metric
bit-for-bit (textual equality of the JSON numbers — no tolerance).
Exit status: 0 on full agreement, 1 on any divergence, 2 on bad usage.

Trace-dump mode (--traces) compares cap-to-effect flow dumps instead —
the documents cluster_sim --trace-out writes.  The FlowTracer promises
the kept-flow set is a pure function of (seed, scenario), independent of
thread count, so the dumps must be byte-identical:

    cluster_sim --threads 1 --trace-out ref.json ...
    cluster_sim --threads 8 --trace-out t8.json ...
    python3 tools/check_determinism.py --traces ref.json t8.json

On divergence the kept_hash fingerprints and first differing byte offset
are printed to localize whether sampling or serialization drifted.
"""

import json
import re
import sys


def check_traces(paths):
    """Byte-compare flow dumps; the reference is paths[0]."""
    blobs = {}
    for path in paths:
        try:
            with open(path, "rb") as f:
                blobs[path] = f.read()
        except OSError as err:
            sys.exit(f"check_determinism: cannot read {path}: {err}")

    def kept_hash(blob):
        match = re.search(rb'"kept_hash":\s*"((?:0x)?[0-9a-f]+)"', blob)
        return match.group(1).decode() if match else "?"

    ref_path, ref = paths[0], blobs[paths[0]]
    status = 0
    for path in paths[1:]:
        other = blobs[path]
        if other == ref:
            print(f"{path}: identical to {ref_path} "
                  f"({len(ref)} bytes, kept_hash {kept_hash(ref)})")
            continue
        status = 1
        offset = next((i for i, (a, b) in enumerate(zip(ref, other))
                       if a != b), min(len(ref), len(other)))
        print(f"{path}: DIVERGES from {ref_path}: first differing byte "
              f"at offset {offset} ({len(ref)} vs {len(other)} bytes, "
              f"kept_hash {kept_hash(ref)} vs {kept_hash(other)})")
    print("determinism: " + ("FAIL" if status else "OK"))
    return status

# Keys that must agree exactly across modes.  wall_s / trials_per_s /
# threads legitimately differ; metrics carry the simulation results.
EXACT_KEYS = ("bench", "trials", "shape_failures", "trial_failures")


def load_raw_metrics(path):
    """Return (report, metrics-as-text) — comparing the raw JSON number
    tokens sidesteps any float round-trip, making the check bit-exact."""
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as err:
        sys.exit(f"check_determinism: cannot read {path}: {err}")
    try:
        report = json.loads(text)
    except ValueError as err:
        sys.exit(f"check_determinism: {path}: bad JSON: {err}")
    raw = {}
    for key, value in re.findall(r'"([^"]+)":\s*(-?[0-9][^,\s}]*)', text):
        raw[key] = value
    metrics = {k: raw[k] for k in report.get("metrics", {}) if k in raw}
    return report, metrics


def main():
    args = sys.argv[1:]
    traces = "--traces" in args
    if traces:
        args.remove("--traces")
    if len(args) < 2:
        sys.exit("usage: check_determinism.py [--traces] REFERENCE.json "
                 "OTHER.json [OTHER.json ...]")
    if traces:
        return check_traces(args)
    ref_path = args[0]
    ref, ref_metrics = load_raw_metrics(ref_path)
    if not ref_metrics:
        sys.exit(f"check_determinism: {ref_path} has no metrics to compare")
    status = 0
    for path in args[1:]:
        other, other_metrics = load_raw_metrics(path)
        diverged = []
        for key in EXACT_KEYS:
            if ref.get(key) != other.get(key):
                diverged.append(f"{key}: {ref.get(key)} vs {other.get(key)}")
        for key in sorted(set(ref_metrics) | set(other_metrics)):
            a = ref_metrics.get(key)
            b = other_metrics.get(key)
            if a != b:
                diverged.append(f"metrics.{key}: {a} vs {b}")
        if diverged:
            status = 1
            print(f"{path}: DIVERGES from {ref_path}:")
            for line in diverged:
                print(f"  {line}")
        else:
            print(f"{path}: identical to {ref_path} "
                  f"({len(ref_metrics)} metrics bit-exact)")
    print("determinism: " + ("FAIL" if status else "OK"))
    return status


if __name__ == "__main__":
    sys.exit(main())
