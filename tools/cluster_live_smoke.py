#!/usr/bin/env python3
"""End-to-end smoke test for the cluster telemetry plane.

Launches `cluster_sim --serve-obs 0` (ephemeral port), waits for the
server banner, then validates the cluster roll-up endpoints while the
sim is still running:

  * /cluster.json       — valid JSON; the conservation invariant holds
                          in the served document: sum of per-node caps
                          equals the granted.sum roll-up and stays
                          within the global budget
  * /cluster.json?topk=K — exactly K nodes, sorted by deficit descending
  * /timeseries.json?node=N — only node="N" labeled series
  * /metrics            — well-formed exposition with cluster series
  * /healthz            — valid JSON, zero invariant violations
  * procap_top --once   — renders a frame with the cluster pane

Usage: cluster_live_smoke.py CLUSTER_SIM_BIN PROCAP_TOP_BIN
"""

import json
import re
import subprocess
import sys
import time
import urllib.request

BANNER = re.compile(r"obs: serving http on 127\.0\.0\.1:(\d+)")


def fail(proc, msg):
    proc.terminate()
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def get(port, path, timeout=5):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as resp:
        return resp.status, resp.read().decode()


def main():
    cluster_sim, procap_top = sys.argv[1], sys.argv[2]
    proc = subprocess.Popen(
        [
            cluster_sim,
            "--nodes", "48",
            "--epochs", "120",
            "--threads", "2",
            "--quiet",
            "--serve-obs", "0",
            "--pace", "20",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            m = BANNER.search(line)
            if m:
                port = int(m.group(1))
                break
        if port is None:
            fail(proc, "server banner never appeared")
        print(f"server on port {port}")

        # Poll until a couple of epochs have been rolled up.
        deadline = time.monotonic() + 20
        cluster = None
        while time.monotonic() < deadline:
            status, body = get(port, "/cluster.json")
            if status != 200:
                fail(proc, f"/cluster.json -> {status}")
            cluster = json.loads(body)
            if cluster.get("epoch", 0) >= 2 and cluster.get("nodes"):
                break
            time.sleep(0.1)
        if not cluster or not cluster.get("nodes"):
            fail(proc, "cluster roll-up never populated")

        # Conservation, as served: the sum of per-node grants must equal
        # the cluster granted.sum series and respect the global budget.
        cap_sum = sum(n["cap"] for n in cluster["nodes"])
        granted = cluster["granted"]["sum"]
        budget = cluster["budget"]
        if abs(cap_sum - granted) > 1e-6 * max(1.0, abs(granted)):
            fail(proc, f"cap sum {cap_sum} != granted.sum {granted}")
        if cap_sum > budget * (1 + 1e-9):
            fail(proc, f"granted {cap_sum} exceeds budget {budget}")
        if len(cluster["nodes"]) != 48:
            fail(proc, f"expected 48 nodes, got {len(cluster['nodes'])}")
        if cluster["alive"] + cluster["suspect"] + cluster["dead"] != 48:
            fail(proc, f"liveness counts do not add up: {cluster}")
        print(f"cluster.json: epoch {cluster['epoch']}, "
              f"granted {granted:.0f} W of {budget:.0f} W — conserved")

        # Top-k drill-down: k rows, sorted by deficit descending.
        status, body = get(port, "/cluster.json?topk=8")
        if status != 200:
            fail(proc, f"/cluster.json?topk=8 -> {status}")
        top = json.loads(body)
        deficits = [n["deficit"] for n in top["nodes"]]
        if len(deficits) != 8:
            fail(proc, f"topk=8 returned {len(deficits)} nodes")
        if deficits != sorted(deficits, reverse=True):
            fail(proc, f"topk nodes not sorted by deficit: {deficits}")
        print(f"cluster.json?topk=8: worst deficit {deficits[0]:.1f} W")

        # Per-node drill-down on the retained time series.
        status, body = get(port, "/timeseries.json?node=5")
        if status != 200:
            fail(proc, f"/timeseries.json?node=5 -> {status}")
        ts = json.loads(body)
        labels = {s["labels"] for s in ts["series"]}
        if not ts["series"] or labels != {'node="5"'}:
            fail(proc, f"node filter leaked other series: {sorted(labels)}")
        status, body = get(port, "/timeseries.json?name=cluster.granted.sum")
        names = {s["name"] for s in json.loads(body)["series"]}
        if names != {"cluster.granted.sum"}:
            fail(proc, f"name filter leaked other series: {sorted(names)}")
        print(f"timeseries.json: node and name filters select exactly")

        status, body = get(port, "/metrics")
        if status != 200:
            fail(proc, f"/metrics -> {status}")
        metric_line = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.inf-]+$"
        )
        for line in body.splitlines():
            if line and not line.startswith("#") and \
                    not metric_line.match(line):
                fail(proc, f"bad exposition line: {line!r}")
        if "procap_cluster_granted_sum" not in body:
            fail(proc, "procap_cluster_granted_sum missing from /metrics")
        print(f"metrics: {len(body.splitlines())} exposition lines")

        status, body = get(port, "/healthz")
        if status != 200:
            fail(proc, f"/healthz -> {status}")
        health = json.loads(body)
        if health.get("invariant_violations", -1) != 0:
            fail(proc, f"/healthz reports violations: {health}")
        print(f"healthz: epoch {health['epoch']}, all invariants hold")

        top_run = subprocess.run(
            [procap_top, "--port", str(port), "--once"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        if top_run.returncode != 0:
            fail(proc, f"procap_top failed: {top_run.stderr}")
        if "cluster" not in top_run.stdout:
            fail(proc, f"procap_top cluster pane missing:\n{top_run.stdout}")
        print("procap_top: rendered cluster pane")

        if proc.wait(timeout=30) != 0:
            fail(proc, f"cluster_sim exited {proc.returncode}")
        print("PASS")
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    main()
