#!/usr/bin/env python3
"""End-to-end smoke test for the cluster telemetry plane.

Launches `cluster_sim --serve-obs 0` (ephemeral port), waits for the
server banner, then validates the cluster roll-up endpoints while the
sim is still running:

  * /cluster.json       — valid JSON; the conservation invariant holds
                          in the served document: sum of per-node caps
                          equals the granted.sum roll-up and stays
                          within the global budget
  * /cluster.json?topk=K — exactly K nodes, sorted by deficit descending
  * /timeseries.json?node=N — only node="N" labeled series
  * /metrics            — well-formed exposition with cluster series
  * /traces.json        — at least one complete decision→grant→effect
                          flow closed with positive cap-to-effect
                          latency, served from the live tracer
  * gzip                — Accept-Encoding: gzip answers with a gzip
                          body that inflates back to the same document
                          schema, and is actually smaller
  * /healthz            — valid JSON, zero invariant violations
  * procap_top --once   — renders a frame with the cluster pane

Usage: cluster_live_smoke.py CLUSTER_SIM_BIN PROCAP_TOP_BIN [--soak]
           [--soak-seconds N] [--soak-scrapers N] [--soak-p99-ms MS]

--soak switches to the scrape-load soak: after the functional checks,
N forked scraper processes (default 8) hammer the live endpoints for at
least --soak-seconds (default 30).  The run fails on any 5xx (or
connection error), and on a scrape p99 above --soak-p99-ms (default
250 ms — the same SLO the obs_load bench gates).  CI runs this lane
nightly / on perf-labelled PRs, not in the default test sweep.
"""

import gzip
import json
import multiprocessing
import re
import subprocess
import sys
import time
import urllib.request

BANNER = re.compile(r"obs: serving http on 127\.0\.0\.1:(\d+)")


def fail(proc, msg):
    proc.terminate()
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def get(port, path, timeout=5):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as resp:
        return resp.status, resp.read().decode()


def get_gzip(port, path, timeout=5):
    """Fetch with Accept-Encoding: gzip; returns (encoding, raw bytes)."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        headers={"Accept-Encoding": "gzip"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.headers.get("Content-Encoding", ""), resp.read()


def scrape_worker(port, worker_id, stop_at, conn):
    """One soak scraper: rotate the endpoints until the deadline, record
    per-request latency and any non-2xx outcome."""
    paths = [
        "/cluster.json",
        "/metrics",
        f"/timeseries.json?node={worker_id}",
        "/traces.json",
        "/cluster.json?topk=8",
        "/healthz",
    ]
    latencies = []
    errors = 0
    i = 0
    while time.monotonic() < stop_at:
        path = paths[i % len(paths)]
        i += 1
        t0 = time.perf_counter()
        try:
            status, _ = get(port, path, timeout=10)
            if status >= 500:
                errors += 1
        except Exception:
            # The sim may finish (connection refused) right at the end of
            # the window; only count errors while the deadline holds.
            if time.monotonic() < stop_at - 1.0:
                errors += 1
            break
        latencies.append(time.perf_counter() - t0)
    conn.send((len(latencies), errors, latencies))
    conn.close()


def run_soak(proc, port, scrapers, seconds, p99_ms):
    print(f"soak: {scrapers} scraper processes for {seconds} s "
          f"(p99 SLO {p99_ms:.0f} ms)")
    stop_at = time.monotonic() + seconds
    workers = []
    for worker_id in range(scrapers):
        parent, child = multiprocessing.Pipe()
        w = multiprocessing.Process(
            target=scrape_worker, args=(port, worker_id, stop_at, child)
        )
        w.start()
        workers.append((w, parent))

    total = 0
    errors = 0
    latencies = []
    for w, parent in workers:
        if parent.poll(seconds + 60):
            n, e, lat = parent.recv()
            total += n
            errors += e
            latencies.extend(lat)
        else:
            errors += 1
        w.join(timeout=30)
    if total == 0:
        fail(proc, "soak: no scrape completed")
    if errors:
        fail(proc, f"soak: {errors} scrape failures (5xx or refused)")
    latencies.sort()
    p50 = latencies[len(latencies) // 2] * 1e3
    p99 = latencies[min(len(latencies) - 1,
                        int(len(latencies) * 0.99))] * 1e3
    rate = total / seconds
    print(f"soak: {total} scrapes ({rate:.0f}/s), zero 5xx, "
          f"p50 {p50:.1f} ms, p99 {p99:.1f} ms")
    if p99 > p99_ms:
        fail(proc, f"soak: scrape p99 {p99:.1f} ms exceeds SLO "
                   f"{p99_ms:.0f} ms")


def main():
    args = [a for a in sys.argv[1:]]
    soak = "--soak" in args
    if soak:
        args.remove("--soak")

    def flag(name, default):
        if name in args:
            i = args.index(name)
            value = float(args[i + 1])
            del args[i:i + 2]
            return value
        return default

    soak_seconds = flag("--soak-seconds", 30.0)
    soak_scrapers = int(flag("--soak-scrapers", 8))
    soak_p99_ms = flag("--soak-p99-ms", 250.0)
    cluster_sim, procap_top = args[0], args[1]

    # The soak needs the sim to keep serving past its deadline: slow the
    # pace so the run covers the functional checks plus the soak window.
    epochs, pace = (600, 10) if soak else (120, 20)
    proc = subprocess.Popen(
        [
            cluster_sim,
            "--nodes", "48",
            "--epochs", str(epochs),
            "--threads", "2",
            "--quiet",
            "--serve-obs", "0",
            "--pace", str(pace),
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            m = BANNER.search(line)
            if m:
                port = int(m.group(1))
                break
        if port is None:
            fail(proc, "server banner never appeared")
        print(f"server on port {port}")

        # Poll until a couple of epochs have been rolled up.
        deadline = time.monotonic() + 20
        cluster = None
        while time.monotonic() < deadline:
            status, body = get(port, "/cluster.json")
            if status != 200:
                fail(proc, f"/cluster.json -> {status}")
            cluster = json.loads(body)
            if cluster.get("epoch", 0) >= 2 and cluster.get("nodes"):
                break
            time.sleep(0.1)
        if not cluster or not cluster.get("nodes"):
            fail(proc, "cluster roll-up never populated")

        # Conservation, as served: the sum of per-node grants must equal
        # the cluster granted.sum series and respect the global budget.
        cap_sum = sum(n["cap"] for n in cluster["nodes"])
        granted = cluster["granted"]["sum"]
        budget = cluster["budget"]
        if abs(cap_sum - granted) > 1e-6 * max(1.0, abs(granted)):
            fail(proc, f"cap sum {cap_sum} != granted.sum {granted}")
        if cap_sum > budget * (1 + 1e-9):
            fail(proc, f"granted {cap_sum} exceeds budget {budget}")
        if len(cluster["nodes"]) != 48:
            fail(proc, f"expected 48 nodes, got {len(cluster['nodes'])}")
        if cluster["alive"] + cluster["suspect"] + cluster["dead"] != 48:
            fail(proc, f"liveness counts do not add up: {cluster}")
        print(f"cluster.json: epoch {cluster['epoch']}, "
              f"granted {granted:.0f} W of {budget:.0f} W — conserved")

        # Top-k drill-down: k rows, sorted by deficit descending.
        status, body = get(port, "/cluster.json?topk=8")
        if status != 200:
            fail(proc, f"/cluster.json?topk=8 -> {status}")
        top = json.loads(body)
        deficits = [n["deficit"] for n in top["nodes"]]
        if len(deficits) != 8:
            fail(proc, f"topk=8 returned {len(deficits)} nodes")
        if deficits != sorted(deficits, reverse=True):
            fail(proc, f"topk nodes not sorted by deficit: {deficits}")
        print(f"cluster.json?topk=8: worst deficit {deficits[0]:.1f} W")

        # Per-node drill-down on the retained time series.
        status, body = get(port, "/timeseries.json?node=5")
        if status != 200:
            fail(proc, f"/timeseries.json?node=5 -> {status}")
        ts = json.loads(body)
        labels = {s["labels"] for s in ts["series"]}
        if not ts["series"] or labels != {'node="5"'}:
            fail(proc, f"node filter leaked other series: {sorted(labels)}")
        status, body = get(port, "/timeseries.json?name=cluster.granted.sum")
        names = {s["name"] for s in json.loads(body)["series"]}
        if names != {"cluster.granted.sum"}:
            fail(proc, f"name filter leaked other series: {sorted(names)}")
        print(f"timeseries.json: node and name filters select exactly")

        status, body = get(port, "/metrics")
        if status != 200:
            fail(proc, f"/metrics -> {status}")
        metric_line = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.inf-]+$"
        )
        for line in body.splitlines():
            if line and not line.startswith("#") and \
                    not metric_line.match(line):
                fail(proc, f"bad exposition line: {line!r}")
        if "procap_cluster_granted_sum" not in body:
            fail(proc, "procap_cluster_granted_sum missing from /metrics")
        print(f"metrics: {len(body.splitlines())} exposition lines")

        # Causal tracing, live: the control loop must have closed at
        # least one complete decision→grant→effect flow, with a positive
        # cap-to-effect latency, served from the tracer's kept ring.
        deadline = time.monotonic() + 20
        closed_flow = None
        traces = None
        while time.monotonic() < deadline and closed_flow is None:
            status, body = get(port, "/traces.json")
            if status != 200:
                fail(proc, f"/traces.json -> {status}")
            traces = json.loads(body)
            closed_flow = next(
                (f for f in traces.get("flows", [])
                 if f.get("state") == "closed"
                 and f.get("latency_ms", 0) > 0),
                None,
            )
            if closed_flow is None:
                time.sleep(0.2)
        if closed_flow is None:
            fail(proc, f"no closed flow with positive latency: "
                       f"{traces and traces.get('stats')}")
        stats = traces["stats"]
        if stats.get("closed", 0) < 1:
            fail(proc, f"tracer closed no flows: {stats}")
        print(f"traces.json: {stats['closed']} flows closed, kept flow "
              f"epoch {closed_flow['epoch']} node {closed_flow['node']} "
              f"latency {closed_flow['latency_ms']:.0f} ms")

        # Flow filters, live: the epoch filter must select exactly.
        status, body = get(
            port, f"/traces.json?epoch={closed_flow['epoch']}")
        filtered = json.loads(body)
        if not filtered["flows"] or any(
                f["epoch"] != closed_flow["epoch"]
                for f in filtered["flows"]):
            fail(proc, "traces.json epoch filter leaked other epochs")
        print(f"traces.json?epoch={closed_flow['epoch']}: "
              f"{len(filtered['flows'])} flows, filter exact")

        # gzip negotiation: the compressed answer must inflate to the
        # same document schema and actually save bytes.
        encoding, raw = get_gzip(port, "/traces.json?flows=0")
        if encoding != "gzip":
            fail(proc, f"gzip not negotiated (Content-Encoding "
                       f"{encoding!r})")
        inflated = json.loads(gzip.decompress(raw).decode())
        if "stats" not in inflated or "node_summary" not in inflated:
            fail(proc, "gzip round-trip lost the document schema")
        identity_len = len(get(port, "/traces.json?flows=0")[1])
        if len(raw) >= identity_len:
            fail(proc, f"gzip body ({len(raw)} B) not smaller than "
                       f"identity ({identity_len} B)")
        print(f"gzip: {identity_len} B -> {len(raw)} B on "
              f"/traces.json?flows=0")

        status, body = get(port, "/healthz")
        if status != 200:
            fail(proc, f"/healthz -> {status}")
        health = json.loads(body)
        if health.get("invariant_violations", -1) != 0:
            fail(proc, f"/healthz reports violations: {health}")
        print(f"healthz: epoch {health['epoch']}, all invariants hold")

        top_run = subprocess.run(
            [procap_top, "--port", str(port), "--once"],
            capture_output=True,
            text=True,
            timeout=30,
        )
        if top_run.returncode != 0:
            fail(proc, f"procap_top failed: {top_run.stderr}")
        if "cluster" not in top_run.stdout:
            fail(proc, f"procap_top cluster pane missing:\n{top_run.stdout}")
        print("procap_top: rendered cluster pane")

        if soak:
            run_soak(proc, port, soak_scrapers, soak_seconds, soak_p99_ms)
            proc.terminate()
            proc.wait(timeout=30)
        elif proc.wait(timeout=30) != 0:
            fail(proc, f"cluster_sim exited {proc.returncode}")
        print("PASS")
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    main()
