// characterize — the paper's application-characterization procedure
// (Section IV-A) as a command-line tool.
//
// Measures, for one application or the whole suite:
//   * beta      from progress rates pinned at 3300 vs 1600 MHz (Eq. 1),
//   * MPO       PAPI_L3_TCM / PAPI_TOT_INS,
//   * the uncapped operating point (rate, package power),
//   * the interview-based Category (Table V), cross-checked against the
//     measured trace.
//
// Usage: characterize [app|all] [--probe MHZ] [--seconds S]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/specfile.hpp"
#include "exp/measure.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/category.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace procap;
  std::string which = "all";
  std::string spec_path;
  double probe_mhz = 1600.0;
  double seconds = 15.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--probe" && i + 1 < argc) {
      probe_mhz = std::atof(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg[0] != '-') {
      which = arg;
    } else {
      std::cerr << "usage: characterize [app|all] [--probe MHZ] "
                   "[--seconds S] [--spec FILE]\n";
      return 2;
    }
  }

  std::vector<std::string> names;
  if (!spec_path.empty()) {
    names.push_back(spec_path);
  } else if (which == "all") {
    names = apps::suite_names();
  } else {
    names.push_back(which);
  }

  TablePrinter table({"app", "unit", "beta", "MPO x1e-3", "rate@3300",
                      "rate uncapped", "P uncapped W", "category"});
  for (const auto& name : names) {
    apps::AppModel app;
    try {
      if (!spec_path.empty()) {
        app.spec = apps::load_spec(spec_path);
        // A user-supplied spec is instrumented by construction; let the
        // measured trace decide between Category 1 and 3.
        app.traits.name = app.spec.name;
        app.traits.measurable_online = true;
        app.traits.relates_to_science = true;
      } else {
        app = apps::by_name(name);
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    const auto c = exp::characterize(app, mhz(probe_mhz), seconds);

    // Trace-aware categorization from an uncapped run.
    exp::RunOptions opt;
    opt.duration = std::max(20.0, seconds);
    const auto traces = exp::run_under_schedule(
        app, std::make_unique<policy::UncappedSchedule>(), opt);
    const auto category =
        progress::categorize(app.traits, traces.progress);

    table.add_row({app.spec.name, app.spec.unit, num(c.beta, 2), num(c.mpo * 1e3, 2),
                   num(c.rate_nominal, 1), num(c.rate_uncapped, 1),
                   num(c.power_uncapped, 1), progress::to_string(category)});
  }
  std::cout << "Characterization at probe " << probe_mhz
            << " MHz, " << seconds << " s per pinned run:\n";
  table.print(std::cout);
  std::cout << "(paper Table VI: QMCPACK 0.84/3.91, OpenMC 0.93/0.20, AMG "
               "0.52/30.1, LAMMPS 1.00/0.32, STREAM 0.37/50.9)\n";
  return 0;
}
