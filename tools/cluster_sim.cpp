// cluster_sim — run the cluster power hierarchy over a churning node set.
//
//   cluster_sim --nodes 256 --budget 30000 --strategy progress \
//               --epochs 40 --plan chaos.plan --seed 7
//
// Prints one line per epoch (time, assigned watts, reclaimed watts,
// alive/suspect/dead counts, running jobs, hold state, trace hash) and a
// closing summary.  The trace hash is the determinism fingerprint: two
// invocations with the same flags print the same final hash, whatever
// --threads is.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "cluster/manager.hpp"
#include "cluster/telemetry.hpp"
#include "fault/plan.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "policy/controller.hpp"
#include "util/table.hpp"

namespace {

void usage(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [options]\n"
      << "  --nodes N       cluster size (default 256)\n"
      << "  --budget W      global power budget in watts (default 120*N)\n"
      << "  --strategy S    uniform | demand | progress (default demand)\n"
      << "  --controller C  per-node refinement controller, a policy\n"
      << "                  registry spec NAME[:k=v,...]; each node may\n"
      << "                  trim (never raise) its strategy grant\n"
      << "                  (default: off)\n"
      << "  --epochs N      epochs to run (default 30)\n"
      << "  --jobs N        synthesized job-mix size (default N/8)\n"
      << "  --seed S        master seed (default 42)\n"
      << "  --threads N     worker threads (default: hardware)\n"
      << "  --plan FILE     fault plan with node episodes (chaos script)\n"
      << "  --quiet         summary only, no per-epoch table\n"
      << "  --serve-obs P   serve live telemetry on 127.0.0.1:P (0 picks a\n"
      << "                  port): /metrics, /cluster.json, /timeseries.json,\n"
      << "                  /traces.json, /healthz\n"
      << "  --pace X        run at X times real time while serving\n"
      << "                  (default 1; 0 = free-run)\n"
      << "  --trace-out F     write the cap-to-effect flow dump (traces.json\n"
      << "                    document) to F at exit; also enables tracing\n"
      << "  --trace-perfetto F  write the merged multi-node Chrome trace to F\n"
      << "  --trace-sample N  keep 1-in-N closed flows (default 8; 1 = all)\n"
      << "  --trace-slow-ms M always keep flows slower than M ms (default\n"
      << "                    750)\n"
      << "  --trace-cap N     kept-flow ring capacity (default 4096)\n"
      << "controllers (for --controller):\n"
      << procap::policy::controller_help();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace procap;
  cluster::ClusterConfig config;
  config.nodes = 256;
  config.global_budget = 0.0;  // resolved after flags: 120 W/node default
  config.jobs = 0;             // resolved after flags: nodes/8
  unsigned epochs = 30;
  std::string plan_path;
  bool quiet = false;
  int serve_port = -1;
  double pace = 1.0;
  std::string trace_out;
  std::string trace_perfetto;
  obs::FlowTracerOptions trace_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      config.nodes = static_cast<unsigned>(std::atol(value("--nodes").c_str()));
    } else if (arg == "--budget") {
      config.global_budget = std::atof(value("--budget").c_str());
    } else if (arg == "--strategy") {
      config.strategy = value("--strategy");
    } else if (arg == "--controller") {
      config.node_controller = value("--controller");
    } else if (arg == "--epochs") {
      epochs = static_cast<unsigned>(std::atol(value("--epochs").c_str()));
    } else if (arg == "--jobs") {
      config.jobs = static_cast<unsigned>(std::atol(value("--jobs").c_str()));
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(
          std::strtoull(value("--seed").c_str(), nullptr, 10));
    } else if (arg == "--threads") {
      config.threads =
          static_cast<unsigned>(std::atol(value("--threads").c_str()));
    } else if (arg == "--plan") {
      plan_path = value("--plan");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--serve-obs") {
      serve_port = std::atoi(value("--serve-obs").c_str());
    } else if (arg == "--pace") {
      pace = std::atof(value("--pace").c_str());
    } else if (arg == "--trace-out") {
      trace_out = value("--trace-out");
    } else if (arg == "--trace-perfetto") {
      trace_perfetto = value("--trace-perfetto");
    } else if (arg == "--trace-sample") {
      trace_options.sample_period = static_cast<std::uint64_t>(
          std::strtoull(value("--trace-sample").c_str(), nullptr, 10));
    } else if (arg == "--trace-slow-ms") {
      trace_options.slow_latency =
          msec(std::atol(value("--trace-slow-ms").c_str()));
    } else if (arg == "--trace-cap") {
      trace_options.capacity = static_cast<std::size_t>(
          std::atol(value("--trace-cap").c_str()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::cerr << argv[0] << ": unknown flag " << arg << "\n";
      usage(argv[0]);
      return 2;
    }
  }
  if (config.global_budget <= 0.0) {
    config.global_budget = 120.0 * config.nodes;
  }
  if (config.jobs == 0) {
    config.jobs = std::max(1u, config.nodes / 8);
  }

  try {
    if (!plan_path.empty()) {
      config.plan = fault::FaultPlan::load(plan_path);
    }
    cluster::ClusterPowerManager manager(config);

    // Causal cap-to-effect tracing: the manager drives the tracer from
    // the sim thread (decision → actuation → effect per node); the
    // tracer is on whenever something consumes it — the HTTP plane
    // (/traces.json) or a dump flag.  Sampling is keyed off the master
    // seed so the kept-flow set is a pure function of the scenario,
    // whatever --threads is.
    const bool tracing =
        serve_port >= 0 || !trace_out.empty() || !trace_perfetto.empty();
    trace_options.seed = config.seed;
    obs::FlowTracer tracer(trace_options);
    if (tracing) {
      tracer.set_meta("app", "cluster_sim");
      tracer.set_meta("strategy", config.strategy);
      tracer.set_meta("seed", std::to_string(config.seed));
      tracer.set_meta("nodes", std::to_string(config.nodes));
      tracer.set_meta("sample_period",
                      std::to_string(trace_options.sample_period));
      manager.set_tracer(&tracer);
    }

    // Live telemetry plane: per-epoch cluster roll-ups into the registry
    // and a time-series store, served by the event-loop HTTP server.
    // The sim thread runs epochs (optionally paced to wall time); the
    // serve thread answers scrapers.
    obs::TimeSeriesStore ts_store(obs::Registry::global());
    cluster::ClusterTelemetry telemetry(obs::Registry::global());
    if (tracing) {
      telemetry.set_tracer(&tracer);
    }
    obs::HttpServer server;
    if (serve_port >= 0) {
      ts_store.set_meta("app", "cluster_sim");
      ts_store.set_meta("strategy", config.strategy);
      server.handle("/metrics", [](const std::string&) {
        std::ostringstream os;
        obs::Registry::global().write_prometheus(os);
        return obs::HttpResponse{200, "text/plain; version=0.0.4", os.str()};
      });
      server.handle("/cluster.json", [&telemetry](const std::string& query) {
        const auto params = obs::parse_query(query);
        std::size_t topk = 0;
        if (const auto it = params.find("topk"); it != params.end()) {
          topk = static_cast<std::size_t>(std::atol(it->second.c_str()));
        }
        std::ostringstream os;
        telemetry.write_cluster_json(os, topk);
        return obs::HttpResponse{200, "application/json", os.str()};
      });
      server.handle("/timeseries.json", [&ts_store](const std::string& query) {
        const auto params = obs::parse_query(query);
        Nanos since = 0;
        std::string name_filter;
        std::string labels_filter;
        if (const auto it = params.find("since"); it != params.end()) {
          since = to_nanos(std::atof(it->second.c_str()));
        }
        if (const auto it = params.find("name"); it != params.end()) {
          name_filter = it->second;
        }
        if (const auto it = params.find("node"); it != params.end()) {
          labels_filter = "node=\"" + it->second + "\"";
        }
        std::ostringstream os;
        ts_store.write_json(os, since, name_filter, labels_filter);
        return obs::HttpResponse{200, "application/json", os.str()};
      });
      server.handle("/traces.json", [&tracer](const std::string& query) {
        const auto params = obs::parse_query(query);
        obs::TraceQuery tq;
        if (const auto it = params.find("epoch"); it != params.end()) {
          tq.epoch = std::atol(it->second.c_str());
        }
        if (const auto it = params.find("node"); it != params.end()) {
          tq.node = std::atol(it->second.c_str());
        }
        if (const auto it = params.find("min_latency_ms");
            it != params.end()) {
          tq.min_latency_ms = std::atof(it->second.c_str());
        }
        if (const auto it = params.find("flows"); it != params.end()) {
          tq.include_flows = it->second != "0" && it->second != "false";
        }
        std::ostringstream os;
        tracer.write_traces_json(os, tq);
        return obs::HttpResponse{200, "application/json", os.str()};
      });
      server.handle("/healthz", [&telemetry](const std::string&) {
        const cluster::ClusterSnapshot snap = telemetry.snapshot();
        std::ostringstream os;
        os << "{\"app\":\"cluster_sim\",\"epoch\":" << snap.epoch
           << ",\"alive\":" << snap.alive << ",\"suspect\":" << snap.suspect
           << ",\"dead\":" << snap.dead << ",\"held\":"
           << (snap.held ? "true" : "false") << ",\"invariant_violations\":"
           << snap.invariant_violations << "}";
        return obs::HttpResponse{200, "application/json", os.str()};
      });
      if (!server.start("127.0.0.1",
                        static_cast<std::uint16_t>(serve_port))) {
        std::cerr << "cannot bind 127.0.0.1:" << serve_port << "\n";
        return 1;
      }
      std::cout << "obs: serving http on 127.0.0.1:" << server.port()
                << std::endl;
    }

    std::cout << "cluster: " << config.nodes << " nodes, "
              << num(config.global_budget, 0) << " W budget, strategy "
              << config.strategy;
    if (!config.node_controller.empty()) {
      std::cout << " + controller " << config.node_controller;
    }
    std::cout << ", seed " << config.seed << "\n\n";
    const Nanos epoch_sim = config.tick * config.ticks_per_epoch;
    TablePrinter table({"epoch", "t (s)", "assigned W", "reclaimed W",
                        "alive", "susp", "dead", "jobs", "held"});
    for (unsigned e = 0; e < epochs; ++e) {
      const cluster::EpochRecord& rec = manager.run_epoch();
      if (serve_port >= 0) {
        telemetry.update(manager);
        ts_store.sample(manager.now());
        if (pace > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(
              to_seconds(epoch_sim) / pace));
        }
      }
      if (!quiet) {
        table.add_row({std::to_string(rec.epoch), num(to_seconds(rec.t), 1),
                       num(rec.assigned, 0), num(rec.reclaimed, 0),
                       std::to_string(rec.alive), std::to_string(rec.suspect),
                       std::to_string(rec.dead),
                       std::to_string(rec.running_jobs),
                       rec.held ? "yes" : ""});
      }
    }
    if (!quiet) {
      table.print(std::cout);
    }
    server.stop();
    if (serve_port >= 0) {
      std::cout << "obs: served " << server.requests_served()
                << " http requests over " << server.connections_accepted()
                << " connections, retained " << ts_store.series_count()
                << " series (" << ts_store.samples_taken() << " samples)\n";
    }
    if (!trace_out.empty()) {
      std::ofstream out(trace_out);
      if (!out) {
        std::cerr << "cannot write " << trace_out << "\n";
        return 1;
      }
      tracer.write_traces_json(out);
      out << "\n";
    }
    if (!trace_perfetto.empty()) {
      std::ofstream out(trace_perfetto);
      if (!out) {
        std::cerr << "cannot write " << trace_perfetto << "\n";
        return 1;
      }
      tracer.write_perfetto(out);
      out << "\n";
    }
    if (tracing && !quiet) {
      const obs::FlowTracerStats fs = tracer.stats();
      std::cout << "trace: " << fs.closed << " flows closed, " << fs.orphaned
                << " orphaned, " << fs.kept << " kept (hash 0x" << std::hex
                << std::setw(16) << std::setfill('0') << tracer.kept_hash()
                << std::dec << std::setfill(' ') << ")\n";
    }
    std::cout << "\nsummary: " << manager.deaths() << " deaths, "
              << manager.rejoins() << " rejoins, " << manager.holds()
              << " holds, " << manager.invariant_violations()
              << " invariant violations\n"
              << "trace hash: 0x" << std::hex << std::setw(16)
              << std::setfill('0') << manager.trace_hash() << std::dec
              << "\n";
    return manager.invariant_violations() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 1;
  }
}
