// procap_top — live terminal dashboard for a serving telemetry plane.
//
// Attach to a `power_policy --serve-obs PORT` (single node) or
// `cluster_sim --serve-obs PORT` (cluster) process and watch the run as
// it happens: cap and measured power, per-app progress rate and signal
// health, daemon activity, sparkline history from the retained
// time-series, the alert table with firing/pending states, and — when
// the server exposes /cluster.json — a cluster pane with the budget
// roll-up and the top-k nodes by deficit.
//
// Usage:
//   procap_top --port 9464 [--host 127.0.0.1] [--interval MS]
//              [--frames N] [--once] [--reconnect-s S] [--topk K]
//
// --once renders a single frame without ANSI cursor control (useful in
// pipes and the smoke test); otherwise the screen redraws every
// --interval milliseconds until the server goes away or --frames runs
// out.  When the server drops mid-watch (rollout, restart), procap_top
// retries with decorrelated-jitter backoff for --reconnect-s seconds
// before giving up — the same backoff the msgbus subscribers use, so a
// herd of dashboards does not hammer a restarting server in lockstep.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "msgbus/uds.hpp"
#include "obs/http.hpp"
#include "obs/json.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using procap::obs::HttpResult;
using procap::obs::http_get;
namespace json = procap::obs::json;

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 1000;
  int frames = 0;  // 0 = until the server disappears
  bool once = false;
  double reconnect_s = 10.0;  // retry window after the server drops
  int topk = 8;               // cluster pane rows
};

void usage() {
  std::cerr << "usage: procap_top --port PORT [--host HOST] "
               "[--interval MS] [--frames N] [--once] "
               "[--reconnect-s S] [--topk K]\n";
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (arg == "--host" && (value = next())) {
      opt.host = value;
    } else if (arg == "--port" && (value = next())) {
      opt.port = std::atoi(value);
    } else if (arg == "--interval" && (value = next())) {
      opt.interval_ms = std::atoi(value);
    } else if (arg == "--frames" && (value = next())) {
      opt.frames = std::atoi(value);
    } else if (arg == "--once") {
      opt.once = true;
    } else if (arg == "--reconnect-s" && (value = next())) {
      opt.reconnect_s = std::atof(value);
    } else if (arg == "--topk" && (value = next())) {
      opt.topk = std::atoi(value);
    } else {
      usage();
      return false;
    }
  }
  return opt.port > 0;
}

/// Render `points` as a fixed-width unicode sparkline (newest right).
std::string sparkline(const std::vector<double>& points, std::size_t width) {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  const std::size_t n = points.size();
  const std::size_t take = n < width ? n : width;
  double lo = 0.0, hi = 0.0;
  for (std::size_t i = n - take; i < n; ++i) {
    if (i == n - take || points[i] < lo) {
      lo = points[i];
    }
    if (i == n - take || points[i] > hi) {
      hi = points[i];
    }
  }
  std::string out;
  for (std::size_t i = 0; i < width - take; ++i) {
    out += " ";
  }
  for (std::size_t i = n - take; i < n; ++i) {
    const double span = hi - lo;
    const int level =
        span <= 0.0 ? 4
                    : static_cast<int>((points[i] - lo) / span * 8.0 + 0.5);
    out += kLevels[level < 0 ? 0 : (level > 8 ? 8 : level)];
  }
  return out;
}

std::string fixed(double v, int precision = 1) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string pad(std::string s, std::size_t width) {
  while (s.size() < width) {
    s += " ";
  }
  return s;
}

struct Series {
  std::string name;
  std::string labels;
  double latest = 0.0;
  double rate = 0.0;
  std::vector<double> values;
};

/// One fetched-and-parsed frame of server state.
struct Frame {
  std::vector<Series> series;
  json::Value alerts;
  bool has_alerts = false;
  json::Value health;
  bool has_health = false;
  json::Value cluster;
  bool has_cluster = false;
  std::string meta_app;
  std::string meta_scheme;
  double now_s = 0.0;
  std::uint64_t samples = 0;
};

std::optional<Frame> fetch(const Options& opt) {
  const auto ts = http_get(opt.host, static_cast<std::uint16_t>(opt.port),
                           "/timeseries.json");
  const auto alerts = http_get(opt.host, static_cast<std::uint16_t>(opt.port),
                               "/alerts.json");
  const auto health = http_get(opt.host, static_cast<std::uint16_t>(opt.port),
                               "/healthz");
  const auto cluster =
      http_get(opt.host, static_cast<std::uint16_t>(opt.port),
               "/cluster.json?topk=" + std::to_string(opt.topk));
  if (!ts || ts->status != 200) {
    return std::nullopt;
  }
  Frame frame;
  try {
    const json::Value doc = json::parse(ts->body);
    if (const json::Value* meta = doc.find("meta")) {
      frame.meta_app = meta->string_or("app", "");
      frame.meta_scheme = meta->string_or("scheme", "");
    }
    frame.samples = static_cast<std::uint64_t>(doc.number_or("samples", 0.0));
    if (const json::Value* series = doc.find("series")) {
      for (const json::Value& s : series->array) {
        Series out;
        out.name = s.string_or("name", "");
        out.labels = s.string_or("labels", "");
        if (const json::Value* points = s.find("points")) {
          for (const json::Value& p : points->array) {
            out.values.push_back(p.number_or("v", 0.0));
            out.latest = p.number_or("v", 0.0);
            out.rate = p.number_or("rate", 0.0);
            frame.now_s = p.number_or("t", frame.now_s);
          }
        }
        frame.series.push_back(std::move(out));
      }
    }
    // The sidecar endpoints are optional: power_policy serves alerts
    // and health, cluster_sim serves cluster and health.  A pane simply
    // drops out when its endpoint answers 404.
    if (alerts && alerts->status == 200) {
      frame.alerts = json::parse(alerts->body);
      frame.has_alerts = true;
    }
    if (health && health->status == 200) {
      frame.health = json::parse(health->body);
      frame.has_health = true;
    }
    if (cluster && cluster->status == 200) {
      frame.cluster = json::parse(cluster->body);
      frame.has_cluster = true;
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return frame;
}

void render(const Frame& frame, bool ansi) {
  std::ostringstream out;
  if (ansi) {
    out << "\x1b[H\x1b[J";  // home + clear to end of screen
  }
  out << "procap_top — " << (frame.meta_app.empty() ? "?" : frame.meta_app)
      << " under '" << (frame.meta_scheme.empty() ? "?" : frame.meta_scheme)
      << "'  t=" << fixed(frame.now_s, 0) << "s  samples=" << frame.samples
      << "\n\n";

  constexpr std::size_t kSpark = 40;
  const struct {
    const char* metric;
    const char* label;
    const char* unit;
  } kRows[] = {
      {"daemon.cap_watts", "cap", "W"},
      {"daemon.power_watts", "power", "W"},
      {"progress.rate", "progress", "/s"},
      {"progress.health.grade", "health grade", ""},
      // Controller internals (DESIGN.md §15); rows drop out when the
      // active controller does not publish them.
      {"controller.setpoint", "ctl setpoint", ""},
      {"controller.error", "ctl error", ""},
      {"controller.output_watts", "ctl output", "W"},
      {"controller.saturations", "ctl saturated", ""},
      {"daemon.ticks", "daemon ticks", ""},
      {"sim.ticks", "sim ticks", ""},
  };
  out << pad("metric", 16) << pad("value", 12) << pad("rate/s", 12)
      << "history\n";
  for (const auto& row : kRows) {
    for (const Series& s : frame.series) {
      if (s.name != row.metric) {
        continue;
      }
      out << pad(row.label, 16) << pad(fixed(s.latest) + row.unit, 12)
          << pad(fixed(s.rate), 12) << sparkline(s.values, kSpark) << "\n";
    }
  }

  if (frame.has_cluster) {
    const json::Value& c = frame.cluster;
    double granted = 0.0, power = 0.0;
    if (const json::Value* roll = c.find("granted")) {
      granted = roll->number_or("sum", 0.0);
    }
    if (const json::Value* roll = c.find("power")) {
      power = roll->number_or("sum", 0.0);
    }
    out << "\ncluster: epoch " << fixed(c.number_or("epoch", 0.0), 0)
        << "  granted " << fixed(granted, 0) << "/"
        << fixed(c.number_or("budget", 0.0), 0) << " W  power "
        << fixed(power, 0) << " W  alive "
        << fixed(c.number_or("alive", 0.0), 0) << "  suspect "
        << fixed(c.number_or("suspect", 0.0), 0) << "  dead "
        << fixed(c.number_or("dead", 0.0), 0) << "  jobs "
        << fixed(c.number_or("running_jobs", 0.0), 0)
        << (c.find("held") != nullptr && c.find("held")->boolean ? "  HELD"
                                                                 : "")
        << "\n";
    // Cap-to-effect headline from the flow tracer (absent on servers
    // without tracing; the line simply drops out).
    if (const json::Value* trace = c.find("trace")) {
      const double p50 = trace->number_or("p50_ms", -1.0);
      const double p99 = trace->number_or("p99_ms", -1.0);
      out << "cap→effect: " << fixed(trace->number_or("closed", 0.0), 0)
          << " flows  p50 " << (p50 < 0.0 ? "-" : fixed(p50, 0) + "ms")
          << "  p99 " << (p99 < 0.0 ? "-" : fixed(p99, 0) + "ms")
          << "  open " << fixed(trace->number_or("open", 0.0), 0)
          << "  orphaned " << fixed(trace->number_or("orphaned", 0.0), 0)
          << "\n";
    }
    out << pad("node", 8) << pad("state", 10) << pad("cap W", 10)
        << pad("power W", 10) << pad("deficit W", 12) << pad("rate/s", 10)
        << "c2e ms\n";
    if (const json::Value* nodes = c.find("nodes")) {
      for (const json::Value& n : nodes->array) {
        const std::string state = n.string_or("liveness", "?");
        const char* color = state == "dead"      ? "\x1b[31m"
                            : state == "suspect" ? "\x1b[33m"
                                                 : "\x1b[32m";
        const double c2e = n.number_or("c2e_ms", -1.0);
        out << pad(fixed(n.number_or("id", 0.0), 0), 8)
            << (ansi ? color : "") << pad(state, 10)
            << (ansi ? "\x1b[0m" : "")
            << pad(fixed(n.number_or("cap", 0.0), 0), 10)
            << pad(fixed(n.number_or("power", 0.0), 0), 10)
            << pad(fixed(n.number_or("deficit", 0.0), 1), 12)
            << pad(fixed(n.number_or("rate", 0.0), 2), 10)
            << (c2e < 0.0 ? "-" : fixed(c2e, 0)) << "\n";
      }
    }
  }

  if (frame.has_health) {
    out << "\nsignal: " << frame.health.string_or("grade", "?")
        << "  samples=" << fixed(frame.health.number_or("samples", 0.0), 0)
        << "  missing=" << fixed(frame.health.number_or("missing", 0.0), 0)
        << "  staleness="
        << fixed(frame.health.number_or("staleness_s", 0.0), 2) << "s\n";
  }

  if (frame.has_alerts) {
    out << "\nalerts (" << fixed(frame.alerts.number_or("rules", 0.0), 0)
        << " rules, " << fixed(frame.alerts.number_or("transitions", 0.0), 0)
        << " transitions)\n";
    out << pad("rule", 20) << pad("state", 10) << pad("value", 12)
        << "labels\n";
    if (const json::Value* alerts = frame.alerts.find("alerts")) {
      for (const json::Value& a : alerts->array) {
        const std::string state = a.string_or("state", "?");
        const char* color = state == "firing"    ? "\x1b[31m"
                            : state == "pending" ? "\x1b[33m"
                                                 : "\x1b[32m";
        out << pad(a.string_or("rule", "?"), 20) << (ansi ? color : "")
            << pad(state, 10) << (ansi ? "\x1b[0m" : "")
            << pad(fixed(a.number_or("value", 0.0)), 12)
            << a.string_or("labels", "") << "\n";
      }
    }
  }
  std::cout << out.str() << std::flush;
}

/// Retry fetch() with decorrelated-jitter backoff (the msgbus
/// subscriber's reconnect discipline) for up to reconnect_s seconds.
std::optional<Frame> refetch_with_backoff(const Options& opt) {
  using procap::Nanos;
  procap::msgbus::UdsSubscriberOptions backoff;
  procap::Rng rng(0x9e3779b97f4a7c15ull ^
                  static_cast<std::uint64_t>(opt.port));
  Nanos sleep_ns = backoff.backoff_initial;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(opt.reconnect_s));
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
    if (auto frame = fetch(opt)) {
      return frame;
    }
    sleep_ns = procap::msgbus::decorrelated_backoff(sleep_ns, rng, backoff);
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    return 2;
  }
  int rendered = 0;
  for (;;) {
    auto frame = fetch(opt);
    if (!frame) {
      if (rendered == 0) {
        std::cerr << "procap_top: no server at " << opt.host << ":"
                  << opt.port << "\n";
        return 1;
      }
      // Server dropped mid-watch: a restart looks exactly like this.
      // Back off and retry before declaring the run over.
      std::cout << "\nprocap_top: server dropped, reconnecting (up to "
                << opt.reconnect_s << "s)...\n";
      frame = refetch_with_backoff(opt);
      if (!frame) {
        std::cout << "procap_top: server went away after " << rendered
                  << " frames\n";
        return 0;
      }
      std::cout << "procap_top: reconnected\n";
    }
    render(*frame, !opt.once);
    ++rendered;
    if (opt.once || (opt.frames > 0 && rendered >= opt.frames)) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
  }
}
