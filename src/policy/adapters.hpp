// adapters.hpp — legacy policy surfaces as policy::Controller.
//
// Three thin adapters keep the pre-redesign behavior available — and
// provably unchanged — under the unified Controller API:
//
//   * ScheduleController      — replays an open-loop CapSchedule shape.
//   * BudgetController        — the NRM's kBudget mode (hard budget,
//                               clamped into the granted bounds).
//   * ProgressTargetController— the NRM's kProgressTarget deadband
//                               feedback loop, arithmetic untouched.
//
// tests/controller_golden_test.cpp holds cap sequences generated from
// the legacy code paths; these adapters must reproduce them bit for
// bit.  Change the arithmetic here only together with a deliberate
// golden re-baseline.
#pragma once

#include <memory>
#include <optional>

#include "policy/controller.hpp"
#include "policy/schedule_shapes.hpp"

namespace procap::policy {

/// Replays a CapSchedule: cap_at(elapsed), bounds ignored (the shape is
/// the contract — exactly what the legacy daemon programmed).
class ScheduleController final : public Controller {
 public:
  explicit ScheduleController(std::unique_ptr<CapSchedule> schedule);

  [[nodiscard]] const char* name() const override {
    return schedule_->name();
  }
  [[nodiscard]] std::optional<Watts> decide(const Observation& observation,
                                            const CapBounds& bounds) override;
  [[nodiscard]] ControllerStatus status() const override;

  [[nodiscard]] const CapSchedule& schedule() const { return *schedule_; }

 private:
  std::unique_ptr<CapSchedule> schedule_;
  std::optional<Watts> last_output_;
};

/// The NRM's kBudget mode: always the budget, clamped into bounds.
class BudgetController final : public Controller {
 public:
  explicit BudgetController(Watts budget);

  [[nodiscard]] const char* name() const override { return "budget"; }
  [[nodiscard]] std::optional<Watts> decide(const Observation& observation,
                                            const CapBounds& bounds) override;
  [[nodiscard]] ControllerStatus status() const override;

 private:
  Watts budget_;
  std::optional<Watts> last_output_;
  std::uint64_t saturations_ = 0;
};

/// Tuning for ProgressTargetController (defaults match NrmConfig).
struct ProgressTargetConfig {
  double setpoint = 0.0;   ///< target progress rate (units/s)
  double deadband = 0.05;  ///< relative band above setpoint that holds
  Watts raise_step = 4.0;  ///< added when below setpoint
  Watts lower_step = 2.0;  ///< removed when above the band
};

/// The NRM's kProgressTarget feedback loop: hold the setpoint with the
/// least power by stepping the cap up/down outside a deadband.  Holds
/// (returns the applied cap unchanged) until the first progress window
/// lands, and whenever the rate reads zero or the signal is unhealthy —
/// the legacy guards, verbatim.
class ProgressTargetController final : public Controller {
 public:
  explicit ProgressTargetController(ProgressTargetConfig config);

  [[nodiscard]] const char* name() const override { return "target"; }
  [[nodiscard]] std::optional<Watts> decide(const Observation& observation,
                                            const CapBounds& bounds) override;
  void degrade() override { degraded_ = true; }
  void reset() override { degraded_ = false; }
  [[nodiscard]] ControllerStatus status() const override;

 private:
  ProgressTargetConfig config_;
  std::optional<Watts> last_output_;
  double last_error_ = 0.0;
  std::uint64_t saturations_ = 0;
  bool degraded_ = false;
};

}  // namespace procap::policy
