// daemon.hpp — the power-policy daemon (paper Section V-B).
//
// The paper's `power-policy` tool "runs as a background daemon on the
// node.  It monitors power usage and applies the selected dynamic
// power-capping scheme on the package domain once every second."  This is
// that daemon: at each tick it samples package power through the RAPL
// interface, asks its policy::Controller for a decision, and programs
// (or clears) PL1.  It records the applied-cap and measured-power time
// series, which are the x-axes of the paper's Fig. 3.
//
// The decision core is any policy::Controller (policy/controller.hpp):
// open-loop CapSchedule shapes ride through ScheduleController, and
// closed-loop controllers (pi/fft/mpc/...) see progress telemetry via
// an optional ProgressFeed wired with set_progress_feed().
//
// The daemon is tick-driven; attach() wires it to the simulation engine
// at 1 Hz, and a real deployment would call tick() from a timer loop.
//
// RAPL access on a real node can fail transiently (msr-safe EIO, driver
// contention); the daemon retries with exponential backoff instead of
// crashing, and a missed-tick watchdog counts scheduling stalls so that
// a wedged timer loop is visible in the run record.
#pragma once

#include <memory>
#include <optional>

#include "msgbus/bus.hpp"
#include "obs/trace.hpp"
#include "policy/adapters.hpp"
#include "policy/controller.hpp"
#include "rapl/rapl.hpp"
#include "sim/engine.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace procap::policy {

/// Failure-handling knobs for the daemon.
struct DaemonConfig {
  /// First retry delay after a RAPL failure; doubles per consecutive
  /// failure up to backoff_max.
  Nanos backoff_initial = msec(100);
  Nanos backoff_max = 2 * kNanosPerSecond;
  /// A tick arriving later than watchdog_factor * interval after the
  /// previous one counts the missed intervals (attach() records the
  /// interval; free-running tick() callers get no watchdog).
  double watchdog_factor = 1.5;
  /// Actuation range granted to the controller.  Schedule adapters
  /// ignore it (the shape is the contract); closed-loop controllers
  /// clamp into it.
  CapBounds bounds{};
};

/// Optional telemetry feed for closed-loop controllers: the daemon
/// calls these (side-effect-free) getters when building each tick's
/// Observation.  Unset members read as "no signal".
struct ProgressFeed {
  std::function<double()> rate;            ///< last-window progress rate
  std::function<std::uint64_t()> windows;  ///< completed windows
  std::function<bool()> healthy;           ///< signal trustworthy?
};

/// Applies a policy::Controller through a RaplInterface once per
/// interval.
class PowerPolicyDaemon {
 public:
  /// `rapl` and `time_source` must outlive the daemon; the daemon owns
  /// the controller.  `pkg` selects the package domain to control.
  PowerPolicyDaemon(rapl::RaplInterface& rapl,
                    const TimeSource& time_source,
                    std::unique_ptr<Controller> controller, unsigned pkg = 0,
                    DaemonConfig config = {});

  /// Legacy convenience: wraps the schedule in a ScheduleController.
  PowerPolicyDaemon(rapl::RaplInterface& rapl,
                    const TimeSource& time_source,
                    std::unique_ptr<CapSchedule> schedule, unsigned pkg = 0,
                    DaemonConfig config = {});

  /// Replace the controller; the elapsed-time origin resets to now and
  /// the controller is reset().
  void set_controller(std::unique_ptr<Controller> controller);

  /// Legacy convenience: set_controller(ScheduleController(schedule)).
  void set_schedule(std::unique_ptr<CapSchedule> schedule);

  /// Wire progress telemetry for closed-loop controllers.  The getters
  /// are invoked on every tick; they must be cheap and side-effect
  /// free.
  void set_progress_feed(ProgressFeed feed) { feed_ = std::move(feed); }

  /// The active decision policy.
  [[nodiscard]] const Controller& controller() const { return *controller_; }

  /// One daemon cycle: measure power, evaluate schedule, actuate.
  void tick();

  /// Register with the engine to tick every `interval` (default 1 s, as
  /// in the paper).  Call at most once per engine.
  void attach(sim::Engine& engine, Nanos interval = kNanosPerSecond);

  /// Tell the watchdog the expected tick cadence without attach() — for
  /// deployments driving tick() from their own timer loop.
  void set_tick_interval(Nanos interval) { interval_ = interval; }

  /// Attach a span collector; cap changes, actuations and tick spans are
  /// recorded there.  Pass nullptr to detach; `trace` must outlive the
  /// daemon while attached.
  void set_trace(obs::TraceCollector* trace) { trace_ = trace; }

  /// Listen for alert-engine transitions (msgbus::alert_topic) on `sub`;
  /// the daemon subscribes and drains it each tick.  A firing
  /// power_overshoot alert forces the current cap to be reprogrammed even
  /// though the schedule did not change — the actuator may have silently
  /// lost it (e.g. a BIOS/firmware reset of PL1).
  void watch_alerts(std::shared_ptr<msgbus::SubSocket> sub);

  /// Caps reprogrammed because an alert demanded it.
  [[nodiscard]] std::uint64_t alert_reactuations() const {
    return alert_reactuations_;
  }

  /// Cap currently applied (nullopt while uncapped).
  [[nodiscard]] std::optional<Watts> current_cap() const { return applied_; }

  /// Applied cap over time (uncapped ticks recorded as 0, a conventional
  /// sentinel that keeps the series plottable).
  [[nodiscard]] const TimeSeries& cap_series() const { return caps_; }

  /// Measured package power over time.
  [[nodiscard]] const TimeSeries& power_series() const { return power_; }

  /// Ticks executed.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// RAPL failures survived: power/energy reads that threw, cap writes
  /// that threw.
  [[nodiscard]] std::uint64_t read_failures() const { return read_failures_; }
  [[nodiscard]] std::uint64_t write_failures() const {
    return write_failures_;
  }

  /// Ticks skipped because a backoff window was still open.
  [[nodiscard]] std::uint64_t backoff_skips() const { return backoff_skips_; }

  /// Clean ticks that ended a failure streak.
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

  /// Consecutive failures in the current streak (0 when healthy).
  [[nodiscard]] std::uint64_t consecutive_failures() const {
    return consecutive_failures_;
  }

  /// True while a failure backoff window is open.
  [[nodiscard]] bool backing_off() const {
    return retry_at_ > 0 && time_->now() < retry_at_;
  }

  /// Intervals the timer loop failed to deliver (watchdog; requires
  /// attach()).
  [[nodiscard]] std::uint64_t missed_ticks() const { return missed_ticks_; }

 private:
  void note_failure(Nanos now);
  void drain_alerts();

  rapl::RaplInterface* rapl_;
  const TimeSource* time_;
  std::unique_ptr<Controller> controller_;
  ProgressFeed feed_;
  unsigned pkg_;
  DaemonConfig config_;
  Nanos start_;
  std::optional<Watts> applied_;
  TimeSeries caps_;
  TimeSeries power_;
  std::uint64_t ticks_ = 0;
  // Failure handling.
  std::uint64_t read_failures_ = 0;
  std::uint64_t write_failures_ = 0;
  std::uint64_t backoff_skips_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t consecutive_failures_ = 0;
  Nanos retry_at_ = 0;  // 0 = no backoff pending
  // Watchdog.
  Nanos interval_ = 0;  // 0 until attach()
  Nanos last_tick_ = -1;
  std::uint64_t missed_ticks_ = 0;
  obs::TraceCollector* trace_ = nullptr;
  // Alert feedback.
  std::shared_ptr<msgbus::SubSocket> alerts_;
  bool reapply_cap_ = false;
  std::uint64_t alert_reactuations_ = 0;
  // controller.* gauge bookkeeping (saturations is cumulative in the
  // controller's status; the obs counter wants increments).
  std::uint64_t exported_saturations_ = 0;
};

}  // namespace procap::policy
