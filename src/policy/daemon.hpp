// daemon.hpp — the power-policy daemon (paper Section V-B).
//
// The paper's `power-policy` tool "runs as a background daemon on the
// node.  It monitors power usage and applies the selected dynamic
// power-capping scheme on the package domain once every second."  This is
// that daemon: at each tick it samples package power through the RAPL
// interface, evaluates the schedule, and programs (or clears) PL1.  It
// records the applied-cap and measured-power time series, which are the
// x-axes of the paper's Fig. 3.
//
// The daemon is tick-driven; attach() wires it to the simulation engine
// at 1 Hz, and a real deployment would call tick() from a timer loop.
#pragma once

#include <memory>
#include <optional>

#include "policy/schemes.hpp"
#include "rapl/rapl.hpp"
#include "sim/engine.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace procap::policy {

/// Applies a CapSchedule through a RaplInterface once per interval.
class PowerPolicyDaemon {
 public:
  /// `rapl` and `time_source` must outlive the daemon; the daemon owns
  /// the schedule.  `pkg` selects the package domain to control.
  PowerPolicyDaemon(rapl::RaplInterface& rapl,
                    const TimeSource& time_source,
                    std::unique_ptr<CapSchedule> schedule, unsigned pkg = 0);

  /// Replace the schedule; the elapsed-time origin resets to now.
  void set_schedule(std::unique_ptr<CapSchedule> schedule);

  /// One daemon cycle: measure power, evaluate schedule, actuate.
  void tick();

  /// Register with the engine to tick every `interval` (default 1 s, as
  /// in the paper).  Call at most once per engine.
  void attach(sim::Engine& engine, Nanos interval = kNanosPerSecond);

  /// Cap currently applied (nullopt while uncapped).
  [[nodiscard]] std::optional<Watts> current_cap() const { return applied_; }

  /// Applied cap over time (uncapped ticks recorded as 0, a conventional
  /// sentinel that keeps the series plottable).
  [[nodiscard]] const TimeSeries& cap_series() const { return caps_; }

  /// Measured package power over time.
  [[nodiscard]] const TimeSeries& power_series() const { return power_; }

  /// Ticks executed.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  rapl::RaplInterface* rapl_;
  const TimeSource* time_;
  std::unique_ptr<CapSchedule> schedule_;
  unsigned pkg_;
  Nanos start_;
  std::optional<Watts> applied_;
  TimeSeries caps_;
  TimeSeries power_;
  std::uint64_t ticks_ = 0;
};

}  // namespace procap::policy
