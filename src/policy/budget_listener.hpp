// budget_listener.hpp — power-budget directives over the message bus.
//
// In the paper's hierarchy the NRM "is ultimately responsible for the
// enforcement of a power budget received from higher levels" (Section II).
// procap's SystemPowerManager/JobPowerManager call into managers directly
// when everything lives in one process; across processes the natural
// carrier is the same pub/sub bus the progress samples ride.  A job-level
// agent publishes on "power/budget/<node>":
//
//   "cap 95.5"     enforce a 95.5 W package budget
//   "uncapped"     release the budget
//
// and the node-local BudgetListener applies each directive to its
// NodeResourceManager.  Malformed directives are counted, never applied.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "msgbus/bus.hpp"
#include "policy/nrm.hpp"

namespace procap::policy {

/// Topic a node's budget directives arrive on.
[[nodiscard]] std::string budget_topic(const std::string& node_name);

/// Encode a directive payload (nullopt = uncapped).
[[nodiscard]] std::string encode_budget(std::optional<Watts> budget);

/// Decode a directive payload.  Outer nullopt = malformed; inner
/// nullopt = "uncapped".
[[nodiscard]] std::optional<std::optional<Watts>> decode_budget(
    const std::string& payload);

/// Applies bus-carried budget directives to a NodeResourceManager.
class BudgetListener {
 public:
  /// Subscribes `sub` to this node's budget topic.  `nrm` must outlive
  /// the listener.
  BudgetListener(std::shared_ptr<msgbus::SubSocket> sub,
                 const std::string& node_name, NodeResourceManager& nrm);

  /// Drain pending directives, applying each in arrival order.
  void poll();

  /// Directives applied / rejected as malformed.
  [[nodiscard]] std::uint64_t applied() const { return applied_; }
  [[nodiscard]] std::uint64_t malformed() const { return malformed_; }

  /// The most recently applied directive (nullopt-of-optional if none
  /// arrived yet).
  [[nodiscard]] std::optional<std::optional<Watts>> last() const {
    return last_;
  }

 private:
  std::shared_ptr<msgbus::SubSocket> sub_;
  NodeResourceManager* nrm_;
  std::uint64_t applied_ = 0;
  std::uint64_t malformed_ = 0;
  std::optional<std::optional<Watts>> last_;
};

}  // namespace procap::policy
