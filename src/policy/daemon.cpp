#include "policy/daemon.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace procap::policy {

PowerPolicyDaemon::PowerPolicyDaemon(rapl::RaplInterface& rapl,
                                     const TimeSource& time_source,
                                     std::unique_ptr<CapSchedule> schedule,
                                     unsigned pkg)
    : rapl_(&rapl),
      time_(&time_source),
      schedule_(std::move(schedule)),
      pkg_(pkg),
      start_(time_source.now()),
      caps_("cap_watts"),
      power_("power_watts") {
  if (!schedule_) {
    throw std::invalid_argument("PowerPolicyDaemon: null schedule");
  }
}

void PowerPolicyDaemon::set_schedule(std::unique_ptr<CapSchedule> schedule) {
  if (!schedule) {
    throw std::invalid_argument("PowerPolicyDaemon: null schedule");
  }
  schedule_ = std::move(schedule);
  start_ = time_->now();
}

void PowerPolicyDaemon::tick() {
  const Nanos now = time_->now();
  const Watts measured = rapl_->pkg_power(pkg_);
  power_.add(now, measured);

  const Seconds elapsed = to_seconds(now - start_);
  const std::optional<Watts> want = schedule_->cap_at(elapsed);
  if (want != applied_) {
    if (want) {
      // 40 ms averaging window: long enough to ride out application-level
      // compute/memory alternation, short next to the 1 Hz policy cadence.
      rapl_->set_pkg_cap(*want, /*window=*/0.04, pkg_);
      PROCAP_DEBUG << "power-policy: cap " << *want << " W ("
                   << schedule_->name() << ")";
    } else {
      rapl_->clear_pkg_cap(pkg_);
      PROCAP_DEBUG << "power-policy: uncapped (" << schedule_->name() << ")";
    }
    applied_ = want;
  }
  caps_.add(now, applied_.value_or(0.0));
  ++ticks_;
}

void PowerPolicyDaemon::attach(sim::Engine& engine, Nanos interval) {
  engine.every(interval, [this](Nanos) { tick(); });
}

}  // namespace procap::policy
