#include "policy/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "msr/device.hpp"
#include "obs/alert.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace procap::policy {

PowerPolicyDaemon::PowerPolicyDaemon(rapl::RaplInterface& rapl,
                                     const TimeSource& time_source,
                                     std::unique_ptr<Controller> controller,
                                     unsigned pkg, DaemonConfig config)
    : rapl_(&rapl),
      time_(&time_source),
      controller_(std::move(controller)),
      pkg_(pkg),
      config_(config),
      start_(time_source.now()),
      caps_("cap_watts"),
      power_("power_watts") {
  if (!controller_) {
    throw std::invalid_argument("PowerPolicyDaemon: null controller");
  }
  if (config_.backoff_initial <= 0 ||
      config_.backoff_max < config_.backoff_initial) {
    throw std::invalid_argument("PowerPolicyDaemon: bad backoff config");
  }
}

PowerPolicyDaemon::PowerPolicyDaemon(rapl::RaplInterface& rapl,
                                     const TimeSource& time_source,
                                     std::unique_ptr<CapSchedule> schedule,
                                     unsigned pkg, DaemonConfig config)
    : PowerPolicyDaemon(
          rapl, time_source,
          std::make_unique<ScheduleController>(std::move(schedule)), pkg,
          config) {}

void PowerPolicyDaemon::set_controller(std::unique_ptr<Controller> controller) {
  if (!controller) {
    throw std::invalid_argument("PowerPolicyDaemon: null controller");
  }
  controller_ = std::move(controller);
  controller_->reset();
  start_ = time_->now();
}

void PowerPolicyDaemon::set_schedule(std::unique_ptr<CapSchedule> schedule) {
  set_controller(std::make_unique<ScheduleController>(std::move(schedule)));
}

void PowerPolicyDaemon::note_failure(Nanos now) {
  ++consecutive_failures_;
  Nanos backoff = config_.backoff_initial;
  for (std::uint64_t i = 1; i < consecutive_failures_ && backoff < config_.backoff_max;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.backoff_max);
  retry_at_ = now + backoff;
  PROCAP_DEBUG << "power-policy: RAPL failure #" << consecutive_failures_
               << ", backing off " << to_seconds(backoff) << " s";
}

void PowerPolicyDaemon::watch_alerts(std::shared_ptr<msgbus::SubSocket> sub) {
  if (sub) {
    sub->subscribe(msgbus::alert_topic());
  }
  alerts_ = std::move(sub);
}

void PowerPolicyDaemon::drain_alerts() {
  if (!alerts_) {
    return;
  }
  while (const auto msg = alerts_->try_recv()) {
    const auto transition = obs::parse_alert_payload(msg->payload);
    if (!transition) {
      continue;  // corrupted link; ignore junk
    }
    if (transition->rule == "power_overshoot" && transition->fired() &&
        applied_) {
      // Measured power exceeded the programmed cap for the rule's hold:
      // assume the actuator lost the setting and program it again.
      reapply_cap_ = true;
      PROCAP_INFO << "power-policy: power_overshoot alert firing, will "
                     "reprogram cap";
    }
  }
}

void PowerPolicyDaemon::tick() {
  PROCAP_OBS_COUNTER(ticks_total, "daemon.ticks");
  PROCAP_OBS_COUNTER(read_failures_total, "daemon.read_failures");
  PROCAP_OBS_COUNTER(write_failures_total, "daemon.write_failures");
  PROCAP_OBS_COUNTER(backoff_skips_total, "daemon.backoff_skips");
  PROCAP_OBS_COUNTER(cap_changes_total, "daemon.cap_changes");
  PROCAP_OBS_HISTOGRAM(tick_wall, "daemon.tick_wall_ns",
                       ::procap::obs::latency_buckets_ns());
  // Live-control gauges: the alert engine's power_overshoot rule and the
  // procap_top dashboard read these from the time-series store.
  PROCAP_OBS_GAUGE(cap_gauge, "daemon.cap_watts");
  PROCAP_OBS_GAUGE(power_gauge, "daemon.power_watts");
  PROCAP_OBS_GAUGE(over_gauge, "daemon.power_over_cap_watts");
  // Wall-clock (not sim-time) cost of this control cycle; recorded in the
  // histogram and on the trace span so the run artifact carries the
  // daemon's own latency distribution.
  const auto wall_start = std::chrono::steady_clock::now();
  ticks_total.inc();
  drain_alerts();
  const Nanos now = time_->now();
  // Watchdog: count intervals the timer loop failed to deliver.
  if (interval_ > 0 && last_tick_ >= 0) {
    const Nanos gap = now - last_tick_;
    if (static_cast<double>(gap) >
        config_.watchdog_factor * static_cast<double>(interval_)) {
      missed_ticks_ += static_cast<std::uint64_t>(gap / interval_) - 1;
    }
  }
  last_tick_ = now;
  ++ticks_;

  // Honour an open backoff window: no RAPL traffic, but keep the cap
  // series continuous so plots do not show holes.
  if (retry_at_ > 0 && now < retry_at_) {
    ++backoff_skips_;
    backoff_skips_total.inc();
    caps_.add(now, applied_.value_or(0.0));
    const double wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    tick_wall.observe(wall_ns);
    if (trace_ != nullptr) {
      trace_->daemon_tick(now, wall_ns);
    }
    return;
  }

  bool failed = false;
  Watts measured = 0.0;
  try {
    measured = rapl_->pkg_power(pkg_);
    power_.add(now, measured);
    power_gauge.set(measured);
    over_gauge.set(applied_ ? std::max(0.0, measured - *applied_) : 0.0);
  } catch (const msr::MsrError& e) {
    ++read_failures_;
    read_failures_total.inc();
    failed = true;
    PROCAP_DEBUG << "power-policy: power read failed: " << e.what();
  }

  // One decision per tick, even when this tick's actuation will be
  // skipped by a read failure: stateful controllers see every interval.
  Observation obs;
  obs.t = now;
  obs.elapsed = to_seconds(now - start_);
  obs.power = measured;
  obs.power_valid = !failed;
  obs.applied_cap = applied_;
  if (feed_.rate) {
    obs.progress_rate = feed_.rate();
  }
  if (feed_.windows) {
    obs.windows = feed_.windows();
  }
  obs.signal_healthy = feed_.healthy ? feed_.healthy() : true;
  const std::optional<Watts> want = controller_->decide(obs, config_.bounds);
  // A firing power_overshoot alert forces reprogramming of an unchanged
  // cap (the actuator may have lost it).
  const bool forced = reapply_cap_ && want.has_value() && want == applied_;
  if (!failed && (want != applied_ || forced)) {
    if (want != applied_) {
      cap_changes_total.inc();
    }
    if (trace_ != nullptr) {
      trace_->cap_change(now,
                         applied_ ? std::optional<double>(*applied_)
                                  : std::nullopt,
                         want ? std::optional<double>(*want) : std::nullopt,
                         controller_->name());
    }
    try {
      if (want) {
        // 40 ms averaging window: long enough to ride out application-level
        // compute/memory alternation, short next to the 1 Hz policy cadence.
        rapl_->set_pkg_cap(*want, /*window=*/0.04, pkg_);
        PROCAP_DEBUG << "power-policy: cap " << *want << " W ("
                     << controller_->name() << ")";
      } else {
        rapl_->clear_pkg_cap(pkg_);
        PROCAP_DEBUG << "power-policy: uncapped (" << controller_->name() << ")";
      }
      applied_ = want;
      if (forced) {
        ++alert_reactuations_;
        PROCAP_OBS_COUNTER(reactuations_total, "daemon.alert_reactuations");
        reactuations_total.inc();
      }
      reapply_cap_ = false;
      if (trace_ != nullptr) {
        trace_->actuation(time_->now(), want ? "set_cap" : "clear_cap",
                          want.value_or(0.0), /*ok=*/true);
      }
    } catch (const msr::MsrError& e) {
      ++write_failures_;
      write_failures_total.inc();
      failed = true;
      PROCAP_DEBUG << "power-policy: cap write failed: " << e.what();
      if (trace_ != nullptr) {
        trace_->actuation(time_->now(), want ? "set_cap" : "clear_cap",
                          want.value_or(0.0), /*ok=*/false);
      }
    }
  }
  caps_.add(now, applied_.value_or(0.0));
  cap_gauge.set(applied_.value_or(0.0));

  // Live controller internals (ISSUE: per-controller obs gauges) — the
  // timeseries sampler and procap_top pick these up by name.
  {
    PROCAP_OBS_GAUGE(ctl_setpoint, "controller.setpoint");
    PROCAP_OBS_GAUGE(ctl_error, "controller.error");
    PROCAP_OBS_GAUGE(ctl_output, "controller.output_watts");
    PROCAP_OBS_COUNTER(ctl_saturations, "controller.saturations");
    const ControllerStatus st = controller_->status();
    ctl_setpoint.set(st.setpoint);
    ctl_error.set(st.error);
    ctl_output.set(st.output.value_or(0.0));
    if (st.saturations > exported_saturations_) {
      ctl_saturations.inc(st.saturations - exported_saturations_);
    }
    exported_saturations_ = st.saturations;
  }

  if (failed) {
    note_failure(now);
  } else if (consecutive_failures_ > 0) {
    ++recoveries_;
    consecutive_failures_ = 0;
    retry_at_ = 0;
    PROCAP_DEBUG << "power-policy: RAPL recovered";
  }

  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  tick_wall.observe(wall_ns);
  if (trace_ != nullptr) {
    trace_->daemon_tick(now, wall_ns);
  }
}

void PowerPolicyDaemon::attach(sim::Engine& engine, Nanos interval) {
  interval_ = interval;
  engine.every(interval, [this](Nanos) { tick(); });
}

}  // namespace procap::policy
