// nrm.hpp — node resource manager with progress-aware policies.
//
// The paper motivates progress monitoring with two NRM scenarios
// (Section II): responding to a shrinking power budget with the least
// performance impact, and enforcing a hard immediate cap when a
// high-priority job preempts the budget.  The paper's conclusion proposes
// using the model to "decide on the exact power budget to be employed
// given an expectation of online performance".  This class implements
// those policies on top of the pieces the paper establishes:
//
//   * kBudget mode — enforce the budget received from the upper layer of
//     the hierarchy (job/system level), immediately.
//   * kProgressTarget mode — hold a target progress rate with the least
//     power: the model picks the initial cap (Eq. 7 inverted), then a
//     measured-progress feedback loop trims it, absorbing model error.
//     Since the Controller redesign this mode is the NRM's generic
//     closed-loop slot: set_progress_target() installs the legacy
//     deadband loop (ProgressTargetController, bit-identical to the
//     pre-redesign arithmetic), and set_controller() installs any
//     registry controller (pi/fft/mpc/...) in its place; the NRM keeps
//     owning health fallback, node-budget clamping and actuation.
//   * kDegraded mode — entered automatically when the progress signal
//     stops being trustworthy (Monitor health degraded/lost).  Closing
//     the loop on a stale or lossy feed would chase phantom zero-progress
//     readings (the paper's Section V-C failure writ large), so the NRM
//     falls back to open-loop power-only control: it freezes the cap at
//     min(current cap, node budget) — or applies the node budget outright
//     if it was running uncapped — and holds until the signal has been
//     healthy for `reengage_after` consecutive ticks (hysteresis, so a
//     flapping link does not flap the controller).
//
// Whatever the mode, apply() clamps every programmed cap to the node
// budget: the NRM never programs a cap above it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/progress_model.hpp"
#include "msgbus/bus.hpp"
#include "obs/trace.hpp"
#include "policy/adapters.hpp"
#include "policy/controller.hpp"
#include "policy/latch.hpp"
#include "progress/monitor.hpp"
#include "rapl/rapl.hpp"
#include "sim/engine.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace procap::policy {

/// Tuning for the progress-target feedback loop.
struct NrmConfig {
  /// Relative deadband around the target within which the cap holds.
  double deadband = 0.05;
  /// Watts added when progress is below target.
  Watts raise_step = 4.0;
  /// Watts removed when progress is above target + deadband.
  Watts lower_step = 2.0;
  /// Cap bounds.
  Watts min_cap = 20.0;
  Watts max_cap = 300.0;
  /// Consecutive healthy ticks required to leave degraded mode.
  unsigned reengage_after = 3;
};

/// Node resource manager: one package, one application's progress feed.
class NodeResourceManager {
 public:
  enum class Mode { kUncapped, kBudget, kProgressTarget, kDegraded };

  /// One recorded mode transition.
  struct ModeEvent {
    Nanos t = 0;
    Mode from = Mode::kUncapped;
    Mode to = Mode::kUncapped;
    std::string reason;

    friend bool operator==(const ModeEvent&, const ModeEvent&) = default;
  };

  /// All references must outlive the manager.
  NodeResourceManager(rapl::RaplInterface& rapl, progress::Monitor& monitor,
                      const TimeSource& time_source, NrmConfig config = {});

  /// Enforce a hard budget now (upper-layer directive); exits
  /// progress-target mode.
  void set_power_budget(Watts budget);

  /// Remove any budget and run uncapped; exits progress-target mode.
  void clear_power_budget();

  /// Hold `rate` (application units/s) with minimal power.  `params`
  /// seeds the initial cap via the model; pass std::nullopt to start from
  /// the current cap (pure feedback).
  void set_progress_target(double rate,
                           std::optional<model::ModelParams> params);

  /// Install an arbitrary closed-loop controller (pi/fft/mpc/... from
  /// the registry) as the decision core: the NRM keeps degraded-mode
  /// fallback, the node-budget clamp and actuation retries, and feeds
  /// the controller one Observation per tick within the NrmConfig cap
  /// bounds.  Throws std::invalid_argument on null.
  void set_controller(std::unique_ptr<Controller> controller);

  /// The active closed-loop decision core (null while kUncapped or
  /// before any set_power_budget/set_progress_target/set_controller).
  [[nodiscard]] const Controller* controller() const {
    return controller_.get();
  }

  /// Hard node-level ceiling: no cap programmed by this NRM will ever
  /// exceed it, and degraded mode falls back to it when running uncapped.
  void set_node_budget(Watts budget);

  /// One control cycle (call at 1 Hz; progress windows are 1 s).
  void tick();

  /// Register with the engine at `interval`.
  void attach(sim::Engine& engine, Nanos interval = kNanosPerSecond);

  /// Attach a span collector; mode transitions are recorded there.  Pass
  /// nullptr to detach; `trace` must outlive the manager while attached.
  void set_trace(obs::TraceCollector* trace) { trace_ = trace; }

  /// Listen for alert-engine transitions (msgbus::alert_topic) on `sub`;
  /// the manager subscribes and drains it each tick.  While any rule
  /// flagged degrades_control is firing, progress-target mode falls back
  /// to kDegraded exactly as for an unhealthy Monitor signal, and
  /// reengagement is blocked until the alert resolves — the alert engine
  /// may see trouble (e.g. a stalled sampler) the local health check
  /// cannot.
  void watch_alerts(std::shared_ptr<msgbus::SubSocket> sub);

  /// Rules flagged degrades_control currently firing, per the alert feed.
  [[nodiscard]] std::size_t degrading_alerts() const {
    return alert_watch_.firing_count();
  }

  /// Cap currently applied (nullopt = uncapped).
  [[nodiscard]] std::optional<Watts> current_cap() const { return cap_; }

  /// Applied cap over time (0 = uncapped, as in PowerPolicyDaemon).
  [[nodiscard]] const TimeSeries& cap_series() const { return caps_; }

  /// Measured progress rate over time, as the NRM saw it.
  [[nodiscard]] const TimeSeries& progress_series() const { return rates_; }

  /// Control mode right now.
  [[nodiscard]] Mode mode() const { return mode_; }

  /// Node budget ceiling, if one is set.
  [[nodiscard]] std::optional<Watts> node_budget() const {
    return node_budget_;
  }

  /// Mode over time, one sample per tick (value = static_cast<int>(Mode)),
  /// alongside the discrete transition record in mode_events().
  [[nodiscard]] const TimeSeries& mode_series() const { return modes_; }

  /// Every mode transition, in order, with the reason it happened.
  [[nodiscard]] const std::vector<ModeEvent>& mode_events() const {
    return events_;
  }

  /// Times the controller fell back to / recovered from degraded mode.
  [[nodiscard]] std::uint64_t degraded_entries() const {
    return degraded_entries_;
  }
  [[nodiscard]] std::uint64_t reengagements() const { return reengagements_; }

  /// Cap programmings that failed with a transient MSR error (each is
  /// retried on the next tick).
  [[nodiscard]] std::uint64_t failed_actuations() const {
    return failed_actuations_;
  }

 private:
  void apply(std::optional<Watts> cap);
  void transition(Mode to, std::string reason);
  void drain_alerts();
  [[nodiscard]] CapBounds bounds() const {
    return CapBounds{config_.min_cap, config_.max_cap};
  }

  rapl::RaplInterface* rapl_;
  progress::Monitor* monitor_;
  const TimeSource* time_;
  NrmConfig config_;

  Mode mode_ = Mode::kUncapped;
  std::optional<Watts> cap_;
  std::optional<Watts> node_budget_;
  double target_rate_ = 0.0;
  // The closed-loop decision core for kBudget/kProgressTarget (and any
  // custom controller installed by set_controller()).
  std::unique_ptr<Controller> controller_;
  Nanos origin_ = 0;  // engagement time; Observation::elapsed origin
  std::uint64_t exported_saturations_ = 0;
  ReengageLatch latch_;  // degraded-mode hysteresis
  std::uint64_t degraded_entries_ = 0;
  std::uint64_t reengagements_ = 0;
  std::uint64_t failed_actuations_ = 0;
  TimeSeries caps_;
  TimeSeries rates_;
  TimeSeries modes_;
  std::vector<ModeEvent> events_;
  obs::TraceCollector* trace_ = nullptr;
  // Alert feedback: firing degrades_control rules force kDegraded.
  DegradeAlertWatch alert_watch_{"nrm"};
};

[[nodiscard]] const char* to_string(NodeResourceManager::Mode mode);

}  // namespace procap::policy
