// nrm.hpp — node resource manager with progress-aware policies.
//
// The paper motivates progress monitoring with two NRM scenarios
// (Section II): responding to a shrinking power budget with the least
// performance impact, and enforcing a hard immediate cap when a
// high-priority job preempts the budget.  The paper's conclusion proposes
// using the model to "decide on the exact power budget to be employed
// given an expectation of online performance".  This class implements
// those policies on top of the pieces the paper establishes:
//
//   * kBudget mode — enforce the budget received from the upper layer of
//     the hierarchy (job/system level), immediately.
//   * kProgressTarget mode — hold a target progress rate with the least
//     power: the model picks the initial cap (Eq. 7 inverted), then a
//     measured-progress feedback loop trims it, absorbing model error.
#pragma once

#include <memory>
#include <optional>

#include "model/progress_model.hpp"
#include "progress/monitor.hpp"
#include "rapl/rapl.hpp"
#include "sim/engine.hpp"
#include "util/series.hpp"
#include "util/time.hpp"

namespace procap::policy {

/// Tuning for the progress-target feedback loop.
struct NrmConfig {
  /// Relative deadband around the target within which the cap holds.
  double deadband = 0.05;
  /// Watts added when progress is below target.
  Watts raise_step = 4.0;
  /// Watts removed when progress is above target + deadband.
  Watts lower_step = 2.0;
  /// Cap bounds.
  Watts min_cap = 20.0;
  Watts max_cap = 300.0;
};

/// Node resource manager: one package, one application's progress feed.
class NodeResourceManager {
 public:
  /// All references must outlive the manager.
  NodeResourceManager(rapl::RaplInterface& rapl, progress::Monitor& monitor,
                      const TimeSource& time_source, NrmConfig config = {});

  /// Enforce a hard budget now (upper-layer directive); exits
  /// progress-target mode.
  void set_power_budget(Watts budget);

  /// Remove any budget and run uncapped; exits progress-target mode.
  void clear_power_budget();

  /// Hold `rate` (application units/s) with minimal power.  `params`
  /// seeds the initial cap via the model; pass std::nullopt to start from
  /// the current cap (pure feedback).
  void set_progress_target(double rate,
                           std::optional<model::ModelParams> params);

  /// One control cycle (call at 1 Hz; progress windows are 1 s).
  void tick();

  /// Register with the engine at `interval`.
  void attach(sim::Engine& engine, Nanos interval = kNanosPerSecond);

  /// Cap currently applied (nullopt = uncapped).
  [[nodiscard]] std::optional<Watts> current_cap() const { return cap_; }

  /// Applied cap over time (0 = uncapped, as in PowerPolicyDaemon).
  [[nodiscard]] const TimeSeries& cap_series() const { return caps_; }

  /// Measured progress rate over time, as the NRM saw it.
  [[nodiscard]] const TimeSeries& progress_series() const { return rates_; }

 private:
  enum class Mode { kUncapped, kBudget, kProgressTarget };

  void apply(std::optional<Watts> cap);

  rapl::RaplInterface* rapl_;
  progress::Monitor* monitor_;
  const TimeSource* time_;
  NrmConfig config_;

  Mode mode_ = Mode::kUncapped;
  std::optional<Watts> cap_;
  double target_rate_ = 0.0;
  TimeSeries caps_;
  TimeSeries rates_;
};

}  // namespace procap::policy
