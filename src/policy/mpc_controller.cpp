#include "policy/mpc_controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/progress_model.hpp"

namespace procap::policy {

namespace {
constexpr Watts kTrimLimit = 30.0;  // integral trim authority, watts
}

MpcController::MpcController(MpcConfig config)
    : config_(config),
      settle_ticks_(static_cast<unsigned>(std::ceil(config.settle))),
      hold_ticks_(static_cast<unsigned>(std::ceil(config.hold))) {
  if (config.target <= 0.0 || config.target > 1.0) {
    throw std::invalid_argument("MpcController: target must be in (0, 1]");
  }
  if (config.beta <= 0.0 || config.beta > 1.0) {
    throw std::invalid_argument("MpcController: beta must be in (0, 1]");
  }
  if (config.probes < 2) {
    throw std::invalid_argument("MpcController: need at least 2 probes");
  }
  if (hold_ticks_ == 0) {
    throw std::invalid_argument("MpcController: hold must be positive");
  }
  if (config.trim < 0.0) {
    throw std::invalid_argument("MpcController: trim must be >= 0");
  }
}

void MpcController::reset() {
  phase_ = Phase::kMeasure;
  level_ = 0;
  tick_in_level_ = 0;
  rate_sum_ = 0.0;
  power_sum_ = 0.0;
  accum_n_ = 0;
  r_max_ = 0.0;
  p_max_ = 0.0;
  probe_rates_.clear();
  probe_caps_.clear();
  model_.reset();
  setpoint_rate_ = 0.0;
  base_cap_ = 0.0;
  bias_ = 0.0;
  degraded_ = false;
}

Watts MpcController::probe_cap(unsigned level) const {
  // Descending ladder from 80% down to 45% of the uncapped draw —
  // inside the band where capping actually bites but progress is still
  // measurable (the Fig. 4 sweep range).
  const double top = 0.8;
  const double bottom = 0.45;
  const double frac =
      top - (top - bottom) * static_cast<double>(level) /
                static_cast<double>(config_.probes - 1);
  return frac * p_max_;
}

double MpcController::predict_rate(Watts pkg_cap) const {
  const Watts core = model::effective_core_cap(config_.beta, pkg_cap);
  return model_ ? model_->predict_rate(core)
                : model::progress_at_core_power(base_, core);
}

void MpcController::finish_level() {
  const double rate =
      accum_n_ > 0 ? rate_sum_ / static_cast<double>(accum_n_) : 0.0;
  const double power =
      accum_n_ > 0 ? power_sum_ / static_cast<double>(accum_n_) : 0.0;
  if (phase_ == Phase::kMeasure) {
    r_max_ = rate;
    p_max_ = power;
  } else {
    probe_rates_.push_back(rate);
    probe_caps_.push_back(probe_cap(level_));
  }
  rate_sum_ = 0.0;
  power_sum_ = 0.0;
  accum_n_ = 0;
  tick_in_level_ = 0;
}

void MpcController::calibrate(const CapBounds& bounds) {
  base_ = model::ModelParams{};
  base_.beta = config_.beta;
  base_.alpha = 2.0;
  base_.p_core_max = model::effective_core_cap(config_.beta, p_max_);
  base_.r_max = r_max_;
  std::vector<model::CapObservation> observations;
  observations.reserve(probe_caps_.size());
  for (std::size_t i = 0; i < probe_caps_.size(); ++i) {
    observations.push_back(model::CapObservation{
        model::effective_core_cap(config_.beta, probe_caps_[i]),
        std::max(0.0, r_max_ - probe_rates_[i])});
  }
  // Piecewise-alpha fit when the probes support it, single fitted alpha
  // otherwise, stock alpha=2 as the last resort.  A degenerate plant
  // (e.g. memory-bound: caps barely move the rate) lands on the
  // fallbacks naturally.
  const unsigned bands =
      std::max(1u, std::min(3u, static_cast<unsigned>(observations.size()) / 2));
  try {
    model_ = std::make_unique<model::CalibratedModel>(base_, observations,
                                                      bands);
  } catch (const std::invalid_argument&) {
    try {
      base_.alpha = model::fit_alpha(base_, observations).alpha;
    } catch (const std::invalid_argument&) {
      base_.alpha = 2.0;
    }
  }
  setpoint_rate_ = config_.target * r_max_;
  // Invert the model: cheapest candidate cap whose predicted rate meets
  // the setpoint.  Scanning beats closed-form inversion because the
  // calibrated model is piecewise.
  const Watts lo = std::max(bounds.min_cap, probe_caps_.back());
  const Watts hi = std::min(bounds.max_cap, p_max_);
  Watts chosen = hi;
  constexpr int kCandidates = 64;
  for (int i = 0; i <= kCandidates; ++i) {
    const Watts cap =
        lo + (hi - lo) * static_cast<double>(i) / kCandidates;
    if (predict_rate(cap) >= setpoint_rate_) {
      chosen = cap;
      break;
    }
  }
  base_cap_ = chosen;
}

std::optional<Watts> MpcController::decide(const Observation& observation,
                                           const CapBounds& bounds) {
  // The phase clock only advances on trustworthy observations: a
  // calibration built on phantom zeros would poison every later
  // decision.
  const bool trustworthy = observation.signal_healthy &&
                           observation.power_valid &&
                           observation.windows > 0 &&
                           observation.progress_rate > 0.0;
  if (!trustworthy) {
    last_output_ = observation.applied_cap;
    return last_output_;
  }

  if (phase_ == Phase::kControl) {
    last_residual_ = setpoint_rate_ - observation.progress_rate;
    if (config_.trim > 0.0 && setpoint_rate_ > 0.0) {
      bias_ = std::clamp(
          bias_ + config_.trim * (last_residual_ / setpoint_rate_) * 10.0,
          -kTrimLimit, kTrimLimit);
    }
    const Watts want = base_cap_ + bias_;
    const Watts output = bounds.clamp(want);
    if (output != want) {
      ++saturations_;
    }
    last_output_ = output;
    return last_output_;
  }

  // Calibration phases: accumulate past the settle ticks, then advance.
  ++tick_in_level_;
  if (tick_in_level_ > settle_ticks_) {
    rate_sum_ += observation.progress_rate;
    power_sum_ += observation.power;
    ++accum_n_;
  }
  if (tick_in_level_ >= settle_ticks_ + hold_ticks_) {
    finish_level();
    if (phase_ == Phase::kMeasure) {
      if (r_max_ <= 0.0 || p_max_ <= 0.0) {
        // Nothing measurable yet; re-run the measure level.
        r_max_ = 0.0;
        p_max_ = 0.0;
      } else {
        phase_ = Phase::kProbe;
        level_ = 0;
      }
    } else if (++level_ >= config_.probes) {
      phase_ = Phase::kControl;
      calibrate(bounds);
      last_residual_ = 0.0;
    }
  }

  if (phase_ == Phase::kMeasure) {
    last_output_ = std::nullopt;  // uncapped: measuring r_max / P_max
  } else if (phase_ == Phase::kProbe) {
    last_output_ = bounds.clamp(probe_cap(level_));
  } else {
    last_output_ = bounds.clamp(base_cap_);
  }
  return last_output_;
}

ControllerStatus MpcController::status() const {
  ControllerStatus status;
  status.setpoint = setpoint_rate_;
  status.error = last_residual_;
  status.output = last_output_;
  status.saturations = saturations_;
  status.degraded = degraded_;
  return status;
}

}  // namespace procap::policy
