// schedule_shapes.hpp — dynamic power-capping schedules (paper
// Section V-B).
//
// A CapSchedule maps elapsed time to the package cap the power-policy
// daemon should apply at that moment (nullopt = uncapped).  The three
// shapes studied in the paper:
//
//   * Linearly decreasing — uncapped, then ramping down to a floor.
//   * Step function       — alternating uncapped/high and low.
//   * Jagged edge         — linear ramp down, instant snap back up,
//                           repeating (sawtooth).
//
// plus constant and uncapped schedules used by the experiment harness.
//
// A CapSchedule is the open-loop *shape*; to run one through a host
// (daemon, NRM, sweep) wrap it in a policy::ScheduleController
// (policy/adapters.hpp) or build it by name from the controller
// registry (policy/controller.hpp).
#pragma once

#include <memory>
#include <optional>

#include "util/units.hpp"

namespace procap::policy {

/// Time-varying package power cap.
class CapSchedule {
 public:
  virtual ~CapSchedule() = default;

  /// Cap at `elapsed` seconds since the schedule started; nullopt means
  /// uncapped.
  [[nodiscard]] virtual std::optional<Watts> cap_at(Seconds elapsed) const = 0;

  /// Short human-readable name for logs and experiment output.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Never caps.
class UncappedSchedule final : public CapSchedule {
 public:
  [[nodiscard]] std::optional<Watts> cap_at(Seconds) const override {
    return std::nullopt;
  }
  [[nodiscard]] const char* name() const override { return "uncapped"; }
};

/// Uncapped until `start_after`, then a fixed cap.
class ConstantCap final : public CapSchedule {
 public:
  explicit ConstantCap(Watts cap, Seconds start_after = 0.0);

  [[nodiscard]] std::optional<Watts> cap_at(Seconds elapsed) const override;
  [[nodiscard]] const char* name() const override { return "constant"; }

 private:
  Watts cap_;
  Seconds start_after_;
};

/// Paper scheme 1: uncapped for `uncapped_for` seconds, then decreasing
/// from `from` at `rate_watts_per_s` until `floor`, holding there.
class LinearDecreasingCap final : public CapSchedule {
 public:
  LinearDecreasingCap(Watts from, Watts floor, double rate_watts_per_s,
                      Seconds uncapped_for = 0.0);

  [[nodiscard]] std::optional<Watts> cap_at(Seconds elapsed) const override;
  [[nodiscard]] const char* name() const override { return "linear"; }

 private:
  Watts from_;
  Watts floor_;
  double rate_;
  Seconds uncapped_for_;
};

/// Paper scheme 2: alternate uncapped (or `high` if given) for
/// `high_duration`, then `low` for `low_duration`, repeating.
class StepCap final : public CapSchedule {
 public:
  StepCap(std::optional<Watts> high, Watts low, Seconds high_duration,
          Seconds low_duration);

  [[nodiscard]] std::optional<Watts> cap_at(Seconds elapsed) const override;
  [[nodiscard]] const char* name() const override { return "step"; }

 private:
  std::optional<Watts> high_;
  Watts low_;
  Seconds high_duration_;
  Seconds low_duration_;
};

/// Paper scheme 3: sawtooth — linear descent from `from` to `floor` over
/// `ramp_duration`, then an instant return to `from`, repeating.
class JaggedCap final : public CapSchedule {
 public:
  JaggedCap(Watts from, Watts floor, Seconds ramp_duration);

  [[nodiscard]] std::optional<Watts> cap_at(Seconds elapsed) const override;
  [[nodiscard]] const char* name() const override { return "jagged"; }

 private:
  Watts from_;
  Watts floor_;
  Seconds ramp_duration_;
};

}  // namespace procap::policy
