#include "policy/adapters.hpp"

#include <algorithm>
#include <stdexcept>

namespace procap::policy {

ScheduleController::ScheduleController(std::unique_ptr<CapSchedule> schedule)
    : schedule_(std::move(schedule)) {
  if (!schedule_) {
    throw std::invalid_argument("ScheduleController: null schedule");
  }
}

std::optional<Watts> ScheduleController::decide(const Observation& observation,
                                                const CapBounds& /*bounds*/) {
  last_output_ = schedule_->cap_at(observation.elapsed);
  return last_output_;
}

ControllerStatus ScheduleController::status() const {
  ControllerStatus status;
  status.output = last_output_;
  return status;
}

BudgetController::BudgetController(Watts budget) : budget_(budget) {
  if (budget <= 0.0) {
    throw std::invalid_argument("BudgetController: budget must be positive");
  }
}

std::optional<Watts> BudgetController::decide(
    const Observation& /*observation*/, const CapBounds& bounds) {
  // Legacy NRM: apply(std::clamp(budget, min_cap, max_cap)).
  const Watts clamped = bounds.clamp(budget_);
  if (clamped != budget_) {
    ++saturations_;
  }
  last_output_ = clamped;
  return last_output_;
}

ControllerStatus BudgetController::status() const {
  ControllerStatus status;
  status.setpoint = budget_;
  status.output = last_output_;
  status.saturations = saturations_;
  return status;
}

ProgressTargetController::ProgressTargetController(ProgressTargetConfig config)
    : config_(config) {
  if (config.setpoint <= 0.0) {
    throw std::invalid_argument(
        "ProgressTargetController: setpoint must be positive");
  }
}

std::optional<Watts> ProgressTargetController::decide(
    const Observation& observation, const CapBounds& bounds) {
  // The legacy NRM loop, verbatim: hold until the feed produced at least
  // one window and a non-zero rate (chasing a zero reading would be the
  // paper's §V-C phantom), then step the cap outside the deadband.
  last_error_ = config_.setpoint - observation.progress_rate;
  if (!observation.signal_healthy || observation.windows == 0 ||
      observation.progress_rate <= 0.0) {
    last_output_ = observation.applied_cap;
    return last_output_;
  }
  const double low = config_.setpoint;
  const double high = config_.setpoint * (1.0 + config_.deadband);
  const Watts current = observation.applied_cap.value_or(bounds.max_cap);
  if (observation.progress_rate < low) {
    const Watts raised = current + config_.raise_step;
    if (raised > bounds.max_cap) {
      ++saturations_;
    }
    last_output_ = std::min(raised, bounds.max_cap);
  } else if (observation.progress_rate > high) {
    const Watts lowered = current - config_.lower_step;
    if (lowered < bounds.min_cap) {
      ++saturations_;
    }
    last_output_ = std::max(lowered, bounds.min_cap);
  } else {
    last_output_ = observation.applied_cap;
  }
  return last_output_;
}

ControllerStatus ProgressTargetController::status() const {
  ControllerStatus status;
  status.setpoint = config_.setpoint;
  status.error = last_error_;
  status.output = last_output_;
  status.saturations = saturations_;
  status.degraded = degraded_;
  return status;
}

}  // namespace procap::policy
