// mpc_controller.hpp — model-predictive cap control on model/calibrated.
//
// The paper's conclusion proposes using its progress model to "decide
// on the exact power budget to be employed given an expectation of
// online performance".  This controller operationalizes that end to
// end, with the piecewise-alpha CalibratedModel (model/calibrated.hpp)
// as the plant model:
//
//   1. Measure — run uncapped for settle+hold decisions to establish
//      the uncapped operating point (r_max, P_max).
//   2. Probe — hold a descending ladder of probe caps (fractions of
//      P_max), each for settle+hold decisions, collecting the
//      (core cap, Δprogress) observations the Fig. 4 procedure would.
//   3. Control — fit the calibrated model to the probes, invert it for
//      the cheapest cap whose predicted rate meets the setpoint
//      (`target` x r_max), and hold that cap with a slow integral trim
//      absorbing residual model error (the same philosophy as the
//      NRM's feedback loop, but seeded by a model fitted online).
//
// Decisions advance the phase clock only on trustworthy observations
// (healthy signal, valid power, a completed window), so telemetry gaps
// stretch the calibration instead of corrupting it.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "model/calibrated.hpp"
#include "model/fit.hpp"
#include "policy/controller.hpp"

namespace procap::policy {

/// MpcController tuning.
struct MpcConfig {
  double target = 0.85;   ///< setpoint as a fraction of measured r_max
  double beta = 1.0;      ///< compute-boundedness for Eq. 5 core split
  unsigned probes = 4;    ///< probe-ladder levels
  Seconds hold = 6.0;     ///< measured decisions per level
  Seconds settle = 2.0;   ///< discarded decisions at each level start
  double trim = 0.5;      ///< integral trim: watts per normalized residual
};

/// Probe-then-hold model-predictive controller.
class MpcController final : public Controller {
 public:
  explicit MpcController(MpcConfig config);

  [[nodiscard]] const char* name() const override { return "mpc"; }
  [[nodiscard]] std::optional<Watts> decide(const Observation& observation,
                                            const CapBounds& bounds) override;
  void reset() override;
  void degrade() override { degraded_ = true; }
  [[nodiscard]] bool wants_power() const override { return true; }
  [[nodiscard]] ControllerStatus status() const override;

  /// True once the probe ladder finished and the model is fitted.
  [[nodiscard]] bool calibrated() const { return phase_ == Phase::kControl; }
  /// The fitted model (null until calibrated, or when the piecewise fit
  /// failed and the controller fell back to a single fitted alpha).
  [[nodiscard]] const model::CalibratedModel* model() const {
    return model_.get();
  }
  /// Setpoint in progress units/s (0 until the measure phase ends).
  [[nodiscard]] double setpoint() const { return setpoint_rate_; }

 private:
  enum class Phase { kMeasure, kProbe, kControl };

  [[nodiscard]] Watts probe_cap(unsigned level) const;
  [[nodiscard]] double predict_rate(Watts pkg_cap) const;
  void finish_level();
  void calibrate(const CapBounds& bounds);

  MpcConfig config_;
  unsigned settle_ticks_;
  unsigned hold_ticks_;

  Phase phase_ = Phase::kMeasure;
  unsigned level_ = 0;       // probe-ladder index while kProbe
  unsigned tick_in_level_ = 0;
  double rate_sum_ = 0.0;    // accumulators past the settle ticks
  double power_sum_ = 0.0;
  unsigned accum_n_ = 0;

  double r_max_ = 0.0;
  Watts p_max_ = 0.0;
  std::vector<double> probe_rates_;
  std::vector<Watts> probe_caps_;

  model::ModelParams base_;
  std::unique_ptr<model::CalibratedModel> model_;
  double setpoint_rate_ = 0.0;
  Watts base_cap_ = 0.0;
  Watts bias_ = 0.0;
  double last_residual_ = 0.0;
  std::optional<Watts> last_output_;
  std::uint64_t saturations_ = 0;
  bool degraded_ = false;
};

}  // namespace procap::policy
