// fft_controller.hpp — FFT/periodicity phase-detecting power policy.
//
// Modeled on flux-power-monitor's fft_based_power_policy.c: many HPC
// applications alternate compute-bound and memory/IO-bound phases on a
// stable period (the paper's QMCPACK runs, iterative solvers).  Power
// draw traces that alternation, so a DFT over a sliding window of 1 Hz
// power samples exposes the period; once a dominant spectral peak
// clears a significance threshold the controller predicts which phase
// the *next* interval falls in and programs a phase-matched cap:
//
//   * predicted high-power (compute) phase — cap at the high-phase mean
//     power plus margin, leaving the compute unconstrained;
//   * predicted low-power (memory/IO) phase — cap down to the low-phase
//     mean plus margin, harvesting watts the phase cannot use anyway.
//
// When no significant periodicity is present the controller falls back
// to `fallback` (a fixed budget) or runs uncapped.  All state is a ring
// of observed power samples; decisions are a pure function of them, so
// the determinism contract holds.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <vector>

#include "policy/controller.hpp"

namespace procap::policy {

/// FftController tuning.
struct FftConfig {
  /// Sliding-window length in samples (= seconds at 1 Hz); must be a
  /// power of two for the radix-2 FFT.
  std::size_t window = 64;
  /// Peak magnitude must exceed `threshold` x the mean magnitude of the
  /// other bins to count as periodicity.
  double threshold = 3.0;
  /// Cap headroom above the phase-mean power (fraction).
  double margin = 0.08;
  /// Decisions between spectrum recomputes (the window slides every
  /// sample; re-transforming every tick would be wasted work).
  unsigned recompute = 16;
  /// Cap while no periodicity is detected (nullopt = uncapped).
  std::optional<Watts> fallback;
};

/// Phase-detecting controller driven by the package power spectrum.
class FftController final : public Controller {
 public:
  explicit FftController(FftConfig config);

  [[nodiscard]] const char* name() const override { return "fft"; }
  [[nodiscard]] std::optional<Watts> decide(const Observation& observation,
                                            const CapBounds& bounds) override;
  void reset() override;
  void degrade() override { degraded_ = true; }
  [[nodiscard]] bool wants_power() const override { return true; }
  [[nodiscard]] ControllerStatus status() const override;

  /// True once a dominant spectral peak clears the threshold.
  [[nodiscard]] bool periodic() const { return periodic_; }
  /// Detected period in samples (0 while aperiodic).
  [[nodiscard]] double period() const;

 private:
  void analyze();

  FftConfig config_;
  std::vector<Watts> history_;     // ring buffer, capacity config_.window
  std::size_t next_slot_ = 0;      // ring write index
  std::uint64_t samples_ = 0;      // total samples observed
  std::uint64_t analyzed_at_ = 0;  // samples_ when the spectrum was taken
  // Spectrum snapshot (valid while periodic_).
  bool periodic_ = false;
  std::size_t peak_bin_ = 0;
  std::complex<double> peak_coeff_;
  double mean_ = 0.0;
  double mean_high_ = 0.0;
  double mean_low_ = 0.0;
  double significance_ = 0.0;
  std::optional<Watts> last_output_;
  std::uint64_t saturations_ = 0;
  bool degraded_ = false;
};

}  // namespace procap::policy
