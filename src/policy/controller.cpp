#include "policy/controller.hpp"

#include <cstdlib>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "policy/adapters.hpp"
#include "policy/fft_controller.hpp"
#include "policy/mpc_controller.hpp"
#include "policy/pi_controller.hpp"
#include "policy/schedule_shapes.hpp"

namespace procap::policy {

namespace {

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ControllerSpec parse_controller_spec(std::string_view spec) {
  ControllerSpec parsed;
  const std::size_t colon = spec.find(':');
  parsed.name = std::string(spec.substr(0, colon));
  if (parsed.name.empty()) {
    throw std::invalid_argument("controller spec: empty name");
  }
  if (colon == std::string_view::npos) {
    return parsed;
  }
  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("controller spec '" + parsed.name +
                                  "': expected k=v, got '" +
                                  std::string(pair) + "'");
    }
    const std::string key(pair.substr(0, eq));
    if (!parsed.params.emplace(key, std::string(pair.substr(eq + 1))).second) {
      throw std::invalid_argument("controller spec '" + parsed.name +
                                  "': duplicate key '" + key + "'");
    }
  }
  return parsed;
}

void ControllerRegistry::add(std::string name, std::string help,
                             Factory factory) {
  if (name.empty() || !factory) {
    throw std::invalid_argument("ControllerRegistry: empty name or factory");
  }
  const std::lock_guard<std::mutex> lock(registry_mutex());
  if (!entries_.emplace(std::move(name),
                        Entry{std::move(help), std::move(factory)})
           .second) {
    throw std::invalid_argument("ControllerRegistry: duplicate controller");
  }
}

std::unique_ptr<Controller> ControllerRegistry::make(
    std::string_view spec) const {
  return make(parse_controller_spec(spec));
}

std::unique_ptr<Controller> ControllerRegistry::make(
    const ControllerSpec& spec) const {
  const Factory* factory = nullptr;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = entries_.find(spec.name);
    if (it == entries_.end()) {
      std::ostringstream os;
      os << "unknown controller '" << spec.name << "' (registered:";
      for (const auto& [name, entry] : entries_) {
        os << ' ' << name;
      }
      os << ')';
      throw std::invalid_argument(os.str());
    }
    factory = &it->second.factory;
  }
  auto controller = (*factory)(spec.params);
  if (!controller) {
    throw std::invalid_argument("controller '" + spec.name +
                                "': factory returned null");
  }
  return controller;
}

bool ControllerRegistry::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> ControllerRegistry::names() const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(name);
  }
  return out;
}

std::string ControllerRegistry::help() const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::ostringstream os;
  for (const auto& [name, entry] : entries_) {
    os << "  " << name << " — " << entry.help << "\n";
  }
  return os.str();
}

namespace param {

namespace {

double parse_double(const std::string& controller, const std::string& key,
                    const std::string& value) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    throw std::invalid_argument("controller '" + controller + "': param " +
                                key + "='" + value + "' is not a number");
  }
  return parsed;
}

}  // namespace

double get_double(const ControllerParams& params,
                  const std::string& controller, const std::string& key,
                  double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback
                            : parse_double(controller, key, it->second);
}

double require_double(const ControllerParams& params,
                      const std::string& controller, const std::string& key) {
  const auto it = params.find(key);
  if (it == params.end()) {
    throw std::invalid_argument("controller '" + controller +
                                "': missing required param '" + key + "'");
  }
  return parse_double(controller, key, it->second);
}

std::optional<double> get_optional_double(const ControllerParams& params,
                                          const std::string& controller,
                                          const std::string& key) {
  const auto it = params.find(key);
  if (it == params.end()) {
    return std::nullopt;
  }
  return parse_double(controller, key, it->second);
}

unsigned get_unsigned(const ControllerParams& params,
                      const std::string& controller, const std::string& key,
                      unsigned fallback) {
  const auto it = params.find(key);
  if (it == params.end()) {
    return fallback;
  }
  const double parsed = parse_double(controller, key, it->second);
  const auto value = static_cast<unsigned>(parsed);
  if (parsed < 0.0 || static_cast<double>(value) != parsed) {
    throw std::invalid_argument("controller '" + controller + "': param " +
                                key + " must be a non-negative integer");
  }
  return value;
}

bool get_bool(const ControllerParams& params, const std::string& controller,
              const std::string& key, bool fallback) {
  const auto it = params.find(key);
  if (it == params.end()) {
    return fallback;
  }
  if (it->second == "1" || it->second == "true" || it->second == "on") {
    return true;
  }
  if (it->second == "0" || it->second == "false" || it->second == "off") {
    return false;
  }
  throw std::invalid_argument("controller '" + controller + "': param " +
                              key + " must be a boolean (0/1/true/false)");
}

void require_known(const ControllerParams& params,
                   const std::string& controller,
                   std::initializer_list<const char*> known) {
  for (const auto& [key, value] : params) {
    bool found = false;
    for (const char* k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::ostringstream os;
      os << "controller '" << controller << "': unknown param '" << key
         << "' (known:";
      for (const char* k : known) {
        os << ' ' << k;
      }
      os << ')';
      throw std::invalid_argument(os.str());
    }
  }
}

}  // namespace param

namespace {

// ---- Built-in zoo ---------------------------------------------------

void register_builtins(ControllerRegistry& registry) {
  using param::get_bool;
  using param::get_double;
  using param::get_optional_double;
  using param::get_unsigned;
  using param::require_double;
  using param::require_known;

  registry.add("uncapped", "never caps (reference)",
               [](const ControllerParams& params) {
                 require_known(params, "uncapped", {});
                 return std::make_unique<ScheduleController>(
                     std::make_unique<UncappedSchedule>());
               });
  registry.add(
      "constant", "fixed cap: cap=W [delay=s]",
      [](const ControllerParams& params) {
        require_known(params, "constant", {"cap", "delay"});
        return std::make_unique<ScheduleController>(
            std::make_unique<ConstantCap>(
                require_double(params, "constant", "cap"),
                get_double(params, "constant", "delay", 0.0)));
      });
  registry.add(
      "linear",
      "linear descent: from=W floor=W rate=W/s [delay=s] (paper scheme 1)",
      [](const ControllerParams& params) {
        require_known(params, "linear", {"from", "floor", "rate", "delay"});
        return std::make_unique<ScheduleController>(
            std::make_unique<LinearDecreasingCap>(
                require_double(params, "linear", "from"),
                require_double(params, "linear", "floor"),
                require_double(params, "linear", "rate"),
                get_double(params, "linear", "delay", 0.0)));
      });
  registry.add(
      "step",
      "alternating cap: low=W [high=W high_s=s low_s=s] (paper scheme 2)",
      [](const ControllerParams& params) {
        require_known(params, "step", {"low", "high", "high_s", "low_s"});
        return std::make_unique<ScheduleController>(std::make_unique<StepCap>(
            get_optional_double(params, "step", "high"),
            require_double(params, "step", "low"),
            get_double(params, "step", "high_s", 15.0),
            get_double(params, "step", "low_s", 15.0)));
      });
  registry.add(
      "jagged", "sawtooth: from=W floor=W period=s (paper scheme 3)",
      [](const ControllerParams& params) {
        require_known(params, "jagged", {"from", "floor", "period"});
        return std::make_unique<ScheduleController>(
            std::make_unique<JaggedCap>(
                require_double(params, "jagged", "from"),
                require_double(params, "jagged", "floor"),
                require_double(params, "jagged", "period")));
      });
  registry.add("budget", "hard budget: watts=W (NRM kBudget adapter)",
               [](const ControllerParams& params) {
                 require_known(params, "budget", {"watts"});
                 return std::make_unique<BudgetController>(
                     require_double(params, "budget", "watts"));
               });
  registry.add(
      "target",
      "deadband progress hold: setpoint=units/s [deadband= raise=W lower=W] "
      "(NRM kProgressTarget adapter)",
      [](const ControllerParams& params) {
        require_known(params, "target",
                      {"setpoint", "deadband", "raise", "lower"});
        ProgressTargetConfig config;
        config.setpoint = require_double(params, "target", "setpoint");
        config.deadband = get_double(params, "target", "deadband", 0.05);
        config.raise_step = get_double(params, "target", "raise", 4.0);
        config.lower_step = get_double(params, "target", "lower", 2.0);
        return std::make_unique<ProgressTargetController>(config);
      });
  registry.add(
      "pi",
      "adaptive PI on progress: setpoint=units/s [kp= ki= gain=W "
      "adaptive=0/1] (Cerf et al.)",
      [](const ControllerParams& params) {
        require_known(params, "pi",
                      {"setpoint", "kp", "ki", "gain", "adaptive"});
        PiConfig config;
        config.setpoint = require_double(params, "pi", "setpoint");
        config.kp = get_double(params, "pi", "kp", config.kp);
        config.ki = get_double(params, "pi", "ki", config.ki);
        config.gain = get_double(params, "pi", "gain", config.gain);
        config.adaptive = get_bool(params, "pi", "adaptive", config.adaptive);
        return std::make_unique<PiController>(config);
      });
  registry.add(
      "fft",
      "FFT phase detector on power: [window=2^k threshold= margin= "
      "recompute= fallback=W]",
      [](const ControllerParams& params) {
        require_known(params, "fft",
                      {"window", "threshold", "margin", "recompute",
                       "fallback"});
        FftConfig config;
        config.window = get_unsigned(params, "fft", "window",
                                     static_cast<unsigned>(config.window));
        config.threshold =
            get_double(params, "fft", "threshold", config.threshold);
        config.margin = get_double(params, "fft", "margin", config.margin);
        config.recompute =
            get_unsigned(params, "fft", "recompute", config.recompute);
        config.fallback = get_optional_double(params, "fft", "fallback");
        return std::make_unique<FftController>(config);
      });
  registry.add(
      "mpc",
      "model-predictive (probe, fit model/calibrated, hold): [target=frac "
      "beta= probes= hold=s settle=s trim=]",
      [](const ControllerParams& params) {
        require_known(params, "mpc",
                      {"target", "beta", "probes", "hold", "settle", "trim"});
        MpcConfig config;
        config.target = get_double(params, "mpc", "target", config.target);
        config.beta = get_double(params, "mpc", "beta", config.beta);
        config.probes = get_unsigned(params, "mpc", "probes", config.probes);
        config.hold = get_double(params, "mpc", "hold", config.hold);
        config.settle = get_double(params, "mpc", "settle", config.settle);
        config.trim = get_double(params, "mpc", "trim", config.trim);
        return std::make_unique<MpcController>(config);
      });
}

}  // namespace

ControllerRegistry& ControllerRegistry::global() {
  static ControllerRegistry* registry = [] {
    auto* r = new ControllerRegistry();
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<Controller> make_controller(std::string_view spec) {
  return ControllerRegistry::global().make(spec);
}

std::string controller_help() { return ControllerRegistry::global().help(); }

}  // namespace procap::policy
