#include "policy/budget_listener.hpp"

#include <charconv>
#include <stdexcept>

namespace procap::policy {

std::string budget_topic(const std::string& node_name) {
  return "power/budget/" + node_name;
}

std::string encode_budget(std::optional<Watts> budget) {
  if (!budget) {
    return "uncapped";
  }
  return "cap " + std::to_string(*budget);
}

std::optional<std::optional<Watts>> decode_budget(const std::string& payload) {
  if (payload == "uncapped") {
    // Engaged outer optional holding the empty ("uncapped") directive.
    return std::make_optional(std::optional<Watts>{});
  }
  constexpr std::string_view kPrefix = "cap ";
  if (payload.rfind(kPrefix, 0) != 0) {
    return std::nullopt;
  }
  const char* begin = payload.data() + kPrefix.size();
  const char* end = payload.data() + payload.size();
  Watts watts = 0.0;
  const auto [parsed_end, ec] = std::from_chars(begin, end, watts);
  if (ec != std::errc{} || parsed_end != end || watts <= 0.0) {
    return std::nullopt;
  }
  return std::optional<Watts>{watts};
}

BudgetListener::BudgetListener(std::shared_ptr<msgbus::SubSocket> sub,
                               const std::string& node_name,
                               NodeResourceManager& nrm)
    : sub_(std::move(sub)), nrm_(&nrm) {
  if (!sub_) {
    throw std::invalid_argument("BudgetListener: null subscriber socket");
  }
  sub_->subscribe(budget_topic(node_name));
}

void BudgetListener::poll() {
  while (auto msg = sub_->try_recv()) {
    const auto directive = decode_budget(msg->payload);
    if (!directive) {
      ++malformed_;
      continue;
    }
    if (*directive) {
      nrm_->set_power_budget(**directive);
    } else {
      nrm_->clear_power_budget();
    }
    last_ = directive;
    ++applied_;
  }
}

}  // namespace procap::policy
