#include "policy/fft_controller.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/fft.hpp"

namespace procap::policy {

FftController::FftController(FftConfig config) : config_(config) {
  if (!util::is_power_of_two(config.window) || config.window < 8) {
    throw std::invalid_argument(
        "FftController: window must be a power of two >= 8");
  }
  if (config.threshold <= 1.0) {
    throw std::invalid_argument("FftController: threshold must exceed 1");
  }
  if (config.margin < 0.0) {
    throw std::invalid_argument("FftController: margin must be >= 0");
  }
  if (config.recompute == 0) {
    throw std::invalid_argument("FftController: recompute must be positive");
  }
  if (config.fallback && *config.fallback <= 0.0) {
    throw std::invalid_argument("FftController: fallback must be positive");
  }
  history_.reserve(config.window);
}

void FftController::reset() {
  history_.clear();
  next_slot_ = 0;
  samples_ = 0;
  analyzed_at_ = 0;
  periodic_ = false;
  significance_ = 0.0;
  degraded_ = false;
}

double FftController::period() const {
  return periodic_ ? static_cast<double>(config_.window) /
                         static_cast<double>(peak_bin_)
                   : 0.0;
}

void FftController::analyze() {
  const std::size_t n = config_.window;
  // Chronological copy of the ring (oldest first), mean-removed so bin 0
  // does not drown the spectrum.
  std::vector<std::complex<double>> spectrum(n);
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean += history_[(next_slot_ + i) % n];
  }
  mean /= static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    spectrum[i] = history_[(next_slot_ + i) % n] - mean;
  }
  util::fft(spectrum);

  // Dominant bin among the positive frequencies, and the mean magnitude
  // of the others as the significance floor.
  std::size_t peak = 0;
  double peak_mag = 0.0;
  double mag_sum = 0.0;
  for (std::size_t k = 1; k < n / 2; ++k) {
    const double mag = std::abs(spectrum[k]);
    mag_sum += mag;
    if (mag > peak_mag) {
      peak_mag = mag;
      peak = k;
    }
  }
  const double others =
      (mag_sum - peak_mag) / static_cast<double>(n / 2 - 2);
  significance_ = others > 0.0 ? peak_mag / others : 0.0;
  analyzed_at_ = samples_;
  periodic_ = peak != 0 && significance_ >= config_.threshold;
  if (!periodic_) {
    return;
  }
  peak_bin_ = peak;
  peak_coeff_ = spectrum[peak];
  mean_ = mean;
  // Phase power levels: means of the samples above/below the window
  // mean.  These are what the phase-matched caps sit on.
  double high_sum = 0.0;
  double low_sum = 0.0;
  std::size_t high_n = 0;
  std::size_t low_n = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Watts p = history_[(next_slot_ + i) % n];
    if (p >= mean) {
      high_sum += p;
      ++high_n;
    } else {
      low_sum += p;
      ++low_n;
    }
  }
  mean_high_ = high_n > 0 ? high_sum / static_cast<double>(high_n) : mean;
  mean_low_ = low_n > 0 ? low_sum / static_cast<double>(low_n) : mean;
}

std::optional<Watts> FftController::decide(const Observation& observation,
                                           const CapBounds& bounds) {
  if (!observation.power_valid) {
    // No power sample this interval: hold, and do not advance the ring
    // (a gap would smear the spectrum).
    last_output_ = observation.applied_cap;
    return last_output_;
  }
  if (history_.size() < config_.window) {
    history_.push_back(observation.power);
  } else {
    history_[next_slot_] = observation.power;
    next_slot_ = (next_slot_ + 1) % config_.window;
  }
  ++samples_;

  if (history_.size() < config_.window) {
    // Warmup: behave like the aperiodic fallback until the window fills.
    last_output_ = config_.fallback
                       ? std::optional<Watts>(bounds.clamp(*config_.fallback))
                       : std::nullopt;
    return last_output_;
  }
  if (analyzed_at_ == 0 || samples_ - analyzed_at_ >= config_.recompute) {
    analyze();
  }
  if (!periodic_) {
    last_output_ = config_.fallback
                       ? std::optional<Watts>(bounds.clamp(*config_.fallback))
                       : std::nullopt;
    return last_output_;
  }

  // Predict the next interval's power by extending the dominant
  // component past the analyzed window: sample offset d from the window
  // end, x̂ = mean + (2/N) * Re(X_k * e^{i 2π k d / N}).
  const auto n = static_cast<double>(config_.window);
  const auto d = static_cast<double>(samples_ - analyzed_at_);
  const double angle =
      2.0 * std::numbers::pi * static_cast<double>(peak_bin_) * d / n;
  const double predicted =
      mean_ + (2.0 / n) * (peak_coeff_.real() * std::cos(angle) -
                           peak_coeff_.imag() * std::sin(angle));
  const Watts level = predicted >= mean_ ? mean_high_ : mean_low_;
  const Watts want = level * (1.0 + config_.margin);
  const Watts output = bounds.clamp(want);
  if (output != want) {
    ++saturations_;
  }
  last_output_ = output;
  return last_output_;
}

ControllerStatus FftController::status() const {
  ControllerStatus status;
  status.setpoint = period();       // the detected period, in samples
  status.error = significance_;     // spectral peak significance
  status.output = last_output_;
  status.saturations = saturations_;
  status.degraded = degraded_;
  return status;
}

}  // namespace procap::policy
