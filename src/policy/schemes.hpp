// schemes.hpp — DEPRECATED shim.
//
// The capping-schedule shapes moved to policy/schedule_shapes.hpp when
// the policy layer was redesigned around policy::Controller
// (policy/controller.hpp, DESIGN.md §15).  The shapes themselves are
// not deprecated — only this header path.  To run a schedule through a
// daemon/NRM/sweep host, wrap it in policy::ScheduleController
// (policy/adapters.hpp) or build it by name from the controller
// registry: make_controller("step:low=70,high_s=15,low_s=15").
#pragma once

#pragma message( \
    "policy/schemes.hpp is deprecated: include policy/schedule_shapes.hpp " \
    "for the CapSchedule shapes, or policy/controller.hpp for the " \
    "Controller API (see DESIGN.md §15)")

#include "policy/schedule_shapes.hpp"
