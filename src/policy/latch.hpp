// latch.hpp — shared degraded-mode building blocks.
//
// PR 1 established the degraded-mode pattern: a controller falls back
// when its input stops being trustworthy, and re-engages only after the
// input has been healthy for a hysteresis interval, so a flapping signal
// does not flap the controller.  PR 4 added the alert-feed trigger: a
// firing rule flagged degrades_control forces the fallback from outside.
// The NRM, the daemon and the cluster power manager all need exactly the
// same two pieces, so they live here:
//
//   * ReengageLatch — consecutive-healthy-observations hysteresis;
//   * DegradeAlertWatch — tracks which degrades_control rules are firing
//     according to a msgbus alert feed (msgbus::alert_topic).
#pragma once

#include <cstddef>
#include <memory>
#include <set>
#include <string>

#include "msgbus/bus.hpp"

namespace procap::policy {

/// Degraded/engaged state with re-engage hysteresis: once degraded, the
/// caller must report `reengage_after` consecutive healthy observations
/// before the latch re-engages.
class ReengageLatch {
 public:
  explicit ReengageLatch(unsigned reengage_after)
      : after_(reengage_after == 0 ? 1 : reengage_after) {}

  /// Enter (or stay in) the degraded state; resets the healthy streak.
  void degrade() {
    degraded_ = true;
    streak_ = 0;
  }

  /// Force the engaged state without hysteresis (a fresh control target
  /// supersedes the old degradation).
  void reset() {
    degraded_ = false;
    streak_ = 0;
  }

  /// Report one observation while degraded.  Returns true exactly when
  /// this observation completes the hysteresis and re-engages the latch.
  /// A no-op (false) when already engaged.
  bool observe(bool healthy) {
    if (!degraded_) {
      return false;
    }
    if (!healthy) {
      streak_ = 0;
      return false;
    }
    if (++streak_ >= after_) {
      degraded_ = false;
      streak_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] unsigned healthy_streak() const { return streak_; }
  [[nodiscard]] unsigned reengage_after() const { return after_; }

 private:
  unsigned after_;
  bool degraded_ = false;
  unsigned streak_ = 0;  // consecutive healthy observations while degraded
};

/// Tracks firing degrades_control alert rules from a msgbus alert feed.
/// Junk payloads (the feed may cross a corrupting link) are ignored.
class DegradeAlertWatch {
 public:
  /// `who` prefixes log lines ("nrm", "cluster", ...).
  explicit DegradeAlertWatch(std::string who) : who_(std::move(who)) {}

  /// Subscribe `sub` to the alert topic and adopt it as the feed; pass
  /// nullptr to detach.
  void watch(std::shared_ptr<msgbus::SubSocket> sub);

  /// Drain the feed, applying fired/resolved transitions of
  /// degrades_control rules.  Returns how many rules newly fired.
  std::size_t drain();

  [[nodiscard]] bool any_firing() const { return !firing_.empty(); }
  [[nodiscard]] std::size_t firing_count() const { return firing_.size(); }

 private:
  std::string who_;
  std::shared_ptr<msgbus::SubSocket> sub_;
  std::set<std::string> firing_;  // rule names currently firing
};

}  // namespace procap::policy
