// pi_controller.hpp — adaptive PI progress-setpoint controller.
//
// Cerf, Bleuse, Reis, Perarnau & Rutten (arXiv 2107.02426) — the direct
// follow-on to the source paper — replace its open-loop capping schemes
// with a proportional-integral controller that holds an application
// progress setpoint by actuating the RAPL cap.  Their key points, kept
// here:
//
//   * Velocity (incremental) form: each decision moves the *current*
//     cap by  gain * (kp * Δerror + ki * error), so clamping the output
//     into CapBounds is automatic anti-windup (no integral state to
//     unwind after saturation).
//   * Normalized error (error / setpoint), so one set of kp/ki works
//     across applications whose progress units differ by orders of
//     magnitude.
//   * Adaptive gain: the watts-per-unit-error scale is the inverse of
//     the plant slope (how much rate one watt buys), estimated online
//     from consecutive (Δrate, Δcap) pairs with an EMA.  This is the
//     gain-scheduling Cerf et al. derive from their power-to-progress
//     model, done empirically.
//
// Holds (repeats the applied cap) while the progress signal is missing,
// unhealthy or zero — reacting to a phantom zero is the paper's §V-C
// failure mode.
#pragma once

#include <optional>

#include "policy/controller.hpp"

namespace procap::policy {

/// PiController tuning.
struct PiConfig {
  double setpoint = 0.0;  ///< target progress rate (units/s); required
  double kp = 0.6;        ///< proportional gain on normalized error
  double ki = 0.25;       ///< integral gain on normalized error
  Watts gain = 40.0;      ///< watts per unit normalized error (initial)
  bool adaptive = true;   ///< adapt `gain` to the estimated plant slope
  Watts gain_min = 5.0;   ///< adaptive gain clamp
  Watts gain_max = 200.0;
  double slope_ema = 0.3; ///< EMA weight for the plant-slope estimate
};

/// PI controller with progress setpoint and adaptive gain.
class PiController final : public Controller {
 public:
  explicit PiController(PiConfig config);

  [[nodiscard]] const char* name() const override { return "pi"; }
  [[nodiscard]] std::optional<Watts> decide(const Observation& observation,
                                            const CapBounds& bounds) override;
  void reset() override;
  void degrade() override { degraded_ = true; }
  [[nodiscard]] ControllerStatus status() const override;

  /// Current watts-per-unit-error scale (adapts when config.adaptive).
  [[nodiscard]] Watts gain() const { return gain_; }

 private:
  PiConfig config_;
  Watts gain_;
  std::optional<double> prev_error_;   // normalized
  std::optional<double> prev_rate_;    // for the slope estimate
  std::optional<Watts> prev_output_;   // cap behind prev_rate_
  std::optional<double> slope_;        // EMA of Δrate_n per watt
  std::optional<Watts> last_output_;
  double last_error_ = 0.0;            // raw units/s, for status()
  std::uint64_t saturations_ = 0;
  bool degraded_ = false;
};

}  // namespace procap::policy
