#include "policy/schedule_shapes.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procap::policy {

ConstantCap::ConstantCap(Watts cap, Seconds start_after)
    : cap_(cap), start_after_(start_after) {
  if (cap <= 0.0) {
    throw std::invalid_argument("ConstantCap: cap must be positive");
  }
}

std::optional<Watts> ConstantCap::cap_at(Seconds elapsed) const {
  if (elapsed < start_after_) {
    return std::nullopt;
  }
  return cap_;
}

LinearDecreasingCap::LinearDecreasingCap(Watts from, Watts floor,
                                         double rate_watts_per_s,
                                         Seconds uncapped_for)
    : from_(from),
      floor_(floor),
      rate_(rate_watts_per_s),
      uncapped_for_(uncapped_for) {
  if (floor <= 0.0 || from < floor) {
    throw std::invalid_argument("LinearDecreasingCap: need from >= floor > 0");
  }
  if (rate_watts_per_s <= 0.0) {
    throw std::invalid_argument("LinearDecreasingCap: rate must be positive");
  }
}

std::optional<Watts> LinearDecreasingCap::cap_at(Seconds elapsed) const {
  if (elapsed < uncapped_for_) {
    return std::nullopt;
  }
  const Watts cap = from_ - rate_ * (elapsed - uncapped_for_);
  return std::max(cap, floor_);
}

StepCap::StepCap(std::optional<Watts> high, Watts low, Seconds high_duration,
                 Seconds low_duration)
    : high_(high),
      low_(low),
      high_duration_(high_duration),
      low_duration_(low_duration) {
  if (low <= 0.0) {
    throw std::invalid_argument("StepCap: low cap must be positive");
  }
  if (high && *high <= low) {
    throw std::invalid_argument("StepCap: high cap must exceed low cap");
  }
  if (high_duration <= 0.0 || low_duration <= 0.0) {
    throw std::invalid_argument("StepCap: durations must be positive");
  }
}

std::optional<Watts> StepCap::cap_at(Seconds elapsed) const {
  const Seconds period = high_duration_ + low_duration_;
  const Seconds in_period = std::fmod(elapsed, period);
  if (in_period < high_duration_) {
    return high_;
  }
  return low_;
}

JaggedCap::JaggedCap(Watts from, Watts floor, Seconds ramp_duration)
    : from_(from), floor_(floor), ramp_duration_(ramp_duration) {
  if (floor <= 0.0 || from <= floor) {
    throw std::invalid_argument("JaggedCap: need from > floor > 0");
  }
  if (ramp_duration <= 0.0) {
    throw std::invalid_argument("JaggedCap: ramp duration must be positive");
  }
}

std::optional<Watts> JaggedCap::cap_at(Seconds elapsed) const {
  const Seconds in_ramp = std::fmod(elapsed, ramp_duration_);
  const double t = in_ramp / ramp_duration_;
  return from_ - t * (from_ - floor_);
}

}  // namespace procap::policy
