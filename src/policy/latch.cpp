#include "policy/latch.hpp"

#include "obs/alert.hpp"
#include "util/log.hpp"

namespace procap::policy {

void DegradeAlertWatch::watch(std::shared_ptr<msgbus::SubSocket> sub) {
  if (sub) {
    sub->subscribe(msgbus::alert_topic());
  }
  sub_ = std::move(sub);
}

std::size_t DegradeAlertWatch::drain() {
  if (!sub_) {
    return 0;
  }
  std::size_t newly_fired = 0;
  while (const auto msg = sub_->try_recv()) {
    const auto tr = obs::parse_alert_payload(msg->payload);
    if (!tr || !tr->degrades_control) {
      continue;
    }
    if (tr->fired()) {
      if (firing_.insert(tr->rule).second) {
        ++newly_fired;
        PROCAP_INFO << who_ << ": degrading alert firing: " << tr->rule;
      }
    } else if (tr->resolved()) {
      firing_.erase(tr->rule);
    }
  }
  return newly_fired;
}

}  // namespace procap::policy
