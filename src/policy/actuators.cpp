#include "policy/actuators.hpp"

#include <algorithm>
#include <stdexcept>

namespace procap::policy {

DvfsPowerLimiter::DvfsPowerLimiter(rapl::RaplInterface& rapl,
                                   ActuatorConfig config)
    : rapl_(&rapl), config_(config), f_(config.f_max) {}

void DvfsPowerLimiter::set_target(Watts target) {
  if (target <= 0.0) {
    throw std::invalid_argument("DvfsPowerLimiter: target must be positive");
  }
  target_ = target;
  active_ = true;
}

void DvfsPowerLimiter::release() {
  active_ = false;
  f_ = config_.f_max;
  rapl_->set_frequency(f_);
}

void DvfsPowerLimiter::tick() {
  if (!active_) {
    return;
  }
  const Watts power = rapl_->pkg_power();
  if (power <= 0.0) {
    return;  // meter not primed yet
  }
  if (power > target_ && f_ > config_.f_min) {
    f_ = std::max(config_.f_min, f_ - config_.f_step);
    rapl_->set_frequency(f_);
  } else if (power < target_ - config_.margin && f_ < config_.f_max) {
    f_ = std::min(config_.f_max, f_ + config_.f_step);
    rapl_->set_frequency(f_);
  }
}

DdcmPowerLimiter::DdcmPowerLimiter(rapl::RaplInterface& rapl,
                                   ActuatorConfig config)
    : rapl_(&rapl), config_(config) {}

void DdcmPowerLimiter::set_target(Watts target) {
  if (target <= 0.0) {
    throw std::invalid_argument("DdcmPowerLimiter: target must be positive");
  }
  target_ = target;
  active_ = true;
}

void DdcmPowerLimiter::release() {
  active_ = false;
  duty_ = 1.0;
  rapl_->set_clock_modulation(duty_);
}

void DdcmPowerLimiter::tick() {
  if (!active_) {
    return;
  }
  const Watts power = rapl_->pkg_power();
  if (power <= 0.0) {
    return;
  }
  if (power > target_ && duty_ > config_.duty_min) {
    duty_ = std::max(config_.duty_min, duty_ - config_.duty_step);
    rapl_->set_clock_modulation(duty_);
  } else if (power < target_ - config_.margin && duty_ < 1.0) {
    duty_ = std::min(1.0, duty_ + config_.duty_step);
    rapl_->set_clock_modulation(duty_);
  }
}

}  // namespace procap::policy
