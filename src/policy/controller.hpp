// controller.hpp — the unified power-cap controller API (DESIGN.md §15).
//
// Historically the repo had three divergent policy surfaces: open-loop
// CapSchedule shapes, the closed-loop mode logic baked into the
// NodeResourceManager, and per-node cluster::Strategy decisions.  Every
// new control idea had to be written three times or not at all.  The
// Controller interface replaces all three decision cores with one
// contract:
//
//   observe (progress / power / health telemetry as an Observation)
//     -> decide (a package cap within CapBounds; nullopt = uncapped)
//
// at a fixed cadence (1 Hz unless the host says otherwise), with
// explicit reset() / degrade() hooks for origin rewinds and telemetry
// loss.  Controllers are registered in a string-keyed factory so they
// are selectable by name — "pi:setpoint=640000,kp=0.8" — from
// `power_policy --controller`, `cluster_sim --controller`, and
// exp::Sweep grids.
//
// Determinism contract: a controller's decisions must be a pure function
// of its construction parameters and the observation sequence it has
// seen (no wall clock, no RNG, no global state), so sweeps stay
// bit-identical across thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"
#include "util/time.hpp"

namespace procap::policy {

/// Actuation range the host grants the controller.  Adapters replaying
/// legacy open-loop schedules ignore the bounds (the schedule's shape is
/// the contract); closed-loop controllers must clamp into them.
struct CapBounds {
  Watts min_cap = 0.0;
  Watts max_cap = 300.0;

  [[nodiscard]] Watts clamp(Watts cap) const {
    if (cap < min_cap) {
      return min_cap;
    }
    if (cap > max_cap) {
      return max_cap;
    }
    return cap;
  }
};

/// Everything a controller may observe at one decision point.  Hosts
/// fill what they have; the flags say what is trustworthy.
struct Observation {
  /// Absolute time of this decision.
  Nanos t = 0;
  /// Seconds since the controller was (re)engaged by this host.
  Seconds elapsed = 0.0;
  /// Progress rate over the last completed window (units/s); 0 when no
  /// progress feed is wired.
  double progress_rate = 0.0;
  /// Completed progress windows so far (0 = the feed has not produced a
  /// rate yet — controllers should hold rather than react to it).
  std::uint64_t windows = 0;
  /// Measured package power; only meaningful when power_valid.
  Watts power = 0.0;
  bool power_valid = false;
  /// Cap currently programmed on the package (nullopt = uncapped).
  std::optional<Watts> applied_cap;
  /// False when the progress signal is degraded/lost (paper §V-C) — a
  /// closed-loop controller should hold its output, not chase phantoms.
  bool signal_healthy = true;
};

/// Live internals for the controller.* observability gauges.
struct ControllerStatus {
  double setpoint = 0.0;  ///< target (units/s or W; controller-defined)
  double error = 0.0;     ///< last tracking error, controller-defined units
  std::optional<Watts> output;   ///< last decided cap
  std::uint64_t saturations = 0; ///< decisions clamped at a CapBounds edge
  bool degraded = false;         ///< degrade() seen since last reset()
};

/// One power-cap decision policy.  See the file comment for the
/// contract; hosts call decide() once per control interval.
class Controller {
 public:
  virtual ~Controller() = default;

  /// Short stable name for logs, traces and experiment output.
  [[nodiscard]] virtual const char* name() const = 0;

  /// One control decision: the package cap to program for the next
  /// interval (nullopt = run uncapped).  Called at the host's cadence;
  /// must not block or touch hardware.
  [[nodiscard]] virtual std::optional<Watts> decide(
      const Observation& observation, const CapBounds& bounds) = 0;

  /// Forget adaptive state: the elapsed-time origin has been rewound
  /// (schedule restart, controller handed to a new host).
  virtual void reset() {}

  /// The host lost trust in the telemetry feed and is taking over with
  /// open-loop fallback.  Called once on entry; decide() keeps being
  /// invoked with signal_healthy=false observations, and a later reset()
  /// or healthy observation re-engages.
  virtual void degrade() {}

  /// True when decide() wants Observation::power filled — lets hosts
  /// that do not already sample power (e.g. the NRM) skip the extra
  /// RAPL read for controllers that never look at it.
  [[nodiscard]] virtual bool wants_power() const { return false; }

  /// Snapshot of the internals for the controller.* gauges.
  [[nodiscard]] virtual ControllerStatus status() const { return {}; }
};

/// Key=value parameters from a controller spec string.  Transparent
/// comparator so lookups work from string_view.
using ControllerParams = std::map<std::string, std::string, std::less<>>;

/// A parsed "NAME[:k=v,...]" controller spec.
struct ControllerSpec {
  std::string name;
  ControllerParams params;
};

/// Parse "NAME[:k=v,...]" (e.g. "pi:setpoint=640000,kp=0.8").  Throws
/// std::invalid_argument on malformed input (empty name, missing '=',
/// duplicate key).
[[nodiscard]] ControllerSpec parse_controller_spec(std::string_view spec);

/// String-keyed controller factory.  The global() registry holds the
/// built-in zoo; tests may register extras.  Thread-safe.
class ControllerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Controller>(const ControllerParams&)>;

  /// The process-wide registry, with the built-in zoo pre-registered.
  [[nodiscard]] static ControllerRegistry& global();

  /// Register a controller.  `help` is the one-line parameter summary
  /// shown by --help.  Throws std::invalid_argument on a duplicate name.
  void add(std::string name, std::string help, Factory factory);

  /// Build a controller from a spec string or a parsed spec.  Throws
  /// std::invalid_argument for an unknown name or a parameter the
  /// factory rejects.
  [[nodiscard]] std::unique_ptr<Controller> make(std::string_view spec) const;
  [[nodiscard]] std::unique_ptr<Controller> make(
      const ControllerSpec& spec) const;

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Multi-line "name — help" listing for --help output.
  [[nodiscard]] std::string help() const;

 private:
  struct Entry {
    std::string help;
    Factory factory;
  };
  // Guarded by an internal mutex (see .cpp); map iterators stay valid
  // across add() so concurrent make() is safe.
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Convenience: ControllerRegistry::global().make(spec).
[[nodiscard]] std::unique_ptr<Controller> make_controller(
    std::string_view spec);

/// Convenience: the global registry's --help listing.
[[nodiscard]] std::string controller_help();

// ---- Parameter helpers for factories -------------------------------
// All throw std::invalid_argument naming the controller and key on bad
// input, so `--controller pi:setpoint=abc` fails with a usable message.
namespace param {

[[nodiscard]] double get_double(const ControllerParams& params,
                                const std::string& controller,
                                const std::string& key, double fallback);
[[nodiscard]] double require_double(const ControllerParams& params,
                                    const std::string& controller,
                                    const std::string& key);
[[nodiscard]] std::optional<double> get_optional_double(
    const ControllerParams& params, const std::string& controller,
    const std::string& key);
[[nodiscard]] unsigned get_unsigned(const ControllerParams& params,
                                    const std::string& controller,
                                    const std::string& key, unsigned fallback);
[[nodiscard]] bool get_bool(const ControllerParams& params,
                            const std::string& controller,
                            const std::string& key, bool fallback);
/// Reject any key not in `known` (catches typos like "setpont=...").
void require_known(const ControllerParams& params,
                   const std::string& controller,
                   std::initializer_list<const char*> known);

}  // namespace param

}  // namespace procap::policy
