// actuators.hpp — software power-limiting techniques.
//
// The paper compares hardware power capping (RAPL) against DVFS (Fig. 5)
// and discusses DDCM as the other knob RAPL has access to; its reference
// [3] (Zhang & Hoffmann) frames the general question: hardware, software
// and hybrid capping techniques differ in how much performance they
// preserve at a given power level.  These classes implement the software
// side: feedback controllers that hold a package power target using one
// explicit knob each —
//
//   DvfsPowerLimiter  adjusts the P-state (IA32_PERF_CTL),
//   DdcmPowerLimiter  adjusts the duty cycle (IA32_CLOCK_MODULATION),
//
// both driven by energy-counter power measurements through the same
// RaplInterface a userspace tool would use (no firmware assistance).
// Their floors differ: DVFS bottoms out at f_min, DDCM can push duty to
// 1/16 but stretches memory stalls along with compute — which is exactly
// why the techniques rank differently for compute- and memory-bound
// applications.
#pragma once

#include "rapl/rapl.hpp"
#include "sim/engine.hpp"
#include "util/time.hpp"

namespace procap::policy {

/// Knob bounds for the software limiters.
struct ActuatorConfig {
  Hertz f_min = 1.2e9;
  Hertz f_max = 3.7e9;
  Hertz f_step = 1e8;
  double duty_min = 1.0 / 16.0;
  double duty_step = 1.0 / 16.0;
  /// Unthrottle when measured power < target - margin.
  Watts margin = 2.0;
};

/// Common interface: hold a package power target with one knob.
class PowerLimiter {
 public:
  virtual ~PowerLimiter() = default;

  /// Technique name for reports ("rapl", "dvfs", "ddcm").
  [[nodiscard]] virtual const char* name() const = 0;

  /// Hold package power at or below `target` from now on.
  virtual void set_target(Watts target) = 0;

  /// Remove the limit (full performance).
  virtual void release() = 0;

  /// One control step (no-op for hardware-enforced techniques).
  virtual void tick() {}

  /// Register periodic tick()s with the engine.
  void attach(sim::Engine& engine, Nanos interval = msec(100)) {
    engine.every(interval, [this](Nanos) { tick(); });
  }
};

/// Hardware technique: delegate to RAPL (PL1).
class RaplLimiter final : public PowerLimiter {
 public:
  explicit RaplLimiter(rapl::RaplInterface& rapl) : rapl_(&rapl) {}

  [[nodiscard]] const char* name() const override { return "rapl"; }
  void set_target(Watts target) override { rapl_->set_pkg_cap(target, 0.04); }
  void release() override { rapl_->clear_pkg_cap(); }

 private:
  rapl::RaplInterface* rapl_;
};

/// Software technique: P-state feedback controller.
class DvfsPowerLimiter final : public PowerLimiter {
 public:
  DvfsPowerLimiter(rapl::RaplInterface& rapl, ActuatorConfig config = {});

  [[nodiscard]] const char* name() const override { return "dvfs"; }
  void set_target(Watts target) override;
  void release() override;
  void tick() override;

  /// Currently requested frequency.
  [[nodiscard]] Hertz frequency() const { return f_; }

 private:
  rapl::RaplInterface* rapl_;
  ActuatorConfig config_;
  Watts target_ = 0.0;
  bool active_ = false;
  Hertz f_;
};

/// Software technique: duty-cycle (T-state) feedback controller.
/// The P-state stays at maximum; only clock modulation throttles.
class DdcmPowerLimiter final : public PowerLimiter {
 public:
  DdcmPowerLimiter(rapl::RaplInterface& rapl, ActuatorConfig config = {});

  [[nodiscard]] const char* name() const override { return "ddcm"; }
  void set_target(Watts target) override;
  void release() override;
  void tick() override;

  /// Currently requested duty factor.
  [[nodiscard]] double duty() const { return duty_; }

 private:
  rapl::RaplInterface* rapl_;
  ActuatorConfig config_;
  Watts target_ = 0.0;
  bool active_ = false;
  double duty_ = 1.0;
};

}  // namespace procap::policy
