#include "policy/pi_controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procap::policy {

PiController::PiController(PiConfig config)
    : config_(config), gain_(config.gain) {
  if (config.setpoint <= 0.0) {
    throw std::invalid_argument("PiController: setpoint must be positive");
  }
  if (config.gain <= 0.0 || config.gain_min <= 0.0 ||
      config.gain_max < config.gain_min) {
    throw std::invalid_argument("PiController: bad gain config");
  }
}

void PiController::reset() {
  gain_ = config_.gain;
  prev_error_.reset();
  prev_rate_.reset();
  prev_output_.reset();
  slope_.reset();
  degraded_ = false;
}

std::optional<Watts> PiController::decide(const Observation& observation,
                                          const CapBounds& bounds) {
  last_error_ = config_.setpoint - observation.progress_rate;
  if (!observation.signal_healthy || observation.windows == 0 ||
      observation.progress_rate <= 0.0) {
    // No trustworthy measurement: hold the actuator where it is.  The
    // velocity form has no integral state to pause.
    last_output_ = observation.applied_cap;
    return last_output_;
  }

  // Plant-slope estimate: normalized rate change per watt of cap change
  // between consecutive trustworthy decisions.  Only informative when
  // the cap actually moved.
  if (config_.adaptive && prev_rate_ && prev_output_ &&
      observation.applied_cap) {
    const Watts dcap = *observation.applied_cap - *prev_output_;
    if (std::abs(dcap) >= 0.5) {
      const double drate_n =
          (observation.progress_rate - *prev_rate_) / config_.setpoint;
      const double sample = drate_n / dcap;
      if (sample > 1e-9) {  // power-starved plants have positive slope
        slope_ = slope_ ? (1.0 - config_.slope_ema) * *slope_ +
                              config_.slope_ema * sample
                        : sample;
        // Deadbeat scale: one unit of normalized error wants 1/slope
        // watts of correction; kp/ki shape how fast we take it.
        gain_ = std::clamp(1.0 / *slope_, config_.gain_min, config_.gain_max);
      }
    }
  }

  const double error_n = last_error_ / config_.setpoint;
  const double delta_error = prev_error_ ? error_n - *prev_error_ : 0.0;
  const Watts current = observation.applied_cap.value_or(bounds.max_cap);
  const Watts unclamped =
      current + gain_ * (config_.kp * delta_error + config_.ki * error_n);
  const Watts output = bounds.clamp(unclamped);
  if (output != unclamped) {
    ++saturations_;
  }

  prev_error_ = error_n;
  prev_rate_ = observation.progress_rate;
  prev_output_ = observation.applied_cap;
  last_output_ = output;
  return last_output_;
}

ControllerStatus PiController::status() const {
  ControllerStatus status;
  status.setpoint = config_.setpoint;
  status.error = last_error_;
  status.output = last_output_;
  status.saturations = saturations_;
  status.degraded = degraded_;
  return status;
}

}  // namespace procap::policy
