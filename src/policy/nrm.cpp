#include "policy/nrm.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace procap::policy {

NodeResourceManager::NodeResourceManager(rapl::RaplInterface& rapl,
                                         progress::Monitor& monitor,
                                         const TimeSource& time_source,
                                         NrmConfig config)
    : rapl_(&rapl),
      monitor_(&monitor),
      time_(&time_source),
      config_(config),
      caps_("nrm_cap_watts"),
      rates_("nrm_progress") {}

void NodeResourceManager::apply(std::optional<Watts> cap) {
  if (cap == cap_) {
    return;
  }
  if (cap) {
    rapl_->set_pkg_cap(*cap);
  } else {
    rapl_->clear_pkg_cap();
  }
  cap_ = cap;
}

void NodeResourceManager::set_power_budget(Watts budget) {
  mode_ = Mode::kBudget;
  apply(std::clamp(budget, config_.min_cap, config_.max_cap));
  PROCAP_INFO << "nrm: hard budget " << budget << " W";
}

void NodeResourceManager::clear_power_budget() {
  mode_ = Mode::kUncapped;
  apply(std::nullopt);
}

void NodeResourceManager::set_progress_target(
    double rate, std::optional<model::ModelParams> params) {
  mode_ = Mode::kProgressTarget;
  target_rate_ = rate;
  if (params) {
    // Model-seeded initial cap (paper Section VI, modeling goal 3), with a
    // little headroom: feedback trims downward cheaply, but starting too
    // low costs visible progress.
    const Watts seed = model::pkg_cap_for_progress(*params, rate) * 1.05;
    apply(std::clamp(seed, config_.min_cap, config_.max_cap));
    PROCAP_INFO << "nrm: progress target " << rate << "/s, model seed cap "
                << *cap_ << " W";
  }
}

void NodeResourceManager::tick() {
  const Nanos now = time_->now();
  monitor_->poll();
  const double rate = monitor_->current_rate();
  rates_.add(now, rate);

  if (mode_ == Mode::kProgressTarget && monitor_->windows() > 0 &&
      rate > 0.0) {
    const double low = target_rate_;
    const double high = target_rate_ * (1.0 + config_.deadband);
    const Watts current = cap_.value_or(config_.max_cap);
    if (rate < low) {
      apply(std::min(current + config_.raise_step, config_.max_cap));
    } else if (rate > high) {
      apply(std::max(current - config_.lower_step, config_.min_cap));
    }
  }
  caps_.add(now, cap_.value_or(0.0));
}

void NodeResourceManager::attach(sim::Engine& engine, Nanos interval) {
  engine.every(interval, [this](Nanos) { tick(); });
}

}  // namespace procap::policy
