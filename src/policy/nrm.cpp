#include "policy/nrm.hpp"

#include <algorithm>
#include <stdexcept>

#include "msr/device.hpp"
#include "obs/alert.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace procap::policy {

const char* to_string(NodeResourceManager::Mode mode) {
  switch (mode) {
    case NodeResourceManager::Mode::kUncapped:
      return "uncapped";
    case NodeResourceManager::Mode::kBudget:
      return "budget";
    case NodeResourceManager::Mode::kProgressTarget:
      return "progress-target";
    case NodeResourceManager::Mode::kDegraded:
      return "degraded";
  }
  return "?";
}

NodeResourceManager::NodeResourceManager(rapl::RaplInterface& rapl,
                                         progress::Monitor& monitor,
                                         const TimeSource& time_source,
                                         NrmConfig config)
    : rapl_(&rapl),
      monitor_(&monitor),
      time_(&time_source),
      config_(config),
      latch_(config.reengage_after),
      caps_("nrm_cap_watts"),
      rates_("nrm_progress"),
      modes_("nrm_mode") {
  origin_ = time_->now();
}

void NodeResourceManager::apply(std::optional<Watts> cap) {
  // Invariant: never program a cap above the node budget, whatever mode
  // asked for it.
  if (cap && node_budget_) {
    cap = std::min(*cap, *node_budget_);
  }
  if (cap == cap_) {
    return;
  }
  try {
    if (cap) {
      rapl_->set_pkg_cap(*cap);
    } else {
      rapl_->clear_pkg_cap();
    }
  } catch (const msr::MsrError& e) {
    // Transient EIO: keep the old record so the next tick's apply()
    // naturally retries the actuation.
    ++failed_actuations_;
    PROCAP_OBS_COUNTER(failed_total, "nrm.failed_actuations");
    failed_total.inc();
    PROCAP_DEBUG << "nrm: actuation failed: " << e.what();
    return;
  }
  cap_ = cap;
}

void NodeResourceManager::transition(Mode to, std::string reason) {
  if (to == mode_) {
    return;
  }
  PROCAP_OBS_COUNTER(transitions_total, "nrm.transitions");
  PROCAP_OBS_GAUGE(mode_gauge, "nrm.mode");
  transitions_total.inc();
  mode_gauge.set(static_cast<double>(static_cast<int>(to)));
  events_.push_back(ModeEvent{time_->now(), mode_, to, reason});
  if (trace_ != nullptr) {
    trace_->mode_change(time_->now(), to_string(mode_), to_string(to),
                        reason);
  }
  PROCAP_INFO << "nrm: " << to_string(mode_) << " -> " << to_string(to)
              << " (" << reason << ")";
  mode_ = to;
}

void NodeResourceManager::set_power_budget(Watts budget) {
  transition(Mode::kBudget, "upper-layer budget directive");
  // The budget adapter decides once, on the directive (legacy kBudget
  // never re-evaluated per tick).
  controller_ = std::make_unique<BudgetController>(budget);
  origin_ = time_->now();
  Observation obs;
  obs.t = origin_;
  obs.applied_cap = cap_;
  apply(controller_->decide(obs, bounds()));
  PROCAP_INFO << "nrm: hard budget " << budget << " W";
}

void NodeResourceManager::clear_power_budget() {
  transition(Mode::kUncapped, "budget cleared");
  controller_.reset();
  apply(std::nullopt);
}

void NodeResourceManager::set_progress_target(
    double rate, std::optional<model::ModelParams> params) {
  transition(Mode::kProgressTarget, "progress target set");
  target_rate_ = rate;
  ProgressTargetConfig loop;
  loop.setpoint = rate;
  loop.deadband = config_.deadband;
  loop.raise_step = config_.raise_step;
  loop.lower_step = config_.lower_step;
  controller_ = std::make_unique<ProgressTargetController>(loop);
  origin_ = time_->now();
  latch_.reset();
  if (params) {
    // Model-seeded initial cap (paper Section VI, modeling goal 3), with a
    // little headroom: feedback trims downward cheaply, but starting too
    // low costs visible progress.
    const Watts seed = model::pkg_cap_for_progress(*params, rate) * 1.05;
    apply(std::clamp(seed, config_.min_cap, config_.max_cap));
    PROCAP_INFO << "nrm: progress target " << rate << "/s, model seed cap "
                << *cap_ << " W";
  }
}

void NodeResourceManager::set_controller(
    std::unique_ptr<Controller> controller) {
  if (!controller) {
    throw std::invalid_argument("NodeResourceManager: null controller");
  }
  transition(Mode::kProgressTarget,
             std::string("controller ") + controller->name());
  controller_ = std::move(controller);
  controller_->reset();
  target_rate_ = controller_->status().setpoint;
  origin_ = time_->now();
  latch_.reset();
}

void NodeResourceManager::set_node_budget(Watts budget) {
  node_budget_ = budget;
  // Re-apply so an already-programmed cap above the new ceiling comes
  // down immediately.
  if (cap_ && *cap_ > budget) {
    apply(cap_);
  }
}

void NodeResourceManager::watch_alerts(std::shared_ptr<msgbus::SubSocket> sub) {
  alert_watch_.watch(std::move(sub));
}

void NodeResourceManager::drain_alerts() {
  const std::size_t newly_fired = alert_watch_.drain();
  if (newly_fired > 0) {
    PROCAP_OBS_COUNTER(alert_degraded_total, "nrm.alert_degraded");
    alert_degraded_total.inc(newly_fired);
  }
}

void NodeResourceManager::tick() {
  const Nanos now = time_->now();
  drain_alerts();
  monitor_->poll();
  const double rate = monitor_->current_rate();
  rates_.add(now, rate);
  progress::SignalHealth health = monitor_->health();
  // A firing degrades_control alert overrides a locally-healthy signal:
  // the alert engine watches failure modes the Monitor cannot see.
  if (alert_watch_.any_firing() && health == progress::SignalHealth::kHealthy) {
    health = progress::SignalHealth::kDegraded;
  }

  if (mode_ == Mode::kProgressTarget) {
    if (health != progress::SignalHealth::kHealthy) {
      // Closing the loop on an untrustworthy feed chases phantom zeros
      // (paper Section V-C).  Fall back to open-loop power-only control.
      transition(Mode::kDegraded,
                 std::string("progress signal ") + to_string(health));
      ++degraded_entries_;
      PROCAP_OBS_COUNTER(degraded_total, "nrm.degraded_entries");
      degraded_total.inc();
      latch_.degrade();
      if (controller_) {
        controller_->degrade();
      }
      if (cap_) {
        apply(cap_);  // re-clamped to the node budget by apply()
      } else if (node_budget_) {
        apply(node_budget_);  // fail safe: bound power while blind
      }
    } else if (controller_) {
      // The closed-loop decision core: the legacy deadband loop rides
      // through ProgressTargetController (bit-identical, see the
      // controller goldens); custom controllers see the same feed.
      Observation obs;
      obs.t = now;
      obs.elapsed = to_seconds(now - origin_);
      obs.progress_rate = rate;
      obs.windows = monitor_->windows();
      obs.signal_healthy = true;
      obs.applied_cap = cap_;
      if (controller_->wants_power()) {
        // Only controllers that read power pay for the extra RAPL
        // traffic (the legacy loop never sampled it).
        try {
          obs.power = rapl_->pkg_power();
          obs.power_valid = true;
        } catch (const msr::MsrError& e) {
          PROCAP_DEBUG << "nrm: power read failed: " << e.what();
        }
      }
      apply(controller_->decide(obs, bounds()));
    }
  } else if (mode_ == Mode::kDegraded) {
    if (latch_.observe(health == progress::SignalHealth::kHealthy)) {
      // Hysteresis satisfied: the feed has been steady long enough to
      // trust the loop again.
      transition(Mode::kProgressTarget, "progress signal recovered");
      ++reengagements_;
      PROCAP_OBS_COUNTER(reengage_total, "nrm.reengagements");
      reengage_total.inc();
    }
  }

  caps_.add(now, cap_.value_or(0.0));
  modes_.add(now, static_cast<double>(static_cast<int>(mode_)));

  if (controller_) {
    // Same controller.* names the daemon exports: one node has one
    // active decision core, and the registry's find-or-create semantics
    // make the instruments shared.
    PROCAP_OBS_GAUGE(ctl_setpoint, "controller.setpoint");
    PROCAP_OBS_GAUGE(ctl_error, "controller.error");
    PROCAP_OBS_GAUGE(ctl_output, "controller.output_watts");
    PROCAP_OBS_COUNTER(ctl_saturations, "controller.saturations");
    const ControllerStatus st = controller_->status();
    ctl_setpoint.set(st.setpoint);
    ctl_error.set(st.error);
    ctl_output.set(st.output.value_or(0.0));
    if (st.saturations > exported_saturations_) {
      ctl_saturations.inc(st.saturations - exported_saturations_);
    }
    exported_saturations_ = st.saturations;
  }
}

void NodeResourceManager::attach(sim::Engine& engine, Nanos interval) {
  engine.every(interval, [this](Nanos) { tick(); });
}

}  // namespace procap::policy
