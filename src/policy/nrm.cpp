#include "policy/nrm.hpp"

#include <algorithm>

#include "msr/device.hpp"
#include "obs/alert.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace procap::policy {

const char* to_string(NodeResourceManager::Mode mode) {
  switch (mode) {
    case NodeResourceManager::Mode::kUncapped:
      return "uncapped";
    case NodeResourceManager::Mode::kBudget:
      return "budget";
    case NodeResourceManager::Mode::kProgressTarget:
      return "progress-target";
    case NodeResourceManager::Mode::kDegraded:
      return "degraded";
  }
  return "?";
}

NodeResourceManager::NodeResourceManager(rapl::RaplInterface& rapl,
                                         progress::Monitor& monitor,
                                         const TimeSource& time_source,
                                         NrmConfig config)
    : rapl_(&rapl),
      monitor_(&monitor),
      time_(&time_source),
      config_(config),
      latch_(config.reengage_after),
      caps_("nrm_cap_watts"),
      rates_("nrm_progress"),
      modes_("nrm_mode") {}

void NodeResourceManager::apply(std::optional<Watts> cap) {
  // Invariant: never program a cap above the node budget, whatever mode
  // asked for it.
  if (cap && node_budget_) {
    cap = std::min(*cap, *node_budget_);
  }
  if (cap == cap_) {
    return;
  }
  try {
    if (cap) {
      rapl_->set_pkg_cap(*cap);
    } else {
      rapl_->clear_pkg_cap();
    }
  } catch (const msr::MsrError& e) {
    // Transient EIO: keep the old record so the next tick's apply()
    // naturally retries the actuation.
    ++failed_actuations_;
    PROCAP_OBS_COUNTER(failed_total, "nrm.failed_actuations");
    failed_total.inc();
    PROCAP_DEBUG << "nrm: actuation failed: " << e.what();
    return;
  }
  cap_ = cap;
}

void NodeResourceManager::transition(Mode to, std::string reason) {
  if (to == mode_) {
    return;
  }
  PROCAP_OBS_COUNTER(transitions_total, "nrm.transitions");
  PROCAP_OBS_GAUGE(mode_gauge, "nrm.mode");
  transitions_total.inc();
  mode_gauge.set(static_cast<double>(static_cast<int>(to)));
  events_.push_back(ModeEvent{time_->now(), mode_, to, reason});
  if (trace_ != nullptr) {
    trace_->mode_change(time_->now(), to_string(mode_), to_string(to),
                        reason);
  }
  PROCAP_INFO << "nrm: " << to_string(mode_) << " -> " << to_string(to)
              << " (" << reason << ")";
  mode_ = to;
}

void NodeResourceManager::set_power_budget(Watts budget) {
  transition(Mode::kBudget, "upper-layer budget directive");
  apply(std::clamp(budget, config_.min_cap, config_.max_cap));
  PROCAP_INFO << "nrm: hard budget " << budget << " W";
}

void NodeResourceManager::clear_power_budget() {
  transition(Mode::kUncapped, "budget cleared");
  apply(std::nullopt);
}

void NodeResourceManager::set_progress_target(
    double rate, std::optional<model::ModelParams> params) {
  transition(Mode::kProgressTarget, "progress target set");
  target_rate_ = rate;
  latch_.reset();
  if (params) {
    // Model-seeded initial cap (paper Section VI, modeling goal 3), with a
    // little headroom: feedback trims downward cheaply, but starting too
    // low costs visible progress.
    const Watts seed = model::pkg_cap_for_progress(*params, rate) * 1.05;
    apply(std::clamp(seed, config_.min_cap, config_.max_cap));
    PROCAP_INFO << "nrm: progress target " << rate << "/s, model seed cap "
                << *cap_ << " W";
  }
}

void NodeResourceManager::set_node_budget(Watts budget) {
  node_budget_ = budget;
  // Re-apply so an already-programmed cap above the new ceiling comes
  // down immediately.
  if (cap_ && *cap_ > budget) {
    apply(cap_);
  }
}

void NodeResourceManager::watch_alerts(std::shared_ptr<msgbus::SubSocket> sub) {
  alert_watch_.watch(std::move(sub));
}

void NodeResourceManager::drain_alerts() {
  const std::size_t newly_fired = alert_watch_.drain();
  if (newly_fired > 0) {
    PROCAP_OBS_COUNTER(alert_degraded_total, "nrm.alert_degraded");
    alert_degraded_total.inc(newly_fired);
  }
}

void NodeResourceManager::tick() {
  const Nanos now = time_->now();
  drain_alerts();
  monitor_->poll();
  const double rate = monitor_->current_rate();
  rates_.add(now, rate);
  progress::SignalHealth health = monitor_->health();
  // A firing degrades_control alert overrides a locally-healthy signal:
  // the alert engine watches failure modes the Monitor cannot see.
  if (alert_watch_.any_firing() && health == progress::SignalHealth::kHealthy) {
    health = progress::SignalHealth::kDegraded;
  }

  if (mode_ == Mode::kProgressTarget) {
    if (health != progress::SignalHealth::kHealthy) {
      // Closing the loop on an untrustworthy feed chases phantom zeros
      // (paper Section V-C).  Fall back to open-loop power-only control.
      transition(Mode::kDegraded,
                 std::string("progress signal ") + to_string(health));
      ++degraded_entries_;
      PROCAP_OBS_COUNTER(degraded_total, "nrm.degraded_entries");
      degraded_total.inc();
      latch_.degrade();
      if (cap_) {
        apply(cap_);  // re-clamped to the node budget by apply()
      } else if (node_budget_) {
        apply(node_budget_);  // fail safe: bound power while blind
      }
    } else if (monitor_->windows() > 0 && rate > 0.0) {
      const double low = target_rate_;
      const double high = target_rate_ * (1.0 + config_.deadband);
      const Watts current = cap_.value_or(config_.max_cap);
      if (rate < low) {
        apply(std::min(current + config_.raise_step, config_.max_cap));
      } else if (rate > high) {
        apply(std::max(current - config_.lower_step, config_.min_cap));
      }
    }
  } else if (mode_ == Mode::kDegraded) {
    if (latch_.observe(health == progress::SignalHealth::kHealthy)) {
      // Hysteresis satisfied: the feed has been steady long enough to
      // trust the loop again.
      transition(Mode::kProgressTarget, "progress signal recovered");
      ++reengagements_;
      PROCAP_OBS_COUNTER(reengage_total, "nrm.reengagements");
      reengage_total.inc();
    }
  }

  caps_.add(now, cap_.value_or(0.0));
  modes_.add(now, static_cast<double>(static_cast<int>(mode_)));
}

void NodeResourceManager::attach(sim::Engine& engine, Nanos interval) {
  engine.every(interval, [this](Nanos) { tick(); });
}

}  // namespace procap::policy
