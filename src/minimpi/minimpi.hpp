// minimpi.hpp — a miniature in-process message-passing runtime.
//
// The paper's Listing 1 and its instrumented applications run under MPI;
// procap ships a small MPI-like runtime — ranks as threads inside one
// process — sufficient for the paper's single-node experiments: barrier
// (busy-wait semantics, so imbalance burns cycles exactly as MPI's
// polling barriers do), point-to-point send/recv, broadcast, allreduce,
// and wall-clock timing.  The real-thread Listing-1 example and the
// quickstart build on it.
//
//   minimpi::run_world(24, [](minimpi::RankCtx& ctx) {
//     do_work(ctx.rank(), ctx.size());
//     ctx.barrier();
//     if (ctx.rank() == 0) report();
//   });
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap::minimpi {

/// Reduction operators for allreduce.
enum class Op { kSum, kMin, kMax };

class World;

/// Per-rank handle passed to the rank body.
class RankCtx {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Seconds since the world launched (MPI_Wtime).
  [[nodiscard]] Seconds wtime() const;

  /// Block until all ranks arrive.  Busy-polls (with periodic yields),
  /// matching the spin-wait behaviour of MPI barriers on HPC systems.
  void barrier();

  /// Blocking tagged send to `dest` (buffered: returns once enqueued).
  void send(int dest, int tag, std::string data);

  /// Blocking tagged receive from `source`.
  [[nodiscard]] std::string recv(int source, int tag);

  /// Broadcast `value` from `root` to all ranks; returns the root's value.
  [[nodiscard]] double bcast(double value, int root);

  /// All-reduce `value` across ranks with `op`.
  [[nodiscard]] double allreduce(double value, Op op);

 private:
  friend class World;
  friend void run_world(int size, const std::function<void(RankCtx&)>& body);
  RankCtx(World& world, int rank) : world_(&world), rank_(rank) {}

  World* world_;
  int rank_;
};

/// Launch `size` ranks running `body` and join them.  Exceptions thrown
/// by any rank are rethrown (first one wins) after all ranks join.
void run_world(int size, const std::function<void(RankCtx&)>& body);

}  // namespace procap::minimpi
