#include "minimpi/minimpi.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <stdexcept>
#include <thread>

namespace procap::minimpi {

/// Shared state of one rank world.
class World {
 public:
  explicit World(int size) : size_(size), values_(static_cast<std::size_t>(size), 0.0) {
    start_ = std::chrono::steady_clock::now();
  }

  int size() const { return size_; }

  Seconds wtime() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(d).count();
  }

  // Sense-reversing barrier: the last arrival flips the sense; earlier
  // arrivals busy-poll on it (yielding periodically to stay fair on an
  // oversubscribed host).
  void barrier() {
    const bool sense = sense_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == size_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(!sense, std::memory_order_release);
    } else {
      unsigned spins = 0;
      while (sense_.load(std::memory_order_acquire) == sense) {
        if (++spins % 1024 == 0) {
          std::this_thread::yield();
        }
      }
    }
  }

  void send(int src, int dest, int tag, std::string data) {
    check_rank(dest);
    const std::lock_guard<std::mutex> lock(mutex_);
    mailboxes_[key(src, dest, tag)].push_back(std::move(data));
    cv_.notify_all();
  }

  std::string recv(int src, int dest, int tag) {
    check_rank(src);
    std::unique_lock<std::mutex> lock(mutex_);
    auto& box = mailboxes_[key(src, dest, tag)];
    cv_.wait(lock, [&] { return !box.empty(); });
    std::string data = std::move(box.front());
    box.pop_front();
    return data;
  }

  double bcast(int rank, double value, int root) {
    check_rank(root);
    if (rank == root) {
      bcast_value_ = value;
    }
    barrier();           // root's store happens-before everyone's load
    const double out = bcast_value_;
    barrier();           // nobody starts the next bcast until all read
    return out;
  }

  double allreduce(int rank, double value, Op op) {
    values_[static_cast<std::size_t>(rank)] = value;
    barrier();
    double result = values_[0];
    for (int r = 1; r < size_; ++r) {
      const double v = values_[static_cast<std::size_t>(r)];
      switch (op) {
        case Op::kSum:
          result += v;
          break;
        case Op::kMin:
          result = std::min(result, v);
          break;
        case Op::kMax:
          result = std::max(result, v);
          break;
      }
    }
    barrier();  // all ranks read before values_ is reused
    return result;
  }

 private:
  void check_rank(int r) const {
    if (r < 0 || r >= size_) {
      throw std::invalid_argument("minimpi: rank out of range");
    }
  }

  static std::uint64_t key(int src, int dest, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(src)) << 48) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dest)) << 32) |
           static_cast<std::uint32_t>(tag);
  }

  int size_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<int> arrived_{0};
  std::atomic<bool> sense_{false};
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::deque<std::string>> mailboxes_;
  std::vector<double> values_;
  double bcast_value_ = 0.0;
};

int RankCtx::size() const { return world_->size(); }
Seconds RankCtx::wtime() const { return world_->wtime(); }
void RankCtx::barrier() { world_->barrier(); }

void RankCtx::send(int dest, int tag, std::string data) {
  world_->send(rank_, dest, tag, std::move(data));
}

std::string RankCtx::recv(int source, int tag) {
  return world_->recv(source, rank_, tag);
}

double RankCtx::bcast(double value, int root) {
  return world_->bcast(rank_, value, root);
}

double RankCtx::allreduce(double value, Op op) {
  return world_->allreduce(rank_, value, op);
}

void run_world(int size, const std::function<void(RankCtx&)>& body) {
  if (size <= 0) {
    throw std::invalid_argument("run_world: size must be positive");
  }
  World world(size);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size));
  threads.reserve(static_cast<std::size_t>(size));
  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      try {
        RankCtx ctx(world, r);
        body(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (const auto& err : errors) {
    if (err) {
      std::rethrow_exception(err);
    }
  }
}

}  // namespace procap::minimpi
