#include "sim/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace procap::sim {

Nanos Component::advance(Nanos now, Nanos span, Nanos dt, SpanContext* ctx) {
  // Fallback for components that declare batched() but don't override:
  // drive the per-tick step the legacy way.
  (void)ctx;
  for (Nanos t = now; t < now + span; t += dt) {
    step(t, dt);
  }
  return span;
}

Engine::Engine(Nanos dt) : dt_(dt) {
  if (dt <= 0) {
    throw std::invalid_argument("Engine: dt must be positive");
  }
  const char* mode = std::getenv("PROCAP_SIM_ENGINE");
  if (mode != nullptr && std::strcmp(mode, "pertick") == 0) {
    per_tick_fallback_ = true;
  }
}

Engine::~Engine() {
  // Belt and braces for runs that end between flush boundaries: without
  // this, a destroyed engine leaves up to kObsFlushTicks - 1 ticks (and
  // their events) unreported.
  try {
    flush_obs();
  } catch (...) {
    // Registering the counters can allocate; never throw from a dtor.
  }
}

void Engine::add(Component& component) {
  components_.push_back(&component);
  if (component.batched()) {
    ++batched_components_;
  }
}

void Engine::at(Nanos t, std::function<void(Nanos)> fn) {
  if (t < clock_.now()) {
    throw std::invalid_argument("Engine::at: time in the past");
  }
  events_.push(Event{t, next_seq_++, 0, 0, std::move(fn)});
}

std::uint64_t Engine::every(Nanos period, std::function<void(Nanos)> fn,
                            Nanos phase) {
  if (period <= 0) {
    throw std::invalid_argument("Engine::every: period must be positive");
  }
  const std::uint64_t id = next_id_++;
  events_.push(Event{clock_.now() + phase, next_seq_++, id, period,
                     std::move(fn)});
  return id;
}

void Engine::cancel(std::uint64_t id) {
  if (id != 0) {
    cancelled_.push_back(id);
  }
}

Nanos Engine::ceil_tick(Nanos t) const {
  const Nanos r = t % dt_;
  return r == 0 ? t : t + (dt_ - r);
}

bool Engine::span_step(Nanos end) {
  const Nanos now = clock_.now();
  if (now >= end) {
    return false;
  }
  // 1. Fire due events.
  while (!events_.empty() && events_.top().due <= now) {
    Event ev = events_.top();
    events_.pop();
    if (ev.id != 0 &&
        std::find(cancelled_.begin(), cancelled_.end(), ev.id) !=
            cancelled_.end()) {
      continue;  // periodic event cancelled; drop without re-arming
    }
    ++events_fired_;
    ev.fn(now);
    if (ev.period > 0) {
      events_.push(Event{ev.due + ev.period, next_seq_++, ev.id, ev.period,
                         std::move(ev.fn)});
    }
  }
  // 2. Plan the span: run end, the tick boundary carrying the next
  // scheduled event, and the obs-flush boundary all cap it.  Whole spans
  // are only safe with a single batched component (several could
  // truncate at different points); mixed or legacy registrations clamp
  // to one tick, which is also the per-tick fallback mode.
  Nanos span_end = ceil_tick(end);
  if (!events_.empty()) {
    span_end = std::min(span_end, std::max(now + dt_,
                                           ceil_tick(events_.top().due)));
  }
  const std::uint64_t to_flush =
      kObsFlushTicks - (ticks_ & (kObsFlushTicks - 1));
  span_end = std::min(span_end, now + static_cast<Nanos>(to_flush) * dt_);
  const bool whole_spans = !per_tick_fallback_ && components_.size() == 1 &&
                           batched_components_ == 1;
  if (!whole_spans) {
    span_end = now + dt_;
  }

  // 3. Advance components.
  const Nanos span = span_end - now;
  Nanos consumed = span;
  SpanContext ctx(this);
  for (Component* c : components_) {
    if (c->batched()) {
      consumed = std::min(consumed, c->advance(now, span, dt_, &ctx));
    } else {
      c->step(now, dt_);
    }
  }

  // 4. Land the clock on the consumed span end and account the ticks.
  // The span planner never crosses a flush boundary, so the power-of-two
  // mask still detects it exactly under batched advance.
  clock_.set(now + consumed);
  ticks_ += static_cast<std::uint64_t>(consumed / dt_);
  if ((ticks_ & (kObsFlushTicks - 1)) == 0) {
    flush_obs();
  }
  return true;
}

void Engine::flush_obs() {
  PROCAP_OBS_COUNTER(ticks_total, "sim.ticks");
  PROCAP_OBS_COUNTER(events_total, "sim.events");
  ticks_total.inc(ticks_ - obs_flushed_ticks_);
  events_total.inc(events_fired_ - obs_flushed_events_);
  obs_flushed_ticks_ = ticks_;
  obs_flushed_events_ = events_fired_;
  // Give the live time-series sampler a chance to retain a snapshot; a
  // no-op (one atomic load) unless a Sampler is installed, and compiled
  // out entirely under PROCAP_OBS=OFF.
  obs::notify_flush(clock_.now());
}

void Engine::run_for(Nanos duration) {
  const Nanos end = clock_.now() + duration;
  stop_requested_ = false;
  while (!stop_requested_ && span_step(end)) {
  }
  flush_obs();
}

bool Engine::run_until(const std::function<bool()>& stop, Nanos max_duration) {
  const Nanos end = clock_.now() + max_duration;
  stop_requested_ = false;
  bool stopped = false;
  while (clock_.now() < end) {
    if (stop()) {
      stopped = true;
      break;
    }
    if (!span_step(end)) {
      break;
    }
    if (stop_requested_) {
      break;
    }
  }
  flush_obs();
  return stopped || stop();
}

}  // namespace procap::sim
