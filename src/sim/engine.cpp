#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace procap::sim {

Engine::Engine(Nanos dt) : dt_(dt) {
  if (dt <= 0) {
    throw std::invalid_argument("Engine: dt must be positive");
  }
}

Engine::~Engine() {
  // Belt and braces for runs that end between flush boundaries: without
  // this, a destroyed engine leaves up to kObsFlushTicks - 1 ticks (and
  // their events) unreported.
  try {
    flush_obs();
  } catch (...) {
    // Registering the counters can allocate; never throw from a dtor.
  }
}

void Engine::add(Component& component) { components_.push_back(&component); }

void Engine::at(Nanos t, std::function<void(Nanos)> fn) {
  if (t < clock_.now()) {
    throw std::invalid_argument("Engine::at: time in the past");
  }
  events_.push(Event{t, next_seq_++, 0, 0, std::move(fn)});
}

std::uint64_t Engine::every(Nanos period, std::function<void(Nanos)> fn,
                            Nanos phase) {
  if (period <= 0) {
    throw std::invalid_argument("Engine::every: period must be positive");
  }
  const std::uint64_t id = next_id_++;
  events_.push(Event{clock_.now() + phase, next_seq_++, id, period,
                     std::move(fn)});
  return id;
}

void Engine::cancel(std::uint64_t id) {
  if (id != 0) {
    cancelled_.push_back(id);
  }
}

void Engine::tick() {
  const Nanos now = clock_.now();
  // 1. Fire due events.
  while (!events_.empty() && events_.top().due <= now) {
    Event ev = events_.top();
    events_.pop();
    if (ev.id != 0 &&
        std::find(cancelled_.begin(), cancelled_.end(), ev.id) !=
            cancelled_.end()) {
      continue;  // periodic event cancelled; drop without re-arming
    }
    ++events_fired_;
    ev.fn(now);
    if (ev.period > 0) {
      events_.push(Event{ev.due + ev.period, next_seq_++, ev.id, ev.period,
                         std::move(ev.fn)});
    }
  }
  // 2. Step components.
  for (Component* c : components_) {
    c->step(now, dt_);
  }
  // 3. Advance time.
  clock_.advance(dt_);
  ++ticks_;
  // The tick loop runs at ~MHz in simulation; per-tick atomic counter
  // traffic would dominate it (the perf-labelled overhead test caught
  // exactly that).  Batch into plain members and flush deltas rarely.
  if ((ticks_ & (kObsFlushTicks - 1)) == 0) {
    flush_obs();
  }
}

void Engine::flush_obs() {
  PROCAP_OBS_COUNTER(ticks_total, "sim.ticks");
  PROCAP_OBS_COUNTER(events_total, "sim.events");
  ticks_total.inc(ticks_ - obs_flushed_ticks_);
  events_total.inc(events_fired_ - obs_flushed_events_);
  obs_flushed_ticks_ = ticks_;
  obs_flushed_events_ = events_fired_;
  // Give the live time-series sampler a chance to retain a snapshot; a
  // no-op (one atomic load) unless a Sampler is installed, and compiled
  // out entirely under PROCAP_OBS=OFF.
  obs::notify_flush(clock_.now());
}

void Engine::run_for(Nanos duration) {
  const Nanos end = clock_.now() + duration;
  while (clock_.now() < end) {
    tick();
  }
  flush_obs();
}

bool Engine::run_until(const std::function<bool()>& stop, Nanos max_duration) {
  const Nanos end = clock_.now() + max_duration;
  bool stopped = false;
  while (clock_.now() < end) {
    if (stop()) {
      stopped = true;
      break;
    }
    tick();
  }
  flush_obs();
  return stopped || stop();
}

}  // namespace procap::sim
