// engine.hpp — fixed-step discrete-time simulation engine.
//
// The hardware substrate integrates power and executes workload segments
// in fixed ticks (default 1 ms, matching the granularity of RAPL's own
// control loop).  The engine owns the simulated clock; everything else —
// the message bus, progress monitors, the power-policy daemon — takes the
// clock as a TimeSource, so the identical component code also runs on
// wall-clock time outside the simulator.
//
// Tick semantics at time t:
//   1. scheduled events with due <= t fire (in due order, FIFO for ties);
//   2. components step over [t, t + dt), in registration order;
//   3. the clock advances to t + dt.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"
#include "util/units.hpp"

namespace procap::sim {

/// Anything stepped by the engine each tick.
class Component {
 public:
  virtual ~Component() = default;
  /// Advance the component over the interval [now, now + dt).
  virtual void step(Nanos now, Nanos dt) = 0;
};

/// Fixed-step simulation driver.
class Engine {
 public:
  /// `dt` is the tick length; must be positive.
  explicit Engine(Nanos dt = msec(1));

  /// Flushes any residual batched obs deltas (short runs, manual stops)
  /// so tick/event counters never under-report.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Simulation clock, usable anywhere a TimeSource is needed.
  [[nodiscard]] const TimeSource& time() const { return clock_; }

  /// Current simulation time.
  [[nodiscard]] Nanos now() const { return clock_.now(); }

  /// Tick length.
  [[nodiscard]] Nanos dt() const { return dt_; }

  /// Register a component; it is stepped every tick, in registration
  /// order, for the lifetime of the engine.  Not owned.
  void add(Component& component);

  /// Schedule `fn` once at absolute time `t` (>= now).
  void at(Nanos t, std::function<void(Nanos)> fn);

  /// Schedule `fn` every `period` ns, first firing at now + phase.
  /// Returns an id usable with cancel().
  std::uint64_t every(Nanos period, std::function<void(Nanos)> fn,
                      Nanos phase = 0);

  /// Cancel a periodic callback; pending one-shot firings are dropped.
  void cancel(std::uint64_t id);

  /// Run for `duration` ns of simulated time.
  void run_for(Nanos duration);

  /// Run until `stop()` returns true (checked each tick) or `max_duration`
  /// elapses.  Returns true if the predicate stopped the run.
  bool run_until(const std::function<bool()>& stop, Nanos max_duration);

  /// Total ticks executed.
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  struct Event {
    Nanos due;
    std::uint64_t seq;       // FIFO tie-break
    std::uint64_t id;        // periodic id, 0 for one-shot
    Nanos period;            // 0 for one-shot
    std::function<void(Nanos)> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  void tick();
  /// Publish batched tick/event deltas to the metrics registry.
  void flush_obs();

  /// Flush cadence for batched counters (power of two; the hot loop
  /// tests `ticks_ & (kObsFlushTicks - 1)`).
  static constexpr std::uint64_t kObsFlushTicks = 4096;
  static_assert(kObsFlushTicks != 0 &&
                    (kObsFlushTicks & (kObsFlushTicks - 1)) == 0,
                "kObsFlushTicks must be a power of two: the tick loop "
                "masks with (kObsFlushTicks - 1)");

  Nanos dt_;
  ManualTimeSource clock_;
  std::vector<Component*> components_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::vector<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t ticks_ = 0;
  std::uint64_t events_fired_ = 0;
  std::uint64_t obs_flushed_ticks_ = 0;
  std::uint64_t obs_flushed_events_ = 0;
};

}  // namespace procap::sim
