// engine.hpp — event-driven discrete-time simulation engine.
//
// The simulated hardware integrates power and executes workload segments
// on a fixed tick grid (default 1 ms, matching the granularity of RAPL's
// own control loop), but the engine no longer *steps* that grid: between
// "interesting" times — scheduled callbacks, obs-flush boundaries, a
// component's own internal events — it hands a component a whole span and
// the component advances analytically (closed-form integration of energy,
// progress and counters).  The engine owns the simulated clock;
// everything else — the message bus, progress monitors, the power-policy
// daemon — takes the clock as a TimeSource, so the identical component
// code also runs on wall-clock time outside the simulator.
//
// Span semantics starting at time t:
//   1. scheduled events with due <= t fire (in due order, FIFO for ties);
//   2. the engine picks the span end: the earliest of the run end, the
//      first tick boundary at or after the next scheduled event, and the
//      next obs-flush boundary;
//   3. batched components advance over (t, t + span]; legacy components
//      are stepped per tick (their presence clamps spans to one tick);
//   4. the clock lands on the consumed span end (a tick boundary).
//
// Exactness contract (see DESIGN.md §13): a batched component must
// produce bit-identical state for any partition of a span into sub-spans,
// which it achieves by mutating state only at *event points* (segment
// completions, operating-point changes, control decisions) and treating
// every observable between events as a pure function of (state at the
// last event, current time).  The per-tick fallback engine
// (`PROCAP_SIM_ENGINE=pertick`, or set_per_tick_fallback) drives the very
// same advance() code one tick at a time, so batched == per-tick is
// checked in CI rather than assumed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"
#include "util/units.hpp"

namespace procap::sim {

class Engine;

/// Handed to batched components during advance(): lets a component sync
/// the engine clock onto the tick containing an internal event before it
/// runs side effects (message publishes, progress reports), and exposes
/// the engine's stop flag so a span can be truncated as soon as a stop
/// condition fires inside it.
class SpanContext {
 public:
  explicit SpanContext(Engine* engine) : engine_(engine) {}

  /// Move the simulated clock forward to `t` (no-op if in the past: the
  /// clock never goes backwards).  `t` should be the start of the tick
  /// containing the internal event being processed.
  void at_time(Nanos t);

  /// True once Engine::request_stop() was called: the component should
  /// finish the current event burst and return early.
  [[nodiscard]] bool stop_requested() const;

 private:
  Engine* engine_;
};

/// Anything advanced by the engine.  Legacy components implement step()
/// and are driven tick by tick; batched components additionally override
/// batched()/advance() and get whole spans.
class Component {
 public:
  virtual ~Component() = default;

  /// Advance the component over the interval [now, now + dt).
  virtual void step(Nanos now, Nanos dt) = 0;

  /// True if the component supports span-batched advancement.
  [[nodiscard]] virtual bool batched() const { return false; }

  /// Advance over (now, now + span]; `span` is a positive multiple of
  /// `dt`.  Returns the consumed span (== `span`, or a smaller multiple
  /// of `dt` when truncating on ctx->stop_requested()).  The default
  /// implementation drives step() per tick.
  virtual Nanos advance(Nanos now, Nanos span, Nanos dt, SpanContext* ctx);
};

/// Event-driven simulation driver.
class Engine {
 public:
  /// `dt` is the tick length; must be positive.  The per-tick fallback
  /// engine is selected when the PROCAP_SIM_ENGINE environment variable
  /// is "pertick" (CI uses this to prove batched == per-tick).
  explicit Engine(Nanos dt = msec(1));

  /// Flushes any residual batched obs deltas (short runs, manual stops)
  /// so tick/event counters never under-report.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Simulation clock, usable anywhere a TimeSource is needed.
  [[nodiscard]] const TimeSource& time() const { return clock_; }

  /// Current simulation time.
  [[nodiscard]] Nanos now() const { return clock_.now(); }

  /// Tick length.
  [[nodiscard]] Nanos dt() const { return dt_; }

  /// Register a component; it is advanced every span, in registration
  /// order, for the lifetime of the engine.  Not owned.
  void add(Component& component);

  /// Schedule `fn` once at absolute time `t` (>= now).  It fires with
  /// the clock on the first tick boundary at or after `t`.
  void at(Nanos t, std::function<void(Nanos)> fn);

  /// Schedule `fn` every `period` ns, first firing at now + phase.
  /// Returns an id usable with cancel().
  std::uint64_t every(Nanos period, std::function<void(Nanos)> fn,
                      Nanos phase = 0);

  /// Cancel a periodic callback; pending one-shot firings are dropped.
  void cancel(std::uint64_t id);

  /// Run for `duration` ns of simulated time.
  void run_for(Nanos duration);

  /// Run until `stop()` returns true (checked at every span boundary; a
  /// component calling request_stop() forces a boundary) or
  /// `max_duration` elapses.  Returns true if the predicate stopped the
  /// run.
  bool run_until(const std::function<bool()>& stop, Nanos max_duration);

  /// Ask the current run to stop at the next tick boundary.  Safe to
  /// call from event callbacks and from inside Component::advance();
  /// batched components see it through SpanContext::stop_requested().
  void request_stop() { stop_requested_ = true; }

  /// Force one-tick spans even for batched components.  CI's determinism
  /// job uses this (via PROCAP_SIM_ENGINE=pertick) to prove the batched
  /// engine's results bit-identical to per-tick execution.
  void set_per_tick_fallback(bool on) { per_tick_fallback_ = on; }
  [[nodiscard]] bool per_tick_fallback() const { return per_tick_fallback_; }

  /// Total ticks executed (spans count each covered tick).
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

  /// Flush cadence for batched counters (power of two; spans never cross
  /// a flush boundary, so the check `ticks_ & (kObsFlushTicks - 1)`
  /// still lands exactly on it under batched advance).
  static constexpr std::uint64_t kObsFlushTicks = 4096;
  static_assert(kObsFlushTicks != 0 &&
                    (kObsFlushTicks & (kObsFlushTicks - 1)) == 0,
                "kObsFlushTicks must be a power of two: the span planner "
                "masks with (kObsFlushTicks - 1)");

 private:
  friend class SpanContext;

  struct Event {
    Nanos due;
    std::uint64_t seq;       // FIFO tie-break
    std::uint64_t id;        // periodic id, 0 for one-shot
    Nanos period;            // 0 for one-shot
    std::function<void(Nanos)> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.due != b.due ? a.due > b.due : a.seq > b.seq;
    }
  };

  /// Fire due events, then advance components over one span ending no
  /// later than `end`.  Returns false when nothing was advanced (`end`
  /// reached).
  bool span_step(Nanos end);
  /// Publish batched tick/event deltas to the metrics registry.
  void flush_obs();
  /// First tick boundary at or after `t`.
  [[nodiscard]] Nanos ceil_tick(Nanos t) const;

  Nanos dt_;
  ManualTimeSource clock_;
  std::vector<Component*> components_;
  unsigned batched_components_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::vector<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t ticks_ = 0;
  std::uint64_t events_fired_ = 0;
  std::uint64_t obs_flushed_ticks_ = 0;
  std::uint64_t obs_flushed_events_ = 0;
  bool per_tick_fallback_ = false;
  bool stop_requested_ = false;
};

// Inline: batched components call these once per internal event.
inline void SpanContext::at_time(Nanos t) {
  if (t > engine_->clock_.now()) {
    engine_->clock_.set(t);
  }
}

inline bool SpanContext::stop_requested() const {
  return engine_->stop_requested_;
}

}  // namespace procap::sim
