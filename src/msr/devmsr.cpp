#include "msr/devmsr.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace procap::msr {

std::string DevMsr::path_for(unsigned cpu) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), pattern_.c_str(), cpu);
  return std::string(buf);
}

bool DevMsr::available(const std::string& path_pattern) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), path_pattern.c_str(), 0U);
  const int fd = ::open(buf, O_RDONLY);
  if (fd < 0) {
    return false;
  }
  ::close(fd);
  return true;
}

DevMsr::DevMsr(unsigned cpu_count, std::string path_pattern)
    : cpu_count_(cpu_count), pattern_(std::move(path_pattern)) {
  if (cpu_count == 0) {
    throw MsrError("DevMsr: need at least one CPU");
  }
  fds_.assign(cpu_count, -1);
  // Fail fast if the device is absent, rather than on the first read.
  fds_[0] = ::open(path_for(0).c_str(), O_RDWR);
  if (fds_[0] < 0) {
    fds_[0] = ::open(path_for(0).c_str(), O_RDONLY);
  }
  if (fds_[0] < 0) {
    throw MsrError("DevMsr: cannot open " + path_for(0) +
                   " (msr module loaded? permissions?)");
  }
}

DevMsr::~DevMsr() {
  for (const int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

int DevMsr::fd_for(unsigned cpu) {
  if (cpu >= cpu_count_) {
    throw MsrError("DevMsr: cpu out of range");
  }
  if (fds_[cpu] < 0) {
    fds_[cpu] = ::open(path_for(cpu).c_str(), O_RDWR);
    if (fds_[cpu] < 0) {
      fds_[cpu] = ::open(path_for(cpu).c_str(), O_RDONLY);
    }
    if (fds_[cpu] < 0) {
      throw MsrError("DevMsr: cannot open " + path_for(cpu));
    }
  }
  return fds_[cpu];
}

std::uint64_t DevMsr::read(unsigned cpu, std::uint32_t reg) {
  std::uint64_t value = 0;
  const ssize_t n = ::pread(fd_for(cpu), &value, sizeof(value), reg);
  if (n != sizeof(value)) {
    throw MsrError("DevMsr: pread failed for register " +
                   std::to_string(reg));
  }
  return value;
}

void DevMsr::write(unsigned cpu, std::uint32_t reg, std::uint64_t value) {
  const ssize_t n = ::pwrite(fd_for(cpu), &value, sizeof(value), reg);
  if (n != sizeof(value)) {
    throw MsrError("DevMsr: pwrite failed for register " +
                   std::to_string(reg));
  }
}

}  // namespace procap::msr
