#include "msr/msrsafe.hpp"

#include <sstream>

#include "msr/addresses.hpp"

namespace procap::msr {

void AllowList::allow(std::uint32_t reg, std::uint64_t write_mask) {
  entries_[reg] = write_mask;
}

bool AllowList::readable(std::uint32_t reg) const {
  return entries_.contains(reg);
}

std::uint64_t AllowList::write_mask(std::uint32_t reg) const {
  const auto it = entries_.find(reg);
  return it == entries_.end() ? 0 : it->second;
}

AllowList AllowList::parse(const std::string& text) {
  AllowList list;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream fields(line);
    std::string reg_str;
    std::string mask_str;
    if (!(fields >> reg_str)) {
      continue;  // blank line
    }
    if (!(fields >> mask_str)) {
      throw MsrError("AllowList::parse: missing mask on line " +
                     std::to_string(line_no));
    }
    std::string extra;
    if (fields >> extra) {
      throw MsrError("AllowList::parse: trailing tokens on line " +
                     std::to_string(line_no));
    }
    try {
      const auto reg = std::stoull(reg_str, nullptr, 16);
      const auto mask = std::stoull(mask_str, nullptr, 16);
      if (reg > 0xFFFFFFFFULL) {
        throw MsrError("AllowList::parse: register out of range on line " +
                       std::to_string(line_no));
      }
      list.allow(static_cast<std::uint32_t>(reg), mask);
    } catch (const std::invalid_argument&) {
      throw MsrError("AllowList::parse: bad hex on line " +
                     std::to_string(line_no));
    } catch (const std::out_of_range&) {
      throw MsrError("AllowList::parse: value out of range on line " +
                     std::to_string(line_no));
    }
  }
  return list;
}

AllowList AllowList::rapl_default() {
  AllowList list;
  list.allow(kIa32Mperf, 0);
  list.allow(kIa32Aperf, 0);
  list.allow(kIa32PerfStatus, 0);
  // PERF_CTL: target ratio in bits 15:8 plus turbo-disengage bit 32.
  list.allow(kIa32PerfCtl, 0x1'0000'FF00ULL);
  // CLOCK_MODULATION: duty cycle in bits 3:0 (extended), enable bit 4.
  list.allow(kIa32ClockModulation, 0x1F);
  list.allow(kMsrRaplPowerUnit, 0);
  // PKG_POWER_LIMIT: PL1/PL2 fields writable, lock bit not.
  list.allow(kMsrPkgPowerLimit, 0x00FF'FFFF'00FF'FFFFULL);
  list.allow(kMsrPkgEnergyStatus, 0);
  list.allow(kMsrPkgPowerInfo, 0);
  list.allow(kMsrDramPowerLimit, 0x0000'0000'00FF'FFFFULL);
  list.allow(kMsrDramEnergyStatus, 0);
  return list;
}

SafeMsrDevice::SafeMsrDevice(MsrDevice& inner, AllowList allow_list)
    : inner_(inner), allow_(std::move(allow_list)) {}

std::uint64_t SafeMsrDevice::read(unsigned cpu, std::uint32_t reg) {
  if (!allow_.readable(reg)) {
    ++denied_;
    throw MsrError("SafeMsrDevice: read denied");
  }
  return inner_.read(cpu, reg);
}

void SafeMsrDevice::write(unsigned cpu, std::uint32_t reg,
                          std::uint64_t value) {
  const std::uint64_t mask = allow_.write_mask(reg);
  if (mask == 0) {
    ++denied_;
    throw MsrError("SafeMsrDevice: write denied");
  }
  // msr-safe semantics: read-modify-write, touching only writable bits.
  const std::uint64_t current = inner_.read(cpu, reg);
  inner_.write(cpu, reg, (current & ~mask) | (value & mask));
}

unsigned SafeMsrDevice::cpu_count() const { return inner_.cpu_count(); }

}  // namespace procap::msr
