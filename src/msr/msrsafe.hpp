// msrsafe.hpp — allow-list mediated MSR access.
//
// On the paper's testbed, unprivileged power control goes through the
// msr-safe kernel module, which exposes only allow-listed registers and
// masks writable bits per register.  SafeMsrDevice reproduces that
// mediation as a decorator over any MsrDevice, including parsing of the
// msr-safe allow-list text format:
//
//   # MSR        # Write mask
//   0x610        0x00000000FFFFFFFF
//   0x611        0x0000000000000000
//
// A zero write mask makes a register read-only; absent registers are not
// readable at all.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "msr/device.hpp"

namespace procap::msr {

/// Set of accessible registers with per-register writable-bit masks.
class AllowList {
 public:
  /// Permit reads of `reg`; writes may modify only bits set in `write_mask`.
  void allow(std::uint32_t reg, std::uint64_t write_mask);

  /// True if `reg` may be read.
  [[nodiscard]] bool readable(std::uint32_t reg) const;

  /// Writable-bit mask for `reg` (0 if read-only or not listed).
  [[nodiscard]] std::uint64_t write_mask(std::uint32_t reg) const;

  /// Number of allow-listed registers.
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Parse the msr-safe text format: one "MSR mask" pair per line, both in
  /// hex; '#' starts a comment.  Throws MsrError on malformed input.
  [[nodiscard]] static AllowList parse(const std::string& text);

  /// Allow-list covering everything procap's RAPL and DVFS stack touches
  /// (the registers in msr/addresses.hpp, with SDM-correct write masks).
  [[nodiscard]] static AllowList rapl_default();

 private:
  std::map<std::uint32_t, std::uint64_t> entries_;
};

/// Decorator enforcing an AllowList over an underlying device, as the
/// msr-safe kernel module does.  Denied reads throw; denied write bits
/// are silently masked off (msr-safe semantics), but a write to a fully
/// read-only or unlisted register throws.
class SafeMsrDevice final : public MsrDevice {
 public:
  /// `inner` must outlive this device.
  SafeMsrDevice(MsrDevice& inner, AllowList allow_list);

  [[nodiscard]] std::uint64_t read(unsigned cpu, std::uint32_t reg) override;
  void write(unsigned cpu, std::uint32_t reg, std::uint64_t value) override;
  [[nodiscard]] unsigned cpu_count() const override;

  /// Count of accesses rejected so far (reads + writes).
  [[nodiscard]] std::uint64_t denied() const { return denied_; }

 private:
  MsrDevice& inner_;
  AllowList allow_;
  std::uint64_t denied_ = 0;
};

}  // namespace procap::msr
