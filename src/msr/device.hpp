// device.hpp — abstract MSR device.
//
// Mirrors the access model of /dev/cpu/<n>/msr and the msr-safe character
// devices: 64-bit reads and writes addressed by (cpu, register).  procap
// ships an emulated backend (src/msr/emulated.hpp) wired to the hardware
// simulator; the same interface would be trivially implemented over pread/
// pwrite on the real device files.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace procap::msr {

/// Error raised on invalid or denied MSR accesses.
class MsrError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// 64-bit read/write access to model-specific registers.
class MsrDevice {
 public:
  virtual ~MsrDevice() = default;

  /// Read register `reg` on logical CPU `cpu`.
  /// Throws MsrError for unknown registers or out-of-range CPUs.
  [[nodiscard]] virtual std::uint64_t read(unsigned cpu, std::uint32_t reg) = 0;

  /// Write register `reg` on logical CPU `cpu`.
  /// Throws MsrError for unknown/read-only registers or out-of-range CPUs.
  virtual void write(unsigned cpu, std::uint32_t reg, std::uint64_t value) = 0;

  /// Number of logical CPUs exposed by this device.
  [[nodiscard]] virtual unsigned cpu_count() const = 0;
};

}  // namespace procap::msr
