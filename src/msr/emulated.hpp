// emulated.hpp — software MSR register file.
//
// Each (cpu, register) cell holds a 64-bit value; registers can also be
// declared with read/write hooks so that a hardware model can expose live
// state (e.g. MSR_PKG_ENERGY_STATUS reads the simulator's accumulated
// energy) and react to writes (e.g. MSR_PKG_POWER_LIMIT reprograms the
// RAPL firmware controller).  Unhooked registers behave as plain storage.
//
// A fault hook lets the device fail the way /dev/cpu/*/msr does in the
// wild: any access can raise a transient EIO (MsrError), and writes can
// be silently swallowed ("stuck" registers).  The hook is consulted
// before the register is touched, so a failed read never observes the
// value and a stuck write never lands.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "msr/device.hpp"

namespace procap::msr {

/// In-memory MSR device with optional per-register hooks.
class EmulatedMsr final : public MsrDevice {
 public:
  using ReadHook = std::function<std::uint64_t(unsigned cpu)>;
  using WriteHook = std::function<void(unsigned cpu, std::uint64_t value)>;

  /// What an injected fault does to one access.
  enum class FaultAction {
    kNone,       ///< access proceeds normally
    kFailEio,    ///< access throws MsrError (transient EIO)
    kDropWrite,  ///< write silently ignored (stuck register); reads normal
  };
  using FaultHook =
      std::function<FaultAction(unsigned cpu, std::uint32_t reg, bool write)>;

  /// Create a device exposing `cpu_count` logical CPUs.
  explicit EmulatedMsr(unsigned cpu_count);

  /// Declare a register (same initial value on every CPU).  Registers must
  /// be declared before they can be read or written.
  void define(std::uint32_t reg, std::uint64_t initial_value = 0);

  /// Attach a read hook: reads of `reg` return the hook's value instead of
  /// the stored one.  The register must already be defined.
  void on_read(std::uint32_t reg, ReadHook hook);

  /// Attach a write hook, called after the stored value is updated.
  void on_write(std::uint32_t reg, WriteHook hook);

  /// Install (or clear, with an empty function) the device-wide fault
  /// hook.  Consulted on every read()/write() before the register is
  /// accessed; poke()/peek() bypass it (they model backdoor state, not
  /// bus transactions).
  void set_fault_hook(FaultHook hook);

  /// Accesses rejected with an injected EIO / writes swallowed as stuck.
  [[nodiscard]] std::uint64_t faulted_accesses() const;
  [[nodiscard]] std::uint64_t dropped_writes() const;

  /// Direct backdoor for hardware models: set the stored value without
  /// triggering hooks (e.g. to publish PERF_STATUS).
  void poke(unsigned cpu, std::uint32_t reg, std::uint64_t value);

  /// Direct backdoor read without triggering hooks.
  [[nodiscard]] std::uint64_t peek(unsigned cpu, std::uint32_t reg) const;

  // MsrDevice:
  [[nodiscard]] std::uint64_t read(unsigned cpu, std::uint32_t reg) override;
  void write(unsigned cpu, std::uint32_t reg, std::uint64_t value) override;
  [[nodiscard]] unsigned cpu_count() const override { return cpu_count_; }

 private:
  struct Register {
    std::vector<std::uint64_t> per_cpu;
    ReadHook read_hook;
    WriteHook write_hook;
  };

  Register& find(std::uint32_t reg);
  const Register& find(std::uint32_t reg) const;
  void check_cpu(unsigned cpu) const;

  unsigned cpu_count_;
  mutable std::mutex mutex_;
  std::map<std::uint32_t, Register> registers_;
  FaultHook fault_hook_;
  std::uint64_t faulted_accesses_ = 0;
  std::uint64_t dropped_writes_ = 0;
};

}  // namespace procap::msr
