#include "msr/emulated.hpp"

#include <sstream>

namespace procap::msr {

namespace {
std::string hex(std::uint32_t reg) {
  std::ostringstream os;
  os << "0x" << std::hex << reg;
  return os.str();
}
}  // namespace

EmulatedMsr::EmulatedMsr(unsigned cpu_count) : cpu_count_(cpu_count) {
  if (cpu_count == 0) {
    throw MsrError("EmulatedMsr: need at least one CPU");
  }
}

void EmulatedMsr::define(std::uint32_t reg, std::uint64_t initial_value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = registers_.try_emplace(reg);
  if (inserted) {
    it->second.per_cpu.assign(cpu_count_, initial_value);
  }
}

EmulatedMsr::Register& EmulatedMsr::find(std::uint32_t reg) {
  const auto it = registers_.find(reg);
  if (it == registers_.end()) {
    throw MsrError("EmulatedMsr: undefined register " + hex(reg));
  }
  return it->second;
}

const EmulatedMsr::Register& EmulatedMsr::find(std::uint32_t reg) const {
  const auto it = registers_.find(reg);
  if (it == registers_.end()) {
    throw MsrError("EmulatedMsr: undefined register " + hex(reg));
  }
  return it->second;
}

void EmulatedMsr::check_cpu(unsigned cpu) const {
  if (cpu >= cpu_count_) {
    throw MsrError("EmulatedMsr: cpu out of range");
  }
}

void EmulatedMsr::on_read(std::uint32_t reg, ReadHook hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  find(reg).read_hook = std::move(hook);
}

void EmulatedMsr::on_write(std::uint32_t reg, WriteHook hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  find(reg).write_hook = std::move(hook);
}

void EmulatedMsr::set_fault_hook(FaultHook hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fault_hook_ = std::move(hook);
}

std::uint64_t EmulatedMsr::faulted_accesses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return faulted_accesses_;
}

std::uint64_t EmulatedMsr::dropped_writes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_writes_;
}

void EmulatedMsr::poke(unsigned cpu, std::uint32_t reg, std::uint64_t value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_cpu(cpu);
  find(reg).per_cpu[cpu] = value;
}

std::uint64_t EmulatedMsr::peek(unsigned cpu, std::uint32_t reg) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_cpu(cpu);
  return find(reg).per_cpu[cpu];
}

std::uint64_t EmulatedMsr::read(unsigned cpu, std::uint32_t reg) {
  ReadHook hook;
  FaultHook fault;
  std::uint64_t stored = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check_cpu(cpu);
    Register& r = find(reg);
    hook = r.read_hook;
    stored = r.per_cpu[cpu];
    fault = fault_hook_;
  }
  // Hooks run outside the lock: they may call back into poke()/peek().
  if (fault && fault(cpu, reg, /*write=*/false) == FaultAction::kFailEio) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++faulted_accesses_;
    throw MsrError("EmulatedMsr: injected EIO reading " + hex(reg));
  }
  return hook ? hook(cpu) : stored;
}

void EmulatedMsr::write(unsigned cpu, std::uint32_t reg, std::uint64_t value) {
  FaultHook fault;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check_cpu(cpu);
    find(reg);  // validate before consulting the fault hook
    fault = fault_hook_;
  }
  if (fault) {
    switch (fault(cpu, reg, /*write=*/true)) {
      case FaultAction::kNone:
        break;
      case FaultAction::kFailEio: {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++faulted_accesses_;
        throw MsrError("EmulatedMsr: injected EIO writing " + hex(reg));
      }
      case FaultAction::kDropWrite: {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++dropped_writes_;
        return;  // stuck register: the value never lands, no write hook
      }
    }
  }
  WriteHook hook;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check_cpu(cpu);
    Register& r = find(reg);
    r.per_cpu[cpu] = value;
    hook = r.write_hook;
  }
  if (hook) {
    hook(cpu, value);
  }
}

}  // namespace procap::msr
