// addresses.hpp — model-specific register addresses used by procap.
//
// Addresses and field layouts follow the Intel Software Developer's Manual
// Vol. 4 (RAPL interfaces, ACPI P-state control, clock modulation).  The
// emulated backend implements the same registers so that the rapl/ codec
// and any tooling written against it would work unchanged against real
// /dev/cpu/*/msr or msr-safe device files.
#pragma once

#include <cstdint>

namespace procap::msr {

/// Register addresses (Intel SDM Vol. 4).
enum : std::uint32_t {
  /// IA32_MPERF: fixed-frequency reference cycle counter.
  kIa32Mperf = 0xE7,
  /// IA32_APERF: actual-frequency cycle counter.  APERF/MPERF over an
  /// interval gives the average effective frequency ratio.
  kIa32Aperf = 0xE8,
  /// IA32_PERF_STATUS: currently resolved P-state (ratio in bits 15:8).
  kIa32PerfStatus = 0x198,
  /// IA32_PERF_CTL: requested P-state (ratio in bits 15:8).
  kIa32PerfCtl = 0x199,
  /// IA32_CLOCK_MODULATION: on-demand clock modulation (T-state) control.
  kIa32ClockModulation = 0x19A,
  /// IA32_THERM_STATUS: digital thermal sensor readout (bits 22:16 hold
  /// the margin below Tj_max) and PROCHOT status (bit 0).
  kIa32ThermStatus = 0x19C,
  /// MSR_RAPL_POWER_UNIT: power/energy/time unit exponents.
  kMsrRaplPowerUnit = 0x606,
  /// MSR_PKG_POWER_LIMIT: package domain power limits PL1/PL2.
  kMsrPkgPowerLimit = 0x610,
  /// MSR_PKG_ENERGY_STATUS: package energy consumed (32-bit, wraps).
  kMsrPkgEnergyStatus = 0x611,
  /// MSR_PKG_POWER_INFO: TDP / min / max power, max time window.
  kMsrPkgPowerInfo = 0x614,
  /// MSR_DRAM_POWER_LIMIT: DRAM domain power limit.
  kMsrDramPowerLimit = 0x618,
  /// MSR_DRAM_ENERGY_STATUS: DRAM energy consumed (32-bit, wraps).
  kMsrDramEnergyStatus = 0x619,
};

}  // namespace procap::msr
