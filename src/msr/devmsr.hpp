// devmsr.hpp — real MSR access through /dev/cpu/<n>/msr.
//
// The same MsrDevice interface the emulated backend implements, over the
// Linux msr driver's character devices (or msr-safe's /dev/cpu/<n>/msr_safe
// by passing that pattern).  Register offsets are the file offsets; reads
// and writes are 8-byte pread/pwrite calls — exactly what libmsr does.
//
// procap's simulated experiments never need this class; it exists so the
// RAPL stack above MsrDevice is demonstrably hardware-ready: point
// RaplInterface at a DevMsr on a machine with the msr module loaded and
// the power-policy tool runs against real RAPL.
#pragma once

#include <string>
#include <vector>

#include "msr/device.hpp"

namespace procap::msr {

/// MsrDevice over /dev/cpu/<n>/msr-style character devices.
class DevMsr final : public MsrDevice {
 public:
  /// `path_pattern` must contain one "%u" that receives the CPU number.
  /// Throws MsrError if CPU 0's device cannot be opened (no msr module,
  /// no permission, or not on Linux).
  explicit DevMsr(unsigned cpu_count,
                  std::string path_pattern = "/dev/cpu/%u/msr");
  ~DevMsr() override;

  DevMsr(const DevMsr&) = delete;
  DevMsr& operator=(const DevMsr&) = delete;

  /// True if `path_pattern` for CPU 0 exists and is openable read-only.
  [[nodiscard]] static bool available(
      const std::string& path_pattern = "/dev/cpu/%u/msr");

  [[nodiscard]] std::uint64_t read(unsigned cpu, std::uint32_t reg) override;
  void write(unsigned cpu, std::uint32_t reg, std::uint64_t value) override;
  [[nodiscard]] unsigned cpu_count() const override { return cpu_count_; }

 private:
  [[nodiscard]] int fd_for(unsigned cpu);
  [[nodiscard]] std::string path_for(unsigned cpu) const;

  unsigned cpu_count_;
  std::string pattern_;
  std::vector<int> fds_;  // lazily opened, -1 = not yet
};

}  // namespace procap::msr
