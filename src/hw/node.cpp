#include "hw/node.hpp"

#include <algorithm>
#include <cmath>

#include "msr/addresses.hpp"
#include "rapl/codec.hpp"
#include "rapl/rapl.hpp"

namespace procap::hw {

namespace {
const rapl::RaplUnits kUnits = rapl::RaplUnits::skylake();
}

Node::Node(const NodeSpec& spec) : spec_(spec) {
  for (unsigned p = 0; p < spec_.packages; ++p) {
    packages_.push_back(std::make_unique<Package>(spec_.cpu));
  }
  msr_ = std::make_unique<msr::EmulatedMsr>(cpu_count());
  wire_msrs();
}

unsigned Node::cpu_count() const {
  return spec_.packages * spec_.cpu.cores_per_package;
}

unsigned Node::pkg_of(unsigned cpu) const {
  return cpu / spec_.cpu.cores_per_package;
}

CoreHandle Node::core(unsigned cpu) {
  return packages_.at(pkg_of(cpu))
      ->core(cpu % spec_.cpu.cores_per_package);
}

std::vector<unsigned> Node::package_leaders() const {
  std::vector<unsigned> leaders;
  for (unsigned p = 0; p < spec_.packages; ++p) {
    leaders.push_back(p * spec_.cpu.cores_per_package);
  }
  return leaders;
}

void Node::wire_msrs() {
  using namespace procap::msr;
  auto& dev = *msr_;
  auto pkg = [this](unsigned cpu) -> Package& {
    return *packages_[pkg_of(cpu)];
  };

  dev.define(kMsrRaplPowerUnit, rapl::RaplUnits::encode(3, 14, 10));

  dev.define(kMsrPkgEnergyStatus);
  dev.on_read(kMsrPkgEnergyStatus, [pkg](unsigned cpu) -> std::uint64_t {
    return rapl::encode_energy(pkg(cpu).energy(), kUnits);
  });

  // Power-on default: PL1 at TDP, disabled.
  rapl::PkgPowerLimit default_limit;
  default_limit.pl1.power = spec_.cpu.tdp;
  default_limit.pl1.time_window = 0.01;
  default_limit.pl1.enabled = false;
  dev.define(kMsrPkgPowerLimit, default_limit.encode(kUnits));
  dev.on_write(kMsrPkgPowerLimit, [pkg](unsigned cpu, std::uint64_t value) {
    pkg(cpu).firmware().program(rapl::PkgPowerLimit::decode(value, kUnits));
  });

  // PKG_POWER_INFO: TDP in power units (bits 14:0).
  dev.define(kMsrPkgPowerInfo,
             static_cast<std::uint64_t>(
                 std::llround(spec_.cpu.tdp / kUnits.power_unit)) &
                 0x7FFF);

  dev.define(kIa32PerfCtl, rapl::encode_perf_ctl(spec_.cpu.f_max));
  dev.on_write(kIa32PerfCtl, [pkg](unsigned cpu, std::uint64_t value) {
    pkg(cpu).request_frequency(rapl::decode_perf_status(value));
  });

  dev.define(kIa32PerfStatus);
  dev.on_read(kIa32PerfStatus, [pkg](unsigned cpu) -> std::uint64_t {
    return rapl::encode_perf_ctl(pkg(cpu).frequency());
  });

  dev.define(kIa32ClockModulation, 0);
  dev.on_write(kIa32ClockModulation, [pkg](unsigned cpu, std::uint64_t value) {
    pkg(cpu).request_duty(rapl::decode_clock_modulation(value));
  });

  // APERF: cycles at the effective frequency while not halted.
  dev.define(kIa32Aperf);
  dev.on_read(kIa32Aperf, [this](unsigned cpu) -> std::uint64_t {
    return static_cast<std::uint64_t>(core(cpu).counters().core_cycles);
  });

  // MPERF: fixed-reference cycles while not halted (we count wall-clock
  // reference cycles; the APERF/MPERF ratio still tracks effective speed).
  dev.define(kIa32Mperf);
  dev.on_read(kIa32Mperf, [this](unsigned cpu) -> std::uint64_t {
    return static_cast<std::uint64_t>(core(cpu).counters().ref_cycles);
  });

  // THERM_STATUS: digital readout = Tj_max - T in bits 22:16 (Tj_max
  // fixed at 100 C, the usual Skylake value), PROCHOT status in bit 0.
  dev.define(kIa32ThermStatus);
  dev.on_read(kIa32ThermStatus, [pkg](unsigned cpu) -> std::uint64_t {
    const double margin =
        std::clamp(100.0 - pkg(cpu).temperature(), 0.0, 127.0);
    std::uint64_t raw = static_cast<std::uint64_t>(std::llround(margin))
                        << 16;
    if (pkg(cpu).prochot_active()) {
      raw |= 1;
    }
    return raw;
  });

  // DRAM domain: a separate power rail with its own energy counter and
  // limit register; the limit is enforced by bandwidth throttling.
  dev.define(kMsrDramEnergyStatus);
  dev.on_read(kMsrDramEnergyStatus, [pkg](unsigned cpu) -> std::uint64_t {
    return rapl::encode_energy(pkg(cpu).dram_energy(), kUnits);
  });
  rapl::PkgPowerLimit dram_limit;
  dram_limit.pl1.power = 40.0;
  dram_limit.pl1.time_window = 0.04;
  dram_limit.pl1.enabled = false;
  dev.define(kMsrDramPowerLimit, dram_limit.encode(kUnits) & 0xFFFFFFFFULL);
  dev.on_write(kMsrDramPowerLimit, [pkg](unsigned cpu, std::uint64_t value) {
    pkg(cpu).dram_firmware().program(
        rapl::PkgPowerLimit::decode(value & 0xFFFFFFFFULL, kUnits));
  });
}

void Node::step(Nanos now, Nanos dt) {
  for (auto& p : packages_) {
    p->step(now, dt);
  }
}

Nanos Node::advance(Nanos now, Nanos span, Nanos dt, sim::SpanContext* ctx) {
  const double target = static_cast<double>(now + span);
  double reached = target;
  for (auto& p : packages_) {
    reached = p->advance_to(target, ctx);
  }
  // Stop truncation: report the partially consumed span (rounded up to a
  // whole tick) so the engine lands the clock just past the stop event.
  // Only exact with a single package — with several, the earlier packages
  // already advanced to the full target before the stop fired, so the
  // span must be reported fully consumed to keep them in sync.
  if (packages_.size() == 1 && reached < target) {
    const double delta = reached - static_cast<double>(now);
    Nanos ticks =
        static_cast<Nanos>(std::ceil(delta / static_cast<double>(dt)));
    ticks = std::max<Nanos>(ticks, 1);
    return std::min(span, ticks * dt);
  }
  return span;
}

}  // namespace procap::hw
