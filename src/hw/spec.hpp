// spec.hpp — parameters of the simulated processor package.
//
// The defaults model the paper's testbed class (Skylake server, 24 cores,
// 1200-3300 MHz nominal plus turbo headroom to 3700 MHz).  Power follows
// the standard CMOS decomposition:
//
//   P_core(f, a) = dyn_coeff * f[GHz] * V(f)^2 * a  +  core_static
//
// with activity factor `a` depending on what the core is doing (computing,
// stalled on memory, spinning at a barrier, clock-gated, idle).  Voltage
// is piecewise linear in frequency, with a steep turbo segment above the
// nominal maximum: the local power-law exponent alpha — P ~ f^alpha —
// ranges from ~2.3 in the DVFS band to ~4 in the turbo band.  The paper's
// analytic model assumes a single alpha = 2, so simulator-vs-model
// disagreement is structural and regime-dependent, exactly as observed on
// real RAPL hardware (paper Section VI: overestimates at mild caps,
// underestimates at stringent ones).
//
// Uncore power = uncore_static + bandwidth * uncore_bw_watts_per_gbps;
// it is proportional to memory traffic and *not* scaled by core DVFS,
// which is what makes RAPL application-aware (paper Fig. 2): a memory-
// bound workload spends the package budget on the uncore and is forced
// to a lower core frequency under the same cap.
#pragma once

#include "util/units.hpp"

namespace procap::hw {

/// Static description of one processor package.
struct CpuSpec {
  unsigned cores_per_package = 24;

  Hertz f_min = mhz(1200);
  /// Nominal (non-turbo) maximum — the paper's "maximum frequency of
  /// 3300 MHz"; DVFS pinning for beta probes uses this.
  Hertz f_nominal = mhz(3300);
  /// Turbo ceiling.  The paper's testbed ran with Turbo-Boost enabled, so
  /// *uncapped* execution sits in the turbo region, where voltage rises
  /// steeply (local alpha ~ 4).  Mild power caps therefore shed a lot of
  /// power for little frequency — the regime where the paper's alpha = 2
  /// model OVERESTIMATES the progress impact (Fig. 4b/4c).
  Hertz f_max = mhz(3700);
  /// DVFS granularity (P-state bins).
  Hertz f_step = mhz(100);

  /// Core voltage: piecewise linear through (f_min, v_min),
  /// (f_nominal, v_nominal), (f_max, v_turbo).  The turbo segment is
  /// deliberately steep.
  double v_min = 0.55;
  double v_nominal = 1.05;
  double v_turbo = 1.25;

  /// Dynamic-power coefficient: watts per GHz per volt^2 per core.
  double dyn_coeff = 0.93;
  /// Per-core leakage (frequency-independent).
  Watts core_static = 0.4;

  /// Uncore (L3, memory controller) idle power.
  Watts uncore_static = 6.0;
  /// Uncore power per GB/s of memory traffic.
  double uncore_bw_watts_per_gbps = 0.25;
  /// Non-core, non-uncore package overhead.
  Watts package_base = 4.0;

  /// DRAM domain (separate RAPL domain, not part of package power):
  /// device background power plus a per-GB/s term.
  Watts dram_static = 3.0;
  double dram_bw_watts_per_gbps = 0.30;

  /// Thermal model (opt-in; default off so calibrated power numbers are
  /// temperature-independent).  Single-RC package thermal node:
  ///   T' = (T_ambient + R_th * P_pkg - T) / tau
  /// with leakage scaling linearly in temperature around t_ref, and a
  /// PROCHOT trip that clamps the frequency to f_min until the package
  /// cools below (t_prochot - prochot_hysteresis).  Power capping lowers
  /// the steady temperature — the "thermal headroom" effect the paper's
  /// Section VII discussion (Bhalachandra et al.) appeals to.
  bool thermal_enabled = false;
  double t_ambient = 40.0;           ///< deg C at the heatsink
  double thermal_resistance = 0.25;  ///< deg C per package watt
  Seconds thermal_tau = 8.0;         ///< RC time constant
  double leakage_temp_coeff = 0.008; ///< fractional leakage per deg C
  double t_leak_ref = 70.0;          ///< temperature where core_static holds
  double t_prochot = 96.0;           ///< thermal-throttle trip point
  double prochot_hysteresis = 4.0;   ///< deg C below trip to disengage

  /// Activity factors by core occupation.  A memory-stalled core still
  /// burns most of its dynamic power (outstanding loads, prefetchers, the
  /// in-core memory machinery), which — together with the bandwidth-
  /// proportional uncore term — is why a memory-bound workload leaves
  /// *less* budget for frequency under a package cap (paper Fig. 2).
  double compute_activity = 1.00;
  double stall_activity = 0.75;  ///< waiting on memory
  double spin_activity = 0.85;   ///< busy-wait (barrier / MPI poll)
  double gated_activity = 0.05;  ///< clock-gated by duty modulation
  double idle_activity = 0.03;
  double sleep_activity = 0.03;  ///< blocked in the OS (usleep)

  /// Instructions retired per cycle while spinning (pause loop).
  double spin_ipc = 2.0;

  /// Thermal design power (reported in MSR_PKG_POWER_INFO and used as the
  /// default PL1 value before any cap is programmed).
  Watts tdp = 165.0;

  /// Duty-modulation granularity: duty levels are multiples of 1/16
  /// (6.25 %), the extended IA32_CLOCK_MODULATION encoding.
  static constexpr double kDutyStep = 1.0 / 16.0;

  /// Core voltage at frequency `f` (clamped to the DVFS range).
  [[nodiscard]] double voltage(Hertz f) const;

  /// Clamp to [f_min, f_max] and snap down to the nearest f_step bin.
  [[nodiscard]] Hertz clamp_frequency(Hertz f) const;

  /// Clamp to (0, 1] and snap to the 1/16 duty grid (minimum 1/16).
  [[nodiscard]] double snap_duty(double duty) const;

  /// Dynamic power of one core at frequency `f` and activity `a`.
  [[nodiscard]] Watts core_dynamic_power(Hertz f, double activity) const;

  /// Number of DVFS bins between f_min and f_max inclusive.
  [[nodiscard]] unsigned frequency_bins() const;

  /// Effective alpha exponent between two frequencies:
  /// log(P(f2)/P(f1)) / log(f2/f1).  Diagnostic for tests and docs.
  [[nodiscard]] double effective_alpha(Hertz f1, Hertz f2) const;

  /// Defaults modeling a Skylake-server-class 24-core package.
  [[nodiscard]] static CpuSpec skylake24();
};

}  // namespace procap::hw
