// firmware.hpp — the in-package RAPL enforcement controller.
//
// Given a programmed PL1 (power, time window, enable), the firmware keeps
// the *running average* package power at or below the limit, the contract
// Intel documents for RAPL.  Its actuators, in the order it uses them:
//
//   1. DVFS: lower the package frequency ceiling one bin per control step
//      while the average exceeds the cap; raise it when there is headroom.
//   2. Duty-cycle modulation: once the ceiling sits at f_min and the
//      average still exceeds the cap, gate the clock in 1/16 steps.
//
// Recovery is symmetric in reverse (duty back to 1.0 first, then
// frequency).  A small hysteresis margin below the cap prevents limit
// cycling; the residual one-bin dither around the equilibrium is
// intentional — real RAPL behaves the same way and it is what quantizes
// measured progress into the plateaus of paper Fig. 4b.
//
// No published work describes RAPL's true internals (paper Section V-A);
// this controller implements the paper's *assumptions* about it plus the
// documented actuators, which is exactly the fidelity the evaluation needs.
#pragma once

#include "hw/spec.hpp"
#include "rapl/codec.hpp"
#include "util/units.hpp"

namespace procap::hw {

/// RAPL running-average power-limit controller for one package.
class RaplFirmware {
 public:
  explicit RaplFirmware(const CpuSpec& spec);

  /// Program new limits (the effect of writing MSR_PKG_POWER_LIMIT).
  void program(const rapl::PkgPowerLimit& limit);

  /// Currently programmed limits.
  [[nodiscard]] const rapl::PkgPowerLimit& limit() const { return limit_; }

  /// Feed one control step: instantaneous package power over the last
  /// `dt`.  Updates the running average every step; moves the actuators
  /// at most once per half time-window, so the average has settled when
  /// the next decision is taken (otherwise the filter lag produces a deep
  /// limit cycle no real RAPL implementation exhibits).
  void observe(Watts instantaneous_power, Nanos dt);

  /// One actuation decision against running average `avg` — the body of
  /// observe() after its rate limit.  The event-driven package keeps the
  /// average itself and calls this on its own decision schedule.
  void decide(Watts avg);

  /// Write-through of the externally maintained running average so
  /// running_average() stays meaningful when the package drives decide()
  /// directly instead of observe().
  void set_average(Watts avg, bool primed) {
    avg_ = avg;
    avg_primed_ = primed;
  }

  /// True once since the last program() call; lets the package notice a
  /// reprogram (from any caller) and rebuild its decision schedule.
  [[nodiscard]] bool take_reprogram() {
    const bool r = reprogram_pending_;
    reprogram_pending_ = false;
    return r;
  }

  /// Firmware frequency ceiling (f_max when uncapped).
  [[nodiscard]] Hertz frequency_cap() const { return freq_cap_; }

  /// Firmware duty-cycle ceiling (1.0 when uncapped).
  [[nodiscard]] double duty_cap() const { return duty_cap_; }

  /// Running-average power as the controller sees it.
  [[nodiscard]] Watts running_average() const { return avg_; }

  /// True when PL1 is enabled.
  [[nodiscard]] bool enforcing() const { return limit_.pl1.enabled; }

 private:
  const CpuSpec* spec_;
  rapl::PkgPowerLimit limit_;
  Watts avg_ = 0.0;
  bool avg_primed_ = false;
  Hertz freq_cap_;
  double duty_cap_ = 1.0;
  Nanos since_last_move_ = 0;
  bool reprogram_pending_ = false;

  /// Hysteresis: unthrottle only when avg < cap - margin.
  static constexpr Watts kMargin = 1.5;
};

/// DRAM-domain power-limit controller: enforces a DRAM power cap by
/// throttling memory-request retirement (bandwidth) in 1/16 steps — the
/// mechanism memory controllers actually use for DRAM RAPL.  Same
/// running-average contract and actuation rate limiting as the package
/// controller.
class DramFirmware {
 public:
  explicit DramFirmware(const CpuSpec& spec) : spec_(&spec) {}

  /// Program the DRAM limit (the effect of writing MSR_DRAM_POWER_LIMIT;
  /// only PL1 of the decoded value is honoured).
  void program(const rapl::PkgPowerLimit& limit);

  [[nodiscard]] const rapl::PkgPowerLimit& limit() const { return limit_; }

  /// Feed one control step of instantaneous DRAM power.
  void observe(Watts dram_power, Nanos dt);

  /// One throttle decision against running average `avg` (see
  /// RaplFirmware::decide).
  void decide(Watts avg);

  void set_average(Watts avg, bool primed) {
    avg_ = avg;
    avg_primed_ = primed;
  }

  [[nodiscard]] bool take_reprogram() {
    const bool r = reprogram_pending_;
    reprogram_pending_ = false;
    return r;
  }

  /// Current bandwidth-throttle factor in [1/16, 1].
  [[nodiscard]] double throttle() const { return throttle_; }

  [[nodiscard]] Watts running_average() const { return avg_; }
  [[nodiscard]] bool enforcing() const { return limit_.pl1.enabled; }

 private:
  const CpuSpec* spec_;
  rapl::PkgPowerLimit limit_;
  Watts avg_ = 0.0;
  bool avg_primed_ = false;
  double throttle_ = 1.0;
  Nanos since_last_move_ = 0;
  bool reprogram_pending_ = false;

  static constexpr Watts kMargin = 0.5;
  static constexpr double kStep = 1.0 / 16.0;
};

}  // namespace procap::hw
