// node.hpp — a simulated compute node with its MSR surface.
//
// Node composes one or more Packages and exposes them through an emulated
// MSR device, wiring the registers in msr/addresses.hpp to live package
// state.  Everything above this layer — RaplInterface, the power-policy
// daemon, the counters module — accesses the hardware exactly as it would
// on a real machine: through MSR reads and writes (optionally mediated by
// an msr-safe allow-list).
//
// Logical CPU numbering: package p owns CPUs
// [p * cores_per_package, (p+1) * cores_per_package).
#pragma once

#include <memory>
#include <vector>

#include "hw/package.hpp"
#include "msr/emulated.hpp"
#include "sim/engine.hpp"

namespace procap::hw {

/// Node-level configuration.
struct NodeSpec {
  CpuSpec cpu = CpuSpec::skylake24();
  unsigned packages = 1;
};

/// Simulated node: packages + emulated MSR device.
class Node : public sim::Component {
 public:
  explicit Node(const NodeSpec& spec = NodeSpec{});

  [[nodiscard]] unsigned package_count() const {
    return static_cast<unsigned>(packages_.size());
  }
  [[nodiscard]] Package& package(unsigned p = 0) { return *packages_.at(p); }
  [[nodiscard]] const Package& package(unsigned p = 0) const {
    return *packages_.at(p);
  }

  /// Total logical CPUs across packages.
  [[nodiscard]] unsigned cpu_count() const;

  /// Core behind a global CPU index (value-type handle).
  [[nodiscard]] CoreHandle core(unsigned cpu);

  /// The MSR device exposing this node's registers.
  [[nodiscard]] msr::EmulatedMsr& msr() { return *msr_; }

  /// First logical CPU of each package (for RaplInterface construction).
  [[nodiscard]] std::vector<unsigned> package_leaders() const;

  // sim::Component: span-batched — packages advance analytically between
  // internal events instead of being stepped every tick.
  void step(Nanos now, Nanos dt) override;
  [[nodiscard]] bool batched() const override { return true; }
  Nanos advance(Nanos now, Nanos span, Nanos dt,
                sim::SpanContext* ctx) override;

 private:
  void wire_msrs();
  [[nodiscard]] unsigned pkg_of(unsigned cpu) const;

  NodeSpec spec_;
  std::vector<std::unique_ptr<Package>> packages_;
  std::unique_ptr<msr::EmulatedMsr> msr_;
};

}  // namespace procap::hw
