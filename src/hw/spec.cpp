#include "hw/spec.hpp"

#include <algorithm>
#include <cmath>

namespace procap::hw {

double CpuSpec::voltage(Hertz f) const {
  const Hertz fc = std::clamp(f, f_min, f_max);
  if (fc <= f_nominal) {
    const double t = (fc - f_min) / (f_nominal - f_min);
    return v_min + t * (v_nominal - v_min);
  }
  const double t = (fc - f_nominal) / (f_max - f_nominal);
  return v_nominal + t * (v_turbo - v_nominal);
}

Hertz CpuSpec::clamp_frequency(Hertz f) const {
  const Hertz fc = std::clamp(f, f_min, f_max);
  const double bins = std::floor((fc - f_min) / f_step + 1e-9);
  return f_min + bins * f_step;
}

double CpuSpec::snap_duty(double duty) const {
  const double clamped = std::clamp(duty, kDutyStep, 1.0);
  return std::round(clamped / kDutyStep) * kDutyStep;
}

Watts CpuSpec::core_dynamic_power(Hertz f, double activity) const {
  const double v = voltage(f);
  return dyn_coeff * as_ghz(f) * v * v * activity;
}

unsigned CpuSpec::frequency_bins() const {
  return static_cast<unsigned>(std::round((f_max - f_min) / f_step)) + 1;
}

double CpuSpec::effective_alpha(Hertz f1, Hertz f2) const {
  const double p1 = core_dynamic_power(f1, 1.0);
  const double p2 = core_dynamic_power(f2, 1.0);
  return std::log(p2 / p1) / std::log(f2 / f1);
}

CpuSpec CpuSpec::skylake24() { return CpuSpec{}; }

}  // namespace procap::hw
