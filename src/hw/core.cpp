#include "hw/core.hpp"

#include <algorithm>
#include <stdexcept>

namespace procap::hw {

namespace {
constexpr double kRefClockHz = 100e6;
// Fraction of a segment's bytes/instructions attributed to consuming
// `consumed` out of `initial` units of it.
double prorate(double total, double consumed, double initial) {
  return initial > 0.0 ? total * (consumed / initial) : total;
}
}  // namespace

void Core::push_compute(double cycles, double instructions) {
  if (cycles < 0.0 || instructions < 0.0) {
    throw std::invalid_argument("Core::push_compute: negative amount");
  }
  if (cycles == 0.0) {
    counters_.instructions += instructions;  // zero-latency bookkeeping
    return;
  }
  queue_.push_back(Segment{SegmentKind::kCompute, cycles, cycles, 0.0,
                           instructions});
}

void Core::push_memory(Seconds stall, double bytes, double instructions) {
  if (stall < 0.0 || bytes < 0.0 || instructions < 0.0) {
    throw std::invalid_argument("Core::push_memory: negative amount");
  }
  if (stall == 0.0) {
    counters_.instructions += instructions;
    counters_.l3_misses += bytes / 64.0;
    return;
  }
  queue_.push_back(
      Segment{SegmentKind::kMemory, stall, stall, bytes, instructions});
}

void Core::push_sleep(Seconds duration, double instructions) {
  if (duration < 0.0) {
    throw std::invalid_argument("Core::push_sleep: negative duration");
  }
  if (duration == 0.0) {
    return;
  }
  queue_.push_back(
      Segment{SegmentKind::kSleep, duration, duration, 0.0, instructions});
}

CoreTickUsage Core::step(Nanos now, Nanos dt, Hertz f, double duty,
                         double mem_throttle) {
  CoreTickUsage usage;
  double wall_left = to_seconds(dt);
  unsigned callbacks = 0;

  while (wall_left > 1e-15) {
    if (queue_.empty()) {
      if (idle_cb_ && callbacks < kMaxIdleCallbacksPerTick) {
        ++callbacks;
        idle_cb_(id_, now);
        if (callbacks == kMaxIdleCallbacksPerTick && queue_.empty() && !spin_) {
          throw std::runtime_error(
              "Core::step: idle callback loop without progress");
        }
      }
      if (queue_.empty()) {
        // Nothing to run: spin (busy wait) or halt for the rest of the tick.
        if (spin_) {
          const double active = wall_left * duty;
          usage.spin_active += active;
          usage.gated += wall_left - active;
          counters_.core_cycles += f * active;
          counters_.instructions += spec_->spin_ipc * f * active;
        } else {
          usage.idle += wall_left;
        }
        counters_.ref_cycles += kRefClockHz * wall_left;
        wall_left = 0.0;
        break;
      }
      continue;  // callback pushed work; process it
    }

    Segment& seg = queue_.front();
    double wall_used = 0.0;
    switch (seg.kind) {
      case SegmentKind::kCompute: {
        // Effective compute rate in wall time is f * duty cycles/second.
        const double rate = f * duty;
        const double wall_needed = seg.remaining / rate;
        wall_used = std::min(wall_left, wall_needed);
        const double cycles_done = wall_used * rate;
        counters_.instructions +=
            prorate(seg.instructions, cycles_done, seg.initial);
        counters_.core_cycles += cycles_done;
        usage.compute_active += wall_used * duty;
        usage.gated += wall_used * (1.0 - duty);
        seg.remaining -= cycles_done;
        break;
      }
      case SegmentKind::kMemory: {
        // Clock gating stops request issue (rate `duty`); DRAM-domain
        // bandwidth throttling slows retirement further (`mem_throttle`).
        const double rate = duty * mem_throttle;
        const double wall_needed = seg.remaining / rate;
        wall_used = std::min(wall_left, wall_needed);
        const double stall_done = wall_used * rate;
        const double bytes_done = prorate(seg.bytes, stall_done, seg.initial);
        usage.stall_active += stall_done;
        usage.gated += wall_used - stall_done;
        usage.bytes += bytes_done;
        counters_.instructions +=
            prorate(seg.instructions, stall_done, seg.initial);
        counters_.core_cycles += f * stall_done;  // cycles tick while stalled
        counters_.l3_misses += bytes_done / 64.0;
        seg.remaining -= stall_done;
        break;
      }
      case SegmentKind::kSleep: {
        // OS sleep: elapses in wall time, unaffected by f or duty.
        wall_used = std::min(wall_left, seg.remaining);
        usage.sleeping += wall_used;
        counters_.instructions +=
            prorate(seg.instructions, wall_used, seg.initial);
        seg.remaining -= wall_used;
        break;
      }
    }
    counters_.ref_cycles += kRefClockHz * wall_used;
    wall_left -= wall_used;
    if (seg.remaining <= 1e-12 * std::max(1.0, seg.initial)) {
      queue_.pop_front();
    }
  }
  return usage;
}

}  // namespace procap::hw
