#include "hw/package.hpp"

#include <algorithm>

namespace procap::hw {

Package::Package(const CpuSpec& spec)
    : spec_(spec),
      firmware_(spec_),
      dram_firmware_(spec_),
      req_freq_(spec.f_max),
      eff_freq_(spec.f_max),
      temperature_(spec.t_ambient) {
  cores_.reserve(spec_.cores_per_package);
  for (unsigned i = 0; i < spec_.cores_per_package; ++i) {
    cores_.emplace_back(i, spec_);
  }
}

void Package::request_frequency(Hertz f) {
  req_freq_ = spec_.clamp_frequency(f);
}

void Package::request_duty(double duty) { req_duty_ = spec_.snap_duty(duty); }

CoreCounters Package::total_counters() const {
  CoreCounters total;
  for (const Core& c : cores_) {
    total.instructions += c.counters().instructions;
    total.core_cycles += c.counters().core_cycles;
    total.ref_cycles += c.counters().ref_cycles;
    total.l3_misses += c.counters().l3_misses;
  }
  return total;
}

void Package::reset_counters() {
  for (Core& c : cores_) {
    c.reset_counters();
  }
}

void Package::step(Nanos now, Nanos dt) {
  // Resolve the operating point for this tick.
  eff_freq_ = spec_.clamp_frequency(
      std::min(req_freq_, firmware_.frequency_cap()));
  eff_duty_ = spec_.snap_duty(std::min(req_duty_, firmware_.duty_cap()));
  if (prochot_) {
    eff_freq_ = spec_.f_min;  // thermal throttle overrides everything
  }

  mem_throttle_ = dram_firmware_.throttle();

  // Run the cores and collect usage.
  const Seconds dt_s = to_seconds(dt);
  double activity_time = 0.0;  // activity-weighted core seconds
  double bytes = 0.0;
  for (Core& c : cores_) {
    const CoreTickUsage u = c.step(now, dt, eff_freq_, eff_duty_,
                                   mem_throttle_);
    activity_time += u.compute_active * spec_.compute_activity +
                     u.stall_active * spec_.stall_activity +
                     u.spin_active * spec_.spin_activity +
                     u.gated * spec_.gated_activity +
                     u.sleeping * spec_.sleep_activity +
                     u.idle * spec_.idle_activity;
    bytes += u.bytes;
  }

  // Integrate power.
  const double avg_activity_cores = activity_time / dt_s;  // in units of cores
  bandwidth_gbps_ = bytes / dt_s / 1e9;
  breakdown_.core_dynamic =
      spec_.core_dynamic_power(eff_freq_, 1.0) * avg_activity_cores;
  // Leakage grows with temperature when the thermal model is on.
  const double leak_scale =
      spec_.thermal_enabled
          ? std::max(0.5, 1.0 + spec_.leakage_temp_coeff *
                                    (temperature_ - spec_.t_leak_ref))
          : 1.0;
  breakdown_.core_static =
      spec_.core_static * static_cast<double>(cores_.size()) * leak_scale;
  breakdown_.uncore = spec_.uncore_static +
                      spec_.uncore_bw_watts_per_gbps * bandwidth_gbps_;
  breakdown_.base = spec_.package_base;
  energy_ += breakdown_.total() * dt_s;

  // DRAM domain: separate rail, metered and enforced independently.
  dram_power_ = spec_.dram_static +
                spec_.dram_bw_watts_per_gbps * bandwidth_gbps_;
  dram_energy_ += dram_power_ * dt_s;

  // Thermal RC integration and PROCHOT hysteresis.
  if (spec_.thermal_enabled) {
    const double t_steady =
        spec_.t_ambient + spec_.thermal_resistance * breakdown_.total();
    temperature_ += (t_steady - temperature_) * dt_s / spec_.thermal_tau;
    if (temperature_ >= spec_.t_prochot) {
      prochot_ = true;
    } else if (temperature_ <
               spec_.t_prochot - spec_.prochot_hysteresis) {
      prochot_ = false;
    }
  }

  // Let the firmware react (affects the next tick's operating point).
  firmware_.observe(breakdown_.total(), dt);
  dram_firmware_.observe(dram_power_, dt);
}

}  // namespace procap::hw
