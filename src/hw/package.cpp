#include "hw/package.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/engine.hpp"

namespace procap::hw {

Package::Package(const CpuSpec& spec)
    : spec_(spec),
      cores_(spec_.cores_per_package, spec_),
      firmware_(spec_),
      dram_firmware_(spec_),
      dt_(msec(1)),
      req_freq_(spec_.f_max),
      eff_freq_(spec_.f_max),
      temperature_(spec_.t_ambient) {
  cores_.set_tick(dt_);
  const Seconds dt_s = to_seconds(dt_);
  pkg_avg_.dt = dram_avg_.dt = static_cast<double>(dt_);
  pkg_avg_.alpha = std::min(
      1.0, dt_s / std::max(firmware_.limit().pl1.time_window, dt_s));
  dram_avg_.alpha = std::min(
      1.0, dt_s / std::max(dram_firmware_.limit().pl1.time_window, dt_s));
  if (spec_.thermal_enabled) {
    next_thermal_ = static_cast<double>(dt_);
  }
  refresh(0.0);
}

void Package::request_frequency(Hertz f) {
  req_freq_ = spec_.clamp_frequency(f);
  op_dirty_ = true;
}

void Package::request_duty(double duty) {
  req_duty_ = spec_.snap_duty(duty);
  op_dirty_ = true;
}

CoreCounters Package::total_counters() const {
  CoreCounters total;
  for (unsigned i = 0; i < cores_.size(); ++i) {
    const CoreCounters c = cores_.counters(i, cur_t_);
    total.instructions += c.instructions;
    total.core_cycles += c.core_cycles;
    total.ref_cycles += c.ref_cycles;
    total.l3_misses += c.l3_misses;
  }
  return total;
}

void Package::reset_counters() {
  for (unsigned i = 0; i < cores_.size(); ++i) {
    cores_.reset_counters(i, cur_t_);
  }
}

Nanos Package::tick_floor(double t) const {
  const double dtd = static_cast<double>(dt_);
  return static_cast<Nanos>(std::floor(t / dtd)) * dt_;
}

double Package::leak_scale() const {
  return spec_.thermal_enabled
             ? std::max(0.5, 1.0 + spec_.leakage_temp_coeff *
                                       (temperature_ - spec_.t_leak_ref))
             : 1.0;
}

void Package::resolve_op_point() {
  eff_freq_ = spec_.clamp_frequency(
      std::min(req_freq_, firmware_.frequency_cap()));
  eff_duty_ = spec_.snap_duty(std::min(req_duty_, firmware_.duty_cap()));
  if (prochot_) {
    eff_freq_ = spec_.f_min;  // thermal throttle overrides everything
  }
  mem_throttle_ = dram_firmware_.throttle();
  cores_.set_op_point(cur_t_, CoreOpPoint{eff_freq_, eff_duty_,
                                          mem_throttle_});
}

void Package::refresh(double t) {
  if (op_dirty_) {
    op_dirty_ = false;
    resolve_op_point();  // no-op unless the operating point bit-changed
  }
  if (!cores_.dirty() && !power_dirty_) {
    return;
  }
  power_dirty_ = false;
  const CoreArray::Aggregates agg = cores_.aggregates();
  bandwidth_gbps_ = agg.bytes_per_ns;  // bytes/ns == GB/s
  PowerBreakdown b;
  b.core_dynamic =
      spec_.core_dynamic_power(eff_freq_, 1.0) * agg.activity_cores;
  b.core_static = spec_.core_static *
                  static_cast<double>(cores_.size()) * leak_scale();
  b.uncore = spec_.uncore_static +
             spec_.uncore_bw_watts_per_gbps * bandwidth_gbps_;
  b.base = spec_.package_base;
  breakdown_ = b;
  const Watts p = b.total();
  const Watts dram_p =
      spec_.dram_static + spec_.dram_bw_watts_per_gbps * bandwidth_gbps_;
  // Fold the energy integrator and running average only when the level
  // bit-changes: these fold times are state-driven, hence identical under
  // batched and per-tick execution.
  if (p != cur_p_) {
    pkg_avg_.advance(t, cur_p_);
    energy_ += cur_p_ * (t - e_t0_) * 1e-9;
    e_t0_ = t;
    cur_p_ = p;
  }
  if (dram_p != cur_dram_p_) {
    dram_avg_.advance(t, cur_dram_p_);
    dram_energy_ += cur_dram_p_ * (t - dram_e_t0_) * 1e-9;
    dram_e_t0_ = t;
    cur_dram_p_ = dram_p;
  }
}

void Package::PowerAvg::ema(double tick_avg) {
  if (!primed) {
    avg = tick_avg;
    primed = true;
  } else {
    avg += alpha * (tick_avg - avg);
  }
}

void Package::PowerAvg::advance(double t, double p) {
  if (cursor >= t) {
    return;
  }
  // Leading partial tick: finish it, or extend the stash and bail.
  const double tick_start = std::floor(cursor / dt) * dt;
  if (stash != 0.0 || cursor != tick_start) {
    double b = tick_start + dt;
    if (b <= cursor) {
      b = cursor + dt;  // FP guard; cursor sits on a boundary
    }
    if (b > t) {
      stash += p * (t - cursor);
      cursor = t;
      return;
    }
    ema((stash + p * (b - cursor)) / dt);
    stash = 0.0;
    cursor = b;
  }
  // Whole ticks with the cursor on the grid.  `cursor += dt` stays exact
  // (dt is a whole number of ns and boundaries are integers well inside
  // 2^53), so this is the same ema() sequence as the floor-per-tick loop
  // it replaces, minus the per-iteration floor.
  while (cursor + dt <= t) {
    const double prev = avg;
    ema(p);
    cursor += dt;
    if (primed && avg == prev) {
      // Bitwise fixpoint: every further whole tick of constant power
      // leaves the average unchanged, so skip them all at once.
      const double last = std::floor(t / dt) * dt;
      if (last > cursor) {
        cursor = last;
      }
      break;
    }
  }
  // Trailing partial tick.
  if (cursor < t) {
    stash = p * (t - cursor);
    cursor = t;
  }
}

void Package::on_pkg_reprogram() {
  pkg_avg_.advance(cur_t_, cur_p_);
  const Seconds dt_s = to_seconds(dt_);
  const Seconds window = std::max(firmware_.limit().pl1.time_window, dt_s);
  pkg_avg_.alpha = std::min(1.0, dt_s / window);
  if (firmware_.enforcing()) {
    // One actuation per half window, rounded up to whole ticks; the first
    // decision lands at the end of the tick the write arrived in, which
    // is where the per-tick controller took its first post-program step.
    const Nanos period = std::max(to_nanos(window / 2.0), dt_);
    const Nanos ticks = (period + dt_ - 1) / dt_;
    pkg_decision_period_ = static_cast<double>(ticks * dt_);
    next_pkg_decision_ =
        static_cast<double>(tick_floor(cur_t_) + dt_);
  } else {
    next_pkg_decision_ = CoreArray::kNever;
  }
  op_dirty_ = true;  // disabling released the actuators
}

void Package::on_dram_reprogram() {
  dram_avg_.advance(cur_t_, cur_dram_p_);
  const Seconds dt_s = to_seconds(dt_);
  const Seconds window =
      std::max(dram_firmware_.limit().pl1.time_window, dt_s);
  dram_avg_.alpha = std::min(1.0, dt_s / window);
  if (dram_firmware_.enforcing()) {
    const Nanos period = std::max(to_nanos(window / 2.0), dt_);
    const Nanos ticks = (period + dt_ - 1) / dt_;
    dram_decision_period_ = static_cast<double>(ticks * dt_);
    next_dram_decision_ =
        static_cast<double>(tick_floor(cur_t_) + dt_);
  } else {
    next_dram_decision_ = CoreArray::kNever;
  }
  op_dirty_ = true;
}

void Package::pkg_decision(double t) {
  pkg_avg_.advance(t, cur_p_);
  firmware_.set_average(pkg_avg_.avg, pkg_avg_.primed);
  if (firmware_.enforcing()) {
    firmware_.decide(pkg_avg_.avg);
    next_pkg_decision_ = t + pkg_decision_period_;
    op_dirty_ = true;
  } else {
    next_pkg_decision_ = CoreArray::kNever;
  }
}

void Package::dram_decision(double t) {
  dram_avg_.advance(t, cur_dram_p_);
  dram_firmware_.set_average(dram_avg_.avg, dram_avg_.primed);
  if (dram_firmware_.enforcing()) {
    dram_firmware_.decide(dram_avg_.avg);
    next_dram_decision_ = t + dram_decision_period_;
    op_dirty_ = true;
  } else {
    next_dram_decision_ = CoreArray::kNever;
  }
}

void Package::thermal_step(double t) {
  const Seconds dt_s = to_seconds(dt_);
  const double e_now = energy_ + cur_p_ * (t - e_t0_) * 1e-9;
  const Watts p_avg = (e_now - last_thermal_e_) / dt_s;
  last_thermal_e_ = e_now;
  const double t_steady =
      spec_.t_ambient + spec_.thermal_resistance * p_avg;
  temperature_ += (t_steady - temperature_) * dt_s / spec_.thermal_tau;
  if (temperature_ >= spec_.t_prochot) {
    if (!prochot_) {
      prochot_ = true;
      op_dirty_ = true;
    }
  } else if (temperature_ < spec_.t_prochot - spec_.prochot_hysteresis) {
    if (prochot_) {
      prochot_ = false;
      op_dirty_ = true;
    }
  }
  // Leakage depends on temperature, so power must be re-derived even if
  // nothing else changed this tick.
  power_dirty_ = true;
  next_thermal_ = t + static_cast<double>(dt_);
}

double Package::advance_to(double target, sim::SpanContext* ctx) {
  // Externally induced changes (MSR writes, OS requests, workload pushes)
  // arrive between spans; apply them at the current time first.
  if (firmware_.take_reprogram()) {
    on_pkg_reprogram();
  }
  if (dram_firmware_.take_reprogram()) {
    on_dram_reprogram();
  }
  if (cores_.settle_pending()) {
    cores_.settle(cur_t_, tick_floor(cur_t_));
  }
  refresh(cur_t_);

  while (true) {
    double te = cores_.next_event();
    te = std::min(te, next_pkg_decision_);
    te = std::min(te, next_dram_decision_);
    te = std::min(te, next_thermal_);
    if (te > target) {
      break;
    }
    cur_t_ = te;
    const Nanos tick_now = tick_floor(te);
    if (ctx != nullptr) {
      ctx->at_time(tick_now);
    }
    if (cores_.next_event() <= te) {
      cores_.process_events_at(te, tick_now);
    }
    if (next_thermal_ <= te) {
      thermal_step(te);
    }
    if (next_pkg_decision_ <= te) {
      pkg_decision(te);
    }
    if (next_dram_decision_ <= te) {
      dram_decision(te);
    }
    refresh(te);
    if (ctx != nullptr && ctx->stop_requested()) {
      return cur_t_;
    }
  }
  cur_t_ = target;
  // Boundary fold: complete the running averages through `target` (a
  // tick boundary, so this is partition-invariant) and write the value
  // through to the firmware for external observers.
  pkg_avg_.advance(cur_t_, cur_p_);
  firmware_.set_average(pkg_avg_.avg, pkg_avg_.primed);
  dram_avg_.advance(cur_t_, cur_dram_p_);
  dram_firmware_.set_average(dram_avg_.avg, dram_avg_.primed);
  return cur_t_;
}

void Package::step(Nanos /*now*/, Nanos dt) {
  if (dt != dt_) {
    throw std::invalid_argument("Package::step: dt does not match the tick");
  }
  advance_to(cur_t_ + static_cast<double>(dt), nullptr);
}

}  // namespace procap::hw
