#include "hw/firmware.hpp"

#include <algorithm>

namespace procap::hw {

RaplFirmware::RaplFirmware(const CpuSpec& spec)
    : spec_(&spec), freq_cap_(spec.f_max) {
  // Power-on default: PL1 at TDP, disabled (no enforcement).
  limit_.pl1.power = spec.tdp;
  limit_.pl1.time_window = 0.01;
  limit_.pl1.enabled = false;
}

void RaplFirmware::program(const rapl::PkgPowerLimit& limit) {
  limit_ = limit;
  since_last_move_ = to_nanos(1.0);  // allow an immediate first actuation
  reprogram_pending_ = true;
  if (!limit_.pl1.enabled) {
    // Uncapped: release the actuators immediately.
    freq_cap_ = spec_->f_max;
    duty_cap_ = 1.0;
  }
}

void RaplFirmware::decide(Watts avg) {
  const Watts cap = limit_.pl1.power;
  if (avg > cap) {
    // Throttle: frequency first, then duty cycling at the floor.
    if (freq_cap_ > spec_->f_min) {
      freq_cap_ = spec_->clamp_frequency(freq_cap_ - spec_->f_step);
    } else if (duty_cap_ > CpuSpec::kDutyStep) {
      duty_cap_ = spec_->snap_duty(duty_cap_ - CpuSpec::kDutyStep);
    }
  } else if (avg < cap - kMargin) {
    // Recover: duty back to full first, then frequency.
    if (duty_cap_ < 1.0) {
      duty_cap_ = spec_->snap_duty(duty_cap_ + CpuSpec::kDutyStep);
    } else if (freq_cap_ < spec_->f_max) {
      freq_cap_ = spec_->clamp_frequency(freq_cap_ + spec_->f_step);
    }
  }
}

void RaplFirmware::observe(Watts instantaneous_power, Nanos dt) {
  // Exponential running average with the programmed time window as the
  // time constant (minimum one control step).
  const Seconds window = std::max(limit_.pl1.time_window, to_seconds(dt));
  const double alpha = std::min(1.0, to_seconds(dt) / window);
  if (!avg_primed_) {
    avg_ = instantaneous_power;
    avg_primed_ = true;
  } else {
    avg_ += alpha * (instantaneous_power - avg_);
  }

  if (!limit_.pl1.enabled) {
    return;
  }
  // Rate-limit the actuators to one move per half window (first call
  // after programming may move immediately).
  since_last_move_ += dt;
  const Nanos actuation_period = std::max(to_nanos(window / 2.0), dt);
  if (since_last_move_ < actuation_period) {
    return;
  }
  since_last_move_ = 0;
  decide(avg_);
}

void DramFirmware::program(const rapl::PkgPowerLimit& limit) {
  limit_ = limit;
  since_last_move_ = to_nanos(1.0);
  reprogram_pending_ = true;
  if (!limit_.pl1.enabled) {
    throttle_ = 1.0;
  }
}

void DramFirmware::decide(Watts avg) {
  const Watts cap = limit_.pl1.power;
  if (avg > cap && throttle_ > kStep) {
    throttle_ = std::max(kStep, throttle_ - kStep);
  } else if (avg < cap - kMargin && throttle_ < 1.0) {
    throttle_ = std::min(1.0, throttle_ + kStep);
  }
}

void DramFirmware::observe(Watts dram_power, Nanos dt) {
  const Seconds window = std::max(limit_.pl1.time_window, to_seconds(dt));
  const double alpha = std::min(1.0, to_seconds(dt) / window);
  if (!avg_primed_) {
    avg_ = dram_power;
    avg_primed_ = true;
  } else {
    avg_ += alpha * (dram_power - avg_);
  }
  if (!limit_.pl1.enabled) {
    return;
  }
  since_last_move_ += dt;
  const Nanos actuation_period = std::max(to_nanos(window / 2.0), dt);
  if (since_last_move_ < actuation_period) {
    return;
  }
  since_last_move_ = 0;
  decide(avg_);
}

}  // namespace procap::hw
