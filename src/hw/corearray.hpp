// corearray.hpp — event-driven per-core state for one package.
//
// The per-tick reference model (hw::Core) steps every core every tick.
// CoreArray replaces it on the simulation hot path with an event-driven
// formulation built on two ideas:
//
//  * Pure evaluation between events.  A running segment is described by
//    (t0, consumed0, rate): units consumed at time t are
//    consumed0 + rate * (t - t0), and the completion time
//    t_fin = t0 + (amount - consumed0) / rate is known in closed form.
//    Counters are likewise (base + folded delta + rate * (t - t0)).
//    State mutations ("folds") happen only at event points — segment
//    completions, operating-point changes, drains — so advancing in one
//    span or tick-by-tick produces bit-identical state (the engine's
//    exactness contract, DESIGN.md §13).
//
//  * Cohorts.  Bulk-synchronous workloads push identical work to every
//    worker, so all 24 cores of a package are usually in bit-identical
//    state.  Cores sharing (queue, active stretch, spin flag) are grouped
//    into a cohort that is simulated once: one completion event per
//    cohort instead of one per core.  Cores split off lazily when their
//    state diverges (per-core pushes, partial spin) and merge back when
//    it re-unifies (barrier refills).
//
// Semantics match hw::Core (see core.hpp for the physics): Compute
// consumes cycles at f * duty, Memory consumes stall-seconds at
// duty * mem_throttle (cycles tick while stalled), Sleep elapses in wall
// time, a drained core calls its idle callback once and then spins or
// halts until new work or the next tick boundary.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "hw/core.hpp"
#include "hw/spec.hpp"
#include "util/units.hpp"

namespace procap::hw {

/// Operating point shared by every core of the package.
struct CoreOpPoint {
  Hertz f = 0.0;
  double duty = 1.0;
  double mem_throttle = 1.0;

  bool operator==(const CoreOpPoint&) const = default;
};

/// Event-driven state for all cores of one package.  Times are double
/// nanoseconds (tick boundaries are exact integers well inside 2^53).
class CoreArray {
 public:
  using IdleCallback = std::function<void(unsigned core_id, Nanos now)>;

  static constexpr double kNever = std::numeric_limits<double>::infinity();

  CoreArray(unsigned count, const CpuSpec& spec);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(per_core_.size());
  }

  // -- Workload-facing (mirrors hw::Core) ------------------------------

  void set_idle_callback(unsigned core, IdleCallback cb);
  void push_compute(unsigned core, double cycles, double instructions);
  void push_memory(unsigned core, Seconds stall, double bytes,
                   double instructions);
  void push_sleep(unsigned core, Seconds duration, double instructions = 0.0);
  void set_spin(unsigned core, bool spin);
  [[nodiscard]] bool spinning(unsigned core) const {
    return per_core_[core].spin;
  }
  [[nodiscard]] bool queue_empty(unsigned core) const;

  /// Group fast paths: identical arguments for cores
  /// [first, first + count).  One shared segment per cohort instead of
  /// one per core, which is what keeps uniform bulk-synchronous apps in
  /// a single cohort through barrier refills.
  void push_compute_group(unsigned first, unsigned count, double cycles,
                          double instructions);
  void push_memory_group(unsigned first, unsigned count, Seconds stall,
                         double bytes, double instructions);
  void push_sleep_group(unsigned first, unsigned count, Seconds duration,
                        double instructions = 0.0);
  void set_spin_group(unsigned first, unsigned count, bool spin);

  /// Cumulative counters for one core, evaluated (purely) at time `t`.
  [[nodiscard]] CoreCounters counters(unsigned core, double t) const;

  /// Zero one core's counters as of time `t`.
  void reset_counters(unsigned core, double t);

  // -- Package-facing simulation ---------------------------------------

  /// Fold every active stretch at time `t` and adopt a new operating
  /// point (rates and completion times are recomputed).
  void set_op_point(double t, const CoreOpPoint& op);
  [[nodiscard]] const CoreOpPoint& op_point() const { return op_; }

  /// Earliest pending internal event (segment completion or idle
  /// re-poll); kNever if none.  Inline: the package event loop polls it
  /// once per event and once per span.
  [[nodiscard]] double next_event() const {
    double t = kNever;
    for (const Cohort& c : cohorts_) {
      if (!c.members.empty()) {
        t = std::min(t, std::min(c.t_fin, c.next_poke));
      }
    }
    return t;
  }

  /// Process every internal event due at exactly next_event() == `t`,
  /// then settle: invoke idle callbacks (with `tick_now` as their clock
  /// reading), start follow-on stretches, split/merge cohorts.
  void process_events_at(double t, Nanos tick_now);

  /// Settle externally induced changes (pushes or spin toggles made at a
  /// span boundary, a new operating point) at time `t`.
  void settle(double t, Nanos tick_now);

  /// True if aggregates may have changed since the last aggregates()
  /// call (any fold/settle sets it).
  [[nodiscard]] bool dirty() const { return dirty_; }

  struct Aggregates {
    double activity_cores = 0.0;  ///< activity-weighted core count
    double bytes_per_ns = 0.0;    ///< memory traffic rate (== GB/s)
  };
  /// Pure aggregate over cohorts; clears dirty().
  Aggregates aggregates();

 private:
  enum Mode : std::uint8_t { kRun, kSpin, kIdle };
  enum Kind : std::uint8_t { kCompute, kMemory, kSleep };

  struct Seg {
    Kind kind;
    double amount;  // cycles (compute) or seconds (memory/sleep)
    double bytes;
    double instructions;

    bool operator==(const Seg&) const = default;
  };

  struct Cohort {
    std::vector<unsigned> members;  // ascending core ids
    std::deque<Seg> queue;
    Mode mode = kIdle;
    bool unsettled = false;
    // Active stretch (kRun holds `seg`; kSpin/kIdle ignore it):
    Seg seg{kCompute, 0.0, 0.0, 0.0};
    double t0 = 0.0;        // stretch fold time (dns)
    double consumed0 = 0.0; // units consumed at t0
    double rate = 0.0;      // units per ns
    double t_fin = kNever;  // completion time
    double next_poke = kNever;  // idle re-poll (tick boundary)
    // Folded per-core counter deltas (identical for every member):
    double d_instr = 0.0, d_cycles = 0.0, d_l3 = 0.0;
    // Current stretch counter/traffic rates (per ns):
    double r_instr = 0.0, r_cycles = 0.0, r_l3 = 0.0, r_bytes = 0.0;
    double weight = 0.0;  // activity weight per member
  };

  struct PerCore {
    double b_instr = 0.0, b_cycles = 0.0, b_l3 = 0.0;  // counter bases
    double ref_base = 0.0;  // ref_cycles at ref_t0
    double ref_t0 = 0.0;    // last counter reset (dns)
    bool spin = false;
    bool has_cb = false;
    unsigned cohort = 0;
    Nanos cb_tick = -1;      // budget window (tick start)
    unsigned cb_count = 0;
  };

  /// Fold the active stretch of `c` at time `t` (counters, consumption).
  void fold_stretch(Cohort& c, double t);
  /// Recompute rates, weight, completion time and poke schedule of `c`
  /// from its (mode, seg, consumed0) under the current operating point.
  void rerate(Cohort& c);
  /// Book the exact remainder of the finished head segment, pop it, and
  /// leave the cohort unsettled at `t` for settle() to restart.
  void complete(Cohort& c, double t);
  /// Split `core` out of its cohort into a singleton (state copied
  /// verbatim — no floating-point operations, so no divergence).
  Cohort& split(unsigned core);
  /// Split the members of cohort `ci` inside [first, first+count) into
  /// their own cohort; returns the cohort holding the in-range members.
  Cohort& split_range(unsigned ci, unsigned first, unsigned count);
  /// Apply `fn` once per distinct cohort covering [first, first+count),
  /// splitting out-of-range members off first (group-push fan-out).
  /// Templated and allocation-free (member scratch list): group pushes
  /// land once per chunk per barrier, squarely on the hot path.
  template <typename Fn>
  void for_each_cohort_in(unsigned first, unsigned count, Fn&& fn) {
    feci_done_.clear();
    for (unsigned i = first; i < first + count; ++i) {
      const unsigned ci = per_core_[i].cohort;
      if (std::find(feci_done_.begin(), feci_done_.end(), ci) !=
          feci_done_.end()) {
        continue;
      }
      Cohort& c = split_range(ci, first, count);
      feci_done_.push_back(per_core_[i].cohort);
      fn(c);
    }
  }
  /// Merge cohorts whose dynamic state re-unified (folds counter deltas
  /// into per-core bases on both sides — a deterministic fold point).
  void merge_pass();
  [[nodiscard]] bool mergeable(const Cohort& a, const Cohort& b) const;
  /// Invoke idle callbacks for the (drained) members of cohort `ci`.
  void drain(unsigned ci, double t, Nanos tick_now);
  void mark_unsettled(Cohort& c);
  [[nodiscard]] bool cohort_has_cb(const Cohort& c) const;
  /// Append a segment shared by the whole cohort (caller split first).
  void enqueue(Cohort& c, Kind kind, double amount, double bytes,
               double instructions);
  /// Book a zero-length push straight into a core's counter bases.
  void book_immediate(unsigned core, Kind kind, double bytes,
                      double instructions);
  /// Cohort slot recycling (splits allocate, merges free).
  unsigned alloc_cohort(const Cohort& proto);
  void free_cohort(unsigned idx);

  const CpuSpec* spec_;
  CoreOpPoint op_;
  double dt_ns_;  // tick length (set via set_tick)
  std::vector<PerCore> per_core_;
  std::vector<Cohort> cohorts_;
  std::vector<unsigned> free_;  // recycled cohort slots
  std::vector<IdleCallback> callbacks_;
  // Reused scratch buffers (not re-entered: neither for_each_cohort_in's
  // `fn` nor drained-core idle callbacks reach back into these paths).
  std::vector<unsigned> feci_done_;
  std::vector<unsigned> drain_scratch_;
  bool dirty_ = true;
  bool settle_pending_ = false;
  bool maybe_merge_ = false;

 public:
  /// Tick length for idle re-polls and callback budgets (set once by the
  /// package; defaults to 1 ms).
  void set_tick(Nanos dt) { dt_ns_ = static_cast<double>(dt); }
  [[nodiscard]] double tick_ns() const { return dt_ns_; }
  /// True when settle() needs to run (external mutation pending).
  [[nodiscard]] bool settle_pending() const { return settle_pending_; }
};

/// Value-type handle presenting one CoreArray slot with the classic
/// hw::Core interface (what SimApp, tests and the MSR hooks hold).
class CoreHandle {
 public:
  CoreHandle(CoreArray& array, unsigned id, const double* now)
      : array_(&array), id_(id), now_(now) {}

  [[nodiscard]] unsigned id() const { return id_; }

  void set_idle_callback(CoreArray::IdleCallback cb) {
    array_->set_idle_callback(id_, std::move(cb));
  }
  void push_compute(double cycles, double instructions) {
    array_->push_compute(id_, cycles, instructions);
  }
  void push_memory(Seconds stall, double bytes, double instructions) {
    array_->push_memory(id_, stall, bytes, instructions);
  }
  void push_sleep(Seconds duration, double instructions = 0.0) {
    array_->push_sleep(id_, duration, instructions);
  }
  void set_spin(bool spin) { array_->set_spin(id_, spin); }
  [[nodiscard]] bool spinning() const { return array_->spinning(id_); }
  [[nodiscard]] bool queue_empty() const { return array_->queue_empty(id_); }
  [[nodiscard]] CoreCounters counters() const {
    return array_->counters(id_, *now_);
  }
  void reset_counters() { array_->reset_counters(id_, *now_); }

 private:
  CoreArray* array_;
  unsigned id_;
  const double* now_;  // package cursor (dns)
};

}  // namespace procap::hw
