// core.hpp — simulated CPU core.
//
// A core executes a queue of work segments pushed by a workload model:
//
//   Compute  — a number of core cycles; wall time = cycles / (f * duty)
//   Memory   — a memory-stall duration, frequency-independent but
//              stretched by clock gating: wall time = stall / duty
//   Sleep    — blocked in the OS; elapses in wall time regardless of
//              frequency or duty (usleep in the paper's Listing 1)
//
// The asymmetry between Compute and Memory under DVFS is what produces
// compute-boundedness (the beta metric): for an iteration of C cycles and
// M stall-seconds, t(f) = C/f + M, so T(f)/T(fmax) = beta*(fmax/f - 1) + 1
// with beta = (C/fmax) / (C/fmax + M) — exactly Eq. (1) of the paper.
// Duty-cycle modulation divides *both* terms by the duty factor, which is
// why RAPL's fallback throttle hurts memory-bound codes in a way the
// DVFS-based model cannot predict (paper Fig. 4d / Fig. 5).
//
// When its queue drains, the core invokes its idle callback (the workload
// model), which may push more segments, or put the core into spin mode
// (busy-waiting at a barrier: no forward progress, near-full power,
// instructions retiring — the MIPS inflation of paper Table I).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "hw/spec.hpp"
#include "util/units.hpp"

namespace procap::hw {

/// Time/traffic accounting for one core over one simulation tick.
struct CoreTickUsage {
  Seconds compute_active = 0.0;  ///< ungated compute time
  Seconds stall_active = 0.0;    ///< ungated memory-stall time
  Seconds spin_active = 0.0;     ///< ungated busy-wait time
  Seconds gated = 0.0;           ///< clock-gated by duty modulation
  Seconds sleeping = 0.0;        ///< blocked in the OS
  Seconds idle = 0.0;            ///< halted, no work
  double bytes = 0.0;            ///< memory traffic issued this tick

  /// Total accounted wall time (== dt up to rounding).
  [[nodiscard]] Seconds total() const {
    return compute_active + stall_active + spin_active + gated + sleeping +
           idle;
  }
};

/// Cumulative hardware event counts for one core (the raw substrate the
/// PAPI-like counters module exposes).
struct CoreCounters {
  double instructions = 0.0;
  double core_cycles = 0.0;  ///< cycles at the effective frequency
  double ref_cycles = 0.0;   ///< cycles at a fixed 100 MHz reference
  double l3_misses = 0.0;    ///< one per 64-byte line of traffic
};

/// One simulated core.
class Core {
 public:
  /// Called when the work queue drains mid-tick; may push more segments
  /// and/or toggle spin mode.  Invoked at most kMaxIdleCallbacksPerTick
  /// times per tick to bound pathological zero-length pushes.
  using IdleCallback = std::function<void(unsigned core_id, Nanos now)>;

  static constexpr unsigned kMaxIdleCallbacksPerTick = 10000;

  Core(unsigned id, const CpuSpec& spec) : id_(id), spec_(&spec) {}

  [[nodiscard]] unsigned id() const { return id_; }

  void set_idle_callback(IdleCallback cb) { idle_cb_ = std::move(cb); }

  // -- Work queue (called by workload models) -------------------------

  /// Queue a compute segment of `cycles` cycles retiring `instructions`.
  void push_compute(double cycles, double instructions);

  /// Queue a memory-stall segment of `stall` seconds issuing `bytes` of
  /// traffic and retiring `instructions`.
  void push_memory(Seconds stall, double bytes, double instructions);

  /// Queue an OS sleep of `duration` seconds (retires ~no instructions;
  /// the workload may model runtime background work via `instructions`).
  void push_sleep(Seconds duration, double instructions = 0.0);

  /// Enter/leave busy-wait mode: with an empty queue the core spins
  /// (instead of halting) until spin mode is cleared.
  void set_spin(bool spin) { spin_ = spin; }

  [[nodiscard]] bool spinning() const { return spin_; }
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }

  // -- Simulation -------------------------------------------------------

  /// Advance the core over [now, now + dt) at effective frequency `f` and
  /// duty factor `duty`; returns this tick's accounting.  `mem_throttle`
  /// in (0, 1] scales the rate at which memory-stall segments retire —
  /// the DRAM domain's bandwidth-throttling enforcement.
  CoreTickUsage step(Nanos now, Nanos dt, Hertz f, double duty,
                     double mem_throttle = 1.0);

  /// Cumulative event counters.
  [[nodiscard]] const CoreCounters& counters() const { return counters_; }

  /// Reset counters to zero (start of a measurement interval).
  void reset_counters() { counters_ = CoreCounters{}; }

 private:
  enum class SegmentKind { kCompute, kMemory, kSleep };

  struct Segment {
    SegmentKind kind;
    double remaining;      // cycles (compute) or seconds (memory/sleep)
    double initial;        // for prorating bytes/instructions
    double bytes = 0.0;    // total for the segment
    double instructions = 0.0;  // total for the segment
  };

  unsigned id_;
  const CpuSpec* spec_;
  IdleCallback idle_cb_;
  std::deque<Segment> queue_;
  bool spin_ = false;
  CoreCounters counters_;
};

}  // namespace procap::hw
