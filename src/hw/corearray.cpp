#include "hw/corearray.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procap::hw {

namespace {
// Reference-clock rate in cycles per nanosecond (100 MHz, matching the
// per-tick model in core.cpp).
constexpr double kRefPerNs = 0.1;
}  // namespace

CoreArray::CoreArray(unsigned count, const CpuSpec& spec)
    : spec_(&spec), dt_ns_(1e6) {
  per_core_.resize(count);
  callbacks_.resize(count);
  Cohort all;
  all.members.resize(count);
  for (unsigned i = 0; i < count; ++i) {
    all.members[i] = i;
    per_core_[i].cohort = 0;
  }
  cohorts_.push_back(std::move(all));
  rerate(cohorts_[0]);
}

// -- Stretch folding and rating ----------------------------------------

void CoreArray::fold_stretch(Cohort& c, double t) {
  const double span = t - c.t0;
  if (span > 0.0) {
    switch (c.mode) {
      case kRun:
        c.d_instr += c.r_instr * span;
        c.d_cycles += c.r_cycles * span;
        c.d_l3 += c.r_l3 * span;
        c.consumed0 += c.rate * span;
        break;
      case kSpin:
        c.d_instr += c.r_instr * span;
        c.d_cycles += c.r_cycles * span;
        break;
      case kIdle:
        break;
    }
  }
  c.t0 = t;
}

void CoreArray::rerate(Cohort& c) {
  const CpuSpec& s = *spec_;
  const double f = op_.f;
  const double duty = op_.duty;
  c.r_instr = c.r_cycles = c.r_l3 = c.r_bytes = 0.0;
  c.rate = 0.0;
  c.t_fin = kNever;
  switch (c.mode) {
    case kRun:
      switch (c.seg.kind) {
        case kCompute:
          // f * duty cycles per wall second == f * duty * 1e-9 per ns.
          c.rate = f * duty * 1e-9;
          c.r_cycles = c.rate;
          c.r_instr = c.rate * (c.seg.instructions / c.seg.amount);
          c.weight = duty * s.compute_activity + (1.0 - duty) * s.gated_activity;
          break;
        case kMemory: {
          const double issue = duty * op_.mem_throttle;
          c.rate = issue * 1e-9;  // stall-seconds per ns
          c.r_cycles = c.rate * f;  // cycles tick while stalled
          c.r_instr = c.rate * (c.seg.instructions / c.seg.amount);
          c.r_bytes = c.rate * (c.seg.bytes / c.seg.amount);
          c.r_l3 = c.r_bytes / 64.0;
          c.weight =
              issue * s.stall_activity + (1.0 - issue) * s.gated_activity;
          break;
        }
        case kSleep:
          c.rate = 1e-9;  // wall seconds per ns, f/duty-independent
          c.r_instr = c.rate * (c.seg.instructions / c.seg.amount);
          c.weight = s.sleep_activity;
          break;
      }
      c.t_fin = c.t0 + (c.seg.amount - c.consumed0) / c.rate;
      c.next_poke = kNever;
      break;
    case kSpin:
      c.r_cycles = f * duty * 1e-9;
      c.r_instr = s.spin_ipc * f * duty * 1e-9;
      c.weight = duty * s.spin_activity + (1.0 - duty) * s.gated_activity;
      c.next_poke = kNever;
      break;
    case kIdle:
      c.weight = s.idle_activity;
      // A halted core with an idle callback is re-polled at the next
      // tick boundary, matching the per-tick model's one callback per
      // tick for an empty queue.
      c.next_poke =
          cohort_has_cb(c)
              ? (std::floor(c.t0 / dt_ns_) + 1.0) * dt_ns_
              : kNever;
      break;
  }
  dirty_ = true;
}

bool CoreArray::cohort_has_cb(const Cohort& c) const {
  for (unsigned m : c.members) {
    if (per_core_[m].has_cb) {
      return true;
    }
  }
  return false;
}

void CoreArray::mark_unsettled(Cohort& c) {
  c.unsettled = true;
  settle_pending_ = true;
}

// -- Cohort restructuring ----------------------------------------------

unsigned CoreArray::alloc_cohort(const Cohort& proto) {
  if (!free_.empty()) {
    const unsigned idx = free_.back();
    free_.pop_back();
    cohorts_[idx] = proto;
    return idx;
  }
  cohorts_.push_back(proto);
  return static_cast<unsigned>(cohorts_.size() - 1);
}

void CoreArray::free_cohort(unsigned idx) {
  Cohort& c = cohorts_[idx];
  c.members.clear();
  c.queue.clear();
  c.mode = kIdle;
  c.unsettled = false;
  c.t_fin = kNever;
  c.next_poke = kNever;
  free_.push_back(idx);
}

CoreArray::Cohort& CoreArray::split(unsigned core) {
  const unsigned ci = per_core_[core].cohort;
  if (cohorts_[ci].members.size() == 1) {
    return cohorts_[ci];
  }
  // Verbatim state copy: no floating-point operations, so a split can
  // never make the two halves diverge from the unsplit evolution.
  Cohort proto = cohorts_[ci];
  proto.members.assign(1, core);
  const unsigned ni = alloc_cohort(proto);
  Cohort& old = cohorts_[ci];
  old.members.erase(std::find(old.members.begin(), old.members.end(), core));
  per_core_[core].cohort = ni;
  maybe_merge_ = true;
  return cohorts_[ni];
}

CoreArray::Cohort& CoreArray::split_range(unsigned ci, unsigned first,
                                          unsigned count) {
  Cohort& c = cohorts_[ci];
  const unsigned last = first + count;
  bool all_in = true;
  for (unsigned m : c.members) {
    if (m < first || m >= last) {
      all_in = false;
      break;
    }
  }
  if (all_in) {
    return c;
  }
  Cohort proto = cohorts_[ci];
  proto.members.clear();
  for (unsigned m : cohorts_[ci].members) {
    if (m >= first && m < last) {
      proto.members.push_back(m);
    }
  }
  const unsigned ni = alloc_cohort(proto);
  Cohort& old = cohorts_[ci];
  old.members.erase(std::remove_if(old.members.begin(), old.members.end(),
                                   [&](unsigned m) {
                                     return m >= first && m < last;
                                   }),
                    old.members.end());
  for (unsigned m : cohorts_[ni].members) {
    per_core_[m].cohort = ni;
  }
  maybe_merge_ = true;
  return cohorts_[ni];
}

void CoreArray::merge_pass() {
  if (!maybe_merge_) {
    return;
  }
  maybe_merge_ = false;
  for (unsigned i = 0; i < cohorts_.size(); ++i) {
    Cohort& a = cohorts_[i];
    if (a.members.empty() || a.unsettled) {
      continue;
    }
    for (unsigned j = i + 1; j < cohorts_.size(); ++j) {
      Cohort& b = cohorts_[j];
      if (b.members.empty() || b.unsettled || !mergeable(a, b)) {
        continue;
      }
      // Folding the deltas into the bases is itself a fold point; it
      // happens at identical times in batched and per-tick mode because
      // the merge condition is a pure function of deterministic state.
      for (Cohort* c : {&a, &b}) {
        for (unsigned m : c->members) {
          PerCore& p = per_core_[m];
          p.b_instr += c->d_instr;
          p.b_cycles += c->d_cycles;
          p.b_l3 += c->d_l3;
        }
        c->d_instr = c->d_cycles = c->d_l3 = 0.0;
      }
      for (unsigned m : b.members) {
        per_core_[m].cohort = i;
        a.members.push_back(m);
      }
      std::sort(a.members.begin(), a.members.end());
      free_cohort(j);
    }
  }
}

bool CoreArray::mergeable(const Cohort& a, const Cohort& b) const {
  if (a.mode != b.mode || a.queue.size() != b.queue.size()) {
    return false;
  }
  const bool spin_a = per_core_[a.members.front()].spin;
  for (unsigned m : a.members) {
    if (per_core_[m].spin != spin_a) {
      return false;
    }
  }
  for (unsigned m : b.members) {
    if (per_core_[m].spin != spin_a) {
      return false;
    }
  }
  if (a.mode == kRun &&
      (!(a.seg == b.seg) || a.t0 != b.t0 || a.consumed0 != b.consumed0 ||
       a.rate != b.rate || a.t_fin != b.t_fin)) {
    return false;
  }
  if (a.mode != kRun && (a.t0 != b.t0 || a.next_poke != b.next_poke)) {
    return false;
  }
  return std::equal(a.queue.begin(), a.queue.end(), b.queue.begin());
}

// -- Workload-facing API -----------------------------------------------

void CoreArray::set_idle_callback(unsigned core, IdleCallback cb) {
  per_core_[core].has_cb = static_cast<bool>(cb);
  callbacks_[core] = std::move(cb);
  Cohort& c = cohorts_[per_core_[core].cohort];
  if (c.mode != kRun && c.queue.empty() && per_core_[core].has_cb) {
    // A drained core with a fresh callback is polled at the next settle,
    // not the next tick: the per-tick model invoked idle callbacks within
    // the installing tick, so work pushed by the callback starts now.
    mark_unsettled(c);
  }
}

void CoreArray::book_immediate(unsigned core, Kind kind, double bytes,
                               double instructions) {
  PerCore& p = per_core_[core];
  p.b_instr += instructions;
  if (kind == kMemory) {
    p.b_l3 += bytes / 64.0;
  }
}

void CoreArray::enqueue(Cohort& c, Kind kind, double amount, double bytes,
                        double instructions) {
  c.queue.push_back(Seg{kind, amount, bytes, instructions});
  if (c.mode != kRun) {
    mark_unsettled(c);
  }
  maybe_merge_ = true;
}

void CoreArray::push_compute(unsigned core, double cycles,
                             double instructions) {
  if (cycles < 0.0 || instructions < 0.0) {
    throw std::invalid_argument("CoreArray::push_compute: negative amount");
  }
  if (cycles == 0.0) {
    book_immediate(core, kCompute, 0.0, instructions);
    return;
  }
  enqueue(split(core), kCompute, cycles, 0.0, instructions);
}

void CoreArray::push_memory(unsigned core, Seconds stall, double bytes,
                            double instructions) {
  if (stall < 0.0 || bytes < 0.0 || instructions < 0.0) {
    throw std::invalid_argument("CoreArray::push_memory: negative amount");
  }
  if (stall == 0.0) {
    book_immediate(core, kMemory, bytes, instructions);
    return;
  }
  enqueue(split(core), kMemory, stall, bytes, instructions);
}

void CoreArray::push_sleep(unsigned core, Seconds duration,
                           double instructions) {
  if (duration < 0.0) {
    throw std::invalid_argument("CoreArray::push_sleep: negative duration");
  }
  if (duration == 0.0) {
    return;
  }
  enqueue(split(core), kSleep, duration, 0.0, instructions);
}

void CoreArray::push_compute_group(unsigned first, unsigned count,
                                   double cycles, double instructions) {
  if (cycles < 0.0 || instructions < 0.0) {
    throw std::invalid_argument("CoreArray::push_compute: negative amount");
  }
  if (cycles == 0.0) {
    for (unsigned i = first; i < first + count; ++i) {
      book_immediate(i, kCompute, 0.0, instructions);
    }
    return;
  }
  for_each_cohort_in(first, count, [&](Cohort& c) {
    enqueue(c, kCompute, cycles, 0.0, instructions);
  });
}

void CoreArray::push_memory_group(unsigned first, unsigned count,
                                  Seconds stall, double bytes,
                                  double instructions) {
  if (stall < 0.0 || bytes < 0.0 || instructions < 0.0) {
    throw std::invalid_argument("CoreArray::push_memory: negative amount");
  }
  if (stall == 0.0) {
    for (unsigned i = first; i < first + count; ++i) {
      book_immediate(i, kMemory, bytes, instructions);
    }
    return;
  }
  for_each_cohort_in(first, count, [&](Cohort& c) {
    enqueue(c, kMemory, stall, bytes, instructions);
  });
}

void CoreArray::push_sleep_group(unsigned first, unsigned count,
                                 Seconds duration, double instructions) {
  if (duration < 0.0) {
    throw std::invalid_argument("CoreArray::push_sleep: negative duration");
  }
  if (duration == 0.0) {
    return;
  }
  for_each_cohort_in(first, count, [&](Cohort& c) {
    enqueue(c, kSleep, duration, 0.0, instructions);
  });
}

void CoreArray::set_spin(unsigned core, bool spin) {
  PerCore& p = per_core_[core];
  if (p.spin == spin) {
    return;
  }
  p.spin = spin;
  Cohort& c = cohorts_[p.cohort];
  if (c.mode != kRun && c.queue.empty()) {
    mark_unsettled(c);
  }
  maybe_merge_ = true;
}

void CoreArray::set_spin_group(unsigned first, unsigned count, bool spin) {
  for (unsigned i = first; i < first + count; ++i) {
    set_spin(i, spin);
  }
}

bool CoreArray::queue_empty(unsigned core) const {
  return cohorts_[per_core_[core].cohort].queue.empty();
}

// -- Counters ----------------------------------------------------------

CoreCounters CoreArray::counters(unsigned core, double t) const {
  const PerCore& p = per_core_[core];
  const Cohort& c = cohorts_[p.cohort];
  const double span = t - c.t0;
  CoreCounters out;
  out.instructions = p.b_instr + c.d_instr + c.r_instr * span;
  out.core_cycles = p.b_cycles + c.d_cycles + c.r_cycles * span;
  out.l3_misses = p.b_l3 + c.d_l3 + c.r_l3 * span;
  out.ref_cycles = p.ref_base + kRefPerNs * (t - p.ref_t0);
  return out;
}

void CoreArray::reset_counters(unsigned core, double t) {
  PerCore& p = per_core_[core];
  const Cohort& c = cohorts_[p.cohort];
  const double span = t - c.t0;
  p.b_instr = -(c.d_instr + c.r_instr * span);
  p.b_cycles = -(c.d_cycles + c.r_cycles * span);
  p.b_l3 = -(c.d_l3 + c.r_l3 * span);
  p.ref_base = 0.0;
  p.ref_t0 = t;
}

// -- Event loop --------------------------------------------------------

void CoreArray::complete(Cohort& c, double t) {
  // Book the exact remainder of the finished segment so segment totals
  // are conserved regardless of how many folds happened along the way.
  const double rem = c.seg.amount - c.consumed0;
  c.d_instr += rem * (c.seg.instructions / c.seg.amount);
  switch (c.seg.kind) {
    case kCompute:
      c.d_cycles += rem;
      break;
    case kMemory:
      c.d_cycles += rem * op_.f;
      c.d_l3 += rem * (c.seg.bytes / c.seg.amount) / 64.0;
      break;
    case kSleep:
      break;
  }
  c.queue.pop_front();
  // Zero-duration gap until settle starts the next stretch at the same
  // time t: no integration happens in between.
  c.mode = kIdle;
  c.t0 = t;
  c.consumed0 = 0.0;
  c.rate = c.r_instr = c.r_cycles = c.r_l3 = c.r_bytes = 0.0;
  c.t_fin = kNever;
  c.next_poke = kNever;
  c.weight = spec_->idle_activity;
  dirty_ = true;
  mark_unsettled(c);
}

void CoreArray::drain(unsigned ci, double t, Nanos tick_now) {
  // Snapshot: callbacks may split this cohort or push work anywhere.
  drain_scratch_.assign(cohorts_[ci].members.begin(),
                        cohorts_[ci].members.end());
  for (unsigned core : drain_scratch_) {
    PerCore& p = per_core_[core];
    if (!p.has_cb || !cohorts_[p.cohort].queue.empty()) {
      continue;
    }
    if (p.cb_tick != tick_now) {
      p.cb_tick = tick_now;
      p.cb_count = 0;
    }
    if (p.cb_count >= Core::kMaxIdleCallbacksPerTick) {
      continue;  // budget exhausted: halt until the next tick's poll
    }
    ++p.cb_count;
    callbacks_[core](core, tick_now);
  }
  (void)t;
}

void CoreArray::settle(double t, Nanos tick_now) {
  settle_pending_ = false;
  bool any = true;
  while (any) {
    any = false;
    for (unsigned i = 0; i < cohorts_.size(); ++i) {
      if (!cohorts_[i].unsettled || cohorts_[i].members.empty()) {
        cohorts_[i].unsettled = false;
        continue;
      }
      any = true;
      cohorts_[i].unsettled = false;
      if (!cohorts_[i].queue.empty()) {
        // Work arrived (or a segment just completed with more queued):
        // fold the old stretch and start the head segment.
        Cohort& c = cohorts_[i];
        fold_stretch(c, t);
        c.mode = kRun;
        c.seg = c.queue.front();
        c.consumed0 = 0.0;
        rerate(c);
        continue;
      }
      // Drained: give each member's idle callback one chance to supply
      // work, then spin or halt by its spin flag.
      drain(i, t, tick_now);
      Cohort& c = cohorts_[i];
      if (!c.queue.empty() || c.members.empty()) {
        if (!c.queue.empty()) {
          mark_unsettled(c);
        }
        continue;
      }
      // Partition by spin bit if mixed (fold first so both halves carry
      // identical stretch state).
      fold_stretch(c, t);
      bool mixed = false;
      const bool first_spin = per_core_[c.members.front()].spin;
      for (unsigned m : c.members) {
        if (per_core_[m].spin != first_spin) {
          mixed = true;
          break;
        }
      }
      if (mixed) {
        Cohort proto = c;
        proto.members.clear();
        for (unsigned m : cohorts_[i].members) {
          if (per_core_[m].spin) {
            proto.members.push_back(m);
          }
        }
        const unsigned ni = alloc_cohort(proto);
        Cohort& old = cohorts_[i];
        old.members.erase(
            std::remove_if(old.members.begin(), old.members.end(),
                           [&](unsigned m) { return per_core_[m].spin; }),
            old.members.end());
        for (unsigned m : cohorts_[ni].members) {
          per_core_[m].cohort = ni;
        }
        cohorts_[ni].mode = kSpin;
        rerate(cohorts_[ni]);
        cohorts_[i].mode = kIdle;
        rerate(cohorts_[i]);
        maybe_merge_ = true;
      } else {
        c.mode = first_spin ? kSpin : kIdle;
        rerate(c);
      }
    }
  }
  merge_pass();
}

void CoreArray::process_events_at(double t, Nanos tick_now) {
  for (unsigned i = 0; i < cohorts_.size(); ++i) {
    Cohort& c = cohorts_[i];
    if (c.members.empty()) {
      continue;
    }
    if (c.t_fin <= t) {
      complete(c, t);
    } else if (c.next_poke <= t) {
      c.next_poke = kNever;
      mark_unsettled(c);
    }
  }
  settle(t, tick_now);
}

void CoreArray::set_op_point(double t, const CoreOpPoint& op) {
  if (op == op_) {
    return;
  }
  for (Cohort& c : cohorts_) {
    if (c.members.empty()) {
      continue;
    }
    fold_stretch(c, t);
  }
  op_ = op;
  for (Cohort& c : cohorts_) {
    if (c.members.empty()) {
      continue;
    }
    rerate(c);
  }
}

CoreArray::Aggregates CoreArray::aggregates() {
  dirty_ = false;
  Aggregates agg;
  for (const Cohort& c : cohorts_) {
    const double n = static_cast<double>(c.members.size());
    agg.activity_cores += c.weight * n;
    agg.bytes_per_ns += c.r_bytes * n;
  }
  return agg;
}

}  // namespace procap::hw
