// package.hpp — one simulated processor package.
//
// Owns the cores, integrates package power and energy each tick, and runs
// the RAPL firmware controller.  The effective operating point is
//
//   f    = min(OS-requested P-state, firmware frequency cap)
//   duty = min(OS-requested T-state, firmware duty cap)
//
// matching real hardware, where RAPL overrides but never exceeds the OS
// request.  The package is driven by hw::Node (which also exposes it
// through emulated MSRs); tests may also step it directly.
#pragma once

#include <vector>

#include "hw/core.hpp"
#include "hw/firmware.hpp"
#include "hw/spec.hpp"
#include "util/units.hpp"

namespace procap::hw {

/// Decomposition of package power for one tick.
struct PowerBreakdown {
  Watts core_dynamic = 0.0;
  Watts core_static = 0.0;
  Watts uncore = 0.0;
  Watts base = 0.0;

  [[nodiscard]] Watts total() const {
    return core_dynamic + core_static + uncore + base;
  }
};

/// One package: cores + uncore + RAPL firmware.
class Package {
 public:
  explicit Package(const CpuSpec& spec);

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] unsigned core_count() const {
    return static_cast<unsigned>(cores_.size());
  }
  [[nodiscard]] Core& core(unsigned i) { return cores_.at(i); }
  [[nodiscard]] const Core& core(unsigned i) const { return cores_.at(i); }

  // -- OS-visible knobs -------------------------------------------------

  /// Request a P-state (clamped and snapped to a bin).  The firmware cap
  /// may force a lower effective frequency.
  void request_frequency(Hertz f);

  /// Request a T-state duty factor (snapped to the 1/16 grid).
  void request_duty(double duty);

  [[nodiscard]] Hertz requested_frequency() const { return req_freq_; }
  [[nodiscard]] double requested_duty() const { return req_duty_; }

  // -- Observable state --------------------------------------------------

  /// Effective operating frequency during the last tick.
  [[nodiscard]] Hertz frequency() const { return eff_freq_; }
  /// Effective duty factor during the last tick.
  [[nodiscard]] double duty() const { return eff_duty_; }
  /// Package power during the last tick.
  [[nodiscard]] Watts power() const { return breakdown_.total(); }
  /// Power decomposition for the last tick.
  [[nodiscard]] const PowerBreakdown& breakdown() const { return breakdown_; }
  /// Total energy consumed since construction.
  [[nodiscard]] Joules energy() const { return energy_; }
  /// Memory bandwidth during the last tick, GB/s.
  [[nodiscard]] double bandwidth_gbps() const { return bandwidth_gbps_; }

  [[nodiscard]] RaplFirmware& firmware() { return firmware_; }
  [[nodiscard]] const RaplFirmware& firmware() const { return firmware_; }

  /// DRAM domain: separate power rail metered and capped independently.
  [[nodiscard]] DramFirmware& dram_firmware() { return dram_firmware_; }
  [[nodiscard]] const DramFirmware& dram_firmware() const {
    return dram_firmware_;
  }
  /// DRAM power during the last tick.
  [[nodiscard]] Watts dram_power() const { return dram_power_; }
  /// Total DRAM energy consumed since construction.
  [[nodiscard]] Joules dram_energy() const { return dram_energy_; }
  /// Bandwidth-throttle factor applied during the last tick.
  [[nodiscard]] double memory_throttle() const { return mem_throttle_; }

  /// Package temperature, deg C (== ambient while the thermal model is
  /// disabled).
  [[nodiscard]] double temperature() const { return temperature_; }

  /// True while the PROCHOT thermal throttle is clamping the frequency.
  [[nodiscard]] bool prochot_active() const { return prochot_; }

  /// Sum of per-core counters.
  [[nodiscard]] CoreCounters total_counters() const;

  /// Zero all per-core counters (start of a measurement interval).
  void reset_counters();

  /// Advance the package over [now, now + dt).
  void step(Nanos now, Nanos dt);

 private:
  CpuSpec spec_;
  std::vector<Core> cores_;
  RaplFirmware firmware_;
  DramFirmware dram_firmware_;

  Hertz req_freq_;
  double req_duty_ = 1.0;
  Hertz eff_freq_;
  double eff_duty_ = 1.0;

  PowerBreakdown breakdown_;
  Joules energy_ = 0.0;
  double bandwidth_gbps_ = 0.0;
  Watts dram_power_ = 0.0;
  Joules dram_energy_ = 0.0;
  double mem_throttle_ = 1.0;
  double temperature_;
  bool prochot_ = false;
};

}  // namespace procap::hw
