// package.hpp — one simulated processor package.
//
// Owns the cores, integrates package power and energy, and runs the RAPL
// firmware controller.  The effective operating point is
//
//   f    = min(OS-requested P-state, firmware frequency cap)
//   duty = min(OS-requested T-state, firmware duty cap)
//
// matching real hardware, where RAPL overrides but never exceeds the OS
// request.  The package is driven by hw::Node (which also exposes it
// through emulated MSRs); tests may also step it directly.
//
// The package is event-driven (DESIGN.md §13): between events, power is
// piecewise constant — a pure function of the cohort aggregates and the
// operating point — so energy integrates in closed form and the RAPL
// running average folds whole ticks at a time.  State mutations happen
// only at event points:
//
//   * core events (segment completions, idle re-polls) from CoreArray,
//   * firmware control decisions every half time-window,
//   * MSR writes / OS requests arriving at span boundaries,
//   * per-tick thermal integration when the thermal model is enabled.
//
// Every mutation happens at the same simulated time whether the engine
// advances in whole spans or tick by tick, which is what makes batched
// and per-tick execution bit-identical.
#pragma once

#include <vector>

#include "hw/core.hpp"
#include "hw/corearray.hpp"
#include "hw/firmware.hpp"
#include "hw/spec.hpp"
#include "util/units.hpp"

namespace procap::sim {
class SpanContext;
}

namespace procap::hw {

/// Decomposition of package power at the current instant.
struct PowerBreakdown {
  Watts core_dynamic = 0.0;
  Watts core_static = 0.0;
  Watts uncore = 0.0;
  Watts base = 0.0;

  [[nodiscard]] Watts total() const {
    return core_dynamic + core_static + uncore + base;
  }
};

/// One package: cores + uncore + RAPL firmware.
class Package {
 public:
  explicit Package(const CpuSpec& spec);

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] unsigned core_count() const { return cores_.size(); }

  /// Handle to one core (value type; presents the classic Core API).
  [[nodiscard]] CoreHandle core(unsigned i) {
    return {cores_, i, &cur_t_};
  }
  /// The underlying event-driven core state (group pushes, tests).
  [[nodiscard]] CoreArray& cores() { return cores_; }

  // -- OS-visible knobs -------------------------------------------------

  /// Request a P-state (clamped and snapped to a bin).  The firmware cap
  /// may force a lower effective frequency.
  void request_frequency(Hertz f);

  /// Request a T-state duty factor (snapped to the 1/16 grid).
  void request_duty(double duty);

  [[nodiscard]] Hertz requested_frequency() const { return req_freq_; }
  [[nodiscard]] double requested_duty() const { return req_duty_; }

  // -- Observable state --------------------------------------------------

  /// Current effective operating frequency.
  [[nodiscard]] Hertz frequency() const { return eff_freq_; }
  /// Current effective duty factor.
  [[nodiscard]] double duty() const { return eff_duty_; }
  /// Instantaneous package power.
  [[nodiscard]] Watts power() const { return breakdown_.total(); }
  /// Instantaneous power decomposition.
  [[nodiscard]] const PowerBreakdown& breakdown() const { return breakdown_; }
  /// Total energy consumed since construction (pure evaluation at the
  /// current simulated time — no integration step needed).
  [[nodiscard]] Joules energy() const {
    return energy_ + cur_p_ * (cur_t_ - e_t0_) * 1e-9;
  }
  /// Instantaneous memory bandwidth, GB/s.
  [[nodiscard]] double bandwidth_gbps() const { return bandwidth_gbps_; }

  [[nodiscard]] RaplFirmware& firmware() { return firmware_; }
  [[nodiscard]] const RaplFirmware& firmware() const { return firmware_; }

  /// DRAM domain: separate power rail metered and capped independently.
  [[nodiscard]] DramFirmware& dram_firmware() { return dram_firmware_; }
  [[nodiscard]] const DramFirmware& dram_firmware() const {
    return dram_firmware_;
  }
  /// Instantaneous DRAM power.
  [[nodiscard]] Watts dram_power() const { return cur_dram_p_; }
  /// Total DRAM energy consumed since construction.
  [[nodiscard]] Joules dram_energy() const {
    return dram_energy_ + cur_dram_p_ * (cur_t_ - dram_e_t0_) * 1e-9;
  }
  /// Current bandwidth-throttle factor.
  [[nodiscard]] double memory_throttle() const { return mem_throttle_; }

  /// Package temperature, deg C (== ambient while the thermal model is
  /// disabled).
  [[nodiscard]] double temperature() const { return temperature_; }

  /// True while the PROCHOT thermal throttle is clamping the frequency.
  [[nodiscard]] bool prochot_active() const { return prochot_; }

  /// Sum of per-core counters (evaluated at the current simulated time).
  [[nodiscard]] CoreCounters total_counters() const;

  /// Zero all per-core counters (start of a measurement interval).
  void reset_counters();

  // -- Simulation --------------------------------------------------------

  /// Legacy per-tick driver: advance one tick of `dt`.  The `now`
  /// argument is ignored — the package keeps its own monotonic time —
  /// so restarting a driving loop at zero (as direct-driving tests do)
  /// simply continues the run.
  void step(Nanos now, Nanos dt);

  /// Advance to absolute time `target` (ns), processing every internal
  /// event on the way.  Returns the time reached: `target`, or the last
  /// processed event time if `ctx->stop_requested()` fired inside the
  /// span.  `ctx` may be null (direct driving).
  double advance_to(double target, sim::SpanContext* ctx);

  /// Current package-local simulated time, ns.
  [[nodiscard]] double sim_time() const { return cur_t_; }

 private:
  /// Iterated per-tick running average of a piecewise-constant power
  /// signal.  advance(t, P) folds the grid ticks covered by [cursor, t)
  /// one EMA step each — folding in several calls or one is bit-identical
  /// because the grid, not the call partition, defines the steps.  A
  /// bitwise EMA fixpoint short-circuits long constant-power stretches.
  struct PowerAvg {
    double avg = 0.0;
    bool primed = false;
    double cursor = 0.0;  ///< accounted through this time (ns)
    double stash = 0.0;   ///< energy (W*ns) accrued in the partial tick
    double alpha = 1.0;
    double dt = 1e6;

    void advance(double t, double p);
    void ema(double tick_avg);
  };

  void resolve_op_point();
  /// Recompute power from cohort aggregates; fold energy and the running
  /// averages at `t` if the power level changed bitwise.
  void refresh(double t);
  void pkg_decision(double t);
  void dram_decision(double t);
  void on_pkg_reprogram();
  void on_dram_reprogram();
  void thermal_step(double t);
  [[nodiscard]] double leak_scale() const;
  [[nodiscard]] Nanos tick_floor(double t) const;

  CpuSpec spec_;
  CoreArray cores_;
  RaplFirmware firmware_;
  DramFirmware dram_firmware_;
  Nanos dt_;
  double cur_t_ = 0.0;

  Hertz req_freq_;
  double req_duty_ = 1.0;
  Hertz eff_freq_;
  double eff_duty_ = 1.0;
  double mem_throttle_ = 1.0;

  PowerBreakdown breakdown_;
  Watts cur_p_ = 0.0;
  Watts cur_dram_p_ = 0.0;
  double e_t0_ = 0.0;
  double dram_e_t0_ = 0.0;
  Joules energy_ = 0.0;
  Joules dram_energy_ = 0.0;
  double bandwidth_gbps_ = 0.0;

  PowerAvg pkg_avg_;
  PowerAvg dram_avg_;
  double next_pkg_decision_ = CoreArray::kNever;
  double pkg_decision_period_ = 0.0;
  double next_dram_decision_ = CoreArray::kNever;
  double dram_decision_period_ = 0.0;

  double next_thermal_ = CoreArray::kNever;
  double last_thermal_e_ = 0.0;
  double temperature_;
  bool prochot_ = false;

  bool op_dirty_ = true;
  bool power_dirty_ = true;
};

}  // namespace procap::hw
