// rapl.hpp — libmsr-style user interface to RAPL and DVFS controls.
//
// This is the layer the power-policy daemon talks to: it hides register
// addresses, unit conversion, energy-counter wraparound and P-state ratio
// encoding behind watts/hertz/seconds.  It works over any MsrDevice — the
// emulated one in this repository, or (unchanged) a real msr-safe device.
//
// The node is modeled as one or more packages; per-package registers are
// accessed through the package's first ("leader") logical CPU, as libmsr
// does on multi-socket nodes.
#pragma once

#include <vector>

#include "msr/device.hpp"
#include "rapl/codec.hpp"
#include "util/time.hpp"

namespace procap::rapl {

/// High-level RAPL + P-state access over an MsrDevice.
class RaplInterface {
 public:
  /// `device` and `time_source` must outlive the interface.
  /// `package_leaders` lists the first logical CPU of each package;
  /// defaults to a single package led by CPU 0.
  RaplInterface(msr::MsrDevice& device, const TimeSource& time_source,
                std::vector<unsigned> package_leaders = {0});

  /// Number of packages managed.
  [[nodiscard]] unsigned packages() const {
    return static_cast<unsigned>(leaders_.size());
  }

  /// Unit scales advertised by the package (read once and cached).
  [[nodiscard]] const RaplUnits& units(unsigned pkg = 0) const;

  // -- Energy / power measurement ------------------------------------

  /// Total package energy consumed since construction, wrap-corrected.
  [[nodiscard]] Joules pkg_energy(unsigned pkg = 0);

  /// Average package power since the previous call to pkg_power() (or
  /// since construction on the first call).  This is how libmsr-based
  /// tools derive power: successive energy-counter reads over time.
  [[nodiscard]] Watts pkg_power(unsigned pkg = 0);

  /// Package energy-counter wraparounds observed so far.  A failed MSR
  /// read never touches the accumulator, so a retry spanning a wrap still
  /// counts it exactly once.
  [[nodiscard]] unsigned pkg_energy_wraps(unsigned pkg = 0) const;

  // -- DRAM domain -------------------------------------------------------

  /// Total DRAM energy consumed since construction, wrap-corrected.
  [[nodiscard]] Joules dram_energy(unsigned pkg = 0);

  /// Average DRAM power since the previous call to dram_power().
  [[nodiscard]] Watts dram_power(unsigned pkg = 0);

  /// Program the DRAM-domain limit to `cap` watts.
  void set_dram_cap(Watts cap, Seconds window = 0.04, unsigned pkg = 0);

  /// Disable the DRAM-domain limit.
  void clear_dram_cap(unsigned pkg = 0);

  /// Read back the currently programmed DRAM limit.
  [[nodiscard]] PkgPowerLimit dram_limit(unsigned pkg = 0);

  // -- Power capping ---------------------------------------------------

  /// Program PL1 to `cap` watts over `window` seconds (enabled, clamped).
  void set_pkg_cap(Watts cap, Seconds window = 0.01, unsigned pkg = 0);

  /// Disable the PL1 power limit (uncapped operation).
  void clear_pkg_cap(unsigned pkg = 0);

  /// Read back the currently programmed package limit.
  [[nodiscard]] PkgPowerLimit pkg_limit(unsigned pkg = 0);

  // -- DVFS (P-state) and clock modulation (T-state) --------------------

  /// Request a fixed P-state on every CPU of `pkg`.  The frequency is
  /// encoded as a 100 MHz bus ratio in IA32_PERF_CTL bits 15:8.
  void set_frequency(Hertz f, unsigned pkg = 0);

  /// Resolved operating frequency reported by IA32_PERF_STATUS on the
  /// package leader.
  [[nodiscard]] Hertz frequency(unsigned pkg = 0);

  /// Program on-demand clock modulation: `duty` in (0, 1]; 1 disables
  /// modulation.  Uses the extended 6.25 %-granularity encoding.
  void set_clock_modulation(double duty, unsigned pkg = 0);

  /// Currently programmed clock-modulation duty (1.0 when disabled).
  [[nodiscard]] double clock_modulation(unsigned pkg = 0);

 private:
  struct PackageState {
    RaplUnits units;
    EnergyAccumulator energy;
    EnergyAccumulator dram_energy;
    bool power_primed = false;
    Nanos last_power_read = 0;
    Joules last_power_energy = 0.0;
    bool dram_power_primed = false;
    Nanos dram_last_read = 0;
    Joules dram_last_energy = 0.0;

    explicit PackageState(const RaplUnits& u)
        : units(u), energy(u), dram_energy(u) {}
  };

  void check_pkg(unsigned pkg) const;

  msr::MsrDevice& dev_;
  const TimeSource& time_;
  std::vector<unsigned> leaders_;
  std::vector<PackageState> state_;
};

/// Encode a frequency as an IA32_PERF_CTL value (ratio of 100 MHz in
/// bits 15:8); exposed for tests.
[[nodiscard]] std::uint64_t encode_perf_ctl(Hertz f);

/// Decode an IA32_PERF_STATUS / PERF_CTL value to a frequency.
[[nodiscard]] Hertz decode_perf_status(std::uint64_t raw);

/// Encode a duty fraction into IA32_CLOCK_MODULATION (extended format:
/// enable bit 4, duty level in bits 3:0, granularity 6.25%).
[[nodiscard]] std::uint64_t encode_clock_modulation(double duty);

/// Decode IA32_CLOCK_MODULATION to a duty fraction (1.0 when disabled).
[[nodiscard]] double decode_clock_modulation(std::uint64_t raw);

}  // namespace procap::rapl
