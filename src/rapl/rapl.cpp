#include "rapl/rapl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "msr/addresses.hpp"
#include "obs/metrics.hpp"

namespace procap::rapl {

namespace {
constexpr double kBusClockHz = 100e6;  // 100 MHz reference clock
}

std::uint64_t encode_perf_ctl(Hertz f) {
  const double ratio = std::clamp(std::round(f / kBusClockHz), 1.0, 255.0);
  return static_cast<std::uint64_t>(ratio) << 8;
}

Hertz decode_perf_status(std::uint64_t raw) {
  return static_cast<double>((raw >> 8) & 0xFF) * kBusClockHz;
}

std::uint64_t encode_clock_modulation(double duty) {
  if (duty <= 0.0 || duty > 1.0) {
    throw std::invalid_argument("encode_clock_modulation: duty out of (0,1]");
  }
  if (duty >= 1.0) {
    return 0;  // modulation disabled
  }
  // Extended format: level n in bits 3:0 selects duty n/16; level 0 is
  // reserved, so the lowest programmable duty is 1/16 = 6.25 %.
  const auto level = static_cast<std::uint64_t>(
      std::clamp(std::round(duty * 16.0), 1.0, 15.0));
  return level | (1ULL << 4);
}

double decode_clock_modulation(std::uint64_t raw) {
  if ((raw & (1ULL << 4)) == 0) {
    return 1.0;
  }
  const auto level = raw & 0xF;
  return level == 0 ? 1.0 : static_cast<double>(level) / 16.0;
}

RaplInterface::RaplInterface(msr::MsrDevice& device,
                             const TimeSource& time_source,
                             std::vector<unsigned> package_leaders)
    : dev_(device), time_(time_source), leaders_(std::move(package_leaders)) {
  if (leaders_.empty()) {
    throw std::invalid_argument("RaplInterface: need at least one package");
  }
  state_.reserve(leaders_.size());
  for (const unsigned cpu : leaders_) {
    const auto units =
        RaplUnits::decode(dev_.read(cpu, msr::kMsrRaplPowerUnit));
    state_.emplace_back(units);
  }
  // Prime the energy accumulators and power meters so the first user
  // reads return deltas from construction, not from a zero sentinel.
  for (unsigned pkg = 0; pkg < leaders_.size(); ++pkg) {
    const Joules energy = pkg_energy(pkg);
    state_[pkg].power_primed = true;
    state_[pkg].last_power_read = time_.now();
    state_[pkg].last_power_energy = energy;
    const Joules dram = dram_energy(pkg);
    state_[pkg].dram_power_primed = true;
    state_[pkg].dram_last_read = time_.now();
    state_[pkg].dram_last_energy = dram;
  }
}

void RaplInterface::check_pkg(unsigned pkg) const {
  if (pkg >= leaders_.size()) {
    throw std::out_of_range("RaplInterface: package index out of range");
  }
}

const RaplUnits& RaplInterface::units(unsigned pkg) const {
  check_pkg(pkg);
  return state_[pkg].units;
}

Joules RaplInterface::pkg_energy(unsigned pkg) {
  check_pkg(pkg);
  PROCAP_OBS_COUNTER(reads_total, "rapl.energy_reads");
  PROCAP_OBS_GAUGE(wraps_gauge, "rapl.energy_wraps");
  const auto raw = static_cast<std::uint32_t>(
      dev_.read(leaders_[pkg], msr::kMsrPkgEnergyStatus) & 0xFFFFFFFFULL);
  reads_total.inc();
  state_[pkg].energy.sample(raw);
  wraps_gauge.set(static_cast<double>(state_[pkg].energy.wraps()));
  return state_[pkg].energy.total();
}

unsigned RaplInterface::pkg_energy_wraps(unsigned pkg) const {
  check_pkg(pkg);
  return state_[pkg].energy.wraps();
}

Watts RaplInterface::pkg_power(unsigned pkg) {
  check_pkg(pkg);
  PROCAP_OBS_COUNTER(reads_total, "rapl.power_reads");
  reads_total.inc();
  const Joules energy = pkg_energy(pkg);
  const Nanos now = time_.now();
  PackageState& st = state_[pkg];
  if (!st.power_primed) {
    st.power_primed = true;
    st.last_power_read = now;
    st.last_power_energy = energy;
    return 0.0;
  }
  const Seconds dt = to_seconds(now - st.last_power_read);
  const Joules de = energy - st.last_power_energy;
  st.last_power_read = now;
  st.last_power_energy = energy;
  return dt > 0.0 ? de / dt : 0.0;
}

Joules RaplInterface::dram_energy(unsigned pkg) {
  check_pkg(pkg);
  const auto raw = static_cast<std::uint32_t>(
      dev_.read(leaders_[pkg], msr::kMsrDramEnergyStatus) & 0xFFFFFFFFULL);
  state_[pkg].dram_energy.sample(raw);
  return state_[pkg].dram_energy.total();
}

Watts RaplInterface::dram_power(unsigned pkg) {
  check_pkg(pkg);
  const Joules energy = dram_energy(pkg);
  const Nanos now = time_.now();
  PackageState& st = state_[pkg];
  if (!st.dram_power_primed) {
    st.dram_power_primed = true;
    st.dram_last_read = now;
    st.dram_last_energy = energy;
    return 0.0;
  }
  const Seconds dt = to_seconds(now - st.dram_last_read);
  const Joules de = energy - st.dram_last_energy;
  st.dram_last_read = now;
  st.dram_last_energy = energy;
  return dt > 0.0 ? de / dt : 0.0;
}

void RaplInterface::set_dram_cap(Watts cap, Seconds window, unsigned pkg) {
  check_pkg(pkg);
  if (cap <= 0.0) {
    throw std::invalid_argument("set_dram_cap: cap must be positive");
  }
  PkgPowerLimit limit = dram_limit(pkg);
  limit.pl1.power = cap;
  limit.pl1.time_window = window;
  limit.pl1.enabled = true;
  limit.pl1.clamped = true;
  dev_.write(leaders_[pkg], msr::kMsrDramPowerLimit,
             limit.encode(state_[pkg].units) & 0xFFFFFFFFULL);
}

void RaplInterface::clear_dram_cap(unsigned pkg) {
  check_pkg(pkg);
  PkgPowerLimit limit = dram_limit(pkg);
  limit.pl1.enabled = false;
  dev_.write(leaders_[pkg], msr::kMsrDramPowerLimit,
             limit.encode(state_[pkg].units) & 0xFFFFFFFFULL);
}

PkgPowerLimit RaplInterface::dram_limit(unsigned pkg) {
  check_pkg(pkg);
  return PkgPowerLimit::decode(
      dev_.read(leaders_[pkg], msr::kMsrDramPowerLimit) & 0xFFFFFFFFULL,
      state_[pkg].units);
}

void RaplInterface::set_pkg_cap(Watts cap, Seconds window, unsigned pkg) {
  check_pkg(pkg);
  if (cap <= 0.0) {
    throw std::invalid_argument("set_pkg_cap: cap must be positive");
  }
  PkgPowerLimit limit =
      PkgPowerLimit::decode(dev_.read(leaders_[pkg], msr::kMsrPkgPowerLimit),
                            state_[pkg].units);
  limit.pl1.power = cap;
  limit.pl1.time_window = window;
  limit.pl1.enabled = true;
  limit.pl1.clamped = true;
  dev_.write(leaders_[pkg], msr::kMsrPkgPowerLimit,
             limit.encode(state_[pkg].units));
  PROCAP_OBS_COUNTER(writes_total, "rapl.cap_writes");
  writes_total.inc();
}

void RaplInterface::clear_pkg_cap(unsigned pkg) {
  check_pkg(pkg);
  PkgPowerLimit limit =
      PkgPowerLimit::decode(dev_.read(leaders_[pkg], msr::kMsrPkgPowerLimit),
                            state_[pkg].units);
  limit.pl1.enabled = false;
  limit.pl1.clamped = false;
  dev_.write(leaders_[pkg], msr::kMsrPkgPowerLimit,
             limit.encode(state_[pkg].units));
  PROCAP_OBS_COUNTER(clears_total, "rapl.cap_clears");
  clears_total.inc();
}

PkgPowerLimit RaplInterface::pkg_limit(unsigned pkg) {
  check_pkg(pkg);
  return PkgPowerLimit::decode(
      dev_.read(leaders_[pkg], msr::kMsrPkgPowerLimit), state_[pkg].units);
}

void RaplInterface::set_frequency(Hertz f, unsigned pkg) {
  check_pkg(pkg);
  // Write the leader; the emulated package applies P-states package-wide,
  // matching the per-package frequency domains of the paper's Skylake.
  dev_.write(leaders_[pkg], msr::kIa32PerfCtl, encode_perf_ctl(f));
  PROCAP_OBS_COUNTER(sets_total, "rapl.freq_sets");
  sets_total.inc();
}

Hertz RaplInterface::frequency(unsigned pkg) {
  check_pkg(pkg);
  return decode_perf_status(dev_.read(leaders_[pkg], msr::kIa32PerfStatus));
}

void RaplInterface::set_clock_modulation(double duty, unsigned pkg) {
  check_pkg(pkg);
  dev_.write(leaders_[pkg], msr::kIa32ClockModulation,
             encode_clock_modulation(duty));
}

double RaplInterface::clock_modulation(unsigned pkg) {
  check_pkg(pkg);
  return decode_clock_modulation(
      dev_.read(leaders_[pkg], msr::kIa32ClockModulation));
}

}  // namespace procap::rapl
