// codec.hpp — encode/decode of RAPL register contents.
//
// Bit layouts follow the Intel SDM Vol. 3B "Power and Thermal Management"
// chapter.  These codecs are pure functions of register values, shared by
// the user-side RaplInterface (decoding what it reads) and the emulated
// hardware (encoding what it exposes), and are unit-tested by round-trip
// property sweeps.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace procap::rapl {

/// Unit scales advertised in MSR_RAPL_POWER_UNIT.  Each field of the MSR
/// is an exponent n meaning "one unit = 1 / 2^n" of the base quantity:
///   bits  3:0  power unit    (watts)
///   bits 12:8  energy unit   (joules)
///   bits 19:16 time unit     (seconds)
struct RaplUnits {
  Watts power_unit = 0.125;         ///< value of one power LSB
  Joules energy_unit = 6.103515625e-5;  ///< value of one energy LSB
  Seconds time_unit = 9.765625e-4;  ///< value of one time LSB

  /// Decode from a raw MSR_RAPL_POWER_UNIT value.
  [[nodiscard]] static RaplUnits decode(std::uint64_t raw);

  /// Encode exponents into a raw MSR_RAPL_POWER_UNIT value.
  [[nodiscard]] static std::uint64_t encode(unsigned power_exp,
                                            unsigned energy_exp,
                                            unsigned time_exp);

  /// Skylake-server defaults: 1/8 W, ~61 uJ, ~0.98 ms.
  [[nodiscard]] static RaplUnits skylake();
};

/// One power limit (PL1 or PL2): a power bound over a time window.
struct PowerLimit {
  Watts power = 0.0;
  Seconds time_window = 0.0;
  bool enabled = false;
  /// "Clamping": allow the processor to go below requested P-states.
  bool clamped = false;

  friend bool operator==(const PowerLimit&, const PowerLimit&) = default;
};

/// Full MSR_PKG_POWER_LIMIT contents: PL1 (bits 23:0), PL2 (bits 55:32),
/// lock (bit 63).  Within each half:
///   bits 14:0  power in power units
///   bit  15    enable
///   bit  16    clamping
///   bits 23:17 time window, encoded as 2^Y * (1 + Z/4) time units with
///              Y = bits 21:17 and Z = bits 23:22.
struct PkgPowerLimit {
  PowerLimit pl1;
  PowerLimit pl2;
  bool locked = false;

  [[nodiscard]] std::uint64_t encode(const RaplUnits& units) const;
  [[nodiscard]] static PkgPowerLimit decode(std::uint64_t raw,
                                            const RaplUnits& units);
};

/// Encode a time window into the 7-bit (Y, Z) float format; picks the
/// closest representable value.  `seconds` <= 0 encodes as 0.
[[nodiscard]] std::uint8_t encode_time_window(Seconds seconds,
                                              const RaplUnits& units);

/// Decode the 7-bit (Y, Z) time-window float.
[[nodiscard]] Seconds decode_time_window(std::uint8_t bits,
                                         const RaplUnits& units);

/// Convert joules to a 32-bit energy-status counter value (wraps).
[[nodiscard]] std::uint32_t encode_energy(Joules joules,
                                          const RaplUnits& units);

/// Convert a raw energy-status counter value to joules.
[[nodiscard]] Joules decode_energy(std::uint32_t raw, const RaplUnits& units);

/// Tracks a wrapping 32-bit energy counter and accumulates total joules.
/// Correct as long as it is sampled at least once per wrap period (hours
/// at node power levels with the default 61 uJ unit).
class EnergyAccumulator {
 public:
  explicit EnergyAccumulator(const RaplUnits& units) : units_(units) {}

  /// Feed the next raw counter reading; returns the joules consumed since
  /// the previous reading (0 for the first).
  Joules sample(std::uint32_t raw);

  /// Total joules accumulated across all samples.
  [[nodiscard]] Joules total() const noexcept { return total_; }

  /// Number of counter wraparounds observed.
  [[nodiscard]] unsigned wraps() const noexcept { return wraps_; }

 private:
  RaplUnits units_;
  bool primed_ = false;
  std::uint32_t last_ = 0;
  Joules total_ = 0.0;
  unsigned wraps_ = 0;
};

}  // namespace procap::rapl
