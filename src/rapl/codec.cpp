#include "rapl/codec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace procap::rapl {

namespace {
constexpr std::uint64_t kPowerMask = 0x7FFF;     // bits 14:0
constexpr std::uint64_t kEnableBit = 1ULL << 15;
constexpr std::uint64_t kClampBit = 1ULL << 16;
constexpr std::uint64_t kLockBit = 1ULL << 63;

double pow2(int n) { return std::ldexp(1.0, n); }
}  // namespace

RaplUnits RaplUnits::decode(std::uint64_t raw) {
  RaplUnits units;
  const auto power_exp = static_cast<int>(raw & 0xF);
  const auto energy_exp = static_cast<int>((raw >> 8) & 0x1F);
  const auto time_exp = static_cast<int>((raw >> 16) & 0xF);
  units.power_unit = 1.0 / pow2(power_exp);
  units.energy_unit = 1.0 / pow2(energy_exp);
  units.time_unit = 1.0 / pow2(time_exp);
  return units;
}

std::uint64_t RaplUnits::encode(unsigned power_exp, unsigned energy_exp,
                                unsigned time_exp) {
  if (power_exp > 0xF || energy_exp > 0x1F || time_exp > 0xF) {
    throw std::invalid_argument("RaplUnits::encode: exponent out of range");
  }
  return static_cast<std::uint64_t>(power_exp) |
         (static_cast<std::uint64_t>(energy_exp) << 8) |
         (static_cast<std::uint64_t>(time_exp) << 16);
}

RaplUnits RaplUnits::skylake() {
  // Power 1/2^3 W, energy 1/2^14 J, time 1/2^10 s.
  return decode(encode(3, 14, 10));
}

std::uint8_t encode_time_window(Seconds seconds, const RaplUnits& units) {
  if (seconds <= 0.0) {
    return 0;
  }
  const double target = seconds / units.time_unit;
  double best_err = std::numeric_limits<double>::infinity();
  std::uint8_t best = 0;
  for (unsigned y = 0; y < 32; ++y) {
    for (unsigned z = 0; z < 4; ++z) {
      const double value = pow2(static_cast<int>(y)) * (1.0 + z / 4.0);
      const double err = std::abs(value - target);
      if (err < best_err) {
        best_err = err;
        best = static_cast<std::uint8_t>(y | (z << 5));
      }
    }
  }
  return best;
}

Seconds decode_time_window(std::uint8_t bits, const RaplUnits& units) {
  const unsigned y = bits & 0x1F;
  const unsigned z = (bits >> 5) & 0x3;
  return pow2(static_cast<int>(y)) * (1.0 + z / 4.0) * units.time_unit;
}

namespace {
std::uint64_t encode_half(const PowerLimit& limit, const RaplUnits& units) {
  const double raw_power = std::clamp(
      std::round(limit.power / units.power_unit), 0.0,
      static_cast<double>(kPowerMask));
  std::uint64_t half = static_cast<std::uint64_t>(raw_power) & kPowerMask;
  if (limit.enabled) {
    half |= kEnableBit;
  }
  if (limit.clamped) {
    half |= kClampBit;
  }
  half |= static_cast<std::uint64_t>(encode_time_window(limit.time_window,
                                                        units))
          << 17;
  return half;
}

PowerLimit decode_half(std::uint64_t half, const RaplUnits& units) {
  PowerLimit limit;
  limit.power = static_cast<double>(half & kPowerMask) * units.power_unit;
  limit.enabled = (half & kEnableBit) != 0;
  limit.clamped = (half & kClampBit) != 0;
  limit.time_window =
      decode_time_window(static_cast<std::uint8_t>((half >> 17) & 0x7F), units);
  return limit;
}
}  // namespace

std::uint64_t PkgPowerLimit::encode(const RaplUnits& units) const {
  std::uint64_t raw = encode_half(pl1, units) | (encode_half(pl2, units) << 32);
  if (locked) {
    raw |= kLockBit;
  }
  return raw;
}

PkgPowerLimit PkgPowerLimit::decode(std::uint64_t raw, const RaplUnits& units) {
  PkgPowerLimit limit;
  limit.pl1 = decode_half(raw & 0xFFFFFFFFULL, units);
  limit.pl2 = decode_half((raw >> 32) & 0x7FFFFFFFULL, units);
  limit.locked = (raw & kLockBit) != 0;
  return limit;
}

std::uint32_t encode_energy(Joules joules, const RaplUnits& units) {
  // Total energy grows without bound; the counter keeps the low 32 bits.
  const double raw_units = std::floor(joules / units.energy_unit);
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(raw_units) & 0xFFFFFFFFULL);
}

Joules decode_energy(std::uint32_t raw, const RaplUnits& units) {
  return static_cast<double>(raw) * units.energy_unit;
}

Joules EnergyAccumulator::sample(std::uint32_t raw) {
  if (!primed_) {
    primed_ = true;
    last_ = raw;
    return 0.0;
  }
  // Unsigned subtraction handles a single wraparound between samples.
  const std::uint32_t delta = raw - last_;
  if (raw < last_) {
    ++wraps_;
  }
  last_ = raw;
  const Joules joules = decode_energy(delta, units_);
  total_ += joules;
  return joules;
}

}  // namespace procap::rapl
