#include "progress/windower.hpp"

#include <stdexcept>

namespace procap::progress {

RateWindower::RateWindower(Nanos start, Nanos window)
    : window_(window), window_start_(start), rates_("rate") {
  if (window <= 0) {
    throw std::invalid_argument("RateWindower: window must be positive");
  }
}

void RateWindower::close_up_to(Nanos t) {
  while (window_start_ + window_ <= t) {
    const double rate = open_amount_ / to_seconds(window_);
    rates_.add(window_start_, rate);
    stats_.add(rate);
    current_ = rate;

    if (!open_phase_amount_.empty()) {
      int dominant = kNoPhase;
      double best = -1.0;
      for (const auto& [phase, amount] : open_phase_amount_) {
        if (amount > best) {
          best = amount;
          dominant = phase;
        }
      }
      auto [it, inserted] = phase_rates_.try_emplace(
          dominant, TimeSeries("rate_phase_" + std::to_string(dominant)));
      it->second.add(window_start_, rate);
    }

    open_amount_ = 0.0;
    open_phase_amount_.clear();
    window_start_ += window_;
  }
}

void RateWindower::add(Nanos t, double amount, int phase) {
  close_up_to(t);
  open_amount_ += amount;
  total_ += amount;
  if (phase != kNoPhase) {
    open_phase_amount_[phase] += amount;
  }
}

}  // namespace procap::progress
