#include "progress/composite.hpp"

#include <stdexcept>

namespace procap::progress {

void CompositeMonitor::add_component(std::shared_ptr<Monitor> monitor,
                                     double weight, double nominal_rate) {
  if (!monitor) {
    throw std::invalid_argument("CompositeMonitor: null component monitor");
  }
  if (weight <= 0.0) {
    throw std::invalid_argument("CompositeMonitor: weight must be positive");
  }
  if (nominal_rate <= 0.0) {
    throw std::invalid_argument(
        "CompositeMonitor: nominal rate must be positive");
  }
  parts_.push_back(Part{std::move(monitor), weight, nominal_rate,
                        MovingAverage(smoothing_polls_), 0.0});
}

void CompositeMonitor::poll() {
  if (parts_.empty()) {
    throw std::logic_error("CompositeMonitor::poll: no components");
  }
  double weighted = 0.0;
  double total_weight = 0.0;
  for (Part& part : parts_) {
    part.monitor->poll();
    part.smoothed.add(part.monitor->current_rate() / part.nominal_rate);
    part.last_normalized = part.smoothed.mean();
    weighted += part.weight * part.last_normalized;
    total_weight += part.weight;
  }
  current_ = weighted / total_weight;
  series_.add(time_->now(), current_);
}

double CompositeMonitor::component_rate(std::size_t i) const {
  return parts_.at(i).last_normalized;
}

}  // namespace procap::progress
