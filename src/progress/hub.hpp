// hub.hpp — auto-discovering progress monitor.
//
// A production node resource manager cannot know in advance which
// instrumented applications will run on its node.  MonitorHub subscribes
// to the whole "progress/" topic prefix and materializes a windowed rate
// view per application as its first sample arrives — the multi-tenant
// generalization of the single-application Monitor, using the same
// RateWindower arithmetic (so zero windows, phase attribution and window
// semantics are identical) and the same telemetry-health layer (per-app
// staleness grades and dropped-vs-true-zero window verdicts).
//
// The hub distinguishes "no such application" from "application known but
// currently reading zero": rate_of() returns std::nullopt for unknown
// apps, so callers never mistake an absent feed for an idle one.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "msgbus/bus.hpp"
#include "progress/health.hpp"
#include "progress/windower.hpp"
#include "util/time.hpp"

namespace procap::progress {

/// Monitors every application publishing progress on the bus.
class MonitorHub {
 public:
  /// Subscribes `sub` to the "progress/" prefix.  Each discovered
  /// application gets windows of `window` ns starting at its first
  /// sample's window boundary (aligned to the hub's construction time).
  MonitorHub(std::shared_ptr<msgbus::SubSocket> sub,
             const TimeSource& time_source, Nanos window = kNanosPerSecond,
             HealthConfig health_config = {});

  /// Drain pending samples and close elapsed windows for every known app.
  void poll();

  /// Names of all applications seen so far, in discovery order.
  [[nodiscard]] std::vector<std::string> applications() const;

  /// True once at least one sample from `app` has arrived.
  [[nodiscard]] bool knows(const std::string& app) const;

  /// Windowed rates for `app`; nullptr if the app has not been seen.
  [[nodiscard]] const RateWindower* windower(const std::string& app) const;

  /// Most recent closed-window rate for `app`, or std::nullopt if the app
  /// has never been seen — a true zero rate is distinguishable from an
  /// unknown application.
  [[nodiscard]] std::optional<double> rate_of(const std::string& app) const;

  /// True when `app` is known and has at least one closed window.
  [[nodiscard]] bool has_rate(const std::string& app) const;

  /// Most recent closed-window rate for `app` (0 if unknown).  Prefer
  /// rate_of(), which does not conflate unknown with idle.
  [[nodiscard]] double current_rate(const std::string& app) const;

  /// Signal grade for `app` right now; kLost for unknown applications
  /// (no feed at all is the definition of a lost signal).
  [[nodiscard]] SignalHealth health(const std::string& app) const;

  /// Age of `app`'s newest sample; std::nullopt if the app is unknown.
  [[nodiscard]] std::optional<Nanos> staleness(const std::string& app) const;

  /// Staleness/loss evidence for `app`; nullptr if unknown.
  [[nodiscard]] const HealthTracker* tracker(const std::string& app) const;

  /// Per-window dropped-vs-true-zero verdicts for `app`; nullptr if
  /// unknown.
  [[nodiscard]] const ZeroWindowClassifier* classifier(
      const std::string& app) const;

  /// Samples received / discarded as malformed, across all apps.
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t malformed() const { return malformed_; }

  /// Malformed payloads attributed to `app` (0 if unknown; payloads whose
  /// topic carries no app name are counted only in the hub-wide total).
  [[nodiscard]] std::uint64_t malformed_of(const std::string& app) const;

  /// Full health snapshot for `app` (signal grade + window-label totals);
  /// std::nullopt if the app is unknown.
  [[nodiscard]] std::optional<HealthReport> health_report(
      const std::string& app) const;

 private:
  /// Per-application state.  Non-movable (the classifier holds a
  /// reference to the tracker); std::map node stability keeps the
  /// references valid across rehash-free inserts.
  struct AppState {
    AppState(Nanos aligned_start, Nanos window, Nanos tracker_start,
             const HealthConfig& config)
        : windower(aligned_start, window),
          tracker(tracker_start, config),
          classifier(tracker) {}
    AppState(const AppState&) = delete;
    AppState& operator=(const AppState&) = delete;

    RateWindower windower;
    HealthTracker tracker;
    ZeroWindowClassifier classifier;
    std::size_t classified = 0;  // windows already fed to the classifier
    std::uint64_t malformed = 0;
  };

  [[nodiscard]] const AppState* state(const std::string& app) const;

  std::shared_ptr<msgbus::SubSocket> sub_;
  const TimeSource* time_;
  Nanos window_;
  Nanos origin_;
  HealthConfig health_config_;
  std::map<std::string, AppState> apps_;
  std::vector<std::string> discovery_order_;
  std::uint64_t samples_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace procap::progress
