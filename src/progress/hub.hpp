// hub.hpp — auto-discovering progress monitor.
//
// A production node resource manager cannot know in advance which
// instrumented applications will run on its node.  MonitorHub subscribes
// to the whole "progress/" topic prefix and materializes a windowed rate
// view per application as its first sample arrives — the multi-tenant
// generalization of the single-application Monitor, using the same
// RateWindower arithmetic (so zero windows, phase attribution and window
// semantics are identical).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "msgbus/bus.hpp"
#include "progress/windower.hpp"
#include "util/time.hpp"

namespace procap::progress {

/// Monitors every application publishing progress on the bus.
class MonitorHub {
 public:
  /// Subscribes `sub` to the "progress/" prefix.  Each discovered
  /// application gets windows of `window` ns starting at its first
  /// sample's window boundary (aligned to the hub's construction time).
  MonitorHub(std::shared_ptr<msgbus::SubSocket> sub,
             const TimeSource& time_source, Nanos window = kNanosPerSecond);

  /// Drain pending samples and close elapsed windows for every known app.
  void poll();

  /// Names of all applications seen so far, in discovery order.
  [[nodiscard]] std::vector<std::string> applications() const;

  /// True once at least one sample from `app` has arrived.
  [[nodiscard]] bool knows(const std::string& app) const;

  /// Windowed rates for `app`; nullptr if the app has not been seen.
  [[nodiscard]] const RateWindower* windower(const std::string& app) const;

  /// Most recent closed-window rate for `app` (0 if unknown).
  [[nodiscard]] double current_rate(const std::string& app) const;

  /// Samples received / discarded as malformed, across all apps.
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t malformed() const { return malformed_; }

 private:
  std::shared_ptr<msgbus::SubSocket> sub_;
  const TimeSource* time_;
  Nanos window_;
  Nanos origin_;
  std::map<std::string, RateWindower> apps_;
  std::vector<std::string> discovery_order_;
  std::uint64_t samples_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace procap::progress
