// reporter.hpp — the application-side instrumentation API.
//
// This is the piece each application in the paper was instrumented with:
// a lightweight handle placed at the level of the application's natural
// work loop (timestep, block, batch, GMRES iteration), publishing one
// sample per unit of completed work over the pub/sub bus.  Keeping the
// reporter dumb — no aggregation, no windowing — is deliberate: the rate
// at which progress is *reported* depends only on the application, and all
// smoothing happens monitor-side (paper Section IV-B).
//
// Typical use in an application main loop:
//
//   progress::Reporter reporter(broker.make_pub(), {"lammps", "atom-steps"});
//   for (int step = 0; step < n_steps; ++step) {
//     run_timestep();
//     reporter.report(n_atoms);   // atoms * 1 timestep of work
//   }
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "msgbus/bus.hpp"
#include "progress/sample.hpp"

namespace procap::progress {

/// Static description of what an application reports.
struct ReporterConfig {
  /// Application name; samples publish on topic "progress/<app_name>".
  std::string app_name;
  /// Human-readable unit of `amount` (e.g. "blocks", "atom-steps").
  std::string unit;
};

/// Publishes progress samples for one application.
class Reporter {
 public:
  Reporter(std::shared_ptr<msgbus::PubSocket> pub, ReporterConfig config);

  /// Report `amount` units of completed work, optionally tagged with the
  /// application phase that performed it.
  void report(double amount, int phase = kNoPhase);

  /// Number of samples published.
  [[nodiscard]] std::uint64_t reports() const { return reports_; }

  [[nodiscard]] const ReporterConfig& config() const { return config_; }

  /// Topic this reporter publishes on.
  [[nodiscard]] const std::string& topic() const { return topic_; }

 private:
  std::shared_ptr<msgbus::PubSocket> pub_;
  ReporterConfig config_;
  std::string topic_;
  std::uint64_t reports_ = 0;
};

}  // namespace procap::progress
