// windower.hpp — fixed-window rate aggregation.
//
// The core arithmetic shared by the single-application Monitor and the
// auto-discovering MonitorHub: timestamped work amounts in, one rate
// sample per elapsed window out (empty windows close at rate zero —
// which is how the paper's framework surfaced dropped reports as zero
// progress, Section V-C).  Optionally attributes each window to the
// dominant phase among its samples.
#pragma once

#include <map>

#include "progress/sample.hpp"
#include "util/series.hpp"
#include "util/stats.hpp"

namespace procap::progress {

/// Buckets (time, amount) observations into fixed windows.
class RateWindower {
 public:
  /// Windows are [start + k*window, start + (k+1)*window).
  RateWindower(Nanos start, Nanos window);

  /// Record `amount` units of work at time `t`.  Windows ending at or
  /// before `t` are closed first, so out-of-poll-order delivery within a
  /// window is handled but `t` must not precede an already-closed window.
  void add(Nanos t, double amount, int phase = kNoPhase);

  /// Close every window that ends at or before `t` (zero-filling empty
  /// ones).
  void close_up_to(Nanos t);

  /// One sample per closed window, value in units/second.
  [[nodiscard]] const TimeSeries& rates() const { return rates_; }

  /// Rate of the most recently closed window (0 before the first).
  [[nodiscard]] double current_rate() const { return current_; }

  /// Stats over all closed windows' rates.
  [[nodiscard]] const StreamingStats& stats() const { return stats_; }

  /// Total work recorded (closed and open windows).
  [[nodiscard]] double total_work() const { return total_; }

  /// Closed windows so far.
  [[nodiscard]] std::uint64_t windows() const { return rates_.size(); }

  /// Per-phase rate series: each closed window's rate attributed to the
  /// phase with the largest amount in that window (phaseless windows are
  /// not attributed).
  [[nodiscard]] const std::map<int, TimeSeries>& phase_rates() const {
    return phase_rates_;
  }

  /// Window length.
  [[nodiscard]] Nanos window() const { return window_; }

  /// Start of the currently open (not yet closed) window.
  [[nodiscard]] Nanos open_window_start() const { return window_start_; }

 private:
  Nanos window_;
  Nanos window_start_;
  double open_amount_ = 0.0;
  std::map<int, double> open_phase_amount_;
  TimeSeries rates_;
  std::map<int, TimeSeries> phase_rates_;
  StreamingStats stats_;
  double current_ = 0.0;
  double total_ = 0.0;
};

}  // namespace procap::progress
