#include "progress/reporter.hpp"

#include <stdexcept>

namespace procap::progress {

Reporter::Reporter(std::shared_ptr<msgbus::PubSocket> pub,
                   ReporterConfig config)
    : pub_(std::move(pub)),
      config_(std::move(config)),
      topic_(progress_topic(config_.app_name)) {
  if (!pub_) {
    throw std::invalid_argument("Reporter: null publisher socket");
  }
  if (config_.app_name.empty()) {
    throw std::invalid_argument("Reporter: empty application name");
  }
}

void Reporter::report(double amount, int phase) {
  // Sequence numbers start at 1; the monitor-side health layer uses gaps
  // to distinguish transport loss from a genuinely idle application.
  pub_->publish(topic_,
                encode_sample(ProgressSample{amount, phase, reports_ + 1}));
  ++reports_;
}

}  // namespace procap::progress
