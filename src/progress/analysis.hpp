// analysis.hpp — characterizing a progress-rate series.
//
// Implements the characterization of paper Section IV-C: is the online
// performance metric consistent during execution (LAMMPS, STREAM), does it
// fluctuate and need averaging (AMG), and does the application run in
// phases with distinct rates (QMCPACK's VMC1/VMC2/DMC)?
#pragma once

#include <vector>

#include "util/series.hpp"

namespace procap::progress {

/// Consistency verdict for a rate series.
struct ConsistencyReport {
  double mean_rate = 0.0;
  double stddev = 0.0;
  /// Coefficient of variation (stddev / mean) over non-warmup windows.
  double cv = 0.0;
  /// Fraction of windows that read exactly zero (dropped-report artifact).
  double zero_fraction = 0.0;
  /// cv below the threshold given to analyze_consistency().
  bool consistent = false;
};

/// Analyze rate consistency.  `warmup_windows` leading windows are
/// excluded (startup transients); zero windows are excluded from the
/// mean/cv but reported via zero_fraction.
[[nodiscard]] ConsistencyReport analyze_consistency(
    const TimeSeries& rates, double cv_threshold = 0.10,
    std::size_t warmup_windows = 2);

/// Figure of merit of a completed run: total work per second over the
/// whole span of the rate series — the shape of every FOM the paper
/// describes ("simulated years per day", "iterations per second"), which
/// is "almost always derived from the execution time" (Section III).
/// With fixed windows this equals the mean of all window rates,
/// *including* empty (zero) windows.  The paper's second objective for an
/// online metric is that it correlate with this quantity.
[[nodiscard]] double figure_of_merit(const TimeSeries& rates);

/// A run of windows with a (roughly) constant rate.
struct PhaseSegment {
  Nanos start = 0;
  Nanos end = 0;  ///< exclusive
  double mean_rate = 0.0;
  std::size_t windows = 0;
};

/// Segment a rate series into phases: a new segment opens when the rate
/// departs from the current segment's running mean by more than
/// `rel_threshold` (relative) for at least `min_windows` consecutive
/// windows.  Zero windows are skipped (transport drops, not phase
/// changes).  QMCPACK's three phases segment cleanly with the defaults.
[[nodiscard]] std::vector<PhaseSegment> detect_phases(
    const TimeSeries& rates, double rel_threshold = 0.25,
    std::size_t min_windows = 3);

}  // namespace procap::progress
