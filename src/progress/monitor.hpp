// monitor.hpp — the monitoring side: samples in, windowed rates out.
//
// The Monitor subscribes to one application's progress topic, buckets the
// incoming samples into fixed windows (default one second, as the paper
// aggregates), and closes each window into a rate sample:
//
//   rate(window) = sum of reported amounts in the window / window length
//
// Windows with no samples close at rate zero — which is exactly how the
// paper's framework manifested dropped reports as zero progress readings
// for OpenMC (Section V-C); procap reproduces that by pairing the Monitor
// with a lossy msgbus link.  The Monitor is polled (poll()), so the same
// code runs under the simulation engine (engine.every) and on a real
// thread with a sleep loop.
//
// The Monitor does not blindly trust its feed: a HealthTracker grades the
// signal (healthy/degraded/lost) from sample staleness against the
// observed reporting cadence, and a ZeroWindowClassifier labels each
// zero-rate window as dropped-in-transit vs true zero progress using
// reporter sequence numbers — the programmatic resolution of the paper's
// Section V-C ambiguity.
//
// For nodes where the application set is not known in advance (a real
// NRM deployment), see MonitorHub in progress/hub.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "msgbus/bus.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "progress/health.hpp"
#include "progress/sample.hpp"
#include "progress/windower.hpp"
#include "util/series.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace procap::progress {

/// Windowed progress-rate monitor for one application.
class Monitor {
 public:
  /// Subscribes `sub` to the application's topic.  `time_source` drives
  /// window boundaries and must match the clock the bus stamps with.
  Monitor(std::shared_ptr<msgbus::SubSocket> sub, const std::string& app_name,
          const TimeSource& time_source, Nanos window = kNanosPerSecond,
          HealthConfig health_config = {});

  /// Drain pending samples and close any windows that have elapsed.
  /// Call at least once per window (more often is fine).
  void poll();

  /// Rate series of all closed windows: one sample per window, stamped at
  /// the window start, value in work units per second.
  [[nodiscard]] const TimeSeries& rates() const { return windower_.rates(); }

  /// Rate of the most recently closed window (0 before the first closes).
  [[nodiscard]] double current_rate() const {
    return windower_.current_rate();
  }

  /// Streaming stats over all closed windows' rates.
  [[nodiscard]] const StreamingStats& rate_stats() const {
    return windower_.stats();
  }

  /// Total work units observed (sum of all sample amounts).
  [[nodiscard]] double total_work() const { return windower_.total_work(); }

  /// Count of samples received / discarded as malformed.
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t malformed() const { return malformed_; }

  /// Closed windows so far.
  [[nodiscard]] std::uint64_t windows() const { return windower_.windows(); }

  /// Phase tag observed most recently (kNoPhase if none ever seen).
  [[nodiscard]] int last_phase() const { return last_phase_; }

  /// Per-phase rate series (only phases that appeared; keyed by phase id).
  /// Each series gets the window's rate attributed to the dominant phase
  /// of that window.
  [[nodiscard]] const std::map<int, TimeSeries>& phase_rates() const {
    return windower_.phase_rates();
  }

  /// Window length.
  [[nodiscard]] Nanos window() const { return windower_.window(); }

  /// Signal grade right now: is the progress feed trustworthy?
  [[nodiscard]] SignalHealth health() const {
    return tracker_.health(time_->now());
  }

  /// Age of the newest accepted sample.
  [[nodiscard]] Nanos staleness() const {
    return tracker_.staleness(time_->now());
  }

  /// Staleness/loss evidence (cadence, gaps, missing counts).
  [[nodiscard]] const HealthTracker& tracker() const { return tracker_; }

  /// Per-window dropped-vs-true-zero verdicts (paper Section V-C).
  [[nodiscard]] const std::vector<WindowVerdict>& verdicts() const {
    return classifier_.verdicts();
  }

  /// The classifier behind verdicts(), for its per-label counters.
  [[nodiscard]] const ZeroWindowClassifier& classifier() const {
    return classifier_;
  }

  /// Full health snapshot (signal grade + per-app window totals) for
  /// tools to print.
  [[nodiscard]] HealthReport health_report() const;

  /// Attach a span collector; every closed window is recorded there
  /// (closing cap-change flows → cap-to-effect latency).  Pass nullptr
  /// to detach; `trace` must outlive the monitor while attached.
  void set_trace(obs::TraceCollector* trace) { trace_ = trace; }

  /// Application name this monitor subscribes to.
  [[nodiscard]] const std::string& app_name() const { return app_name_; }

 private:
  void publish_health_gauges();

  std::shared_ptr<msgbus::SubSocket> sub_;
  std::string app_name_;
  const TimeSource* time_;
  RateWindower windower_;
  HealthTracker tracker_;
  ZeroWindowClassifier classifier_;
  std::size_t classified_ = 0;  // windows already fed to the classifier
  std::uint64_t samples_ = 0;
  std::uint64_t malformed_ = 0;
  int last_phase_ = kNoPhase;
  obs::TraceCollector* trace_ = nullptr;
  // Per-app health gauges, bound lazily on first publish (the registry
  // returns stable references; unused when instrumentation is compiled
  // out).
  obs::Gauge* g_cadence_ = nullptr;
  obs::Gauge* g_staleness_ = nullptr;
  obs::Gauge* g_grade_ = nullptr;
  obs::Gauge* g_missing_ = nullptr;
  obs::Gauge* g_gaps_ = nullptr;
  obs::Gauge* g_rate_ = nullptr;
};

}  // namespace procap::progress
