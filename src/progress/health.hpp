// health.hpp — telemetry-health layer: staleness, loss, and the
// dropped-vs-true-zero classifier.
//
// The paper's framework "occasionally reported zero progress" for OpenMC
// (Section V-C) and could not tell whether the application had stalled or
// the reports had been lost in transit.  This layer resolves that
// ambiguity programmatically with two mechanisms:
//
//   * HealthTracker — per-application staleness tracking.  It learns the
//     application's reporting cadence online (EWMA of inter-arrival
//     times), tracks the age of the newest sample against that heartbeat
//     expectation, and grades the signal kHealthy / kDegraded / kLost.
//     Reporter-side sequence numbers let it additionally record *loss
//     intervals*: a gap between consecutive sequence numbers brackets
//     exactly when the missing reports would have been in flight.
//
//   * ZeroWindowClassifier — labels every zero-rate monitoring window as
//     kDropped (a recorded loss interval overlaps it), kTrueZero (an
//     in-order sample arrived beyond the window, proving the link was
//     clean and the application simply did no work), or kPending until
//     evidence arrives.  Classification is deliberately retrospective:
//     during a burst outage nothing can be known, and labels firm up when
//     traffic resumes and the sequence numbers reveal what happened.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap::progress {

/// Verdict on a progress signal's trustworthiness at a point in time.
enum class SignalHealth { kHealthy, kDegraded, kLost };

[[nodiscard]] const char* to_string(SignalHealth health);

/// Snapshot of one application's signal health, with per-app totals that
/// tools (power_policy, obs_report) print directly.  The tracker fills
/// the signal half (HealthTracker::report); the owning monitor adds the
/// app name and its classifier's window-label totals.
struct HealthReport {
  std::string app;
  SignalHealth grade = SignalHealth::kHealthy;
  Nanos staleness = 0;
  Nanos expected_cadence = 0;
  std::uint64_t samples = 0;
  std::uint64_t missing = 0;
  std::uint64_t reordered = 0;
  std::uint64_t open_gaps = 0;
  // Window-label totals from the zero-window classifier.
  std::uint64_t progress_windows = 0;
  std::uint64_t true_zero_windows = 0;
  std::uint64_t dropped_windows = 0;
  std::uint64_t pending_windows = 0;

  friend bool operator==(const HealthReport&, const HealthReport&) = default;
};

/// Tuning for staleness grading.
struct HealthConfig {
  /// Cadence assumed before enough samples have arrived to learn one.
  Nanos default_cadence = kNanosPerSecond;
  /// EWMA gain for the inter-arrival estimate (0 < gain <= 1).
  double cadence_gain = 0.2;
  /// Floor for the learned cadence (guards against bursty reporters
  /// driving the expectation to ~0 and flagging everything stale).
  Nanos min_cadence = msec(10);
  /// Staleness thresholds, in multiples of the expected cadence.
  double degraded_after = 2.5;
  double lost_after = 6.0;
};

/// Per-application staleness and loss tracking.
class HealthTracker {
 public:
  /// `start` anchors staleness before the first sample arrives.
  explicit HealthTracker(Nanos start, HealthConfig config = {});

  /// Record an accepted sample at time `t` with reporter sequence number
  /// `seq` (0 = unsequenced; staleness still updates, loss cannot).
  void on_sample(Nanos t, std::uint64_t seq = 0);

  /// Grade the signal at time `now`.
  [[nodiscard]] SignalHealth health(Nanos now) const;

  /// Age of the newest sample (age of the tracker if none arrived).
  [[nodiscard]] Nanos staleness(Nanos now) const;

  /// Current heartbeat expectation: learned cadence, or the configured
  /// default before one is learned.
  [[nodiscard]] Nanos expected_cadence() const;

  /// Samples observed / sequence numbers still missing (gaps net of late
  /// arrivals) / late or duplicate arrivals that filled a gap.
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint64_t missing() const { return missing_; }
  [[nodiscard]] std::uint64_t reordered() const { return reordered_; }

  /// One loss interval: `count` reports with sequence numbers in
  /// (first-1, last+1) went missing between the samples observed at
  /// `start` and `end`.
  struct Gap {
    Nanos start = 0;
    Nanos end = 0;
    std::uint64_t first = 0;  ///< lowest missing sequence number
    std::uint64_t last = 0;   ///< highest missing sequence number
    std::uint64_t count = 0;  ///< still-missing count (late fills decrement)
  };

  /// Unresolved loss intervals, in detection order.
  [[nodiscard]] const std::vector<Gap>& gaps() const { return gaps_; }

  /// True when a still-missing report's in-flight interval overlaps
  /// [t0, t1) — the evidence the zero-window classifier keys on.
  [[nodiscard]] bool lossy_in(Nanos t0, Nanos t1) const;

  /// Time of the newest sample (start time if none arrived).
  [[nodiscard]] Nanos last_sample_time() const { return last_time_; }

  /// Snapshot the signal half of a HealthReport at time `now` (app name
  /// and window totals are the owning monitor's to fill).
  [[nodiscard]] HealthReport report(Nanos now) const;

  [[nodiscard]] const HealthConfig& config() const { return config_; }

 private:
  HealthConfig config_;
  Nanos start_;
  Nanos last_time_;
  std::uint64_t last_seq_ = 0;
  bool have_cadence_ = false;
  double cadence_ = 0.0;  // EWMA of inter-arrival, in ns
  std::uint64_t samples_ = 0;
  std::uint64_t missing_ = 0;
  std::uint64_t reordered_ = 0;
  std::vector<Gap> gaps_;
};

/// Label attached to each closed monitoring window.
enum class WindowLabel {
  kPending,   ///< zero-rate window awaiting evidence
  kProgress,  ///< non-zero rate: work was observed
  kTrueZero,  ///< link proven clean; the application did no work
  kDropped,   ///< reports overlapping the window were lost in transit
};

[[nodiscard]] const char* to_string(WindowLabel label);

/// One classified window.
struct WindowVerdict {
  Nanos start = 0;
  Nanos end = 0;
  double rate = 0.0;
  WindowLabel label = WindowLabel::kPending;

  friend bool operator==(const WindowVerdict&, const WindowVerdict&) = default;
};

/// Streams closed windows through the evidence in a HealthTracker and
/// labels each one.  The tracker must outlive the classifier.
class ZeroWindowClassifier {
 public:
  explicit ZeroWindowClassifier(const HealthTracker& tracker);

  /// Feed each closed window, in order.
  void on_window(Nanos start, Nanos end, double rate);

  /// Re-examine pending windows against the tracker's current evidence.
  void resolve();

  [[nodiscard]] const std::vector<WindowVerdict>& verdicts() const {
    return verdicts_;
  }

  /// Counts by label over all windows fed so far.
  [[nodiscard]] std::uint64_t progress_windows() const { return progress_; }
  [[nodiscard]] std::uint64_t dropped_windows() const { return dropped_; }
  [[nodiscard]] std::uint64_t true_zero_windows() const { return true_zero_; }
  [[nodiscard]] std::uint64_t pending_windows() const { return pending_; }

 private:
  const HealthTracker* tracker_;
  std::vector<WindowVerdict> verdicts_;
  std::size_t first_pending_ = 0;  // verdicts before this are all settled
  std::uint64_t progress_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t true_zero_ = 0;
  std::uint64_t pending_ = 0;
};

}  // namespace procap::progress
