#include "progress/category.hpp"

namespace procap::progress {

std::string to_string(Category c) {
  switch (c) {
    case Category::kCategory1:
      return "Category 1";
    case Category::kCategory2:
      return "Category 2";
    case Category::kCategory3:
      return "Category 3";
  }
  return "Category ?";
}

Category categorize(const AppTraits& traits) {
  if (!traits.measurable_online || traits.multi_component) {
    return Category::kCategory3;
  }
  if (!traits.relates_to_science) {
    return Category::kCategory2;
  }
  return Category::kCategory1;
}

Category categorize(const AppTraits& traits, const TimeSeries& rates,
                    double instability_cv) {
  const Category by_traits = categorize(traits);
  if (by_traits == Category::kCategory3) {
    return by_traits;
  }
  if (rates.size() < 4) {
    // Too little evidence to overrule the interview.
    return by_traits;
  }
  // Judge stability within phases: phased applications legitimately run
  // at different rates per phase.
  const auto segments = detect_phases(rates);
  if (segments.empty()) {
    return Category::kCategory3;  // nothing but zero windows
  }
  double weighted_cv = 0.0;
  double weight = 0.0;
  for (const auto& seg : segments) {
    const auto report =
        analyze_consistency(rates.slice(seg.start, seg.end),
                            instability_cv, /*warmup_windows=*/0);
    const auto w = static_cast<double>(seg.windows);
    weighted_cv += report.cv * w;
    weight += w;
  }
  if (weight > 0.0 && weighted_cv / weight > instability_cv) {
    return Category::kCategory3;  // claimed metric is not reliable
  }
  return by_traits;
}

}  // namespace procap::progress
