// tracefile.hpp — recording and replaying progress traces.
//
// A deployment does not analyze progress only live: traces get recorded
// per run and studied offline (every figure in the paper is such a
// trace).  This module provides
//
//   * TraceWriter — the recording side: subscribes like a Monitor and
//     appends one CSV row per raw sample ("t_seconds,amount,phase");
//   * load_trace / windowed_rates — the replay side: read a raw trace
//     back and re-aggregate it into windowed rates with the same
//     RateWindower arithmetic the live Monitor uses;
//   * load_rates_csv — read an already-windowed rate series (the format
//     the power_policy tool's --csv flag writes).
//
// The analyze CLI (tools/analyze.cpp) drives consistency, phase and FOM
// analysis over either format.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "msgbus/bus.hpp"
#include "progress/windower.hpp"
#include "util/series.hpp"

namespace procap::progress {

/// One raw progress observation as stored in a trace file.
struct TraceSample {
  Nanos t = 0;
  double amount = 0.0;
  int phase = kNoPhase;

  friend bool operator==(const TraceSample&, const TraceSample&) = default;
};

/// Records one application's raw progress samples to a CSV file.
class TraceWriter {
 public:
  /// Subscribes `sub` to the application's topic and opens `path` for
  /// writing (truncating).  Throws std::runtime_error if the file cannot
  /// be opened.
  TraceWriter(std::shared_ptr<msgbus::SubSocket> sub,
              const std::string& app_name, const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Drain pending samples to the file.  Call periodically.
  void poll();

  /// Rows written so far.
  [[nodiscard]] std::uint64_t written() const { return written_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t written_ = 0;
};

/// Read a raw trace written by TraceWriter.  Throws std::runtime_error on
/// unreadable files, std::invalid_argument on malformed rows.
[[nodiscard]] std::vector<TraceSample> load_trace(const std::string& path);

/// Re-aggregate raw samples into windowed rates (same semantics as a live
/// Monitor with the given window; windows sit on the absolute grid, i.e.
/// multiples of `window` from the epoch).  Samples must be time-ordered.
[[nodiscard]] TimeSeries windowed_rates(const std::vector<TraceSample>& trace,
                                        Nanos window = kNanosPerSecond);

/// Read a two-column "t_seconds,<name>" rate series (the power_policy
/// tool's CSV output format).
[[nodiscard]] TimeSeries load_rates_csv(const std::string& path);

}  // namespace procap::progress
