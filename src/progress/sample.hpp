// sample.hpp — the progress sample and its wire encoding.
//
// A progress sample says "this much application-defined work completed".
// The *unit* of work is chosen per application from the paper's Table V —
// blocks (QMCPACK), particles (OpenMC), GMRES iterations (AMG), atom
// timesteps (LAMMPS), epochs (CANDLE), loop iterations (STREAM) — and the
// monitor side turns samples into a rate (work per second) without needing
// to know the unit's meaning.  `phase` optionally tags which application
// phase produced the work (QMCPACK's VMC1/VMC2/DMC, OpenMC's
// inactive/active); kNoPhase means unphased.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/units.hpp"

namespace procap::progress {

/// Phase tag for applications that do not report phases.
inline constexpr int kNoPhase = -1;

/// One progress report from an instrumented application.
struct ProgressSample {
  /// Work completed since the previous report, in application units.
  double amount = 0.0;
  /// Application phase that produced the work, or kNoPhase.
  int phase = kNoPhase;
  /// Per-reporter sequence number, starting at 1 and incrementing by one
  /// per report; 0 means unsequenced (legacy encodings).  The monitor's
  /// health layer uses gaps in the sequence to tell dropped reports from
  /// true zero-progress windows — resolving the paper's Section V-C
  /// ambiguity programmatically.
  std::uint64_t seq = 0;

  friend bool operator==(const ProgressSample&, const ProgressSample&) = default;
};

/// Topic under which an application publishes: "progress/<app>".
[[nodiscard]] std::string progress_topic(const std::string& app_name);

/// Encode a sample into a message payload.
[[nodiscard]] std::string encode_sample(const ProgressSample& sample);

/// Decode a payload; returns nullopt for malformed input (the monitor
/// counts, but does not crash on, garbage from the bus).
[[nodiscard]] std::optional<ProgressSample> decode_sample(
    const std::string& payload);

}  // namespace procap::progress
