// category.hpp — the paper's application categorization (Section III-B).
//
// Category 1: a well-defined online metric that correlates with the
//             application's scientific goal (QMCPACK, OpenMC, LAMMPS,
//             STREAM).
// Category 2: online performance is measurable but does not convey how
//             far the application is from its goal (AMG, CANDLE's
//             accuracy-bounded training).
// Category 3: no single reliable metric — unmonitorable or composed of
//             components at different timescales (URBAN, Nek5000, HACC).
//
// Categorization combines the interview traits of Table III/IV (static,
// supplied per application) with the measured behaviour of the metric
// (dynamic, from a Monitor trace): a claimed metric that is wildly
// unstable demotes the application to Category 3.
#pragma once

#include <string>

#include "progress/analysis.hpp"
#include "util/series.hpp"

namespace procap::progress {

/// The paper's three application categories.
enum class Category { kCategory1 = 1, kCategory2 = 2, kCategory3 = 3 };

[[nodiscard]] std::string to_string(Category c);

/// Answers to the interview questionnaire (paper Table III), per app.
struct AppTraits {
  std::string name;
  /// Q1: is there a well-defined figure of merit?
  bool has_fom = false;
  /// Q2: can online performance correlated with FOM/time be measured?
  bool measurable_online = false;
  /// Q3: does online performance measure progress toward the scientific
  /// goal?
  bool relates_to_science = false;
  /// Q4: is execution time predictable from a model?
  bool predictable_time = false;
  /// Q5: is the iteration count decided before execution?
  bool iterations_known = false;
  /// Q6: do loop iterations proceed uniformly?
  bool uniform_iterations = false;
  /// Q7: multiple clearly demarcated phases/components?
  bool has_phases = false;
  /// Q7 (strong form): components running at different timescales, which
  /// defeats any single metric (URBAN, HACC).
  bool multi_component = false;
  /// Q8: limiting resource ("compute", "memory bandwidth", ...).
  std::string bound_by;
};

/// Categorize from interview traits alone (what the paper's Table V does).
[[nodiscard]] Category categorize(const AppTraits& traits);

/// Categorize using both traits and a measured rate trace: the trace can
/// only demote (a metric whose non-zero windows have cv above
/// `instability_cv` is not reliable, pushing the app to Category 3).
/// Phased applications are judged per detected phase, since distinct
/// phase rates are structure, not noise.
[[nodiscard]] Category categorize(const AppTraits& traits,
                                  const TimeSeries& rates,
                                  double instability_cv = 0.35);

}  // namespace procap::progress
