// composite.hpp — composed progress for multi-component applications.
//
// The paper classifies URBAN, Nek5000 and HACC as Category 3: "the
// application is composed of multiple components that limit the
// usefulness of a single metric", and proposes as future work "studying
// individual components separately and modeling progress as a weighted
// combination of the progress of individual components" (Section VIII).
//
// CompositeMonitor implements that combination.  Each component monitor
// is normalized by its *nominal* rate (its expected uncapped rate), so
// components running at timescales orders of magnitude apart — URBAN's
// building-energy simulation at ~0.5 steps/s next to its CFD solver at
// ~30 steps/s — become commensurable fractions-of-expected-speed, and
// the composite is their weighted mean:
//
//   composite(t) = sum_i w_i * rate_i(t) / nominal_i   with sum_i w_i = 1
//
// A composite of 1.0 means every component advances at its expected
// pace; under a power cap the composite falls with the cap even when no
// single component metric is individually reliable.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "progress/monitor.hpp"
#include "util/series.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace procap::progress {

/// Weighted combination of component progress monitors.
class CompositeMonitor {
 public:
  /// `time_source` stamps composite samples; must outlive the monitor.
  /// Each component's normalized rate is smoothed over its most recent
  /// `smoothing_polls` polls before weighting, so slowly reporting
  /// components (whole batches per window) do not dominate the composite
  /// with quantization noise.
  explicit CompositeMonitor(const TimeSource& time_source,
                            std::size_t smoothing_polls = 5)
      : time_(&time_source),
        smoothing_polls_(smoothing_polls == 0 ? 1 : smoothing_polls),
        series_("composite_rate") {}

  /// Add a component.  `nominal_rate` is the component's expected
  /// uncapped rate in its own units (> 0); `weight` is its share of the
  /// composite (weights are normalized over all components).
  void add_component(std::shared_ptr<Monitor> monitor, double weight,
                     double nominal_rate);

  [[nodiscard]] std::size_t components() const { return parts_.size(); }

  /// Poll every component and append one composite sample stamped now.
  /// Call at the window cadence (1 Hz).
  void poll();

  /// Most recent composite value (0 before the first poll).
  [[nodiscard]] double composite_rate() const { return current_; }

  /// Composite series over time.
  [[nodiscard]] const TimeSeries& rates() const { return series_; }

  /// Normalized rate of one component at the last poll.
  [[nodiscard]] double component_rate(std::size_t i) const;

 private:
  struct Part {
    std::shared_ptr<Monitor> monitor;
    double weight;
    double nominal_rate;
    MovingAverage smoothed;
    double last_normalized = 0.0;
  };

  const TimeSource* time_;
  std::size_t smoothing_polls_;
  std::vector<Part> parts_;
  TimeSeries series_;
  double current_ = 0.0;
};

}  // namespace procap::progress
