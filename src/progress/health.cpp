#include "progress/health.hpp"

#include <algorithm>
#include <stdexcept>

namespace procap::progress {

const char* to_string(SignalHealth health) {
  switch (health) {
    case SignalHealth::kHealthy:
      return "healthy";
    case SignalHealth::kDegraded:
      return "degraded";
    case SignalHealth::kLost:
      return "lost";
  }
  return "?";
}

const char* to_string(WindowLabel label) {
  switch (label) {
    case WindowLabel::kPending:
      return "pending";
    case WindowLabel::kProgress:
      return "progress";
    case WindowLabel::kTrueZero:
      return "true-zero";
    case WindowLabel::kDropped:
      return "dropped";
  }
  return "?";
}

HealthTracker::HealthTracker(Nanos start, HealthConfig config)
    : config_(config), start_(start), last_time_(start) {
  if (config_.cadence_gain <= 0.0 || config_.cadence_gain > 1.0) {
    throw std::invalid_argument("HealthTracker: cadence_gain not in (0, 1]");
  }
  if (config_.default_cadence <= 0) {
    throw std::invalid_argument("HealthTracker: default_cadence must be > 0");
  }
  if (config_.lost_after < config_.degraded_after) {
    throw std::invalid_argument(
        "HealthTracker: lost_after must be >= degraded_after");
  }
}

void HealthTracker::on_sample(Nanos t, std::uint64_t seq) {
  ++samples_;
  if (seq != 0) {
    if (seq > last_seq_ + 1) {
      // seq jumped: the reports in between were in flight somewhere in
      // (last_time_, t) and never arrived.  Covers the first sample too
      // (last_seq_ 0, reporters start at 1): loss since tracker start.
      Gap gap;
      gap.start = last_time_;
      gap.end = std::max(t, last_time_);
      gap.first = last_seq_ + 1;
      gap.last = seq - 1;
      gap.count = seq - last_seq_ - 1;
      missing_ += gap.count;
      gaps_.push_back(gap);
    } else if (last_seq_ != 0 && seq <= last_seq_) {
      // Late (reordered) or duplicated arrival.  If it fills a recorded
      // gap, the report was delayed, not lost.
      ++reordered_;
      for (auto it = gaps_.begin(); it != gaps_.end(); ++it) {
        if (seq >= it->first && seq <= it->last && it->count > 0) {
          --it->count;
          --missing_;
          if (it->count == 0) {
            gaps_.erase(it);
          }
          break;
        }
      }
    }
  }
  if (t > last_time_) {
    const auto dt = static_cast<double>(t - last_time_);
    if (samples_ > 1) {
      cadence_ = have_cadence_
                     ? (1.0 - config_.cadence_gain) * cadence_ +
                           config_.cadence_gain * dt
                     : dt;
      have_cadence_ = true;
    }
    last_time_ = t;
  }
  last_seq_ = std::max(last_seq_, seq);
}

Nanos HealthTracker::expected_cadence() const {
  if (!have_cadence_) {
    return config_.default_cadence;
  }
  return std::max(static_cast<Nanos>(cadence_), config_.min_cadence);
}

Nanos HealthTracker::staleness(Nanos now) const {
  return now > last_time_ ? now - last_time_ : 0;
}

SignalHealth HealthTracker::health(Nanos now) const {
  const auto age = static_cast<double>(staleness(now));
  const auto expected = static_cast<double>(expected_cadence());
  if (age > config_.lost_after * expected) {
    return SignalHealth::kLost;
  }
  if (age > config_.degraded_after * expected) {
    return SignalHealth::kDegraded;
  }
  return SignalHealth::kHealthy;
}

HealthReport HealthTracker::report(Nanos now) const {
  HealthReport r;
  r.grade = health(now);
  r.staleness = staleness(now);
  r.expected_cadence = expected_cadence();
  r.samples = samples_;
  r.missing = missing_;
  r.reordered = reordered_;
  r.open_gaps = gaps_.size();
  return r;
}

bool HealthTracker::lossy_in(Nanos t0, Nanos t1) const {
  for (const Gap& gap : gaps_) {
    if (gap.count > 0 && gap.start < t1 && gap.end > t0) {
      return true;
    }
  }
  return false;
}

ZeroWindowClassifier::ZeroWindowClassifier(const HealthTracker& tracker)
    : tracker_(&tracker) {}

void ZeroWindowClassifier::on_window(Nanos start, Nanos end, double rate) {
  WindowVerdict verdict{start, end, rate, WindowLabel::kPending};
  if (rate > 0.0) {
    verdict.label = WindowLabel::kProgress;
    ++progress_;
  } else {
    ++pending_;
  }
  verdicts_.push_back(verdict);
}

void ZeroWindowClassifier::resolve() {
  // Evidence horizon: an in-order sample this far past a window's end
  // proves no report for the window is still plausibly in flight.
  const Nanos grace = tracker_->expected_cadence();
  bool all_settled = true;
  for (std::size_t i = first_pending_; i < verdicts_.size(); ++i) {
    WindowVerdict& v = verdicts_[i];
    if (v.label != WindowLabel::kPending) {
      if (all_settled) {
        first_pending_ = i + 1;
      }
      continue;
    }
    if (tracker_->lossy_in(v.start, v.end)) {
      v.label = WindowLabel::kDropped;
      ++dropped_;
      --pending_;
    } else if (tracker_->last_sample_time() >= v.end + grace) {
      // A sample arrived beyond the window with no loss recorded over it:
      // the link was clean and the application genuinely reported nothing.
      v.label = WindowLabel::kTrueZero;
      ++true_zero_;
      --pending_;
    } else {
      all_settled = false;
      continue;
    }
    if (all_settled) {
      first_pending_ = i + 1;
    }
  }
}

}  // namespace procap::progress
