#include "progress/sample.hpp"

#include <charconv>
#include <cstdio>

namespace procap::progress {

std::string progress_topic(const std::string& app_name) {
  return "progress/" + app_name;
}

std::string encode_sample(const ProgressSample& sample) {
  // Compact text encoding: "<amount> <phase>[ <seq>]".  %.17g round-trips
  // doubles; the sequence field is omitted for unsequenced samples so old
  // payloads and new decoders stay mutually compatible.
  char buf[96];
  int n;
  if (sample.seq != 0) {
    n = std::snprintf(buf, sizeof(buf), "%.17g %d %llu", sample.amount,
                      sample.phase,
                      static_cast<unsigned long long>(sample.seq));
  } else {
    n = std::snprintf(buf, sizeof(buf), "%.17g %d", sample.amount,
                      sample.phase);
  }
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<ProgressSample> decode_sample(const std::string& payload) {
  ProgressSample sample;
  const char* begin = payload.data();
  const char* end = begin + payload.size();
  auto [amount_end, ec1] = std::from_chars(begin, end, sample.amount);
  if (ec1 != std::errc{} || amount_end == end || *amount_end != ' ') {
    return std::nullopt;
  }
  auto [phase_end, ec2] = std::from_chars(amount_end + 1, end, sample.phase);
  if (ec2 != std::errc{}) {
    return std::nullopt;
  }
  if (phase_end == end) {
    return sample;  // two-field legacy sample, seq stays 0
  }
  if (*phase_end != ' ') {
    return std::nullopt;
  }
  auto [seq_end, ec3] = std::from_chars(phase_end + 1, end, sample.seq);
  if (ec3 != std::errc{} || seq_end != end) {
    return std::nullopt;
  }
  return sample;
}

}  // namespace procap::progress
