#include "progress/analysis.hpp"

#include <cmath>

#include "util/stats.hpp"

namespace procap::progress {

ConsistencyReport analyze_consistency(const TimeSeries& rates,
                                      double cv_threshold,
                                      std::size_t warmup_windows) {
  ConsistencyReport report;
  StreamingStats stats;
  std::size_t zeros = 0;
  std::size_t considered = 0;
  for (std::size_t i = warmup_windows; i < rates.size(); ++i) {
    ++considered;
    const double v = rates[i].value;
    if (v == 0.0) {
      ++zeros;
      continue;
    }
    stats.add(v);
  }
  report.mean_rate = stats.mean();
  report.stddev = stats.stddev();
  report.cv = stats.cv();
  report.zero_fraction =
      considered ? static_cast<double>(zeros) / static_cast<double>(considered)
                 : 0.0;
  report.consistent = stats.count() >= 2 && report.cv <= cv_threshold;
  return report;
}

double figure_of_merit(const TimeSeries& rates) {
  if (rates.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const auto& sample : rates.samples()) {
    total += sample.value;
  }
  return total / static_cast<double>(rates.size());
}

std::vector<PhaseSegment> detect_phases(const TimeSeries& rates,
                                        double rel_threshold,
                                        std::size_t min_windows) {
  std::vector<PhaseSegment> segments;
  PhaseSegment current;
  double sum = 0.0;
  std::size_t departures = 0;  // consecutive windows away from the mean
  Nanos departure_start = 0;
  double departure_sum = 0.0;

  auto open = [&](Nanos t, double v) {
    current = PhaseSegment{t, t, v, 1};
    sum = v;
    departures = 0;
    departure_sum = 0.0;
  };
  auto close = [&](Nanos end) {
    current.end = end;
    current.mean_rate = sum / static_cast<double>(current.windows);
    segments.push_back(current);
  };

  bool started = false;
  Nanos window_len = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& s = rates[i];
    if (i + 1 < rates.size()) {
      window_len = rates[i + 1].t - s.t;
    }
    if (s.value == 0.0) {
      continue;  // dropped-report window, not a phase boundary
    }
    if (!started) {
      open(s.t, s.value);
      started = true;
      continue;
    }
    const double mean = sum / static_cast<double>(current.windows);
    const bool departed =
        mean > 0.0 && std::abs(s.value - mean) / mean > rel_threshold;
    if (departed) {
      if (departures == 0) {
        departure_start = s.t;
        departure_sum = 0.0;
      }
      ++departures;
      departure_sum += s.value;
      if (departures >= min_windows) {
        // Sustained departure: the segment ended where it began.
        close(departure_start);
        current = PhaseSegment{departure_start, departure_start,
                               departure_sum / static_cast<double>(departures),
                               departures};
        sum = departure_sum;
        departures = 0;
        departure_sum = 0.0;
      }
    } else {
      // Any pending departure was a blip; fold it into the segment.
      sum += departure_sum + s.value;
      current.windows += departures + 1;
      departures = 0;
      departure_sum = 0.0;
    }
  }
  if (started) {
    // Fold a trailing short departure into the final segment.
    sum += departure_sum;
    current.windows += departures;
    close(rates.end_time() + window_len);
  }
  return segments;
}

}  // namespace procap::progress
