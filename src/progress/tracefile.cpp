#include "progress/tracefile.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "progress/sample.hpp"

namespace procap::progress {

struct TraceWriter::Impl {
  std::shared_ptr<msgbus::SubSocket> sub;
  std::ofstream file;
};

TraceWriter::TraceWriter(std::shared_ptr<msgbus::SubSocket> sub,
                         const std::string& app_name, const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  if (!sub) {
    throw std::invalid_argument("TraceWriter: null subscriber socket");
  }
  impl_->sub = std::move(sub);
  impl_->sub->subscribe(progress_topic(app_name));
  impl_->file.open(path, std::ios::trunc);
  if (!impl_->file) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
  impl_->file << "t_seconds,amount,phase\n";
}

TraceWriter::~TraceWriter() = default;

void TraceWriter::poll() {
  while (auto msg = impl_->sub->try_recv()) {
    const auto sample = decode_sample(msg->payload);
    if (!sample) {
      continue;
    }
    impl_->file << to_seconds(msg->timestamp) << "," << sample->amount << ","
                << sample->phase << "\n";
    ++written_;
  }
  impl_->file.flush();
}

namespace {

[[noreturn]] void bad_row(const std::string& path, std::size_t line) {
  throw std::invalid_argument("trace " + path + ": malformed row at line " +
                              std::to_string(line));
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::istringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) {
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

std::vector<TraceSample> load_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("load_trace: cannot read " + path);
  }
  std::vector<TraceSample> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line_no == 1 && line.rfind("t_seconds", 0) == 0) {
      continue;  // header
    }
    const auto cells = split_csv(line);
    if (cells.size() != 3) {
      bad_row(path, line_no);
    }
    try {
      TraceSample sample;
      sample.t = to_nanos(std::stod(cells[0]));
      sample.amount = std::stod(cells[1]);
      sample.phase = std::stoi(cells[2]);
      trace.push_back(sample);
    } catch (const std::exception&) {
      bad_row(path, line_no);
    }
  }
  return trace;
}

TimeSeries windowed_rates(const std::vector<TraceSample>& trace,
                          Nanos window) {
  if (trace.empty()) {
    return TimeSeries("rate");
  }
  // Snap the first window down onto the absolute window grid, so a
  // replayed trace reproduces the windows a live monitor (started at the
  // epoch) would have closed.
  const Nanos start = (trace.front().t / window) * window;
  RateWindower windower(start, window);
  for (const TraceSample& sample : trace) {
    windower.add(sample.t, sample.amount, sample.phase);
  }
  // Close the final (partial) window's predecessors; the open window is
  // discarded, as a live monitor would not have closed it either.
  windower.close_up_to(trace.back().t);
  return windower.rates();
}

TimeSeries load_rates_csv(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("load_rates_csv: cannot read " + path);
  }
  TimeSeries series("rate");
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line_no == 1 && line.rfind("t_seconds", 0) == 0) {
      continue;
    }
    const auto cells = split_csv(line);
    if (cells.size() != 2) {
      throw std::invalid_argument("rates " + path +
                                  ": malformed row at line " +
                                  std::to_string(line_no));
    }
    try {
      series.add(to_nanos(std::stod(cells[0])), std::stod(cells[1]));
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("rates " + path +
                                  ": malformed row at line " +
                                  std::to_string(line_no));
    }
  }
  return series;
}

}  // namespace procap::progress
