#include "progress/monitor.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace procap::progress {

Monitor::Monitor(std::shared_ptr<msgbus::SubSocket> sub,
                 const std::string& app_name, const TimeSource& time_source,
                 Nanos window, HealthConfig health_config)
    : sub_(std::move(sub)),
      app_name_(app_name),
      time_(&time_source),
      windower_(time_source.now(), window),
      tracker_(time_source.now(), health_config),
      classifier_(tracker_) {
  if (!sub_) {
    throw std::invalid_argument("Monitor: null subscriber socket");
  }
  sub_->subscribe(progress_topic(app_name));
}

void Monitor::publish_health_gauges() {
#if !defined(PROCAP_OBS_DISABLED)
  // Per-app instances of the health metrics, labelled by app name.  The
  // registry returns stable references; bind once per monitor.
  if (!obs::Registry::enabled()) {
    return;
  }
  if (g_cadence_ == nullptr) {
    auto& reg = obs::Registry::global();
    // App names come from the outside world — escape them rather than
    // trust them to be exposition-safe.
    const std::string labels = obs::prometheus_label("app", app_name_);
    g_cadence_ = &reg.gauge("progress.health.cadence_ns", labels);
    g_staleness_ = &reg.gauge("progress.health.staleness_ns", labels);
    g_grade_ = &reg.gauge("progress.health.grade", labels);
    g_missing_ = &reg.gauge("progress.health.missing", labels);
    g_gaps_ = &reg.gauge("progress.health.open_gaps", labels);
    g_rate_ = &reg.gauge("progress.rate", labels);
  }
  const Nanos now = time_->now();
  g_cadence_->set(static_cast<double>(tracker_.expected_cadence()));
  g_staleness_->set(static_cast<double>(tracker_.staleness(now)));
  g_grade_->set(static_cast<double>(static_cast<int>(tracker_.health(now))));
  g_missing_->set(static_cast<double>(tracker_.missing()));
  g_gaps_->set(static_cast<double>(tracker_.gaps().size()));
  g_rate_->set(current_rate());
#endif
}

void Monitor::poll() {
  PROCAP_OBS_COUNTER(samples_total, "progress.samples");
  PROCAP_OBS_COUNTER(malformed_total, "progress.malformed");
  PROCAP_OBS_COUNTER(windows_total, "progress.windows");
  while (auto msg = sub_->try_recv()) {
    const auto sample = decode_sample(msg->payload);
    if (!sample) {
      ++malformed_;
      malformed_total.inc();
      continue;
    }
    ++samples_;
    samples_total.inc();
    tracker_.on_sample(msg->timestamp, sample->seq);
    // The windower closes windows up to the sample's own timestamp, so
    // late polls do not smear old samples into newer windows.
    windower_.add(msg->timestamp, sample->amount, sample->phase);
    if (sample->phase != kNoPhase) {
      last_phase_ = sample->phase;
    }
  }
  windower_.close_up_to(time_->now());
  // Feed newly closed windows to the classifier, then let it re-grade any
  // still-pending verdicts against the evidence that just arrived.
  const TimeSeries& rates = windower_.rates();
  for (; classified_ < rates.size(); ++classified_) {
    const auto& s = rates.samples()[classified_];
    classifier_.on_window(s.t, s.t + windower_.window(), s.value);
    windows_total.inc();
    if (trace_ != nullptr) {
      trace_->progress_window(s.t, s.t + windower_.window(), s.value,
                              app_name_);
    }
  }
  classifier_.resolve();
  publish_health_gauges();
}

HealthReport Monitor::health_report() const {
  HealthReport r = tracker_.report(time_->now());
  r.app = app_name_;
  r.progress_windows = classifier_.progress_windows();
  r.true_zero_windows = classifier_.true_zero_windows();
  r.dropped_windows = classifier_.dropped_windows();
  r.pending_windows = classifier_.pending_windows();
  return r;
}

}  // namespace procap::progress
