#include "progress/monitor.hpp"

#include <stdexcept>

namespace procap::progress {

Monitor::Monitor(std::shared_ptr<msgbus::SubSocket> sub,
                 const std::string& app_name, const TimeSource& time_source,
                 Nanos window)
    : sub_(std::move(sub)),
      time_(&time_source),
      windower_(time_source.now(), window) {
  if (!sub_) {
    throw std::invalid_argument("Monitor: null subscriber socket");
  }
  sub_->subscribe(progress_topic(app_name));
}

void Monitor::poll() {
  while (auto msg = sub_->try_recv()) {
    const auto sample = decode_sample(msg->payload);
    if (!sample) {
      ++malformed_;
      continue;
    }
    ++samples_;
    // The windower closes windows up to the sample's own timestamp, so
    // late polls do not smear old samples into newer windows.
    windower_.add(msg->timestamp, sample->amount, sample->phase);
    if (sample->phase != kNoPhase) {
      last_phase_ = sample->phase;
    }
  }
  windower_.close_up_to(time_->now());
}

}  // namespace procap::progress
