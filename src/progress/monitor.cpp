#include "progress/monitor.hpp"

#include <stdexcept>

namespace procap::progress {

Monitor::Monitor(std::shared_ptr<msgbus::SubSocket> sub,
                 const std::string& app_name, const TimeSource& time_source,
                 Nanos window, HealthConfig health_config)
    : sub_(std::move(sub)),
      time_(&time_source),
      windower_(time_source.now(), window),
      tracker_(time_source.now(), health_config),
      classifier_(tracker_) {
  if (!sub_) {
    throw std::invalid_argument("Monitor: null subscriber socket");
  }
  sub_->subscribe(progress_topic(app_name));
}

void Monitor::poll() {
  while (auto msg = sub_->try_recv()) {
    const auto sample = decode_sample(msg->payload);
    if (!sample) {
      ++malformed_;
      continue;
    }
    ++samples_;
    tracker_.on_sample(msg->timestamp, sample->seq);
    // The windower closes windows up to the sample's own timestamp, so
    // late polls do not smear old samples into newer windows.
    windower_.add(msg->timestamp, sample->amount, sample->phase);
    if (sample->phase != kNoPhase) {
      last_phase_ = sample->phase;
    }
  }
  windower_.close_up_to(time_->now());
  // Feed newly closed windows to the classifier, then let it re-grade any
  // still-pending verdicts against the evidence that just arrived.
  const TimeSeries& rates = windower_.rates();
  for (; classified_ < rates.size(); ++classified_) {
    const auto& s = rates.samples()[classified_];
    classifier_.on_window(s.t, s.t + windower_.window(), s.value);
  }
  classifier_.resolve();
}

}  // namespace procap::progress
