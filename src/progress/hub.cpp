#include "progress/hub.hpp"

#include <stdexcept>

#include "progress/sample.hpp"

namespace procap::progress {

namespace {
constexpr const char* kPrefix = "progress/";
}

MonitorHub::MonitorHub(std::shared_ptr<msgbus::SubSocket> sub,
                       const TimeSource& time_source, Nanos window)
    : sub_(std::move(sub)),
      time_(&time_source),
      window_(window),
      origin_(time_source.now()) {
  if (!sub_) {
    throw std::invalid_argument("MonitorHub: null subscriber socket");
  }
  if (window <= 0) {
    throw std::invalid_argument("MonitorHub: window must be positive");
  }
  sub_->subscribe(kPrefix);
}

void MonitorHub::poll() {
  while (auto msg = sub_->try_recv()) {
    const auto sample = decode_sample(msg->payload);
    if (!sample || msg->topic.size() <= std::string(kPrefix).size()) {
      ++malformed_;
      continue;
    }
    ++samples_;
    const std::string app = msg->topic.substr(std::string(kPrefix).size());
    auto it = apps_.find(app);
    if (it == apps_.end()) {
      // New application: align its windows to the hub's origin grid so
      // different apps' windows are comparable.
      const Nanos elapsed = msg->timestamp - origin_;
      const Nanos aligned =
          origin_ + (elapsed / window_) * window_;
      it = apps_.try_emplace(app, aligned, window_).first;
      discovery_order_.push_back(app);
    }
    it->second.add(msg->timestamp, sample->amount, sample->phase);
  }
  const Nanos now = time_->now();
  for (auto& [name, windower] : apps_) {
    windower.close_up_to(now);
  }
}

std::vector<std::string> MonitorHub::applications() const {
  return discovery_order_;
}

bool MonitorHub::knows(const std::string& app) const {
  return apps_.contains(app);
}

const RateWindower* MonitorHub::windower(const std::string& app) const {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

double MonitorHub::current_rate(const std::string& app) const {
  const RateWindower* w = windower(app);
  return w ? w->current_rate() : 0.0;
}

}  // namespace procap::progress
