#include "progress/hub.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "progress/sample.hpp"

namespace procap::progress {

namespace {
constexpr const char* kPrefix = "progress/";
}

MonitorHub::MonitorHub(std::shared_ptr<msgbus::SubSocket> sub,
                       const TimeSource& time_source, Nanos window,
                       HealthConfig health_config)
    : sub_(std::move(sub)),
      time_(&time_source),
      window_(window),
      origin_(time_source.now()),
      health_config_(health_config) {
  if (!sub_) {
    throw std::invalid_argument("MonitorHub: null subscriber socket");
  }
  if (window <= 0) {
    throw std::invalid_argument("MonitorHub: window must be positive");
  }
  sub_->subscribe(kPrefix);
}

void MonitorHub::poll() {
  PROCAP_OBS_COUNTER(samples_total, "hub.samples");
  PROCAP_OBS_COUNTER(malformed_total, "hub.malformed");
  const std::size_t prefix_len = std::string(kPrefix).size();
  while (auto msg = sub_->try_recv()) {
    const bool has_app = msg->topic.size() > prefix_len;
    const auto sample = decode_sample(msg->payload);
    if (!sample || !has_app) {
      ++malformed_;
      malformed_total.inc();
      // Attribute the bad payload to its app when the topic names one we
      // already know; a topic with no app name only counts hub-wide.
      if (has_app) {
        const std::string app = msg->topic.substr(prefix_len);
        if (const auto it = apps_.find(app); it != apps_.end()) {
          ++it->second.malformed;
        }
      }
      continue;
    }
    ++samples_;
    samples_total.inc();
    const std::string app = msg->topic.substr(prefix_len);
    auto it = apps_.find(app);
    if (it == apps_.end()) {
      // New application: align its windows to the hub's origin grid so
      // different apps' windows are comparable.
      const Nanos elapsed = msg->timestamp - origin_;
      const Nanos aligned = origin_ + (elapsed / window_) * window_;
      it = apps_
               .try_emplace(app, aligned, window_, aligned, health_config_)
               .first;
      discovery_order_.push_back(app);
    }
    it->second.tracker.on_sample(msg->timestamp, sample->seq);
    it->second.windower.add(msg->timestamp, sample->amount, sample->phase);
  }
  const Nanos now = time_->now();
  for (auto& [name, app] : apps_) {
    app.windower.close_up_to(now);
    const TimeSeries& rates = app.windower.rates();
    for (; app.classified < rates.size(); ++app.classified) {
      const auto& s = rates.samples()[app.classified];
      app.classifier.on_window(s.t, s.t + window_, s.value);
    }
    app.classifier.resolve();
  }
}

std::vector<std::string> MonitorHub::applications() const {
  return discovery_order_;
}

bool MonitorHub::knows(const std::string& app) const {
  return apps_.contains(app);
}

const MonitorHub::AppState* MonitorHub::state(const std::string& app) const {
  const auto it = apps_.find(app);
  return it == apps_.end() ? nullptr : &it->second;
}

const RateWindower* MonitorHub::windower(const std::string& app) const {
  const AppState* s = state(app);
  return s ? &s->windower : nullptr;
}

std::optional<double> MonitorHub::rate_of(const std::string& app) const {
  const AppState* s = state(app);
  if (!s) {
    return std::nullopt;
  }
  return s->windower.current_rate();
}

bool MonitorHub::has_rate(const std::string& app) const {
  const AppState* s = state(app);
  return s && s->windower.windows() > 0;
}

double MonitorHub::current_rate(const std::string& app) const {
  return rate_of(app).value_or(0.0);
}

SignalHealth MonitorHub::health(const std::string& app) const {
  const AppState* s = state(app);
  return s ? s->tracker.health(time_->now()) : SignalHealth::kLost;
}

std::optional<Nanos> MonitorHub::staleness(const std::string& app) const {
  const AppState* s = state(app);
  if (!s) {
    return std::nullopt;
  }
  return s->tracker.staleness(time_->now());
}

const HealthTracker* MonitorHub::tracker(const std::string& app) const {
  const AppState* s = state(app);
  return s ? &s->tracker : nullptr;
}

const ZeroWindowClassifier* MonitorHub::classifier(
    const std::string& app) const {
  const AppState* s = state(app);
  return s ? &s->classifier : nullptr;
}

std::uint64_t MonitorHub::malformed_of(const std::string& app) const {
  const AppState* s = state(app);
  return s ? s->malformed : 0;
}

std::optional<HealthReport> MonitorHub::health_report(
    const std::string& app) const {
  const AppState* s = state(app);
  if (!s) {
    return std::nullopt;
  }
  HealthReport r = s->tracker.report(time_->now());
  r.app = app;
  r.progress_windows = s->classifier.progress_windows();
  r.true_zero_windows = s->classifier.true_zero_windows();
  r.dropped_windows = s->classifier.dropped_windows();
  r.pending_windows = s->classifier.pending_windows();
  return r;
}

}  // namespace procap::progress
