#include "cluster/telemetry.hpp"

#include <algorithm>
#include <limits>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/sketch.hpp"
#include "obs/trace.hpp"
#include "util/units.hpp"

namespace procap::cluster {

namespace {

/// Fold one value into a Roll being accumulated (call finish() after).
struct RollAcc {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::size_t n = 0;

  void add(double v) {
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++n;
  }

  [[nodiscard]] Roll finish() const {
    Roll roll;
    roll.sum = sum;
    if (n > 0) {
      roll.mean = sum / static_cast<double>(n);
      roll.min = min;
      roll.max = max;
    }
    return roll;
  }
};

void write_roll(std::ostream& os, const char* key, const Roll& roll) {
  os << "\"" << key << "\":{\"sum\":" << roll.sum << ",\"mean\":" << roll.mean
     << ",\"min\":" << roll.min << ",\"max\":" << roll.max << "}";
}

}  // namespace

ClusterTelemetry::ClusterTelemetry(obs::Registry& registry)
    : registry_(&registry) {}

void ClusterTelemetry::update(const ClusterPowerManager& manager) {
  ClusterSnapshot snap;
  snap.t = manager.now();
  snap.budget = manager.config().global_budget;
  snap.running_jobs = manager.jobs().running();
  snap.held = manager.held();
  snap.invariant_violations = manager.invariant_violations();
  if (!manager.records().empty()) {
    snap.epoch = manager.records().back().epoch;
  }

  const std::size_t n = manager.node_count();
  snap.nodes.reserve(n);
  RollAcc power, granted, demand, rate, progress;
  obs::Sketch& rate_dist =
      registry_->sketch("cluster.node.rate_dist", "", 0.01);
  for (unsigned i = 0; i < n; ++i) {
    const SimNode& node = manager.node(i);
    const NodeTelemetry& telem = node.telemetry();
    NodeSample sample;
    sample.id = i;
    sample.liveness = manager.liveness(i);
    sample.cap = manager.caps()[i];
    sample.power = telem.power;
    sample.demand = telem.demand;
    sample.rate = telem.rate;
    sample.progress = node.progress();
    sample.job = node.job();
    sample.deficit = telem.demand - sample.cap;
    switch (sample.liveness) {
      case Liveness::kAlive:
        ++snap.alive;
        break;
      case Liveness::kSuspect:
        ++snap.suspect;
        break;
      case Liveness::kDead:
        ++snap.dead;
        break;
    }
    power.add(sample.power);
    granted.add(sample.cap);
    demand.add(sample.demand);
    rate.add(sample.rate);
    progress.add(sample.progress);
    rate_dist.observe(sample.rate);
    snap.nodes.push_back(sample);
  }
  snap.power = power.finish();
  snap.granted = granted.finish();
  snap.demand = demand.finish();
  snap.rate = rate.finish();
  snap.progress = progress.finish();

  // Cap-to-effect roll-in: per-node last latency for the drill-down
  // table, cluster quantiles for the dashboard headline.
  if (tracer_ != nullptr) {
    obs::FlowTracerStats flow_stats;
    const double qs[2] = {0.5, 0.99};
    double quantiles[2] = {0.0, 0.0};
    tracer_->rollup(flow_stats, qs, quantiles, 2, c2e_scratch_);
    snap.flows_closed = flow_stats.closed;
    snap.flows_orphaned = flow_stats.orphaned;
    snap.flows_open = flow_stats.open;
    if (flow_stats.closed > 0) {
      snap.flow_p50_ms = quantiles[0] * 1e3;
      snap.flow_p99_ms = quantiles[1] * 1e3;
    }
    const std::size_t c2e_n = std::min(c2e_scratch_.size(),
                                       snap.nodes.size());
    for (std::size_t i = 0; i < c2e_n; ++i) {
      snap.nodes[i].c2e_ms = c2e_scratch_[i];
    }
    if (trace_open_gauge_ == nullptr) {
      trace_open_gauge_ = &registry_->gauge("cluster.trace.open");
    }
    trace_open_gauge_->set(static_cast<double>(flow_stats.open));
  }

  // Cluster-level gauges: the TimeSeriesStore retains these, the alert
  // engine can watch them, and /metrics exposes them — for free.
  registry_->gauge("cluster.budget").set(snap.budget);
  registry_->gauge("cluster.power.sum").set(snap.power.sum);
  registry_->gauge("cluster.power.mean").set(snap.power.mean);
  registry_->gauge("cluster.power.max").set(snap.power.max);
  registry_->gauge("cluster.granted.sum").set(snap.granted.sum);
  registry_->gauge("cluster.demand.sum").set(snap.demand.sum);
  registry_->gauge("cluster.rate.sum").set(snap.rate.sum);
  registry_->gauge("cluster.progress.sum").set(snap.progress.sum);
  registry_->gauge("cluster.alive").set(snap.alive);
  registry_->gauge("cluster.suspect").set(snap.suspect);
  registry_->gauge("cluster.dead").set(snap.dead);
  registry_->gauge("cluster.jobs.running")
      .set(static_cast<double>(snap.running_jobs));
  registry_->gauge("cluster.held").set(snap.held ? 1.0 : 0.0);
  registry_->counter("cluster.epochs.observed").inc();

  // Per-node gauges, labeled node="i" so /timeseries.json?node=i can
  // drill down.  Lazily created once per node, then pointer-cached.
  for (unsigned i = 0; i < n; ++i) {
    if (i >= node_power_.size()) {
      const std::string label = "node=\"" + std::to_string(i) + "\"";
      node_power_.push_back(&registry_->gauge("cluster.node.power", label));
      node_granted_.push_back(
          &registry_->gauge("cluster.node.granted", label));
      node_rate_.push_back(&registry_->gauge("cluster.node.rate", label));
    }
    node_power_[i]->set(snap.nodes[i].power);
    node_granted_[i]->set(snap.nodes[i].cap);
    node_rate_[i]->set(snap.nodes[i].rate);
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  snapshot_ = std::move(snap);
  ++updates_;
}

ClusterSnapshot ClusterTelemetry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

std::uint64_t ClusterTelemetry::updates() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return updates_;
}

void ClusterTelemetry::write_cluster_json(std::ostream& os,
                                          std::size_t topk) const {
  const ClusterSnapshot snap = snapshot();
  // Full double precision: the conservation check (sum of node caps ==
  // granted.sum) must survive the round-trip through JSON text.
  const auto old_precision = os.precision(15);
  os << "{\"epoch\":" << snap.epoch << ",\"t\":" << to_seconds(snap.t)
     << ",\"budget\":" << snap.budget << ",\"alive\":" << snap.alive
     << ",\"suspect\":" << snap.suspect << ",\"dead\":" << snap.dead
     << ",\"running_jobs\":" << snap.running_jobs
     << ",\"held\":" << (snap.held ? "true" : "false")
     << ",\"invariant_violations\":" << snap.invariant_violations << ",";
  write_roll(os, "power", snap.power);
  os << ",";
  write_roll(os, "granted", snap.granted);
  os << ",";
  write_roll(os, "demand", snap.demand);
  os << ",";
  write_roll(os, "rate", snap.rate);
  os << ",";
  write_roll(os, "progress", snap.progress);
  os << ",\"trace\":{\"closed\":" << snap.flows_closed
     << ",\"orphaned\":" << snap.flows_orphaned
     << ",\"open\":" << snap.flows_open
     << ",\"p50_ms\":" << snap.flow_p50_ms
     << ",\"p99_ms\":" << snap.flow_p99_ms << "}";

  std::vector<const NodeSample*> rows;
  rows.reserve(snap.nodes.size());
  for (const NodeSample& node : snap.nodes) {
    rows.push_back(&node);
  }
  if (topk > 0 && topk < rows.size()) {
    // Top-k by deficit: the nodes hurting most under the current split.
    std::partial_sort(rows.begin(), rows.begin() + topk, rows.end(),
                      [](const NodeSample* a, const NodeSample* b) {
                        if (a->deficit != b->deficit) {
                          return a->deficit > b->deficit;
                        }
                        return a->id < b->id;  // deterministic tie-break
                      });
    rows.resize(topk);
  }
  os << ",\"nodes\":[";
  bool first = true;
  for (const NodeSample* node : rows) {
    os << (first ? "" : ",") << "{\"id\":" << node->id << ",\"liveness\":\""
       << to_string(node->liveness) << "\",\"cap\":" << node->cap
       << ",\"power\":" << node->power << ",\"demand\":" << node->demand
       << ",\"rate\":" << node->rate << ",\"progress\":" << node->progress
       << ",\"job\":" << node->job << ",\"deficit\":" << node->deficit
       << ",\"c2e_ms\":" << node->c2e_ms << "}";
    first = false;
  }
  os << "]}";
  os.precision(old_precision);
}

}  // namespace procap::cluster
