#include "cluster/strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "job/waterfill.hpp"

namespace procap::cluster {

namespace {

/// Shared water-filling plumbing: floors (shrunk to fit), ceilings, then
/// the remainder split by the weights the concrete strategy computed.
void fill(const std::vector<NodeView>& nodes, Watts budget, CapBounds bounds,
          const std::vector<double>& weights, std::vector<Watts>& caps) {
  caps.assign(nodes.size(), 0.0);
  if (nodes.empty() || budget <= 0.0) {
    return;
  }
  // When the budget cannot cover every floor, shrink the floors evenly:
  // over-committing would break the cluster conservation invariant, and
  // starving an arbitrary subset would be worse than brown-out for all.
  const Watts floor =
      std::min(bounds.min_cap, budget / static_cast<double>(nodes.size()));
  std::vector<job::WaterfillItem> items(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    items[i].weight = std::max(weights[i], 1e-9);
    items[i].floor = floor;
    items[i].ceiling = std::max(floor, bounds.max_cap);
  }
  (void)job::waterfill(items, budget);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    caps[i] = items[i].granted;
  }
}

class UniformStrategy final : public Strategy {
 public:
  const char* name() const override { return "uniform"; }

  void distribute(const std::vector<NodeView>& nodes, Watts budget,
                  CapBounds bounds, std::vector<Watts>& caps) const override {
    fill(nodes, budget, bounds, std::vector<double>(nodes.size(), 1.0), caps);
  }
};

class DemandProportionalStrategy final : public Strategy {
 public:
  const char* name() const override { return "demand"; }

  void distribute(const std::vector<NodeView>& nodes, Watts budget,
                  CapBounds bounds, std::vector<Watts>& caps) const override {
    std::vector<double> weights(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      weights[i] = std::max(nodes[i].demand, 1.0);
    }
    fill(nodes, budget, bounds, weights, caps);
  }
};

class ProgressAwareStrategy final : public Strategy {
 public:
  const char* name() const override { return "progress"; }

  void distribute(const std::vector<NodeView>& nodes, Watts budget,
                  CapBounds bounds, std::vector<Watts>& caps) const override {
    std::vector<double> weights(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeView& n = nodes[i];
      if (n.priority <= 0 || n.nominal_rate <= 0.0) {
        // Idle node: the floor covers it; keep its pull on the remainder
        // nominal so busy nodes win the contested watts.
        weights[i] = 0.1;
        continue;
      }
      // Deficit in [0, 1]: how far the node runs behind its full-power
      // rate.  Even a caught-up node keeps a baseline share so the
      // division never starves a healthy job outright.
      const double deficit =
          std::clamp(1.0 - n.rate / n.nominal_rate, 0.0, 1.0);
      weights[i] = static_cast<double>(n.priority) * (0.25 + deficit);
    }
    fill(nodes, budget, bounds, weights, caps);
  }
};

}  // namespace

std::unique_ptr<Strategy> make_strategy(std::string_view name) {
  if (name == "uniform") {
    return std::make_unique<UniformStrategy>();
  }
  if (name == "demand") {
    return std::make_unique<DemandProportionalStrategy>();
  }
  if (name == "progress") {
    return std::make_unique<ProgressAwareStrategy>();
  }
  throw std::invalid_argument("cluster: unknown strategy '" +
                              std::string(name) +
                              "' (want uniform|demand|progress)");
}

const std::vector<std::string>& strategy_names() {
  static const std::vector<std::string> names = {"uniform", "demand",
                                                 "progress"};
  return names;
}

}  // namespace procap::cluster
