// node.hpp — a lightweight simulated node for cluster-scale runs.
//
// The single-node simulator (src/hw) models a package at 1 ms RAPL
// granularity; stepping hundreds of those to study *budget division*
// would spend nearly all its cycles below the level the cluster layer
// can observe.  SimNode is the scale-out counterpart: an analytic node
// whose power and progress respond to its cap at the cluster manager's
// tick (hundreds of ms), calibrated to the same shape the paper
// establishes — progress follows (granted/demand)^alpha, so memory-bound
// jobs (small alpha) lose little under a cap while compute-bound jobs
// (alpha near 1) track it directly.
//
// The node carries the bottom of the job→node→device hierarchy: its cap
// splits over the CPU and DRAM device domains in proportion to the
// bound job's demand mix, mirroring flux-power-monitor's device-level
// powercaps.
//
// Determinism: every random draw comes from the node's own Rng stream
// (forked from the cluster seed at construction), and step() touches
// nothing but this node's state — so the manager may step any subset of
// nodes concurrently and the results are bit-identical to a serial pass.
#pragma once

#include <cstdint>

#include "cluster/jobmix.hpp"
#include "fault/injectors.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace procap::cluster {

/// Static description of one node model.
struct NodeSpec {
  Watts idle_power = 35.0;  ///< draw with no job bound
  Watts max_power = 205.0;  ///< demand ceiling (uncapped full load)
};

/// One device domain's share of the node's demand and grant.
struct DevicePower {
  Watts demand = 0.0;
  Watts granted = 0.0;

  friend bool operator==(const DevicePower&, const DevicePower&) = default;
};

/// What the node reports upward each tick (the telemetry plane).
struct NodeTelemetry {
  Watts power = 0.0;   ///< actual draw over the last tick
  Watts demand = 0.0;  ///< watts the node could have used
  double rate = 0.0;   ///< progress units/s over the last tick
  DevicePower cpu;
  DevicePower dram;

  friend bool operator==(const NodeTelemetry&, const NodeTelemetry&) =
      default;
};

/// Analytic node simulation at cluster-tick granularity.
class SimNode {
 public:
  SimNode(unsigned id, NodeSpec spec, Rng rng);

  [[nodiscard]] unsigned id() const { return id_; }

  /// Bind `job` (index into the mix) with its workload parameters.
  void bind_job(int job, const JobSpec& spec, Nanos now);

  /// Return to idle (job completed or node left the job).
  void unbind_job();

  /// Fresh state after a rejoin: progress history and any bound job are
  /// gone (the scheduler re-places work later).
  void rejoin(Nanos now);

  /// Advance over [now, now + dt) under `cap` and the scripted fault
  /// state.  Crashed nodes draw nothing; hung nodes keep drawing their
  /// last grant but stop progressing; slow nodes progress at
  /// `fault.slow_factor`.
  void step(Nanos now, Nanos dt, Watts cap, const fault::NodeFaultState& fault);

  [[nodiscard]] const NodeTelemetry& telemetry() const { return telem_; }
  [[nodiscard]] int job() const { return job_; }
  [[nodiscard]] double progress() const { return progress_; }

 private:
  unsigned id_;
  NodeSpec spec_;
  Rng rng_;
  int job_ = -1;
  JobSpec job_spec_{};
  Nanos job_bound_at_ = 0;
  double phase_offset_ = 0.0;  ///< de-synchronizes per-node demand waves
  double progress_ = 0.0;
  NodeTelemetry telem_;
};

}  // namespace procap::cluster
