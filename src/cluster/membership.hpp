// membership.hpp — heartbeat-based node liveness tracking.
//
// The cluster manager never trusts a node's telemetry beyond its last
// heartbeat.  Each node's age (now - last heartbeat) drives a three-state
// liveness ladder:
//
//   kAlive ──(age >= suspect_after)──> kSuspect ──(age >= dead_after)──> kDead
//     ^                                                                   │
//     └────────────────────── heartbeat arrives ──────────────────────────┘
//
// Suspect is the graceful-degradation window: telemetry is stale but the
// node may still be drawing power, so the manager freezes its share
// rather than reclaiming it.  Dead means the node's budget is reclaimed;
// a heartbeat from a dead node is a rejoin.
//
// The detector is deliberately passive — heartbeat() records arrivals,
// advance() applies the ladder to every node in index order and reports
// the transitions — so a serial call sequence yields the same events on
// every run (the cluster determinism contract).
#pragma once

#include <vector>

#include "util/units.hpp"

namespace procap::cluster {

/// Node liveness as seen by the failure detector.
enum class Liveness { kAlive, kSuspect, kDead };

[[nodiscard]] const char* to_string(Liveness liveness);

/// Failure-detection timeouts.
struct MembershipConfig {
  /// Heartbeat age at which a node turns suspect (telemetry stale).
  Nanos suspect_after = 3 * kNanosPerSecond;
  /// Heartbeat age at which a node is declared dead (budget reclaimed).
  /// Must exceed suspect_after.
  Nanos dead_after = 8 * kNanosPerSecond;
};

/// Tracks liveness for a growable set of nodes.
class FailureDetector {
 public:
  /// Start tracking `nodes` nodes, all alive with a heartbeat at `now`
  /// (construction grants a full grace window before suspicion).
  FailureDetector(unsigned nodes, MembershipConfig config, Nanos now);

  /// Record a heartbeat from `node` at `now`.
  void heartbeat(unsigned node, Nanos now);

  /// Liveness transitions decided by one advance() call, each in
  /// ascending node order.
  struct Events {
    std::vector<unsigned> suspected;  ///< alive -> suspect
    std::vector<unsigned> died;       ///< suspect (or alive) -> dead
    std::vector<unsigned> rejoined;   ///< dead -> alive
    std::vector<unsigned> recovered;  ///< suspect -> alive

    [[nodiscard]] bool empty() const {
      return suspected.empty() && died.empty() && rejoined.empty() &&
             recovered.empty();
    }
  };

  /// Re-evaluate every node's liveness at `now` and report transitions.
  [[nodiscard]] Events advance(Nanos now);

  /// Track one more node (joined at `now`, alive).  Returns its index.
  unsigned add_node(Nanos now);

  /// Administratively declare `node` dead at `now` (planned leave); it
  /// rejoins on its next heartbeat like any other dead node.
  void force_dead(unsigned node, Nanos now);

  [[nodiscard]] Liveness liveness(unsigned node) const {
    return state_.at(node).liveness;
  }
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(state_.size());
  }
  [[nodiscard]] unsigned alive() const { return count(Liveness::kAlive); }
  [[nodiscard]] unsigned suspect() const { return count(Liveness::kSuspect); }
  [[nodiscard]] unsigned dead() const { return count(Liveness::kDead); }

 private:
  struct NodeState {
    Nanos last_hb = 0;
    Liveness liveness = Liveness::kAlive;
  };

  [[nodiscard]] unsigned count(Liveness liveness) const;

  MembershipConfig config_;
  std::vector<NodeState> state_;
};

}  // namespace procap::cluster
