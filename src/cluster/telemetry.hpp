// telemetry.hpp — cluster-level roll-ups for the scrape plane.
//
// A 256-node cluster exposes 256 of everything; a scraper that wants
// "cluster power" should not have to pull every node series and sum
// client-side.  ClusterTelemetry rolls the per-node view of a
// ClusterPowerManager into cluster series server-side, once per epoch:
//
//   * aggregate sum/mean/min/max over live-node power, granted budget,
//     demand, progress rate and total progress;
//   * liveness counts (alive/suspect/dead), running jobs, hold state and
//     the conservation pair (granted sum vs. global budget) — the
//     invariant a remote dashboard can check without trusting us;
//   * per-node drill-down samples (cap, power, demand, rate, progress,
//     deficit = demand − cap) for the /cluster.json node table and the
//     procap_top cluster pane's top-k-by-deficit view.
//
// update() also publishes the roll-ups into the obs::Registry — cluster
// gauges (cluster.power.sum, ...), per-node gauges labeled node="i"
// (which the /timeseries.json?node=i filter selects), and an obs::Sketch
// of the per-node rate distribution — so the existing TimeSeriesStore /
// Sampler / alert machinery retains cluster history with zero new
// plumbing.
//
// Threading: update() runs on the simulation thread (after run_epoch());
// snapshot() and write_cluster_json() run on the HTTP serve thread.  The
// snapshot swap is mutex-protected; registry instruments are already
// thread-safe.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/manager.hpp"
#include "cluster/membership.hpp"
#include "util/units.hpp"

namespace procap::obs {
class Registry;
class Gauge;
}  // namespace procap::obs

namespace procap::cluster {

/// sum/mean/min/max over one per-node quantity.
struct Roll {
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One node's drill-down sample.
struct NodeSample {
  unsigned id = 0;
  Liveness liveness = Liveness::kAlive;
  Watts cap = 0.0;
  Watts power = 0.0;
  Watts demand = 0.0;
  double rate = 0.0;
  double progress = 0.0;
  int job = -1;
  /// demand − cap: how many watts short of satisfied this node is.  The
  /// cluster pane ranks nodes by it.
  Watts deficit = 0.0;
  /// Most recent cap-to-effect latency (ms) from the attached FlowTracer;
  /// -1 when no flow for this node has closed (or no tracer).
  double c2e_ms = -1.0;
};

/// One epoch's cluster-level view.
struct ClusterSnapshot {
  std::uint64_t epoch = 0;
  Nanos t = 0;
  Watts budget = 0.0;
  Roll power;     ///< actual draw
  Roll granted;   ///< assigned caps (granted.sum == manager assigned())
  Roll demand;
  Roll rate;      ///< progress units/s
  Roll progress;  ///< cumulative progress
  unsigned alive = 0;
  unsigned suspect = 0;
  unsigned dead = 0;
  std::size_t running_jobs = 0;
  bool held = false;
  std::uint64_t invariant_violations = 0;
  std::vector<NodeSample> nodes;  ///< index order
  /// Cap-to-effect roll-up from the attached FlowTracer (zeros/-1
  /// without one): the causal health of the control loop at a glance.
  std::uint64_t flows_closed = 0;
  std::uint64_t flows_orphaned = 0;
  std::uint64_t flows_open = 0;
  double flow_p50_ms = -1.0;
  double flow_p99_ms = -1.0;
};

/// Rolls a ClusterPowerManager into cluster series + registry gauges.
class ClusterTelemetry {
 public:
  /// `registry` must outlive the telemetry object.  Per-node registry
  /// gauges are created lazily on first update().
  explicit ClusterTelemetry(obs::Registry& registry);

  ClusterTelemetry(const ClusterTelemetry&) = delete;
  ClusterTelemetry& operator=(const ClusterTelemetry&) = delete;

  /// Adopt `tracer` as the cap-to-effect source rolled into every
  /// subsequent update() (per-node c2e_ms, cluster flow quantiles).
  /// nullptr detaches; `tracer` must outlive the telemetry while set.
  void set_tracer(const obs::FlowTracer* tracer) { tracer_ = tracer; }

  /// Roll the manager's current state into a fresh snapshot and publish
  /// the registry series.  Call on the sim thread after run_epoch().
  void update(const ClusterPowerManager& manager);

  /// Copy of the latest snapshot (empty before the first update()).
  [[nodiscard]] ClusterSnapshot snapshot() const;

  /// Updates applied so far.
  [[nodiscard]] std::uint64_t updates() const;

  /// The /cluster.json document.  `topk` > 0 restricts the node table to
  /// the k nodes with the largest deficit (descending); 0 emits all
  /// nodes in index order.
  void write_cluster_json(std::ostream& os, std::size_t topk = 0) const;

 private:
  obs::Registry* registry_;
  const obs::FlowTracer* tracer_ = nullptr;
  mutable std::mutex mutex_;
  ClusterSnapshot snapshot_;
  std::uint64_t updates_ = 0;
  /// Lazily grown per-node gauge caches, index == node id.  Raw
  /// pointers are stable: the registry never relocates instruments.
  std::vector<obs::Gauge*> node_power_;
  std::vector<obs::Gauge*> node_granted_;
  std::vector<obs::Gauge*> node_rate_;
  std::vector<double> c2e_scratch_;  ///< per-update roll-in scratch
  obs::Gauge* trace_open_gauge_ = nullptr;  ///< cached like node gauges
};

}  // namespace procap::cluster
