// strategy.hpp — cluster-level budget redistribution strategies.
//
// Each epoch the manager hands a strategy the set of nodes eligible for
// fresh budget (alive nodes — suspects are frozen, dead nodes zeroed)
// and the watts left after frozen shares are set aside.  The strategy
// answers with one cap per node.  All three shipped strategies are
// weighted water-filling (job::waterfill) with different weights:
//
//   * uniform             — every node weighs the same;
//   * demand-proportional — weight = reported demand, so nodes asking
//     for more power receive proportionally more of the remainder;
//   * progress-aware      — weight = job priority x progress deficit,
//     steering watts toward high-priority jobs running behind their
//     nominal rate (the paper's progress-as-first-class-signal stance).
//
// Strategies are pure functions of their inputs — no internal state, no
// random draws — so the cluster determinism guarantee never depends on
// which strategy is plugged in.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace procap::cluster {

/// One eligible node as a strategy sees it.
struct NodeView {
  unsigned id = 0;
  Watts demand = 0.0;        ///< last reported demand
  double rate = 0.0;         ///< last reported progress rate (units/s)
  double nominal_rate = 0.0; ///< bound job's full-power rate (0 = idle)
  int priority = 0;          ///< bound job's priority (0 = idle)
};

/// Per-node cap bounds a strategy must respect.
struct CapBounds {
  Watts min_cap = 0.0;  ///< floor (scaled down if the budget cannot cover it)
  Watts max_cap = 0.0;  ///< ceiling per node
};

/// Divides a budget over eligible nodes.
class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Write one cap per `nodes` entry into `caps` (resized to match).
  /// The caps must sum to <= budget; floors shrink to budget / n when
  /// the budget cannot cover every node's min_cap.
  virtual void distribute(const std::vector<NodeView>& nodes, Watts budget,
                          CapBounds bounds,
                          std::vector<Watts>& caps) const = 0;
};

/// Build a strategy by name: "uniform", "demand" or "progress".
/// Throws std::invalid_argument for anything else.
[[nodiscard]] std::unique_ptr<Strategy> make_strategy(std::string_view name);

/// Names accepted by make_strategy, for CLI help text.
[[nodiscard]] const std::vector<std::string>& strategy_names();

}  // namespace procap::cluster
