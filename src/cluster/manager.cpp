#include "cluster/manager.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace procap::cluster {

namespace {

/// Domain-separation constant for the cluster's random streams.
constexpr std::uint64_t kClusterStream = 0xC105ULL;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (v >> (8 * byte)) & 0xFFULL;
    hash *= kFnvPrime;
  }
  return hash;
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ClusterPowerManager::ClusterPowerManager(ClusterConfig config)
    : config_(std::move(config)),
      strategy_(make_strategy(config_.strategy)),
      injector_(config_.plan, config_.nodes),
      detector_(config_.nodes, config_.membership, 0),
      jobs_(synthesize_mix(config_.jobs, config_.nodes, config_.seed)),
      join_rng_(0),
      latch_(config_.reengage_epochs),
      trace_hash_(kFnvOffset) {
  if (config_.nodes == 0) {
    throw std::invalid_argument("cluster: need at least one node");
  }
  if (config_.global_budget <= 0.0) {
    throw std::invalid_argument("cluster: global budget must be positive");
  }
  if (config_.tick <= 0 || config_.ticks_per_epoch == 0) {
    throw std::invalid_argument("cluster: tick and ticks_per_epoch must be "
                                "positive");
  }
  if (config_.min_node_cap < 0.0 ||
      config_.max_node_cap < config_.min_node_cap) {
    throw std::invalid_argument("cluster: need 0 <= min_node_cap <= "
                                "max_node_cap");
  }

  // Per-node streams fork in index order from the cluster root, so node
  // i's noise never depends on cluster size changes behind it; the join
  // stream forks last and serves post-start joins in join order.
  Rng root(SplitMix64(config_.seed ^ kClusterStream).next());
  nodes_.reserve(config_.nodes);
  for (unsigned i = 0; i < config_.nodes; ++i) {
    nodes_.emplace_back(i, config_.node_spec, root.fork());
  }
  join_rng_ = root.fork();

  left_.assign(config_.nodes, 0);
  heartbeat_.assign(config_.nodes, 0);
  caps_.assign(config_.nodes, 0.0);
  free_nodes_.resize(config_.nodes);
  std::iota(free_nodes_.begin(), free_nodes_.end(), 0u);

  // Refinement bank: one controller instance per node, built up front so
  // a bad spec fails construction (not epoch N).  make_controller throws
  // std::invalid_argument with the offending name/param.
  if (!config_.node_controller.empty()) {
    refiners_.reserve(config_.nodes);
    for (unsigned i = 0; i < config_.nodes; ++i) {
      refiners_.push_back(policy::make_controller(config_.node_controller));
    }
  }

  pool_ = std::make_unique<minithread::ThreadPool>(
      resolve_threads(config_.threads));

  // Start in a sane state: jobs due at t = 0 placed, budget divided.
  apply_jobs();
  redistribute();
}

void ClusterPowerManager::watch_alerts(
    std::shared_ptr<msgbus::SubSocket> sub) {
  alert_watch_.watch(std::move(sub));
}

void ClusterPowerManager::step_ticks() {
  for (unsigned t = 0; t < config_.ticks_per_epoch; ++t) {
    // Parallel section: each index touches only its own node's state and
    // its own heartbeat_ slot, so any sharding is bit-identical to a
    // serial pass.
    pool_->parallel_for(nodes_.size(), [&](std::size_t i) {
      heartbeat_[i] = 0;
      if (left_[i]) {
        return;
      }
      const auto fs = injector_.state(static_cast<unsigned>(i), now_);
      nodes_[i].step(now_, config_.tick, caps_[i], fs);
      heartbeat_[i] = fs.heartbeating() ? 1 : 0;
    });
    now_ += config_.tick;
    // Serial collection in index order: heartbeats stamp the tick's end,
    // when the node would report.
    for (unsigned i = 0; i < nodes_.size(); ++i) {
      if (heartbeat_[i]) {
        detector_.heartbeat(i, now_);
      }
    }
    // Causal tracing, serial in node-index order: a pending grant is
    // actuated once its node steps under the new cap, and its effect is
    // the first heartbeating tick after that — the earliest moment the
    // progress signal can reflect the decision.  Fused callback form:
    // one tracer lock per tick, no intermediate pending list.
    if (tracer_ != nullptr) {
      tracer_->advance(
          now_,
          [](unsigned i, void* ctx) -> obs::FlowTick {
            const auto* self = static_cast<const ClusterPowerManager*>(ctx);
            if (i >= self->nodes_.size() || self->left_[i]) {
              return obs::FlowTick{.node = i, .skip = true};
            }
            const bool beat = self->heartbeat_[i] != 0;
            // The strided rate load only happens for flows closing this
            // tick — a handful per epoch — so it stays off the per-node
            // hot path.
            return obs::FlowTick{
                .node = i,
                .effect = beat,
                .rate = beat ? self->nodes_[i].telemetry().rate : 0.0};
          },
          this);
    }
  }
}

void ClusterPowerManager::apply_liveness(EpochRecord& rec) {
  const FailureDetector::Events events = detector_.advance(now_);
  for (const unsigned i : events.died) {
    ++deaths_;
    if (tracer_ != nullptr) {
      tracer_->orphan(i, now_, "node_death");
    }
    rec.reclaimed += caps_[i];
    caps_[i] = 0.0;  // reclaim in the detection epoch, before redistribution
    const int job = nodes_[i].job();
    if (job >= 0) {
      jobs_.release_node(job, i);
      nodes_[i].unbind_job();
    } else {
      free_nodes_.erase(
          std::remove(free_nodes_.begin(), free_nodes_.end(), i),
          free_nodes_.end());
    }
    // A dead node's controller history is telemetry from a machine that
    // no longer exists; degrade it so a rejoin starts clean.
    if (i < refiners_.size()) {
      refiners_[i]->degrade();
    }
    PROCAP_INFO << "cluster: node " << i << " dead, reclaimed its cap";
  }
  for (const unsigned i : events.rejoined) {
    ++rejoins_;
    nodes_[i].rejoin(now_);
    if (i < refiners_.size()) {
      refiners_[i]->reset();
    }
    free_nodes_.push_back(i);
    PROCAP_INFO << "cluster: node " << i << " rejoined";
  }
}

void ClusterPowerManager::apply_jobs() {
  const JobTable::Changes changes = jobs_.advance(now_, free_nodes_);
  for (const unsigned i : changes.unbind) {
    nodes_[i].unbind_job();
  }
  for (const auto& [i, job] : changes.bind) {
    nodes_[i].bind_job(job, jobs_.spec(job), now_);
  }
}

void ClusterPowerManager::redistribute() {
  // Frozen shares first: a suspect node's telemetry is stale, so neither
  // raising nor lowering its cap is justified — it keeps what it has.
  Watts frozen = 0.0;
  std::vector<NodeView> eligible;
  std::vector<unsigned> eligible_ids;
  eligible.reserve(nodes_.size());
  for (unsigned i = 0; i < nodes_.size(); ++i) {
    switch (detector_.liveness(i)) {
      case Liveness::kDead:
        caps_[i] = 0.0;
        break;
      case Liveness::kSuspect:
        frozen += caps_[i];
        break;
      case Liveness::kAlive: {
        NodeView view;
        view.id = i;
        view.demand = nodes_[i].telemetry().demand;
        view.rate = nodes_[i].telemetry().rate;
        const int job = nodes_[i].job();
        if (job >= 0) {
          view.nominal_rate = jobs_.spec(job).nominal_rate;
          view.priority = jobs_.spec(job).priority;
        }
        eligible.push_back(view);
        eligible_ids.push_back(i);
        break;
      }
    }
  }
  std::vector<Watts> grants;
  strategy_->distribute(eligible,
                        std::max(0.0, config_.global_budget - frozen),
                        CapBounds{config_.min_node_cap, config_.max_node_cap},
                        grants);
  // Refinement pass, serial in index order (determinism): each node's
  // controller may trim its grant but never exceed it, so the refined
  // sum is <= the strategy's sum and conservation cannot regress.
  refined_watts_ = 0.0;
  for (std::size_t k = 0; k < eligible_ids.size(); ++k) {
    const unsigned i = eligible_ids[k];
    Watts cap = grants[k];
    if (!refiners_.empty() && i < refiners_.size() && grants[k] > 0.0) {
      policy::Observation obs;
      obs.t = now_;
      obs.elapsed = to_seconds(now_);
      obs.progress_rate = eligible[k].rate;
      obs.windows = epoch_;  // each completed epoch is one telemetry window
      obs.power = nodes_[i].telemetry().power;
      obs.power_valid = true;
      if (caps_[i] > 0.0) {
        obs.applied_cap = caps_[i];  // pre-decision cap (0 = none yet)
      }
      obs.signal_healthy = true;
      const std::optional<Watts> want = refiners_[i]->decide(
          obs, policy::CapBounds{std::min(config_.min_node_cap, grants[k]),
                                 grants[k]});
      if (want.has_value()) {
        // Open-loop controllers ignore bounds, so clamp here too.
        cap = std::clamp(*want, 0.0, grants[k]);
      }
    }
    refined_watts_ += grants[k] - cap;
    caps_[i] = cap;
  }
  if (!refiners_.empty()) {
    PROCAP_OBS_GAUGE(refined_gauge, "cluster.controller.refined_watts");
    refined_gauge.set(refined_watts_);
  }
}

const EpochRecord& ClusterPowerManager::run_epoch() {
  EpochRecord rec;
  rec.epoch = epoch_++;

  step_ticks();
  rec.t = now_;

  apply_liveness(rec);

  // Alert feed: a firing degrades_control rule holds the last safe
  // allocation; the hold lifts after reengage_epochs quiet epochs.
  (void)alert_watch_.drain();
  if (alert_watch_.any_firing()) {
    if (!latch_.degraded()) {
      ++holds_;
      PROCAP_WARN << "cluster: degrading alert firing, holding allocation";
    }
    latch_.degrade();
  } else if (latch_.observe(true)) {
    PROCAP_INFO << "cluster: alert feed quiet for " << latch_.reengage_after()
                << " epochs, redistribution re-engaged";
  }
  rec.held = latch_.degraded();

  // Job lifecycle runs even under a hold — arrivals and completions are
  // facts, not power decisions — but new bindings only receive fresh
  // budget once the hold lifts.
  apply_jobs();

  if (!rec.held) {
    if (tracer_ != nullptr) {
      prev_caps_ = caps_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    redistribute();
    rec.redistribute_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count();
    // Fan the decision out as one flow per re-granted live node (dead
    // nodes' zeroed caps are reclamation, not grants; left/suspect nodes
    // keep their frozen share).  Outside the redistribute_us window: the
    // tracer is observability, not decision cost.
    if (tracer_ != nullptr) {
      // Pre-filter with the tracer's own jitter threshold so the change
      // list (and everything the tracer does per change) only carries
      // decisions worth tracing.
      const Watts min_change = std::max(1e-9, tracer_->options().min_change_w);
      changes_scratch_.clear();
      for (unsigned i = 0; i < nodes_.size(); ++i) {
        if (left_[i] || detector_.liveness(i) != Liveness::kAlive) {
          continue;
        }
        const Watts before = i < prev_caps_.size() ? prev_caps_[i] : 0.0;
        if (std::abs(caps_[i] - before) < min_change) {
          continue;
        }
        changes_scratch_.push_back(obs::GrantChange{i, before, caps_[i]});
      }
      tracer_->epoch_decision(rec.epoch, now_, changes_scratch_);
    }
  }

  // Conservation invariant: never promise more than the facility grants.
  rec.assigned = assigned();
  if (rec.assigned > config_.global_budget * (1.0 + 1e-9) + 1e-6) {
    ++invariant_violations_;
    PROCAP_OBS_COUNTER(violations_total, "cluster.invariant_violations");
    violations_total.inc();
    PROCAP_ERROR << "cluster: INVARIANT VIOLATION: assigned " << rec.assigned
                 << " W > budget " << config_.global_budget << " W at epoch "
                 << rec.epoch;
  }

  // Chained allocation-trace hash: any divergence in any epoch's cap
  // vector changes every subsequent hash.
  trace_hash_ = fnv_mix(trace_hash_, rec.epoch);
  for (const Watts cap : caps_) {
    trace_hash_ = fnv_mix(trace_hash_, std::bit_cast<std::uint64_t>(cap));
  }
  rec.trace_hash = trace_hash_;

  rec.alive = detector_.alive();
  rec.suspect = detector_.suspect();
  rec.dead = detector_.dead();
  rec.running_jobs = jobs_.running();

  PROCAP_OBS_GAUGE(alive_gauge, "cluster.nodes_alive");
  PROCAP_OBS_GAUGE(suspect_gauge, "cluster.nodes_suspect");
  PROCAP_OBS_GAUGE(dead_gauge, "cluster.nodes_dead");
  PROCAP_OBS_GAUGE(assigned_gauge, "cluster.assigned_watts");
  PROCAP_OBS_GAUGE(jobs_gauge, "cluster.running_jobs");
  PROCAP_OBS_COUNTER(epochs_total, "cluster.epochs");
  alive_gauge.set(rec.alive);
  suspect_gauge.set(rec.suspect);
  dead_gauge.set(rec.dead);
  assigned_gauge.set(rec.assigned);
  jobs_gauge.set(static_cast<double>(rec.running_jobs));
  epochs_total.inc();

  records_.push_back(rec);
  return records_.back();
}

void ClusterPowerManager::run(unsigned epochs) {
  for (unsigned i = 0; i < epochs; ++i) {
    (void)run_epoch();
  }
}

unsigned ClusterPowerManager::add_node() {
  const unsigned id = detector_.add_node(now_);
  nodes_.emplace_back(id, config_.node_spec, join_rng_.fork());
  if (!config_.node_controller.empty()) {
    refiners_.push_back(policy::make_controller(config_.node_controller));
  }
  left_.push_back(0);
  heartbeat_.push_back(0);
  caps_.push_back(0.0);
  free_nodes_.push_back(id);
  std::sort(free_nodes_.begin(), free_nodes_.end());
  PROCAP_INFO << "cluster: node " << id << " joined";
  return id;
}

void ClusterPowerManager::remove_node(unsigned node) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("cluster: remove_node: no such node");
  }
  if (left_.at(node)) {
    return;
  }
  left_[node] = 1;
  if (tracer_ != nullptr) {
    tracer_->orphan(node, now_, "node_left");
  }
  const int job = nodes_[node].job();
  if (job >= 0) {
    jobs_.release_node(job, node);
    nodes_[node].unbind_job();
  } else {
    free_nodes_.erase(
        std::remove(free_nodes_.begin(), free_nodes_.end(), node),
        free_nodes_.end());
  }
  detector_.force_dead(node, now_);
  caps_[node] = 0.0;
  PROCAP_INFO << "cluster: node " << node << " left (administrative)";
}

Watts ClusterPowerManager::assigned() const {
  return std::accumulate(caps_.begin(), caps_.end(), 0.0);
}

}  // namespace procap::cluster
