#include "cluster/membership.hpp"

#include <stdexcept>

namespace procap::cluster {

const char* to_string(Liveness liveness) {
  switch (liveness) {
    case Liveness::kAlive:
      return "alive";
    case Liveness::kSuspect:
      return "suspect";
    case Liveness::kDead:
      return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(unsigned nodes, MembershipConfig config,
                                 Nanos now)
    : config_(config) {
  if (config_.suspect_after <= 0 || config_.dead_after <= config_.suspect_after) {
    throw std::invalid_argument(
        "membership: need 0 < suspect_after < dead_after");
  }
  state_.resize(nodes, NodeState{now, Liveness::kAlive});
}

void FailureDetector::heartbeat(unsigned node, Nanos now) {
  NodeState& st = state_.at(node);
  if (now > st.last_hb) {
    st.last_hb = now;
  }
}

FailureDetector::Events FailureDetector::advance(Nanos now) {
  Events events;
  for (unsigned i = 0; i < state_.size(); ++i) {
    NodeState& st = state_[i];
    const Nanos age = now - st.last_hb;
    Liveness next = Liveness::kAlive;
    if (age >= config_.dead_after) {
      next = Liveness::kDead;
    } else if (age >= config_.suspect_after) {
      next = Liveness::kSuspect;
    }
    if (next == st.liveness) {
      continue;
    }
    const Liveness prev = st.liveness;
    st.liveness = next;
    switch (next) {
      case Liveness::kAlive:
        (prev == Liveness::kDead ? events.rejoined : events.recovered)
            .push_back(i);
        break;
      case Liveness::kSuspect:
        // A dead node whose heartbeat age lands in the suspect window can
        // only mean the clock jumped; treat it as still dead until a
        // fresh heartbeat proves life.
        if (prev == Liveness::kDead) {
          st.liveness = Liveness::kDead;
        } else {
          events.suspected.push_back(i);
        }
        break;
      case Liveness::kDead:
        events.died.push_back(i);
        break;
    }
  }
  return events;
}

unsigned FailureDetector::add_node(Nanos now) {
  state_.push_back(NodeState{now, Liveness::kAlive});
  return static_cast<unsigned>(state_.size()) - 1;
}

void FailureDetector::force_dead(unsigned node, Nanos now) {
  NodeState& st = state_.at(node);
  st.liveness = Liveness::kDead;
  // Age the heartbeat past the dead window so advance() keeps the node
  // dead until a genuine heartbeat arrives.
  st.last_hb = now - config_.dead_after;
}

unsigned FailureDetector::count(Liveness liveness) const {
  unsigned n = 0;
  for (const NodeState& st : state_) {
    n += st.liveness == liveness ? 1 : 0;
  }
  return n;
}

}  // namespace procap::cluster
