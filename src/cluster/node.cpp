#include "cluster/node.hpp"

#include <algorithm>
#include <cmath>

namespace procap::cluster {

namespace {
constexpr double kTau = 6.283185307179586;
}  // namespace

SimNode::SimNode(unsigned id, NodeSpec spec, Rng rng)
    : id_(id), spec_(spec), rng_(rng) {
  phase_offset_ = rng_.uniform();
}

void SimNode::bind_job(int job, const JobSpec& spec, Nanos now) {
  job_ = job;
  job_spec_ = spec;
  job_bound_at_ = now;
}

void SimNode::unbind_job() {
  job_ = -1;
  job_spec_ = JobSpec{};
}

void SimNode::rejoin(Nanos now) {
  unbind_job();
  progress_ = 0.0;
  telem_ = NodeTelemetry{};
  job_bound_at_ = now;
}

void SimNode::step(Nanos now, Nanos dt, Watts cap,
                   const fault::NodeFaultState& fault) {
  if (!fault.powered()) {
    // Crashed: dark.  Telemetry zeroes so a rejoin starts clean.
    telem_ = NodeTelemetry{};
    return;
  }
  if (fault.hung) {
    // Wedged: the last grant keeps dissipating, progress stops.
    telem_.rate = 0.0;
    return;
  }

  // Demand: idle floor, or the bound job's phase wave plus a little
  // per-tick wobble from this node's own stream (one draw per live
  // step, whatever branch follows).
  const double wobble = 1.0 + 0.02 * (rng_.uniform() - 0.5);
  Watts demand = spec_.idle_power;
  if (job_ >= 0) {
    const double t = to_seconds(now - job_bound_at_) / job_spec_.phase_period +
                     phase_offset_;
    const double wave =
        1.0 - job_spec_.demand_amplitude * (0.5 + 0.5 * std::sin(kTau * t));
    demand = std::max(spec_.idle_power, job_spec_.node_demand * wave);
  }
  demand = std::min(demand * wobble, spec_.max_power);

  const Watts granted = std::max(0.0, std::min(cap, demand));
  const double cpu_share = job_ >= 0 ? job_spec_.cpu_share : 0.7;
  telem_.demand = demand;
  telem_.power = granted;
  telem_.cpu = DevicePower{demand * cpu_share, granted * cpu_share};
  telem_.dram =
      DevicePower{demand * (1.0 - cpu_share), granted * (1.0 - cpu_share)};

  double rate = 0.0;
  if (job_ >= 0 && demand > 0.0) {
    const double ratio = std::clamp(granted / demand, 0.0, 1.0);
    rate = job_spec_.nominal_rate * std::pow(ratio, job_spec_.alpha) *
           fault.slow_factor;
  }
  telem_.rate = rate;
  progress_ += rate * to_seconds(dt);
}

}  // namespace procap::cluster
