// manager.hpp — ClusterPowerManager: a global budget over churning nodes.
//
// The cluster layer closes the paper's hierarchy from the top: a single
// global power budget divides over hundreds of nodes running a dynamic
// job mix, and the division must survive the cluster being a cluster —
// nodes crash, hang, stop heartbeating, slow down, leave and rejoin.
// The manager runs a two-rate loop:
//
//   tick  (default 250 ms) — every node steps its power/progress model
//          under its current cap (sharded over a minithread::ThreadPool)
//          and heartbeats are collected serially in node-index order;
//   epoch (default 4 ticks) — the failure detector re-evaluates
//          liveness, the job table binds/unbinds nodes, and the budget
//          is redistributed by the configured strategy.
//
// Robustness contract (what the chaos suite asserts):
//   * conservation — sum(assigned caps) never exceeds the global budget,
//     at every epoch, under any churn; violations are counted, never
//     silently tolerated;
//   * reclamation — a node declared dead has its cap zeroed in the same
//     epoch, and the freed watts are redistributable immediately;
//   * degradation — a suspect node (stale telemetry) keeps its frozen
//     share: its telemetry cannot justify giving it more or less.  A
//     firing degrades_control alert holds the whole cluster in its last
//     safe allocation (dead caps still zero — that only lowers the sum)
//     until the feed has been quiet for `reengage_epochs` epochs;
//   * determinism — with a fixed (config, plan, seed), the allocation
//     trace is bit-identical across runs and thread counts: every random
//     draw comes from a per-node stream forked in index order, parallel
//     sections write disjoint state, and all cross-node reads/reductions
//     happen serially in index order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/jobmix.hpp"
#include "cluster/membership.hpp"
#include "cluster/node.hpp"
#include "cluster/strategy.hpp"
#include "fault/injectors.hpp"
#include "fault/plan.hpp"
#include "minithread/minithread.hpp"
#include "msgbus/bus.hpp"
#include "obs/trace.hpp"
#include "policy/controller.hpp"
#include "policy/latch.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace procap::cluster {

/// Everything that defines a cluster run.  Deterministic given this
/// struct: two managers built from equal configs produce bit-identical
/// allocation traces, whatever `threads` is.
struct ClusterConfig {
  unsigned nodes = 64;          ///< initial cluster size
  Watts global_budget = 8000.0; ///< watts the facility grants the cluster
  Nanos tick = msec(250);       ///< node model step
  unsigned ticks_per_epoch = 4; ///< redistribution period, in ticks
  NodeSpec node_spec;           ///< per-node power envelope
  MembershipConfig membership;  ///< failure-detection timeouts
  std::string strategy = "demand";  ///< uniform | demand | progress
  /// Per-node refinement controller, a policy registry spec
  /// ("NAME[:k=v,...]", see policy::make_controller).  When set, every
  /// node gets its own controller instance that may *lower* the
  /// strategy's grant each epoch (never raise it, so conservation is
  /// untouched); freed watts show up as headroom next epoch.  Empty
  /// disables refinement and leaves the allocation trace bit-identical
  /// to earlier builds.
  std::string node_controller{};
  Watts min_node_cap = 30.0;    ///< floor per live node (shrinks if needed)
  Watts max_node_cap = 205.0;   ///< ceiling per node
  unsigned jobs = 16;           ///< synthesized job-mix size
  std::uint64_t seed = 42;      ///< master seed (mix, node noise, faults)
  unsigned threads = 0;         ///< pool width (0 = hardware_concurrency)
  unsigned reengage_epochs = 3; ///< quiet epochs before an alert hold lifts
  fault::FaultPlan plan;        ///< scripted churn (node episodes)
};

/// One epoch's outcome, appended to the manager's trace.
struct EpochRecord {
  std::uint64_t epoch = 0;     ///< 0-based epoch index
  Nanos t = 0;                 ///< simulation time at the epoch boundary
  Watts assigned = 0.0;        ///< sum of caps after this epoch's decisions
  Watts reclaimed = 0.0;       ///< watts taken back from newly dead nodes
  unsigned alive = 0;
  unsigned suspect = 0;
  unsigned dead = 0;
  std::size_t running_jobs = 0;
  bool held = false;           ///< allocation frozen by a degrading alert
  std::uint64_t trace_hash = 0;  ///< chained FNV-1a over the cap vector
  /// Wall-clock cost of the redistribution decision, microseconds
  /// (measured, excluded from trace_hash; 0 when held).
  double redistribute_us = 0.0;
};

/// Global-budget power manager over a churning simulated cluster.
class ClusterPowerManager {
 public:
  /// Throws std::invalid_argument on nonsensical config (no nodes,
  /// non-positive budget/tick, min_cap > max_cap, unknown strategy) and
  /// whatever FailureDetector rejects.
  explicit ClusterPowerManager(ClusterConfig config);

  /// Adopt `sub` as the degrades_control alert feed (policy::
  /// DegradeAlertWatch semantics); nullptr detaches.
  void watch_alerts(std::shared_ptr<msgbus::SubSocket> sub);

  /// Attach a causal tracer: each redistribution decision opens an epoch
  /// span with one flow per re-granted live node; the flow closes at the
  /// first heartbeating tick under the new cap and orphans when the node
  /// dies or leaves first.  All tracer calls happen serially on the sim
  /// thread in node-index order, so the kept-flow set is deterministic
  /// across thread counts and the allocation trace_hash is untouched.
  /// nullptr detaches; `tracer` must outlive the manager while attached.
  void set_tracer(obs::FlowTracer* tracer) { tracer_ = tracer; }

  /// Advance one epoch (ticks_per_epoch node steps, then liveness, job
  /// lifecycle and redistribution) and return its record.
  const EpochRecord& run_epoch();

  /// Convenience: run_epoch() `epochs` times.
  void run(unsigned epochs);

  /// A new node joins the cluster (alive, idle, eligible next epoch).
  /// Returns its index.
  unsigned add_node();

  /// Administrative leave: `node` is released from its job, its cap is
  /// reclaimed next epoch, and it is treated as dead until (if ever) the
  /// fault plan has it heartbeat again — which, for a left node, never
  /// happens because it no longer steps.
  void remove_node(unsigned node);

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const SimNode& node(unsigned i) const { return nodes_.at(i); }
  [[nodiscard]] Liveness liveness(unsigned i) const {
    return detector_.liveness(i);
  }
  [[nodiscard]] const std::vector<Watts>& caps() const { return caps_; }
  /// Node i's refinement controller, or nullptr when refinement is off.
  [[nodiscard]] const policy::Controller* node_controller(unsigned i) const {
    return i < refiners_.size() ? refiners_[i].get() : nullptr;
  }
  /// Watts the refinement bank trimmed off the strategy's grants in the
  /// most recent redistribution (0 when refinement is off or held).
  [[nodiscard]] Watts refined_watts() const { return refined_watts_; }
  [[nodiscard]] Watts assigned() const;
  [[nodiscard]] const std::vector<EpochRecord>& records() const {
    return records_;
  }
  /// Chained allocation-trace hash over every epoch so far: the
  /// determinism fingerprint (equal configs => equal hashes).
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }
  [[nodiscard]] const JobTable& jobs() const { return jobs_; }
  [[nodiscard]] std::uint64_t deaths() const { return deaths_; }
  [[nodiscard]] std::uint64_t rejoins() const { return rejoins_; }
  [[nodiscard]] std::uint64_t holds() const { return holds_; }
  [[nodiscard]] bool held() const { return latch_.degraded(); }
  /// Conservation-invariant breaches observed (must stay 0).
  [[nodiscard]] std::uint64_t invariant_violations() const {
    return invariant_violations_;
  }

 private:
  void step_ticks();
  void apply_liveness(EpochRecord& rec);
  void apply_jobs();
  void redistribute();

  ClusterConfig config_;
  std::unique_ptr<Strategy> strategy_;
  /// Per-node refinement controllers (empty when node_controller is "").
  /// Indexed by node id; decisions run serially in index order so the
  /// allocation trace stays deterministic across thread counts.
  std::vector<std::unique_ptr<policy::Controller>> refiners_;
  Watts refined_watts_ = 0.0;
  fault::NodeFaultInjector injector_;
  FailureDetector detector_;
  JobTable jobs_;
  std::vector<SimNode> nodes_;
  std::vector<char> left_;        ///< administratively removed
  std::vector<char> heartbeat_;   ///< per-tick scratch, written in parallel
  std::vector<Watts> caps_;
  std::vector<unsigned> free_nodes_;  ///< idle nodes, kept sorted
  Rng join_rng_;                  ///< stream for nodes added after start
  std::unique_ptr<minithread::ThreadPool> pool_;
  policy::ReengageLatch latch_;
  policy::DegradeAlertWatch alert_watch_{"cluster"};
  obs::FlowTracer* tracer_ = nullptr;
  std::vector<Watts> prev_caps_;            ///< pre-decision caps scratch
  std::vector<obs::GrantChange> changes_scratch_;
  Nanos now_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t trace_hash_;
  std::vector<EpochRecord> records_;
  std::uint64_t deaths_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t holds_ = 0;
  std::uint64_t invariant_violations_ = 0;
};

}  // namespace procap::cluster
