#include "cluster/jobmix.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace procap::cluster {

namespace {

/// App-class shapes, after the paper's workload set: alpha is the
/// progress-vs-power sensitivity (Section VI), demand the per-node draw.
struct AppClass {
  const char* name;
  double alpha;
  Watts node_demand;
  double cpu_share;
  double nominal_rate;
};

constexpr AppClass kClasses[] = {
    {"lammps", 0.85, 185.0, 0.85, 120.0},   // compute-bound
    {"qmcpack", 0.75, 170.0, 0.80, 90.0},   //
    {"openmc", 0.65, 160.0, 0.75, 110.0},   //
    {"amg", 0.45, 150.0, 0.65, 70.0},       // bandwidth-sensitive
    {"stream", 0.25, 140.0, 0.55, 60.0},    // memory-bound
};

constexpr std::uint64_t kMixStream = 0x316bULL;

}  // namespace

std::vector<JobSpec> synthesize_mix(unsigned jobs, unsigned nodes,
                                    std::uint64_t seed) {
  Rng rng(SplitMix64(seed ^ kMixStream).next());
  std::vector<JobSpec> mix;
  mix.reserve(jobs);
  Nanos arrival = 0;
  for (unsigned i = 0; i < jobs; ++i) {
    const AppClass& app =
        kClasses[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(std::size(kClasses)) - 1))];
    JobSpec spec;
    spec.name = app.name + std::string("-") + std::to_string(i);
    spec.priority = static_cast<int>(rng.uniform_int(1, 4));
    // Job sizes span 1/32 to 1/4 of the cluster, at least one node.
    const unsigned lo = std::max(1u, nodes / 32);
    const unsigned hi = std::max(lo, nodes / 4);
    spec.nodes = static_cast<unsigned>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(hi)));
    spec.arrival = arrival;
    // Poisson-ish arrivals, mean 4 s apart; first job at t = 0.
    arrival += to_nanos(rng.exponential(0.25));
    spec.duration = to_nanos(rng.uniform(30.0, 120.0));
    spec.node_demand = app.node_demand * rng.uniform(0.95, 1.05);
    spec.demand_amplitude = rng.uniform(0.1, 0.3);
    spec.phase_period = rng.uniform(12.0, 35.0);
    spec.alpha = app.alpha;
    spec.nominal_rate = app.nominal_rate;
    spec.cpu_share = app.cpu_share;
    mix.push_back(std::move(spec));
  }
  return mix;
}

JobTable::JobTable(std::vector<JobSpec> specs) {
  jobs_.reserve(specs.size());
  for (JobSpec& spec : specs) {
    jobs_.push_back(Job{std::move(spec), JobState::kPending, 0, {}});
  }
}

JobTable::Changes JobTable::advance(Nanos now,
                                    std::vector<unsigned>& free_nodes) {
  Changes changes;
  // Completions first, so a wave of finishing jobs frees nodes for the
  // arrivals processed below in the same call.
  for (Job& job : jobs_) {
    if (job.state == JobState::kRunning && job.spec.duration > 0 &&
        now >= job.started_at + job.spec.duration) {
      job.state = JobState::kDone;
      for (const unsigned node : job.nodes) {
        changes.unbind.push_back(node);
        free_nodes.push_back(node);
      }
      job.nodes.clear();
    }
  }
  std::sort(free_nodes.begin(), free_nodes.end());
  // Arrivals in mix order (already ascending by arrival time).
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    Job& job = jobs_[j];
    if (job.state != JobState::kPending || now < job.spec.arrival) {
      continue;
    }
    if (free_nodes.size() < job.spec.nodes) {
      continue;  // stays pending until churn frees capacity
    }
    job.state = JobState::kRunning;
    job.started_at = now;
    job.nodes.assign(free_nodes.begin(),
                     free_nodes.begin() + job.spec.nodes);
    free_nodes.erase(free_nodes.begin(),
                     free_nodes.begin() + job.spec.nodes);
    for (const unsigned node : job.nodes) {
      changes.bind.emplace_back(node, static_cast<int>(j));
    }
  }
  return changes;
}

void JobTable::release_node(int job, unsigned node) {
  auto& nodes = jobs_.at(static_cast<std::size_t>(job)).nodes;
  nodes.erase(std::remove(nodes.begin(), nodes.end(), node), nodes.end());
}

std::size_t JobTable::running() const {
  std::size_t n = 0;
  for (const Job& job : jobs_) {
    n += job.state == JobState::kRunning ? 1 : 0;
  }
  return n;
}

}  // namespace procap::cluster
