// jobmix.hpp — a dynamic job mix for the cluster simulation.
//
// The cluster's scaling axis is node count × jobs: a stream of jobs with
// different power sensitivities (the paper's app classes) arrives,
// claims nodes, runs for a while and leaves.  synthesize_mix() draws a
// reproducible mix from a seed; JobTable runs the arrival/placement/
// completion lifecycle against whatever nodes the manager reports free.
//
// Placement is deliberately simple (first-fit over the free list in
// ascending node order): the object of study is the power hierarchy
// above it, and a deterministic scheduler keeps cluster runs
// bit-reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap::cluster {

/// One job's workload parameters (the per-node demand/progress model).
struct JobSpec {
  std::string name;
  int priority = 1;          ///< >= 1, weights cluster-level division
  unsigned nodes = 4;        ///< nodes the job needs to start
  Nanos arrival = 0;
  Nanos duration = 0;        ///< runtime once started (0 = forever)
  Watts node_demand = 150.0; ///< per-node peak demand
  double demand_amplitude = 0.2;  ///< phase wave depth, fraction of peak
  Seconds phase_period = 20.0;    ///< demand wave period
  double alpha = 0.7;        ///< progress ~ (granted/demand)^alpha
  double nominal_rate = 100.0;    ///< progress units/s at full demand
  double cpu_share = 0.8;    ///< demand split between CPU and DRAM

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Draw `jobs` jobs for a cluster of `nodes` from the paper's app-class
/// shapes (compute-bound high-alpha through memory-bound low-alpha).
/// Deterministic in (jobs, nodes, seed).
[[nodiscard]] std::vector<JobSpec> synthesize_mix(unsigned jobs,
                                                  unsigned nodes,
                                                  std::uint64_t seed);

/// Arrival/placement/completion lifecycle over a synthesized mix.
class JobTable {
 public:
  enum class JobState { kPending, kRunning, kDone };

  explicit JobTable(std::vector<JobSpec> specs);

  /// Node/job binding changes decided by one advance() call.
  struct Changes {
    /// (node, job) pairs to bind, in placement order.
    std::vector<std::pair<unsigned, int>> bind;
    /// Nodes released by completed jobs.
    std::vector<unsigned> unbind;
  };

  /// Advance the lifecycle to `now`: complete jobs whose duration
  /// elapsed, then start pending jobs whose arrival is due while enough
  /// free nodes exist (first-fit from `free_nodes`, which the caller
  /// keeps sorted ascending).  Jobs that cannot be placed stay pending —
  /// they start when churn frees capacity.
  [[nodiscard]] Changes advance(Nanos now, std::vector<unsigned>& free_nodes);

  /// A dead node dropped out of `job`; the job keeps running on its
  /// surviving nodes.
  void release_node(int job, unsigned node);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] const JobSpec& spec(int job) const {
    return jobs_.at(static_cast<std::size_t>(job)).spec;
  }
  [[nodiscard]] JobState state(int job) const {
    return jobs_.at(static_cast<std::size_t>(job)).state;
  }
  [[nodiscard]] const std::vector<unsigned>& nodes_of(int job) const {
    return jobs_.at(static_cast<std::size_t>(job)).nodes;
  }
  [[nodiscard]] std::size_t running() const;

 private:
  struct Job {
    JobSpec spec;
    JobState state = JobState::kPending;
    Nanos started_at = 0;
    std::vector<unsigned> nodes;
  };

  std::vector<Job> jobs_;
};

}  // namespace procap::cluster
