#include "obs/metrics.hpp"

#include "obs/sketch.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace procap::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), cells_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be ascending");
    }
  }
}

void Histogram::observe(double v) noexcept {
  if (!detail::enabled()) {
    return;
  }
  // Linear scan: bucket lists are short (≤ ~20) and the branch pattern is
  // predictable for clustered observations; binary search buys nothing.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) {
    ++i;
  }
  cells_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::cumulative(std::size_t i) const {
  std::uint64_t total = 0;
  for (std::size_t j = 0; j <= std::min(i, bounds_.size()); ++j) {
    total += cells_[j].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const std::uint64_t cell = cells_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cum + cell) >= target) {
      // Interpolate within [lo, hi); the +Inf bucket reports its lower
      // edge (no finite upper bound to interpolate toward).
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      if (i == bounds_.size() || cell == 0) {
        return lo;
      }
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(cell);
      return lo + frac * (bounds_[i] - lo);
    }
    cum += cell;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& cell : cells_) {
    cell.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> latency_buckets_ns() {
  // 1 µs .. 10 s, roughly 1-2.5-5 per decade: covers daemon tick wall
  // cost (µs) through cap-to-effect latency (s) in one edge set.
  return {1e3,  2.5e3, 5e3,  1e4,  2.5e4, 5e4,  1e5,  2.5e5, 5e5,
          1e6,  2.5e6, 5e6,  1e7,  2.5e7, 5e7,  1e8,  2.5e8, 5e8,
          1e9,  2.5e9, 5e9,  1e10};
}

std::vector<double> seconds_buckets() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
          0.25,  0.5,    1.0,   2.5,  5.0,   10.0};
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string prometheus_label(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += escape_label_value(value);
  out += "\"";
  return out;
}

struct Registry::Entry {
  std::string name;
  std::string labels;
  int type;  // 0 counter, 1 gauge, 2 histogram, 3 sketch
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
  std::unique_ptr<Sketch> sketch;
};

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

// Caller must hold mutex_: the returned Entry's instrument pointer is
// check-then-set by the public accessors, and concurrent registration of
// the same name+labels (e.g. two sweep trials monitoring the same app)
// must not race on it.
Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const std::string& labels,
                                          int type) {
  for (auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      if (entry->type != type) {
        throw std::invalid_argument("Registry: '" + name +
                                    "' already registered with another type");
      }
      return *entry;
    }
  }
  entries_.push_back(std::make_unique<Entry>());
  Entry& entry = *entries_.back();
  entry.name = name;
  entry.labels = labels;
  entry.type = type;
  return entry;
}

Counter& Registry::counter(const std::string& name,
                           const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, 0);
  if (!entry.counter) {
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, 1);
  if (!entry.gauge) {
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, 2);
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.histogram;
}

Sketch& Registry::sketch(const std::string& name, const std::string& labels,
                         double relative_error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, labels, 3);
  if (!entry.sketch) {
    entry.sketch = std::make_unique<Sketch>(relative_error);
  }
  return *entry.sketch;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; dots become
/// underscores and everything gets the procap_ prefix.
std::string prometheus_name(const std::string& name) {
  std::string out = "procap_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string with_labels(const std::string& name, const std::string& labels,
                        const std::string& extra = "") {
  if (labels.empty() && extra.empty()) {
    return name;
  }
  std::string out = name + "{" + labels;
  if (!labels.empty() && !extra.empty()) {
    out += ",";
  }
  out += extra + "}";
  return out;
}

void write_double(std::ostream& os, double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    os << static_cast<std::int64_t>(v);
  } else {
    os << v;
  }
}

}  // namespace

void Registry::write_prometheus(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string last_typed;
  for (const auto& entry : entries_) {
    const std::string pname = prometheus_name(entry->name);
    const char* type = entry->type == 0   ? "counter"
                       : entry->type == 1 ? "gauge"
                       : entry->type == 2 ? "histogram"
                                          : "summary";
    if (pname != last_typed) {
      os << "# TYPE " << pname << " " << type << "\n";
      last_typed = pname;
    }
    switch (entry->type) {
      case 0:
        os << with_labels(pname, entry->labels) << " "
           << entry->counter->value() << "\n";
        break;
      case 1: {
        os << with_labels(pname, entry->labels) << " ";
        write_double(os, entry->gauge->value());
        os << "\n";
        break;
      }
      case 2: {
        const Histogram& h = *entry->histogram;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          os << with_labels(pname + "_bucket", entry->labels,
                            "le=\"" + std::to_string(h.bounds()[i]) + "\"")
             << " " << h.cumulative(i) << "\n";
        }
        os << with_labels(pname + "_bucket", entry->labels, "le=\"+Inf\"")
           << " " << h.count() << "\n";
        os << with_labels(pname + "_sum", entry->labels) << " ";
        write_double(os, h.sum());
        os << "\n";
        os << with_labels(pname + "_count", entry->labels) << " " << h.count()
           << "\n";
        break;
      }
      default: {
        // Sketches expose as Prometheus summaries: pre-computed
        // quantiles, plus _sum/_count.
        const Sketch& s = *entry->sketch;
        for (const double q : {0.5, 0.95, 0.99}) {
          os << with_labels(pname, entry->labels,
                            "quantile=\"" + std::to_string(q) + "\"")
             << " ";
          write_double(os, s.quantile(q));
          os << "\n";
        }
        os << with_labels(pname + "_sum", entry->labels) << " ";
        write_double(os, s.sum());
        os << "\n";
        os << with_labels(pname + "_count", entry->labels) << " " << s.count()
           << "\n";
        break;
      }
    }
  }
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    switch (entry->type) {
      case 0:
        entry->counter->reset();
        break;
      case 1:
        entry->gauge->reset();
        break;
      case 2:
        entry->histogram->reset();
        break;
      default:
        entry->sketch->reset();
        break;
    }
  }
}

std::vector<InstrumentSnapshot> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<InstrumentSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    InstrumentSnapshot snap;
    snap.name = entry->name;
    snap.labels = entry->labels;
    snap.type = entry->type;
    switch (entry->type) {
      case 0:
        snap.value = static_cast<double>(entry->counter->value());
        break;
      case 1:
        snap.value = entry->gauge->value();
        break;
      case 2: {
        const Histogram& h = *entry->histogram;
        snap.count = h.count();
        snap.sum = h.sum();
        snap.value = static_cast<double>(snap.count);
        snap.p50 = h.quantile(0.50);
        snap.p95 = h.quantile(0.95);
        snap.p99 = h.quantile(0.99);
        break;
      }
      default: {
        const Sketch& s = *entry->sketch;
        snap.count = s.count();
        snap.sum = s.sum();
        snap.value = static_cast<double>(snap.count);
        snap.p50 = s.quantile(0.50);
        snap.p95 = s.quantile(0.95);
        snap.p99 = s.quantile(0.99);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::vector<std::string> Registry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry->labels.empty()
                      ? entry->name
                      : entry->name + "{" + entry->labels + "}");
  }
  return out;
}

double Registry::self_cost_ns() {
  // Micro-benchmark one enabled increment; min of a few rounds rejects
  // scheduler noise.  ~µs total, safe to call at export time.
  static Counter probe;
  const bool was_enabled = enabled();
  set_enabled(true);
  double best = 1e18;
  constexpr int kRounds = 5;
  constexpr int kIters = 20000;
  for (int round = 0; round < kRounds; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      probe.inc();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        kIters;
    best = std::min(best, ns);
  }
  set_enabled(was_enabled);
  return best;
}

}  // namespace procap::obs
