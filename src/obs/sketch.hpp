// sketch.hpp — bounded-memory log-bucketed quantile sketch.
//
// The fixed-bucket Histogram needs its bucket edges chosen up front,
// which works for quantities whose scale is known (tick wall cost,
// cap-to-effect latency) and fails for the ones this PR serves at scale:
// HTTP scrape latency under contention spans µs to seconds depending on
// scraper count, and per-node progress rates span whatever the job mix
// produces.  Sketch is the DDSketch-style answer (Masson, Rim & Lee,
// VLDB 2019): buckets at geometric positions γ^i with
// γ = (1+α)/(1-α), so every quantile estimate is within relative error
// α of the true value, for any value distribution, with a fixed and
// small memory footprint.
//
// Bounded memory by construction: the index range is derived from a
// [min_value, max_value] span fixed at construction (defaults cover
// 1 ns..11 days expressed in seconds and everything power/progress
// shaped); values below the span land in the bottom bucket, values
// above it in the top bucket — the error bound degrades only for those
// clamped tails, never the memory.  At the default α = 1 % the footprint
// is ~22 KB per sketch.
//
// Hot-path contract matches Counter/Gauge/Histogram: observe() is
// lock-free — one index computation plus three relaxed atomic ops behind
// the same kill switch — so sketches are safe to feed from the HTTP
// serve thread and from parallel scraper threads at once.  merge() makes
// cluster roll-ups cheap: per-node sketches add bucket-wise.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace procap::obs {

/// DDSketch-style quantile sketch with relative-error guarantee.
class Sketch {
 public:
  /// `relative_error` is the quantile accuracy α (0 < α < 1); the value
  /// span [min_value, max_value] fixes the bucket range (both > 0,
  /// min < max).  Throws std::invalid_argument otherwise.
  explicit Sketch(double relative_error = 0.01, double min_value = 1e-9,
                  double max_value = 1e15);

  /// Record one value.  v <= 0 counts into a dedicated zero bucket
  /// (quantiles report it as 0); values outside the span clamp to the
  /// edge buckets.  Lock-free, kill-switch aware.
  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Quantile estimate (q clamped to [0,1]); 0 when empty.  Accurate to
  /// within relative_error() for values inside the configured span.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double relative_error() const { return alpha_; }
  [[nodiscard]] std::size_t bucket_count() const { return cells_.size(); }
  /// Approximate resident size of the bucket array, bytes.
  [[nodiscard]] std::size_t memory_bytes() const {
    return cells_.size() * sizeof(cells_[0]);
  }

  /// True when `other` was built with the same (α, span) and can merge.
  [[nodiscard]] bool mergeable(const Sketch& other) const;

  /// Bucket-wise add of `other` (same parameters required; throws
  /// std::invalid_argument otherwise).  The result answers quantiles
  /// over the union of both observation streams.
  void merge(const Sketch& other);

  void reset() noexcept;

 private:
  [[nodiscard]] std::size_t index_of(double v) const noexcept;
  [[nodiscard]] double value_of(std::size_t cell) const noexcept;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::int32_t min_index_;  ///< γ-index of the bottom bucket
  // One cell per γ-index in [min_index_, max_index]; sized once in the
  // constructor, never resized (the atomics must not move).
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::atomic<std::uint64_t> zero_{0};  ///< observations <= 0
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace procap::obs

// Static-binding macro matching PROCAP_OBS_COUNTER et al.
#if !defined(PROCAP_OBS_DISABLED)

#define PROCAP_OBS_SKETCH(var, name)   \
  static ::procap::obs::Sketch& var =  \
      ::procap::obs::Registry::global().sketch(name)

#else  // PROCAP_OBS_DISABLED

namespace procap::obs {
struct NullSketch {
  void observe(double) const noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] double quantile(double) const noexcept { return 0.0; }
};
}  // namespace procap::obs

#define PROCAP_OBS_SKETCH(var, name) \
  static constexpr ::procap::obs::NullSketch var {}

#endif  // PROCAP_OBS_DISABLED
