#include "obs/timeseries.hpp"

#include <charconv>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace procap::obs {

RingBuffer::RingBuffer(std::size_t capacity) : data_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RingBuffer: capacity must be positive");
  }
}

void RingBuffer::push(const TsPoint& point) {
  data_[head_] = point;
  head_ = (head_ + 1) % data_.size();
  if (size_ < data_.size()) {
    ++size_;
  }
  ++pushed_;
}

const TsPoint& RingBuffer::at(std::size_t i) const {
  if (i >= size_) {
    throw std::out_of_range("RingBuffer::at: index past size");
  }
  // head_ points one past the newest; the oldest sits size_ slots back.
  const std::size_t oldest = (head_ + data_.size() - size_) % data_.size();
  return data_[(oldest + i) % data_.size()];
}

const TsPoint& RingBuffer::latest() const { return at(size_ - 1); }

const char* to_string(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kHistogram:
      return "histogram";
    case SeriesKind::kSketch:
      return "sketch";
  }
  return "?";
}

namespace {

SeriesKind kind_of(int registry_type) {
  switch (registry_type) {
    case 0:
      return SeriesKind::kCounter;
    case 1:
      return SeriesKind::kGauge;
    case 2:
      return SeriesKind::kHistogram;
    default:
      return SeriesKind::kSketch;
  }
}

bool labels_match(const std::string& labels, const std::string& filter) {
  return filter.empty() || labels.find(filter) != std::string::npos;
}

/// Append `v` in shortest round-trip form.  std::to_chars is an order
/// of magnitude faster than ostream double formatting, and the JSON
/// document is mostly doubles — at scrape scale (hundreds of series,
/// hundreds of points each) the formatter IS the serving cost.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(Registry& registry, std::size_t capacity)
    : registry_(&registry), capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TimeSeriesStore: capacity must be positive");
  }
}

void TimeSeriesStore::sample(Nanos now) {
  // Snapshot outside the store lock: the registry has its own mutex and
  // the copy is cheap next to the sampling interval.
  const std::vector<InstrumentSnapshot> snaps = registry_->snapshot();
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t slot = 0;
  for (const InstrumentSnapshot& snap : snaps) {
    // The registry only appends, in registration order; walk both lists
    // in lockstep and create rings for instruments that are new since
    // the previous round.
    while (slot < slots_.size() && (slots_[slot].name != snap.name ||
                                    slots_[slot].labels != snap.labels)) {
      ++slot;
    }
    if (slot == slots_.size()) {
      slots_.push_back(Slot{snap.name, snap.labels, kind_of(snap.type),
                            RingBuffer(capacity_)});
    }
    Slot& s = slots_[slot];
    TsPoint point;
    point.t = now;
    point.value = snap.value;
    if (s.kind != SeriesKind::kGauge && !s.ring.empty()) {
      const TsPoint& prev = s.ring.latest();
      if (now > prev.t) {
        point.rate = (point.value - prev.value) /
                     to_seconds(now - prev.t);
      }
    }
    if (s.kind == SeriesKind::kHistogram || s.kind == SeriesKind::kSketch) {
      point.p50 = snap.p50;
      point.p95 = snap.p95;
      point.p99 = snap.p99;
    }
    s.ring.push(point);
    ++slot;
  }
  if (samples_ == 0) {
    first_sample_t_ = now;
  }
  ++samples_;
}

std::optional<Nanos> TimeSeriesStore::first_sample_time() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (samples_ == 0) {
    return std::nullopt;
  }
  return first_sample_t_;
}

std::uint64_t TimeSeriesStore::samples_taken() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

std::size_t TimeSeriesStore::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

std::optional<TsPoint> TimeSeriesStore::latest(const std::string& name,
                                               const std::string& labels)
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : slots_) {
    if (slot.name == name && slot.labels == labels && !slot.ring.empty()) {
      return slot.ring.latest();
    }
  }
  return std::nullopt;
}

std::vector<SeriesView> TimeSeriesStore::series(
    const std::string& name_filter, Nanos since,
    const std::string& labels_filter) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesView> out;
  for (const Slot& slot : slots_) {
    if (!name_filter.empty() && slot.name != name_filter) {
      continue;
    }
    if (!labels_match(slot.labels, labels_filter)) {
      continue;
    }
    SeriesView view;
    view.name = slot.name;
    view.labels = slot.labels;
    view.kind = slot.kind;
    for (std::size_t i = 0; i < slot.ring.size(); ++i) {
      const TsPoint& point = slot.ring.at(i);
      if (point.t >= since) {
        view.points.push_back(point);
      }
    }
    out.push_back(std::move(view));
  }
  return out;
}

void TimeSeriesStore::set_meta(const std::string& key,
                               const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  meta_[key] = value;
}

void TimeSeriesStore::write_json(std::ostream& os, Nanos since,
                                 const std::string& name_filter,
                                 const std::string& labels_filter) const {
  // Serialized into a string with to_chars, then streamed out in one
  // write: this document is the scrape plane's heaviest response and
  // ostream-formatted doubles were its bottleneck (see bench/obs_load).
  std::string out;
  const std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(256 + slots_.size() * (64 + capacity_ * 48));
  out += "{\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    out += first ? "\"" : ",\"";
    out += json::escape(key);
    out += "\":\"";
    out += json::escape(value);
    out += "\"";
    first = false;
  }
  out += "},\"samples\":";
  out += std::to_string(samples_);
  out += ",\"series\":[";
  first = true;
  for (const Slot& slot : slots_) {
    if (!name_filter.empty() && slot.name != name_filter) {
      continue;
    }
    if (!labels_match(slot.labels, labels_filter)) {
      continue;
    }
    out += first ? "{\"name\":\"" : ",{\"name\":\"";
    out += json::escape(slot.name);
    out += "\",\"labels\":\"";
    out += json::escape(slot.labels);
    out += "\",\"kind\":\"";
    out += to_string(slot.kind);
    out += "\",\"points\":[";
    first = false;
    bool first_point = true;
    const bool quantiles = slot.kind == SeriesKind::kHistogram ||
                           slot.kind == SeriesKind::kSketch;
    for (std::size_t i = 0; i < slot.ring.size(); ++i) {
      const TsPoint& point = slot.ring.at(i);
      if (point.t < since) {
        continue;
      }
      out += first_point ? "{\"t\":" : ",{\"t\":";
      append_double(out, to_seconds(point.t));
      out += ",\"v\":";
      append_double(out, point.value);
      out += ",\"rate\":";
      append_double(out, point.rate);
      if (quantiles) {
        out += ",\"p50\":";
        append_double(out, point.p50);
        out += ",\"p95\":";
        append_double(out, point.p95);
        out += ",\"p99\":";
        append_double(out, point.p99);
      }
      out += "}";
      first_point = false;
    }
    out += "]}";
  }
  out += "]}";
  os << out;
}

namespace {
/// Process-wide flush hook; relaxed is enough (install/uninstall happen
/// on run setup/teardown, not concurrently with flushes that matter).
std::atomic<Sampler*> g_sampler{nullptr};
}  // namespace

Sampler::Sampler(TimeSeriesStore& store, Nanos interval)
    : store_(&store), interval_(interval) {
  if (interval <= 0) {
    throw std::invalid_argument("Sampler: interval must be positive");
  }
}

Sampler::~Sampler() { uninstall(); }

void Sampler::install() { g_sampler.store(this, std::memory_order_release); }

void Sampler::uninstall() {
  Sampler* expected = this;
  g_sampler.compare_exchange_strong(expected, nullptr,
                                    std::memory_order_acq_rel);
}

void Sampler::on_flush(Nanos now) {
  if (primed_ && now < next_due_) {
    return;
  }
  store_->sample(now);
  ++samples_;
  primed_ = true;
  next_due_ = now + interval_;
}

#if !defined(PROCAP_OBS_DISABLED)
void notify_flush(Nanos now) {
  Sampler* sampler = g_sampler.load(std::memory_order_acquire);
  if (sampler != nullptr) {
    sampler->on_flush(now);
  }
}
#endif

}  // namespace procap::obs
