// timeseries.hpp — live retention for the metrics registry.
//
// Stage two of the observability layer: instead of scraping the registry
// once at exit, a Sampler periodically snapshots every registered
// Counter/Gauge/Histogram into per-instrument fixed-capacity ring
// buffers.  Each retained point carries the cumulative value, the
// per-second rate since the previous sample (counters and histogram
// counts), and bucket-interpolated p50/p95/p99 (histograms) — everything
// the HTTP endpoints (/timeseries.json), the alert engine and the
// procap_top dashboard read.
//
// Overhead contract: sampling is driven from the sim engine's existing
// batched-flush point (Engine::flush_obs → notify_flush), so the hot
// tick loop pays exactly what it already paid — one masked branch — and
// the registry walk happens at the flush cadence (every kObsFlushTicks
// ticks, ~4 s of simulated time at the default dt), far off the hot
// path.  The ≤3 % perf gate (tests/obs_overhead_test.cpp) covers the
// combination.
//
// Threading: TimeSeriesStore is mutex-protected — the simulation thread
// samples while the HTTP server thread serializes snapshots.  Sampler is
// single-threaded (driven by the engine that owns the flush point).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace procap::obs {

/// One retained sample of one instrument.
struct TsPoint {
  Nanos t = 0;
  double value = 0.0;  ///< counter cumulative / gauge value / histogram count
  double rate = 0.0;   ///< per-second delta since the previous sample
  /// Bucket-interpolated quantiles (histograms; 0 otherwise).
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  friend bool operator==(const TsPoint&, const TsPoint&) = default;
};

/// Fixed-capacity ring of TsPoints; pushing beyond capacity evicts the
/// oldest point.  Index 0 is always the oldest retained point.
class RingBuffer {
 public:
  /// Throws std::invalid_argument when capacity is zero.
  explicit RingBuffer(std::size_t capacity);

  void push(const TsPoint& point);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Oldest-first access; throws std::out_of_range past size().
  [[nodiscard]] const TsPoint& at(std::size_t i) const;

  /// Newest retained point; requires !empty().
  [[nodiscard]] const TsPoint& latest() const;

  /// Total points ever pushed (>= size() once the ring has wrapped).
  [[nodiscard]] std::uint64_t pushed() const { return pushed_; }

 private:
  std::vector<TsPoint> data_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
};

/// Series kind, mirroring the registry's instrument types.
enum class SeriesKind { kCounter, kGauge, kHistogram, kSketch };

[[nodiscard]] const char* to_string(SeriesKind kind);

/// Owning copy of one series, as returned to readers.
struct SeriesView {
  std::string name;
  std::string labels;
  SeriesKind kind = SeriesKind::kCounter;
  std::vector<TsPoint> points;  ///< oldest first
};

/// Per-instrument ring buffers filled by sample().  One store retains
/// one run's live history; readers get consistent copies.
class TimeSeriesStore {
 public:
  /// `registry` must outlive the store; `capacity` is points per series.
  explicit TimeSeriesStore(Registry& registry, std::size_t capacity = 512);

  /// Snapshot every registered instrument at time `now`.  Instruments
  /// registered since the last call get a fresh ring; counter rates are
  /// derived against the previous retained point.
  void sample(Nanos now);

  /// Sampling rounds completed.
  [[nodiscard]] std::uint64_t samples_taken() const;

  /// Time of the first sampling round, nullopt before any.  Evidence
  /// anchor for absence alerts: "sampling since t0 and still no series"
  /// is a statement about the world, "no samples yet" is not.
  [[nodiscard]] std::optional<Nanos> first_sample_time() const;

  /// Series currently retained.
  [[nodiscard]] std::size_t series_count() const;

  /// Newest point of the series with exactly this name+labels.
  [[nodiscard]] std::optional<TsPoint> latest(const std::string& name,
                                              const std::string& labels =
                                                  "") const;

  /// Copies of every series whose name equals `name_filter` (empty =
  /// all) and whose label set contains `labels_filter` as a substring
  /// (empty = all), restricted to points with t >= since.  The label
  /// filter is how the HTTP endpoints drill down to one entity, e.g.
  /// labels_filter = "node=\"17\"" selects node 17's cluster series.
  [[nodiscard]] std::vector<SeriesView> series(
      const std::string& name_filter = "", Nanos since = 0,
      const std::string& labels_filter = "") const;

  /// Run metadata echoed into the JSON document (app, scheme, ...).
  void set_meta(const std::string& key, const std::string& value);

  /// The /timeseries.json document: {"meta":{...},"samples":N,
  /// "series":[{"name","labels","kind","points":[{"t","v","rate",...}]}]}.
  /// Timestamps are emitted in seconds.  `name_filter`/`labels_filter`
  /// restrict the emitted series exactly as series() does.
  void write_json(std::ostream& os, Nanos since = 0,
                  const std::string& name_filter = "",
                  const std::string& labels_filter = "") const;

 private:
  struct Slot {
    std::string name;
    std::string labels;
    SeriesKind kind;
    RingBuffer ring;
  };

  Registry* registry_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::map<std::string, std::string> meta_;
  std::uint64_t samples_ = 0;
  Nanos first_sample_t_ = 0;
};

/// Drives a TimeSeriesStore from the engine's batched-flush point: call
/// install() and every Engine::flush_obs() (or any other notify_flush()
/// caller) takes a sample once `interval` has elapsed since the last
/// one.  Install at most one sampler per process at a time.
class Sampler {
 public:
  /// `store` must outlive the sampler.
  explicit Sampler(TimeSeriesStore& store, Nanos interval = kNanosPerSecond);

  /// Uninstalls automatically if still installed.
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Register as the process-wide flush hook (replaces any previous).
  void install();

  /// Deregister (no-op when another sampler took the hook meanwhile).
  void uninstall();

  /// Sample if `interval` has elapsed since the last sample (always
  /// samples on the first call).  Callable directly in tests.
  void on_flush(Nanos now);

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] Nanos interval() const { return interval_; }

 private:
  TimeSeriesStore* store_;
  Nanos interval_;
  Nanos next_due_ = 0;
  bool primed_ = false;
  std::uint64_t samples_ = 0;
};

#if !defined(PROCAP_OBS_DISABLED)
/// Invoke the installed sampler, if any.  Called from the sim engine's
/// batched obs flush; one relaxed pointer load when no sampler is
/// installed.
void notify_flush(Nanos now);
#else
/// Compiled-out stub: the noobs build pays nothing at the flush point.
inline void notify_flush(Nanos) {}
#endif

}  // namespace procap::obs
