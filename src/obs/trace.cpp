#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace procap::obs {

void TraceCollector::cap_change(Nanos ts, std::optional<double> from,
                                std::optional<double> to,
                                const std::string& scheme) {
  PROCAP_OBS_COUNTER(changes, "obs.trace.cap_changes");
  changes.inc();
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kCapChange;
  ev.ts = ts;
  ev.a = from.value_or(0.0);
  ev.b = to.value_or(0.0);
  ev.flow = next_flow_++;
  ev.s1 = scheme;
  // A still-pending (never-actuated) flow from a failed write is
  // superseded by this retry; keep at most one un-actuated flow open.
  std::erase_if(open_flows_, [](const OpenFlow& f) { return !f.actuated; });
  open_flows_.push_back(OpenFlow{ev.flow, ts, false});
  events_.push_back(std::move(ev));
}

void TraceCollector::actuation(Nanos ts, const std::string& op, double watts,
                               bool ok) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kActuation;
  ev.ts = ts;
  ev.b = watts;
  ev.ok = ok;
  ev.s1 = op;
  for (auto& flow : open_flows_) {
    if (!flow.actuated) {
      if (ok) {
        flow.actuated = true;
        ev.flow = flow.id;
      }
      break;
    }
  }
  if (!ok) {
    std::erase_if(open_flows_, [](const OpenFlow& f) { return !f.actuated; });
  }
  events_.push_back(std::move(ev));
}

void TraceCollector::daemon_tick(Nanos ts, double wall_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kDaemonTick;
  ev.ts = ts;
  ev.a = wall_ns;
  events_.push_back(std::move(ev));
}

void TraceCollector::progress_window(Nanos start, Nanos end, double rate,
                                     const std::string& app) {
  PROCAP_OBS_HISTOGRAM(latency_hist, "obs.cap_to_effect_ns",
                       latency_buckets_ns());
  std::vector<Nanos> closed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kProgressWindow;
    ev.ts = start;
    ev.ts_end = end;
    ev.a = rate;
    ev.s1 = app;
    // The first window extending past an actuated cap change is the
    // earliest moment the progress signal can reflect it.
    for (auto it = open_flows_.begin(); it != open_flows_.end();) {
      if (it->actuated && it->change_ts < end) {
        const Nanos latency = end - it->change_ts;
        TraceEvent effect;
        effect.kind = TraceEvent::Kind::kCapEffect;
        effect.ts = end;
        effect.a = static_cast<double>(latency);
        effect.flow = it->id;
        effect.s1 = app;
        latencies_.push_back(latency);
        closed.push_back(latency);
        if (ev.flow == 0) {
          ev.flow = it->id;  // bind the window slice into the flow
        }
        events_.push_back(std::move(effect));
        it = open_flows_.erase(it);
      } else {
        ++it;
      }
    }
    // Insert the window before its cap.effect events chronologically?
    // Both carry explicit timestamps; viewers sort by ts, so append
    // order only needs to be stable, not sorted.
    events_.push_back(std::move(ev));
  }
  for (const Nanos latency : closed) {
    latency_hist.observe(static_cast<double>(latency));
  }
}

void TraceCollector::mode_change(Nanos ts, const std::string& from,
                                 const std::string& to,
                                 const std::string& reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kModeChange;
  ev.ts = ts;
  ev.s1 = from;
  ev.s2 = to;
  ev.s3 = reason;
  events_.push_back(std::move(ev));
}

void TraceCollector::mark(Nanos ts, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kMark;
  ev.ts = ts;
  ev.s1 = name;
  events_.push_back(std::move(ev));
}

void TraceCollector::set_meta(const std::string& key,
                              const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  meta_[key] = value;
}

std::vector<TraceEvent> TraceCollector::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceCollector::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<Nanos> TraceCollector::cap_effect_latencies() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return latencies_;
}

namespace {

/// Microsecond timestamp for Chrome's "ts" field.
std::string us(Nanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// One Chrome trace event line.  `extra` is appended raw inside the
/// object (already JSON, leading comma included by caller convention).
void chrome_event(std::ostream& os, bool& first, const std::string& name,
                  const char* cat, const char* ph, Nanos ts, int tid,
                  const std::string& extra) {
  os << (first ? "\n  " : ",\n  ");
  first = false;
  os << "{\"name\":\"" << json::escape(name) << "\",\"cat\":\"" << cat
     << "\",\"ph\":\"" << ph << "\",\"ts\":" << us(ts)
     << ",\"pid\":1,\"tid\":" << tid << extra << "}";
}

constexpr int kDaemonTid = 1;
constexpr int kMonitorTid = 2;
constexpr int kNrmTid = 3;

}  // namespace

void TraceCollector::write_chrome(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  // Track names so Perfetto shows daemon / monitor / nrm lanes.
  for (const auto& [tid, label] :
       {std::pair<int, const char*>{kDaemonTid, "daemon"},
        {kMonitorTid, "monitor"},
        {kNrmTid, "nrm"}}) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << label << "\"}}";
  }
  for (const TraceEvent& ev : events_) {
    switch (ev.kind) {
      case TraceEvent::Kind::kCapChange: {
        chrome_event(os, first, "cap.change", "policy", "X", ev.ts, kDaemonTid,
                     ",\"dur\":0,\"args\":{\"from_w\":" + num(ev.a) +
                         ",\"to_w\":" + num(ev.b) + ",\"scheme\":\"" +
                         json::escape(ev.s1) + "\"}");
        if (ev.flow != 0) {
          chrome_event(os, first, "cap-to-effect", "flow", "s", ev.ts,
                       kDaemonTid, ",\"id\":" + std::to_string(ev.flow));
        }
        break;
      }
      case TraceEvent::Kind::kActuation: {
        chrome_event(os, first, "rapl.actuate", "rapl", "X", ev.ts, kDaemonTid,
                     ",\"dur\":0,\"args\":{\"op\":\"" + json::escape(ev.s1) +
                         "\",\"watts\":" + num(ev.b) + ",\"ok\":" +
                         (ev.ok ? "true" : "false") + "}");
        if (ev.flow != 0) {
          chrome_event(os, first, "cap-to-effect", "flow", "t", ev.ts,
                       kDaemonTid, ",\"id\":" + std::to_string(ev.flow));
        }
        break;
      }
      case TraceEvent::Kind::kDaemonTick:
        chrome_event(os, first, "daemon.tick", "policy", "X", ev.ts,
                     kDaemonTid,
                     ",\"dur\":0,\"args\":{\"wall_ns\":" + num(ev.a) + "}");
        break;
      case TraceEvent::Kind::kProgressWindow: {
        chrome_event(os, first, "progress.window", "progress", "X", ev.ts,
                     kMonitorTid,
                     ",\"dur\":" + us(ev.ts_end - ev.ts) +
                         ",\"args\":{\"rate\":" + num(ev.a) + ",\"app\":\"" +
                         json::escape(ev.s1) + "\"}");
        break;
      }
      case TraceEvent::Kind::kCapEffect: {
        chrome_event(os, first, "cap.effect", "flow", "i", ev.ts, kMonitorTid,
                     ",\"s\":\"t\",\"args\":{\"latency_ns\":" + num(ev.a) +
                         ",\"app\":\"" + json::escape(ev.s1) + "\"}");
        chrome_event(os, first, "cap-to-effect", "flow", "f", ev.ts,
                     kMonitorTid,
                     ",\"bp\":\"e\",\"id\":" + std::to_string(ev.flow));
        break;
      }
      case TraceEvent::Kind::kModeChange:
        chrome_event(os, first, "nrm.mode", "policy", "i", ev.ts, kNrmTid,
                     ",\"s\":\"t\",\"args\":{\"from\":\"" +
                         json::escape(ev.s1) + "\",\"to\":\"" +
                         json::escape(ev.s2) + "\",\"reason\":\"" +
                         json::escape(ev.s3) + "\"}");
        break;
      case TraceEvent::Kind::kMark:
        chrome_event(os, first, ev.s1, "mark", "i", ev.ts, kDaemonTid,
                     ",\"s\":\"t\"");
        break;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  bool first_meta = true;
  for (const auto& [key, value] : meta_) {
    os << (first_meta ? "" : ",");
    first_meta = false;
    os << "\"" << json::escape(key) << "\":\"" << json::escape(value) << "\"";
  }
  os << "}}\n";
}

void TraceCollector::write_jsonl(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, value] : meta_) {
    os << "{\"kind\":\"meta\",\"key\":\"" << json::escape(key)
       << "\",\"value\":\"" << json::escape(value) << "\"}\n";
  }
  for (const TraceEvent& ev : events_) {
    const std::string t = num(to_seconds(ev.ts));
    switch (ev.kind) {
      case TraceEvent::Kind::kCapChange:
        os << "{\"kind\":\"cap_change\",\"t_s\":" << t
           << ",\"from_w\":" << num(ev.a) << ",\"to_w\":" << num(ev.b)
           << ",\"scheme\":\"" << json::escape(ev.s1) << "\"}\n";
        break;
      case TraceEvent::Kind::kActuation:
        os << "{\"kind\":\"actuation\",\"t_s\":" << t << ",\"op\":\""
           << json::escape(ev.s1) << "\",\"watts\":" << num(ev.b)
           << ",\"ok\":" << (ev.ok ? "true" : "false") << "}\n";
        break;
      case TraceEvent::Kind::kDaemonTick:
        os << "{\"kind\":\"daemon_tick\",\"t_s\":" << t
           << ",\"wall_ns\":" << num(ev.a) << "}\n";
        break;
      case TraceEvent::Kind::kProgressWindow:
        os << "{\"kind\":\"progress_window\",\"t_s\":" << t
           << ",\"end_s\":" << num(to_seconds(ev.ts_end))
           << ",\"rate\":" << num(ev.a) << ",\"app\":\""
           << json::escape(ev.s1) << "\"}\n";
        break;
      case TraceEvent::Kind::kCapEffect:
        os << "{\"kind\":\"cap_effect\",\"t_s\":" << t
           << ",\"latency_s\":" << num(ev.a / 1e9) << ",\"app\":\""
           << json::escape(ev.s1) << "\"}\n";
        break;
      case TraceEvent::Kind::kModeChange:
        os << "{\"kind\":\"mode\",\"t_s\":" << t << ",\"from\":\""
           << json::escape(ev.s1) << "\",\"to\":\"" << json::escape(ev.s2)
           << "\",\"reason\":\"" << json::escape(ev.s3) << "\"}\n";
        break;
      case TraceEvent::Kind::kMark:
        os << "{\"kind\":\"mark\",\"t_s\":" << t << ",\"name\":\""
           << json::escape(ev.s1) << "\"}\n";
        break;
    }
  }
}

}  // namespace procap::obs
