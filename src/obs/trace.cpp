#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace procap::obs {

void TraceCollector::cap_change(Nanos ts, std::optional<double> from,
                                std::optional<double> to,
                                const std::string& scheme) {
  PROCAP_OBS_COUNTER(changes, "obs.trace.cap_changes");
  changes.inc();
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kCapChange;
  ev.ts = ts;
  ev.a = from.value_or(0.0);
  ev.b = to.value_or(0.0);
  ev.flow = next_flow_++;
  ev.s1 = scheme;
  // A still-pending (never-actuated) flow from a failed write is
  // superseded by this retry; keep at most one un-actuated flow open.
  std::erase_if(open_flows_, [](const OpenFlow& f) { return !f.actuated; });
  open_flows_.push_back(OpenFlow{ev.flow, ts, false});
  events_.push_back(std::move(ev));
}

void TraceCollector::actuation(Nanos ts, const std::string& op, double watts,
                               bool ok) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kActuation;
  ev.ts = ts;
  ev.b = watts;
  ev.ok = ok;
  ev.s1 = op;
  for (auto& flow : open_flows_) {
    if (!flow.actuated) {
      if (ok) {
        flow.actuated = true;
        ev.flow = flow.id;
      }
      break;
    }
  }
  if (!ok) {
    std::erase_if(open_flows_, [](const OpenFlow& f) { return !f.actuated; });
  }
  events_.push_back(std::move(ev));
}

void TraceCollector::daemon_tick(Nanos ts, double wall_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kDaemonTick;
  ev.ts = ts;
  ev.a = wall_ns;
  events_.push_back(std::move(ev));
}

void TraceCollector::progress_window(Nanos start, Nanos end, double rate,
                                     const std::string& app) {
  PROCAP_OBS_HISTOGRAM(latency_hist, "obs.cap_to_effect_ns",
                       latency_buckets_ns());
  std::vector<Nanos> closed;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kProgressWindow;
    ev.ts = start;
    ev.ts_end = end;
    ev.a = rate;
    ev.s1 = app;
    // The first window extending past an actuated cap change is the
    // earliest moment the progress signal can reflect it.
    for (auto it = open_flows_.begin(); it != open_flows_.end();) {
      if (it->actuated && it->change_ts < end) {
        const Nanos latency = end - it->change_ts;
        TraceEvent effect;
        effect.kind = TraceEvent::Kind::kCapEffect;
        effect.ts = end;
        effect.a = static_cast<double>(latency);
        effect.flow = it->id;
        effect.s1 = app;
        latencies_.push_back(latency);
        closed.push_back(latency);
        if (ev.flow == 0) {
          ev.flow = it->id;  // bind the window slice into the flow
        }
        events_.push_back(std::move(effect));
        it = open_flows_.erase(it);
      } else {
        ++it;
      }
    }
    // Insert the window before its cap.effect events chronologically?
    // Both carry explicit timestamps; viewers sort by ts, so append
    // order only needs to be stable, not sorted.
    events_.push_back(std::move(ev));
  }
  for (const Nanos latency : closed) {
    latency_hist.observe(static_cast<double>(latency));
  }
}

void TraceCollector::mode_change(Nanos ts, const std::string& from,
                                 const std::string& to,
                                 const std::string& reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kModeChange;
  ev.ts = ts;
  ev.s1 = from;
  ev.s2 = to;
  ev.s3 = reason;
  events_.push_back(std::move(ev));
}

void TraceCollector::mark(Nanos ts, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kMark;
  ev.ts = ts;
  ev.s1 = name;
  events_.push_back(std::move(ev));
}

void TraceCollector::set_meta(const std::string& key,
                              const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  meta_[key] = value;
}

std::vector<TraceEvent> TraceCollector::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceCollector::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<Nanos> TraceCollector::cap_effect_latencies() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return latencies_;
}

namespace {

/// Microsecond timestamp for Chrome's "ts" field.
std::string us(Nanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// One Chrome trace event line.  `extra` is appended raw inside the
/// object (already JSON, leading comma included by caller convention).
void chrome_event(std::ostream& os, bool& first, const std::string& name,
                  const char* cat, const char* ph, Nanos ts, int tid,
                  const std::string& extra) {
  os << (first ? "\n  " : ",\n  ");
  first = false;
  os << "{\"name\":\"" << json::escape(name) << "\",\"cat\":\"" << cat
     << "\",\"ph\":\"" << ph << "\",\"ts\":" << us(ts)
     << ",\"pid\":1,\"tid\":" << tid << extra << "}";
}

constexpr int kDaemonTid = 1;
constexpr int kMonitorTid = 2;
constexpr int kNrmTid = 3;

}  // namespace

void TraceCollector::write_chrome(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"traceEvents\":[";
  bool first = true;
  // Track names so Perfetto shows daemon / monitor / nrm lanes.
  for (const auto& [tid, label] :
       {std::pair<int, const char*>{kDaemonTid, "daemon"},
        {kMonitorTid, "monitor"},
        {kNrmTid, "nrm"}}) {
    os << (first ? "\n  " : ",\n  ");
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << label << "\"}}";
  }
  for (const TraceEvent& ev : events_) {
    switch (ev.kind) {
      case TraceEvent::Kind::kCapChange: {
        chrome_event(os, first, "cap.change", "policy", "X", ev.ts, kDaemonTid,
                     ",\"dur\":0,\"args\":{\"from_w\":" + num(ev.a) +
                         ",\"to_w\":" + num(ev.b) + ",\"scheme\":\"" +
                         json::escape(ev.s1) + "\"}");
        if (ev.flow != 0) {
          chrome_event(os, first, "cap-to-effect", "flow", "s", ev.ts,
                       kDaemonTid, ",\"id\":" + std::to_string(ev.flow));
        }
        break;
      }
      case TraceEvent::Kind::kActuation: {
        chrome_event(os, first, "rapl.actuate", "rapl", "X", ev.ts, kDaemonTid,
                     ",\"dur\":0,\"args\":{\"op\":\"" + json::escape(ev.s1) +
                         "\",\"watts\":" + num(ev.b) + ",\"ok\":" +
                         (ev.ok ? "true" : "false") + "}");
        if (ev.flow != 0) {
          chrome_event(os, first, "cap-to-effect", "flow", "t", ev.ts,
                       kDaemonTid, ",\"id\":" + std::to_string(ev.flow));
        }
        break;
      }
      case TraceEvent::Kind::kDaemonTick:
        chrome_event(os, first, "daemon.tick", "policy", "X", ev.ts,
                     kDaemonTid,
                     ",\"dur\":0,\"args\":{\"wall_ns\":" + num(ev.a) + "}");
        break;
      case TraceEvent::Kind::kProgressWindow: {
        chrome_event(os, first, "progress.window", "progress", "X", ev.ts,
                     kMonitorTid,
                     ",\"dur\":" + us(ev.ts_end - ev.ts) +
                         ",\"args\":{\"rate\":" + num(ev.a) + ",\"app\":\"" +
                         json::escape(ev.s1) + "\"}");
        break;
      }
      case TraceEvent::Kind::kCapEffect: {
        chrome_event(os, first, "cap.effect", "flow", "i", ev.ts, kMonitorTid,
                     ",\"s\":\"t\",\"args\":{\"latency_ns\":" + num(ev.a) +
                         ",\"app\":\"" + json::escape(ev.s1) + "\"}");
        chrome_event(os, first, "cap-to-effect", "flow", "f", ev.ts,
                     kMonitorTid,
                     ",\"bp\":\"e\",\"id\":" + std::to_string(ev.flow));
        break;
      }
      case TraceEvent::Kind::kModeChange:
        chrome_event(os, first, "nrm.mode", "policy", "i", ev.ts, kNrmTid,
                     ",\"s\":\"t\",\"args\":{\"from\":\"" +
                         json::escape(ev.s1) + "\",\"to\":\"" +
                         json::escape(ev.s2) + "\",\"reason\":\"" +
                         json::escape(ev.s3) + "\"}");
        break;
      case TraceEvent::Kind::kMark:
        chrome_event(os, first, ev.s1, "mark", "i", ev.ts, kDaemonTid,
                     ",\"s\":\"t\"");
        break;
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  bool first_meta = true;
  for (const auto& [key, value] : meta_) {
    os << (first_meta ? "" : ",");
    first_meta = false;
    os << "\"" << json::escape(key) << "\":\"" << json::escape(value) << "\"";
  }
  os << "}}\n";
}

void TraceCollector::write_jsonl(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, value] : meta_) {
    os << "{\"kind\":\"meta\",\"key\":\"" << json::escape(key)
       << "\",\"value\":\"" << json::escape(value) << "\"}\n";
  }
  for (const TraceEvent& ev : events_) {
    const std::string t = num(to_seconds(ev.ts));
    switch (ev.kind) {
      case TraceEvent::Kind::kCapChange:
        os << "{\"kind\":\"cap_change\",\"t_s\":" << t
           << ",\"from_w\":" << num(ev.a) << ",\"to_w\":" << num(ev.b)
           << ",\"scheme\":\"" << json::escape(ev.s1) << "\"}\n";
        break;
      case TraceEvent::Kind::kActuation:
        os << "{\"kind\":\"actuation\",\"t_s\":" << t << ",\"op\":\""
           << json::escape(ev.s1) << "\",\"watts\":" << num(ev.b)
           << ",\"ok\":" << (ev.ok ? "true" : "false") << "}\n";
        break;
      case TraceEvent::Kind::kDaemonTick:
        os << "{\"kind\":\"daemon_tick\",\"t_s\":" << t
           << ",\"wall_ns\":" << num(ev.a) << "}\n";
        break;
      case TraceEvent::Kind::kProgressWindow:
        os << "{\"kind\":\"progress_window\",\"t_s\":" << t
           << ",\"end_s\":" << num(to_seconds(ev.ts_end))
           << ",\"rate\":" << num(ev.a) << ",\"app\":\""
           << json::escape(ev.s1) << "\"}\n";
        break;
      case TraceEvent::Kind::kCapEffect:
        os << "{\"kind\":\"cap_effect\",\"t_s\":" << t
           << ",\"latency_s\":" << num(ev.a / 1e9) << ",\"app\":\""
           << json::escape(ev.s1) << "\"}\n";
        break;
      case TraceEvent::Kind::kModeChange:
        os << "{\"kind\":\"mode\",\"t_s\":" << t << ",\"from\":\""
           << json::escape(ev.s1) << "\",\"to\":\"" << json::escape(ev.s2)
           << "\",\"reason\":\"" << json::escape(ev.s3) << "\"}\n";
        break;
      case TraceEvent::Kind::kMark:
        os << "{\"kind\":\"mark\",\"t_s\":" << t << ",\"name\":\""
           << json::escape(ev.s1) << "\"}\n";
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// FlowTracer
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kFlowHashSeed = 14695981039346656037ULL;

/// Word-at-a-time mix (SplitMix64 finalizer).  The kept-flow fingerprint
/// only needs determinism and diffusion, and the close path folds four
/// words per kept flow — a byte-loop FNV would be ~8x the work on the
/// tracer's hottest path.
std::uint64_t flow_hash_mix(std::uint64_t hash, std::uint64_t v) {
  std::uint64_t x = hash ^ (v + 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

const char* flow_state_name(FlowState state) {
  switch (state) {
    case FlowState::kOpen:
      return "open";
    case FlowState::kClosed:
      return "closed";
    case FlowState::kOrphaned:
      return "orphaned";
  }
  return "?";
}

const char* keep_reason_name(KeepReason keep) {
  switch (keep) {
    case KeepReason::kDropped:
      return "dropped";
    case KeepReason::kHead:
      return "head";
    case KeepReason::kSlow:
      return "slow";
    case KeepReason::kOrphan:
      return "orphan";
  }
  return "?";
}

double ns_to_ms(Nanos ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

FlowTracer::FlowTracer(FlowTracerOptions options)
    : options_(options), kept_hash_(kFlowHashSeed) {}

bool FlowTracer::head_keep(std::uint64_t epoch, unsigned node) const {
  if (options_.sample_period == 0) {
    return false;
  }
  if (options_.sample_period == 1) {
    return true;
  }
  // Pure function of (seed, epoch, node): the keep set cannot depend on
  // thread interleaving or arrival order.
  std::uint64_t x = options_.seed;
  x ^= epoch * 0x9E3779B97F4A7C15ULL;
  x ^= (static_cast<std::uint64_t>(node) + 1) * 0xBF58476D1CE4E5B9ULL;
  return SplitMix64(x).next() % options_.sample_period == 0;
}

void FlowTracer::finish_flow(const FlowRecord& flow) {
  if (flow.keep == KeepReason::kDropped) {
    ++stats_.dropped;
    return;
  }
  ++stats_.kept;
  kept_hash_ = flow_hash_mix(kept_hash_, flow.id);
  kept_hash_ = flow_hash_mix(kept_hash_, flow.epoch);
  kept_hash_ = flow_hash_mix(kept_hash_, flow.node);
  kept_hash_ =
      flow_hash_mix(kept_hash_, static_cast<std::uint64_t>(flow.latency));
  ring_.push_back(flow);
  while (ring_.size() > options_.capacity) {
    ring_.pop_front();
    ++stats_.evicted;
  }
}

void FlowTracer::resolve_span_child(std::uint32_t seq, Nanos t) {
  const std::size_t index = seq - span_base_seq_;
  if (index >= spans_.size()) {
    return;
  }
  EpochSpan& span = spans_[index];
  ++span.resolved;
  span.t_last = std::max(span.t_last, t);
  if (span.resolved >= span.children) {
    PROCAP_OBS_SKETCH(span_sketch, "cluster.trace.epoch_span_s");
    const double span_s = to_seconds(span.t_last - span.t_decision);
    epoch_span_.observe(span_s);
    span_sketch.observe(span_s);
    ++stats_.epochs_closed;
    // Completed spans pop once everything older is complete too; until
    // then they sit in the ring marked resolved (memory, not time).
    while (!spans_.empty() &&
           spans_.front().resolved >= spans_.front().children) {
      spans_.pop_front();
      ++span_base_seq_;
    }
  }
}

void FlowTracer::orphan_locked(unsigned node, Nanos t, const char* reason) {
  if (node >= slots_.size() || slots_[node].state != FlowState::kOpen) {
    return;
  }
  FlowRecord& flow = slots_[node];
  flow.state = FlowState::kOrphaned;
  flow.keep = KeepReason::kOrphan;
  flow.orphan_reason = reason;
  ++stats_.orphaned;
  --open_count_;
  if (node >= nodes_.size()) {
    nodes_.resize(node + 1);
  }
  ++nodes_[node].orphaned;
  resolve_span_child(flow.span_seq, t);
  finish_flow(flow);
}

void FlowTracer::epoch_decision(std::uint64_t epoch, Nanos t,
                                const std::vector<GrantChange>& changes) {
  PROCAP_OBS_COUNTER(flows_opened, "cluster.trace.flows_opened");
  PROCAP_OBS_COUNTER(epochs_traced, "cluster.trace.epochs");
  const std::lock_guard<std::mutex> lock(mutex_);
  epochs_traced.inc();
  ++stats_.epochs;
  // Filter jitter first (see FlowTracerOptions::min_change_w): a
  // sub-threshold re-grant neither opens a flow nor orphans an open one
  // — the open flow keeps measuring the dominant grant it was opened
  // for, which the jitter moved by less than the threshold.
  const Watts min_change = options_.min_change_w;
  const auto significant = [min_change](const GrantChange& c) {
    return std::abs(c.to_w - c.from_w) >= min_change;
  };
  // A node still waiting on its previous grant gets re-granted: the old
  // flow can no longer close unambiguously, so it orphans here.
  std::uint32_t opened = 0;
  for (const GrantChange& change : changes) {
    if (!significant(change)) {
      continue;
    }
    orphan_locked(change.node, t, "stale_grant");
    ++opened;
  }
  if (opened == 0) {
    ++stats_.epochs_closed;
    return;
  }
  EpochSpan span;
  span.epoch = epoch;
  span.t_decision = t;
  span.children = opened;
  const std::uint32_t span_seq = span_next_seq_++;
  spans_.push_back(span);
  // Carry forward pre-existing open nodes (change nodes were orphaned
  // above, so none of them survive this filter).
  open_scratch_.clear();
  for (const unsigned node : open_nodes_) {
    if (node < slots_.size() && slots_[node].state == FlowState::kOpen) {
      open_scratch_.push_back(node);
    }
  }
  unsigned max_node = 0;
  for (const GrantChange& change : changes) {
    if (significant(change)) {
      max_node = std::max(max_node, change.node);
    }
  }
  if (max_node >= slots_.size()) {
    slots_.resize(max_node + 1);
  }
  for (const GrantChange& change : changes) {
    if (!significant(change)) {
      continue;
    }
    slots_[change.node] = FlowRecord{.id = next_id_++,
                                     .epoch = epoch,
                                     .node = change.node,
                                     .from_w = change.from_w,
                                     .to_w = change.to_w,
                                     .t_decision = t,
                                     .span_seq = span_seq};
    ++stats_.opened;
    ++open_count_;
  }
  flows_opened.inc(opened);
  // Both inputs are ascending (carry-forward preserves order, changes
  // arrive node-ordered), so a linear merge keeps open_nodes_ sorted
  // without a per-epoch sort.
  open_nodes_.clear();
  std::size_t carry = 0;
  std::size_t next = 0;
  const auto skip_jitter = [&] {
    while (next < changes.size() && !significant(changes[next])) {
      ++next;
    }
  };
  skip_jitter();
  while (carry < open_scratch_.size() || next < changes.size()) {
    if (next >= changes.size() ||
        (carry < open_scratch_.size() &&
         open_scratch_[carry] < changes[next].node)) {
      open_nodes_.push_back(open_scratch_[carry++]);
    } else {
      open_nodes_.push_back(changes[next++].node);
      skip_jitter();
    }
  }
}

void FlowTracer::pending_into(std::vector<unsigned>& out) {
  const std::lock_guard<std::mutex> lock(mutex_);
  out.clear();
  // Compact in place: closed/orphaned slots fall out of the candidate
  // list here, keeping the per-tick iteration proportional to open
  // flows.
  std::size_t write = 0;
  for (const unsigned node : open_nodes_) {
    if (node < slots_.size() && slots_[node].state == FlowState::kOpen) {
      open_nodes_[write++] = node;
      out.push_back(node);
    }
  }
  open_nodes_.resize(write);
}

void FlowTracer::observe_latency(Nanos latency) {
  ++latency_count_;
  if (latency_last_ < latency_hist_.size() &&
      latency_hist_[latency_last_].first == latency) {
    ++latency_hist_[latency_last_].second;
    return;
  }
  const auto it = std::lower_bound(
      latency_hist_.begin(), latency_hist_.end(), latency,
      [](const std::pair<Nanos, std::uint64_t>& e, Nanos v) {
        return e.first < v;
      });
  latency_last_ = static_cast<std::size_t>(it - latency_hist_.begin());
  if (it != latency_hist_.end() && it->first == latency) {
    ++it->second;
    return;
  }
  latency_hist_.insert(it, {latency, 1});
}

double FlowTracer::latency_quantile_locked(double q) const {
  double out = 0.0;
  latency_quantiles_locked(&q, &out, 1);
  return out;
}

void FlowTracer::latency_quantiles_locked(const double* qs, double* out,
                                          std::size_t n) const {
  if (latency_count_ == 0) {
    std::fill(out, out + n, 0.0);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double q = std::min(std::max(qs[i], 0.0), 1.0);
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(latency_count_ - 1));
    std::uint64_t cum = 0;
    out[i] = to_seconds(latency_hist_.back().first);
    for (const auto& [latency, count] : latency_hist_) {
      cum += count;
      if (cum > rank) {
        out[i] = to_seconds(latency);
        break;
      }
    }
  }
}

void FlowTracer::close_flow_locked(FlowRecord& flow, Nanos t, double rate) {
  flow.t_effect = t;
  flow.rate = rate;
  flow.latency = t - flow.t_decision;
  flow.state = FlowState::kClosed;
  ++stats_.closed;
  --open_count_;
  observe_latency(flow.latency);
  if (flow.node >= nodes_.size()) {
    nodes_.resize(flow.node + 1);
  }
  NodeAgg& agg = nodes_[flow.node];
  ++agg.closed;
  agg.last_latency = flow.latency;
  agg.latency_sum += flow.latency;
  // Sampling policy: slow flows always survive (they are the paper's
  // tail), the rest keep a deterministic 1-in-N head sample.
  if (options_.slow_latency > 0 && flow.latency >= options_.slow_latency) {
    flow.keep = KeepReason::kSlow;
  } else if (head_keep(flow.epoch, flow.node)) {
    flow.keep = KeepReason::kHead;
  }
  resolve_span_child(flow.span_seq, t);
  finish_flow(flow);
}

void FlowTracer::advance(Nanos t, const std::vector<FlowTick>& ticks) {
  PROCAP_OBS_COUNTER(flows_closed, "cluster.trace.flows_closed");
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t closed = 0;
  for (const FlowTick& tick : ticks) {
    if (tick.node >= slots_.size() ||
        slots_[tick.node].state != FlowState::kOpen) {
      continue;
    }
    FlowRecord& flow = slots_[tick.node];
    if (flow.t_actuate < 0) {
      flow.t_actuate = t;
    }
    if (!tick.effect) {
      continue;
    }
    close_flow_locked(flow, t, tick.rate);
    ++closed;
  }
  if (closed > 0) {
    flows_closed.inc(closed);
  }
}

void FlowTracer::advance(Nanos t, FlowTick (*tick_of)(unsigned node, void* ctx),
                         void* ctx) {
  PROCAP_OBS_COUNTER(flows_closed, "cluster.trace.flows_closed");
  // Unlocked emptiness probe: open_nodes_ is mutated only by the sim
  // thread (epoch_decision / advance / orphan all run serially there),
  // and advance IS that thread, so this cannot race a writer.  It makes
  // the ticks between a decision's closing wave and the next decision —
  // most ticks, in steady state — free.
  if (open_nodes_.empty()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t closed = 0;
  // One pass, one lock: walk the candidate list, drop entries whose
  // flow already finished, actuate/close the rest from the callback's
  // tick outcome.  A flow closed in this pass falls out of the list
  // immediately (the compaction write happens after processing).
  std::size_t write = 0;
  for (const unsigned node : open_nodes_) {
    if (node >= slots_.size() || slots_[node].state != FlowState::kOpen) {
      continue;
    }
    const FlowTick tick = tick_of(node, ctx);
    FlowRecord& flow = slots_[node];
    if (tick.skip) {
      open_nodes_[write++] = node;
      continue;
    }
    if (flow.t_actuate < 0) {
      flow.t_actuate = t;
    }
    if (!tick.effect) {
      open_nodes_[write++] = node;
      continue;
    }
    close_flow_locked(flow, t, tick.rate);
    ++closed;
  }
  open_nodes_.resize(write);
  if (closed > 0) {
    flows_closed.inc(closed);
  }
}

void FlowTracer::actuate(unsigned node, Nanos t) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (node >= slots_.size() || slots_[node].state != FlowState::kOpen) {
    return;
  }
  if (slots_[node].t_actuate < 0) {
    slots_[node].t_actuate = t;
  }
}

void FlowTracer::effect(unsigned node, Nanos t, double rate) {
  PROCAP_OBS_COUNTER(flows_closed, "cluster.trace.flows_closed");
  const std::lock_guard<std::mutex> lock(mutex_);
  if (node >= slots_.size() || slots_[node].state != FlowState::kOpen) {
    return;
  }
  close_flow_locked(slots_[node], t, rate);
  flows_closed.inc();
}

void FlowTracer::orphan(unsigned node, Nanos t, const char* reason) {
  PROCAP_OBS_COUNTER(flows_orphaned, "cluster.trace.flows_orphaned");
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t before = stats_.orphaned;
  orphan_locked(node, t, reason);
  if (stats_.orphaned != before) {
    flows_orphaned.inc();
  }
}

void FlowTracer::set_meta(const std::string& key, const std::string& value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  meta_[key] = value;
}

FlowTracerStats FlowTracer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  FlowTracerStats out = stats_;
  out.open = open_count_;
  return out;
}

std::vector<NodeFlowSummary> FlowTracer::node_summary() const {
  std::vector<NodeFlowSummary> out;
  node_summary_into(out);
  return out;
}

void FlowTracer::node_summary_into(std::vector<NodeFlowSummary>& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out.clear();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeAgg& agg = nodes_[i];
    if (agg.closed == 0 && agg.orphaned == 0) {
      continue;
    }
    NodeFlowSummary row;
    row.node = static_cast<unsigned>(i);
    row.closed = agg.closed;
    row.orphaned = agg.orphaned;
    row.last_latency_ms =
        agg.last_latency < 0 ? -1.0 : ns_to_ms(agg.last_latency);
    row.mean_latency_ms =
        agg.closed == 0
            ? 0.0
            : ns_to_ms(agg.latency_sum) / static_cast<double>(agg.closed);
    out.push_back(row);
  }
}

std::vector<FlowRecord> FlowTracer::kept_flows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t FlowTracer::kept_hash() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return kept_hash_;
}

double FlowTracer::latency_quantile(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return latency_quantile_locked(q);
}

void FlowTracer::latency_quantiles(const double* qs, double* out,
                                   std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  latency_quantiles_locked(qs, out, n);
}

void FlowTracer::last_latency_ms_into(std::vector<double>& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out.clear();
  out.reserve(nodes_.size());
  for (const NodeAgg& agg : nodes_) {
    out.push_back(agg.last_latency < 0 ? -1.0 : ns_to_ms(agg.last_latency));
  }
}

void FlowTracer::rollup(FlowTracerStats& stats, const double* qs,
                        double* quantiles, std::size_t n,
                        std::vector<double>& last_ms) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  stats = stats_;
  stats.open = open_count_;
  if (stats.closed > 0) {
    latency_quantiles_locked(qs, quantiles, n);
  }
  last_ms.clear();
  last_ms.reserve(nodes_.size());
  for (const NodeAgg& agg : nodes_) {
    last_ms.push_back(agg.last_latency < 0 ? -1.0
                                           : ns_to_ms(agg.last_latency));
  }
}

void FlowTracer::write_traces_json(std::ostream& os,
                                   const TraceQuery& query) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"meta\":{";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    os << (first ? "" : ",") << "\"" << json::escape(key) << "\":\""
       << json::escape(value) << "\"";
    first = false;
  }
  os << "},\"options\":{\"sample_period\":" << options_.sample_period
     << ",\"slow_ms\":" << num(ns_to_ms(options_.slow_latency))
     << ",\"capacity\":" << options_.capacity
     << ",\"min_change_w\":" << num(options_.min_change_w) << "}";
  char hash_buf[32];
  std::snprintf(hash_buf, sizeof hash_buf, "0x%016llx",
                static_cast<unsigned long long>(kept_hash_));
  os << ",\"stats\":{\"opened\":" << stats_.opened
     << ",\"closed\":" << stats_.closed << ",\"orphaned\":" << stats_.orphaned
     << ",\"open\":" << open_count_ << ",\"kept\":" << stats_.kept
     << ",\"dropped\":" << stats_.dropped << ",\"evicted\":" << stats_.evicted
     << ",\"epochs\":" << stats_.epochs
     << ",\"epochs_closed\":" << stats_.epochs_closed
     << ",\"latency_ms\":{\"count\":" << latency_count_
     << ",\"p50\":" << num(latency_quantile_locked(0.5) * 1e3)
     << ",\"p90\":" << num(latency_quantile_locked(0.9) * 1e3)
     << ",\"p99\":" << num(latency_quantile_locked(0.99) * 1e3)
     << "},\"epoch_span_ms\":{\"count\":" << epoch_span_.count()
     << ",\"p50\":" << num(epoch_span_.quantile(0.5) * 1e3)
     << ",\"p99\":" << num(epoch_span_.quantile(0.99) * 1e3)
     << "},\"kept_hash\":\"" << hash_buf << "\"}";
  os << ",\"node_summary\":[";
  first = true;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeAgg& agg = nodes_[i];
    if (agg.closed == 0 && agg.orphaned == 0) {
      continue;
    }
    if (query.node >= 0 && static_cast<std::int64_t>(i) != query.node) {
      continue;
    }
    os << (first ? "" : ",") << "{\"node\":" << i << ",\"closed\":"
       << agg.closed << ",\"orphaned\":" << agg.orphaned
       << ",\"last_latency_ms\":"
       << num(agg.last_latency < 0 ? -1.0 : ns_to_ms(agg.last_latency))
       << ",\"mean_latency_ms\":"
       << num(agg.closed == 0
                  ? 0.0
                  : ns_to_ms(agg.latency_sum) / static_cast<double>(agg.closed))
       << "}";
    first = false;
  }
  os << "]";
  if (query.include_flows) {
    os << ",\"flows\":[";
    first = true;
    for (const FlowRecord& flow : ring_) {
      if (query.epoch >= 0 &&
          static_cast<std::int64_t>(flow.epoch) != query.epoch) {
        continue;
      }
      if (query.node >= 0 &&
          static_cast<std::int64_t>(flow.node) != query.node) {
        continue;
      }
      if (query.min_latency_ms > 0.0 &&
          (flow.latency < 0 || ns_to_ms(flow.latency) < query.min_latency_ms)) {
        continue;
      }
      os << (first ? "" : ",") << "{\"id\":" << flow.id
         << ",\"epoch\":" << flow.epoch << ",\"node\":" << flow.node
         << ",\"from_w\":" << num(flow.from_w) << ",\"to_w\":"
         << num(flow.to_w) << ",\"t_decision_s\":"
         << num(to_seconds(flow.t_decision));
      if (flow.t_actuate >= 0) {
        os << ",\"t_actuate_s\":" << num(to_seconds(flow.t_actuate));
      }
      if (flow.t_effect >= 0) {
        os << ",\"t_effect_s\":" << num(to_seconds(flow.t_effect))
           << ",\"rate\":" << num(flow.rate)
           << ",\"latency_ms\":" << num(ns_to_ms(flow.latency));
      }
      os << ",\"state\":\"" << flow_state_name(flow.state) << "\",\"keep\":\""
         << keep_reason_name(flow.keep) << "\"";
      if (flow.orphan_reason != nullptr) {
        os << ",\"orphan_reason\":\"" << json::escape(flow.orphan_reason)
           << "\"";
      }
      os << "}";
      first = false;
    }
    os << "]";
  }
  os << "}\n";
}

void FlowTracer::write_perfetto(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  constexpr int kDecisionsTid = 0;
  os << "{\"traceEvents\":[";
  bool first = true;
  // Lanes: one for the redistribution decisions, one per node with kept
  // flows (sorted, so the export is deterministic).
  std::set<unsigned> lanes;
  struct EpochBounds {
    Nanos t_decision = 0;
    Nanos t_end = 0;
  };
  std::map<std::uint64_t, EpochBounds> epochs;
  for (const FlowRecord& flow : ring_) {
    lanes.insert(flow.node);
    auto [it, inserted] = epochs.try_emplace(
        flow.epoch, EpochBounds{flow.t_decision, flow.t_decision});
    const Nanos end = std::max(flow.t_effect, flow.t_actuate);
    if (end > it->second.t_end) {
      it->second.t_end = end;
    }
  }
  os << (first ? "\n  " : ",\n  ");
  first = false;
  os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
     << kDecisionsTid << ",\"args\":{\"name\":\"cluster.decisions\"}}";
  for (const unsigned node : lanes) {
    os << ",\n  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << node + 1 << ",\"args\":{\"name\":\"node " << node << "\"}}";
  }
  for (const auto& [epoch, bounds] : epochs) {
    chrome_event(os, first, "epoch.decision", "cluster", "X",
                 bounds.t_decision, kDecisionsTid,
                 ",\"dur\":" + us(bounds.t_end - bounds.t_decision) +
                     ",\"args\":{\"epoch\":" + std::to_string(epoch) + "}");
  }
  for (const FlowRecord& flow : ring_) {
    const int tid = static_cast<int>(flow.node) + 1;
    const std::string id = std::to_string(flow.id);
    const Nanos grant_end = std::max(
        {flow.t_decision, flow.t_actuate, flow.t_effect});
    chrome_event(os, first, "grant", "cluster", "X", flow.t_decision, tid,
                 ",\"dur\":" + us(grant_end - flow.t_decision) +
                     ",\"args\":{\"epoch\":" + std::to_string(flow.epoch) +
                     ",\"from_w\":" + num(flow.from_w) +
                     ",\"to_w\":" + num(flow.to_w) + ",\"state\":\"" +
                     flow_state_name(flow.state) + "\"}");
    chrome_event(os, first, "cap-to-effect", "flow", "s", flow.t_decision,
                 kDecisionsTid, ",\"id\":" + id);
    if (flow.t_actuate >= 0) {
      chrome_event(os, first, "cap-to-effect", "flow", "t", flow.t_actuate,
                   tid, ",\"id\":" + id);
    }
    if (flow.state == FlowState::kClosed) {
      chrome_event(os, first, "cap.effect", "flow", "i", flow.t_effect, tid,
                   ",\"s\":\"t\",\"args\":{\"latency_ms\":" +
                       num(ns_to_ms(flow.latency)) +
                       ",\"rate\":" + num(flow.rate) + "}");
      chrome_event(os, first, "cap-to-effect", "flow", "f", flow.t_effect,
                   tid, ",\"bp\":\"e\",\"id\":" + id);
    } else if (flow.state == FlowState::kOrphaned) {
      const Nanos t = std::max(flow.t_decision, flow.t_actuate);
      chrome_event(os, first, "flow.orphaned", "flow", "i", t, tid,
                   ",\"s\":\"t\",\"args\":{\"reason\":\"" +
                       json::escape(flow.orphan_reason) + "\"}");
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  bool first_meta = true;
  for (const auto& [key, value] : meta_) {
    os << (first_meta ? "" : ",");
    first_meta = false;
    os << "\"" << json::escape(key) << "\":\"" << json::escape(value) << "\"";
  }
  os << "}}\n";
}

}  // namespace procap::obs
