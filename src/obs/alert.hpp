// alert.hpp — declarative alert rules over the live time-series.
//
// The reacting half of observability stage two: rules are evaluated
// against the TimeSeriesStore's retained samples and move through the
// Prometheus-style state machine inactive → pending → firing, with a
// `for:`-style hold duration before a pending condition fires and a
// firing→inactive "resolved" transition when the condition clears.
//
// Three rule kinds cover the paper's live-control needs:
//   * threshold — a chosen statistic of the newest sample (value, rate
//     or a histogram quantile) compared against a bound;
//   * rate — shorthand for threshold on the per-second rate;
//   * absence — the metric stopped moving: no increase over a window
//     (dead reporter, lost telemetry link).
//
// A rule's `metric` names a registry instrument; every label set of that
// instrument gets its own alert instance (one per app, etc.).  Rules
// flagged `degrades_control` signal that closed-loop controllers should
// fall back to open-loop while firing — NodeResourceManager and
// PowerPolicyDaemon subscribe to those transitions over the msgbus
// (msgbus::alert_topic) and feed their PR-1 degraded-mode logic.
//
// AlertEngine is mutex-protected: the simulation thread evaluates while
// the HTTP thread serializes /alerts.json.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeseries.hpp"
#include "util/units.hpp"

namespace procap::obs {

/// Which retained statistic a threshold rule reads.
enum class RuleStat { kValue, kRate, kP50, kP95, kP99 };

/// One declarative rule.
struct AlertRule {
  enum class Kind { kThreshold, kRate, kAbsence };
  enum class Op { kAbove, kBelow };

  std::string name;    ///< alert identity, e.g. "telemetry_health"
  std::string metric;  ///< instrument name; every label set matches
  Kind kind = Kind::kThreshold;
  Op op = Op::kAbove;
  RuleStat stat = RuleStat::kValue;  ///< threshold rules (kRate forces rate)
  double threshold = 0.0;
  /// `for:` hold — the condition must hold this long before firing.
  Nanos hold = 0;
  /// Absence rules: fire when the metric did not increase over this
  /// window (needs evidence ≥ one retained point older than the window).
  Nanos absence_window = 5 * kNanosPerSecond;
  std::string severity = "warning";
  std::string description;
  /// Firing means closed-loop controllers should fall back open-loop.
  bool degrades_control = false;
};

enum class AlertState { kInactive, kPending, kFiring };

[[nodiscard]] const char* to_string(AlertState state);

/// One rule × one label set, with its current state.
struct Alert {
  std::string rule;
  std::string labels;
  std::string severity;
  std::string description;
  bool degrades_control = false;
  AlertState state = AlertState::kInactive;
  Nanos since = 0;     ///< when the current state was entered
  double value = 0.0;  ///< statistic at the last evaluation
};

/// One recorded state change.
struct AlertTransition {
  Nanos t = 0;
  std::string rule;
  std::string labels;
  std::string severity;
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  double value = 0.0;
  bool degrades_control = false;

  [[nodiscard]] bool fired() const { return to == AlertState::kFiring; }
  [[nodiscard]] bool resolved() const {
    return from == AlertState::kFiring && to == AlertState::kInactive;
  }

  /// Payload published on the msgbus (topic msgbus::alert_topic(rule)).
  [[nodiscard]] std::string to_json() const;
};

/// Parse a msgbus alert payload back into a transition; nullopt on junk
/// (subscribers on a corrupting link must not crash).
[[nodiscard]] std::optional<AlertTransition> parse_alert_payload(
    std::string_view payload);

/// Tuning for the built-in rule catalog.
struct BuiltinRuleConfig {
  /// progress_stall: rate below this for stall_hold (app produced no work).
  double stall_rate = 1e-9;
  Nanos stall_hold = 5 * kNanosPerSecond;
  /// cap_effect_slo: p95 cap-to-effect latency above this (seconds).
  Seconds cap_effect_slo = 8.0;
  /// power_overshoot: measured power above the cap by this many watts.
  Watts overshoot_watts = 8.0;
  Nanos overshoot_hold = 3 * kNanosPerSecond;
  /// telemetry_health: health grade at or above degraded for this long.
  Nanos health_hold = 2 * kNanosPerSecond;
  /// telemetry_absent: no accepted samples over this window.
  Nanos absence_window = 5 * kNanosPerSecond;
};

/// The built-in catalog (§V-C and the ISSUE's SLOs): progress_stall,
/// cap_effect_slo, power_overshoot, telemetry_health, telemetry_absent.
[[nodiscard]] std::vector<AlertRule> builtin_rules(
    const BuiltinRuleConfig& config = {});

/// Evaluates rules against a TimeSeriesStore and tracks alert state.
class AlertEngine {
 public:
  /// `store` must outlive the engine.
  explicit AlertEngine(const TimeSeriesStore& store);

  void add_rule(AlertRule rule);
  void add_builtin_rules(const BuiltinRuleConfig& config = {});
  [[nodiscard]] std::size_t rule_count() const;

  /// Sink invoked (from evaluate's thread) on firing and resolved
  /// transitions — the msgbus publishing seam.
  using Sink = std::function<void(const AlertTransition&)>;
  void set_sink(Sink sink);

  /// Evaluate every rule at time `now`; call at the control cadence
  /// (1 Hz).  Series the store has not sampled yet are skipped.
  void evaluate(Nanos now);

  /// Snapshot of every alert instance / only the firing ones.
  [[nodiscard]] std::vector<Alert> alerts() const;
  [[nodiscard]] std::vector<Alert> firing() const;

  /// Every recorded transition, in order.
  [[nodiscard]] std::vector<AlertTransition> transitions() const;

  /// The /alerts.json document.
  void write_json(std::ostream& os) const;

 private:
  struct Instance {
    std::string labels;
    AlertState state = AlertState::kInactive;
    Nanos since = 0;
    double value = 0.0;
  };
  struct Tracked {
    AlertRule rule;
    std::vector<Instance> instances;
  };

  void step(Tracked& tracked, Instance& instance, bool condition, double value,
            Nanos now);

  const TimeSeriesStore* store_;
  mutable std::mutex mutex_;
  std::vector<Tracked> rules_;
  std::vector<AlertTransition> transitions_;
  Sink sink_;
};

}  // namespace procap::obs
