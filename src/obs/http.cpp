#include "obs/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define PROCAP_HTTP_HAS_EPOLL 1
#else
#define PROCAP_HTTP_HAS_EPOLL 0
#endif

#if defined(PROCAP_HAVE_ZLIB)
#include <zlib.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/sketch.hpp"

namespace procap::obs {

namespace detail {

/// Readiness seam: poll()-compatible interface (examine fd/events, fill
/// revents) so serve_loop is backend-agnostic.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual int wait(std::vector<pollfd>& fds, int timeout_ms) = 0;
  /// The server closed `fd`; drop any backend bookkeeping for it.
  virtual void forget(int fd) { (void)fd; }
};

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

class PollPoller final : public detail::Poller {
 public:
  int wait(std::vector<pollfd>& fds, int timeout_ms) override {
    return ::poll(fds.data(), fds.size(), timeout_ms);
  }
};

#if PROCAP_HTTP_HAS_EPOLL

/// epoll(7) backend: the kernel holds the interest set, so each wait is
/// O(ready events) plus O(interest changes) — not the O(connections)
/// scan poll() pays — which is what lifts the >1k-connection ceiling.
/// forget() keeps the user-space mirror honest across fd-number reuse.
class EpollPoller final : public detail::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
  }
  [[nodiscard]] bool valid() const { return epfd_ >= 0; }

  int wait(std::vector<pollfd>& fds, int timeout_ms) override {
    index_.clear();
    for (std::size_t i = 0; i < fds.size(); ++i) {
      fds[i].revents = 0;
      index_[fds[i].fd] = i;
      const std::uint32_t want = to_epoll(fds[i].events);
      const auto it = interest_.find(fds[i].fd);
      if (it == interest_.end()) {
        epoll_event ev{};
        ev.events = want;
        ev.data.fd = fds[i].fd;
        if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fds[i].fd, &ev) == 0) {
          interest_[fds[i].fd] = want;
        } else {
          fds[i].revents = POLLNVAL;  // surfaced like a poll() failure
        }
      } else if (it->second != want) {
        epoll_event ev{};
        ev.events = want;
        ev.data.fd = fds[i].fd;
        if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fds[i].fd, &ev) == 0) {
          it->second = want;
        }
      }
    }
    events_.resize(std::max<std::size_t>(fds.size(), 16));
    const int n = ::epoll_wait(epfd_, events_.data(),
                               static_cast<int>(events_.size()), timeout_ms);
    for (int k = 0; k < n; ++k) {
      const auto it = index_.find(events_[k].data.fd);
      if (it != index_.end()) {
        fds[it->second].revents |= from_epoll(events_[k].events);
      }
    }
    return n;
  }

  void forget(int fd) override {
    if (interest_.erase(fd) > 0) {
      // Usually redundant (close() removes the fd from the set), but a
      // dup()ed descriptor would linger without the explicit DEL.
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
    }
  }

 private:
  static std::uint32_t to_epoll(short events) {
    std::uint32_t out = 0;
    if ((events & POLLIN) != 0) {
      out |= EPOLLIN;
    }
    if ((events & POLLOUT) != 0) {
      out |= EPOLLOUT;
    }
    return out;
  }
  static short from_epoll(std::uint32_t events) {
    short out = 0;
    if ((events & EPOLLIN) != 0) {
      out |= POLLIN;
    }
    if ((events & EPOLLOUT) != 0) {
      out |= POLLOUT;
    }
    if ((events & EPOLLERR) != 0) {
      out |= POLLERR;
    }
    if ((events & EPOLLHUP) != 0) {
      out |= POLLHUP;
    }
    return out;
  }

  int epfd_ = -1;
  std::unordered_map<int, std::uint32_t> interest_;  ///< fd → wanted events
  std::unordered_map<int, std::size_t> index_;       ///< fd → fds[] slot
  std::vector<epoll_event> events_;
};

#endif  // PROCAP_HTTP_HAS_EPOLL

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

/// Write the whole buffer on a blocking fd, tolerating short writes;
/// false on error.  (Clients only — the server writes non-blocking.)
bool write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    // MSG_NOSIGNAL: a peer that already closed must surface as EPIPE,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// One parsed request head.
struct RequestHead {
  bool malformed = false;
  std::string method;
  std::string target;
  std::string version;
  bool connection_close = false;
  bool connection_keepalive = false;  ///< explicit keep-alive (HTTP/1.0)
  bool accept_gzip = false;           ///< Accept-Encoding admits gzip
  std::size_t content_length = 0;
};

/// Does an Accept-Encoding value admit gzip?  Token scan with just
/// enough q-value handling to honor an explicit gzip;q=0 opt-out.
bool accepts_gzip(std::string_view value) {
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = value.size();
    }
    std::string_view item = trim(value.substr(pos, comma - pos));
    pos = comma + 1;
    std::string_view params;
    if (const std::size_t semi = item.find(';');
        semi != std::string_view::npos) {
      params = item.substr(semi + 1);
      item = trim(item.substr(0, semi));
    }
    if (!iequals(item, "gzip") && !iequals(item, "x-gzip")) {
      continue;
    }
    if (const std::size_t eq = params.find('=');
        eq != std::string_view::npos) {
      const std::string qv{trim(params.substr(eq + 1))};
      if (std::strtod(qv.c_str(), nullptr) == 0.0) {
        return false;
      }
    }
    return true;
  }
  return false;
}

/// Parse `head` (request line + headers, excluding the final CRLFCRLF).
RequestHead parse_head(std::string_view head) {
  RequestHead out;
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::size_t m_end = line.find(' ');
  const std::size_t t_end =
      m_end == std::string_view::npos ? std::string_view::npos
                                      : line.find(' ', m_end + 1);
  if (t_end == std::string_view::npos || t_end + 1 >= line.size()) {
    out.malformed = true;
    return out;
  }
  out.method = std::string(line.substr(0, m_end));
  out.target = std::string(line.substr(m_end + 1, t_end - m_end - 1));
  out.version = std::string(trim(line.substr(t_end + 1)));
  if (out.method.empty() || out.target.empty() ||
      out.version.rfind("HTTP/", 0) != 0) {
    out.malformed = true;
    return out;
  }
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) {
      end = head.size();
    }
    const std::string_view header = head.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    const std::string_view key = trim(header.substr(0, colon));
    const std::string_view value = trim(header.substr(colon + 1));
    if (iequals(key, "connection")) {
      if (iequals(value, "close")) {
        out.connection_close = true;
      } else if (iequals(value, "keep-alive")) {
        out.connection_keepalive = true;
      }
    } else if (iequals(key, "content-length")) {
      out.content_length = static_cast<std::size_t>(
          std::strtoull(std::string(value).c_str(), nullptr, 10));
    } else if (iequals(key, "accept-encoding")) {
      out.accept_gzip = accepts_gzip(value);
    }
  }
  return out;
}

/// Serialize one response with an exact Content-Length — on every
/// status, including the error ones.  `gzip` means the body is already
/// compressed and the head must say so.
std::string serialize(const HttpResponse& response, bool close_after,
                      bool gzip = false) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     reason_phrase(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) + "\r\n";
  if (gzip) {
    head += "Content-Encoding: gzip\r\nVary: Accept-Encoding\r\n";
  }
  if (response.status == 405) {
    head += "Allow: GET\r\n";
  }
  head += close_after ? "Connection: close\r\n\r\n"
                      : "Connection: keep-alive\r\n\r\n";
  return head + response.body;
}

}  // namespace

/// Per-connection state machine: bytes in, responses out.
struct HttpServer::Connection {
  int fd = -1;
  std::string in;        ///< unread request bytes
  std::string out;       ///< serialized responses pending write
  std::size_t out_off = 0;
  bool close_after_write = false;
  bool dead = false;
  Clock::time_point last_activity{};
};

HttpServer::HttpServer() = default;

HttpServer::HttpServer(HttpServerOptions options) : options_(options) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

bool HttpServer::start(const std::string& host, std::uint16_t port) {
  if (listen_fd_ >= 0) {
    return false;  // already running
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    ::close(fd);
    return false;
  }
  if (::pipe(wake_fds_) < 0) {
    ::close(fd);
    return false;
  }

  // Resolve the readiness backend before the serve thread exists, so
  // backend_name() is stable for the server's lifetime.  Compile-time
  // fallback: non-Linux builds only have poll; the environment override
  // wins over the configured preference either way.
  bool want_epoll = options_.backend != HttpBackend::kPoll;
  if (const char* env = std::getenv("PROCAP_HTTP_BACKEND");
      env != nullptr) {
    if (iequals(env, "poll")) {
      want_epoll = false;
    } else if (iequals(env, "epoll")) {
      want_epoll = true;
    }
  }
  poller_.reset();
  backend_name_ = "poll";
#if PROCAP_HTTP_HAS_EPOLL
  if (want_epoll) {
    auto epoll_poller = std::make_unique<EpollPoller>();
    if (epoll_poller->valid()) {
      poller_ = std::move(epoll_poller);
      backend_name_ = "epoll";
    }
  }
#else
  (void)want_epoll;
#endif
  if (poller_ == nullptr) {
    poller_ = std::make_unique<PollPoller>();
  }

  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) {
    return;
  }
  const char byte = 'q';
  (void)!::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
  poller_.reset();
  open_.store(0, std::memory_order_relaxed);
}

std::uint64_t HttpServer::requests_served() const {
  return served_.load(std::memory_order_relaxed);
}

std::uint64_t HttpServer::connections_accepted() const {
  return accepted_.load(std::memory_order_relaxed);
}

std::uint64_t HttpServer::connections_rejected() const {
  return rejected_.load(std::memory_order_relaxed);
}

std::uint64_t HttpServer::idle_evictions() const {
  return idle_evicted_.load(std::memory_order_relaxed);
}

std::size_t HttpServer::open_connections() const {
  return open_.load(std::memory_order_relaxed);
}

void HttpServer::serve_loop() {
  std::vector<Connection> conns;
  std::vector<pollfd> fds;
  for (;;) {
    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t polled = conns.size();  // accepts below grow conns
    for (const Connection& conn : conns) {
      short events = POLLIN;
      if (conn.out_off < conn.out.size()) {
        events |= POLLOUT;
      }
      fds.push_back({conn.fd, events, 0});
    }

    // Poll until the nearest idle deadline (or forever without
    // connections; the self-pipe still wakes us).
    int timeout = -1;
    if (!conns.empty()) {
      const auto now = Clock::now();
      for (const Connection& conn : conns) {
        const auto deadline =
            conn.last_activity +
            std::chrono::milliseconds(options_.idle_timeout_ms);
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
        const int left_ms = static_cast<int>(std::max<long long>(0, left));
        timeout = timeout < 0 ? left_ms : std::min(timeout, left_ms);
      }
      // +1 so we wake just past the deadline, not a hair before it.
      timeout += 1;
    }

    const int ready = poller_->wait(fds, timeout);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      drain_on_stop(conns);
      return;
    }

    // New arrivals: admit into the table, or answer 503 when full.
    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) {
          break;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (!set_nonblocking(client)) {
          ::close(client);
          continue;
        }
        const int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (conns.size() >= options_.max_connections) {
          // Saturated: a best-effort direct 503 (it is tiny and almost
          // always fits the fresh socket buffer), then close.  The
          // table recovers as existing connections drain.
          PROCAP_OBS_COUNTER(rejects, "obs.http.rejected");
          rejects.inc();
          rejected_.fetch_add(1, std::memory_order_relaxed);
          served_.fetch_add(1, std::memory_order_relaxed);
          const std::string reply = serialize(
              {503, "text/plain; charset=utf-8", "connection table full\n"},
              true);
          (void)!::send(client, reply.data(), reply.size(), MSG_NOSIGNAL);
          ::close(client);
          continue;
        }
        Connection conn;
        conn.fd = client;
        conn.last_activity = Clock::now();
        conns.push_back(std::move(conn));
        open_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Connection events, in the same order the pollfds were built
    // (freshly accepted connections were not polled this round).
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = conns[i];
      const short revents = fds[i + 2].revents;
      if (conn.dead || revents == 0) {
        continue;
      }
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        conn.dead = true;
        continue;
      }
      if ((revents & (POLLIN | POLLHUP)) != 0 && !on_readable(conn)) {
        conn.dead = true;
        continue;
      }
      if (conn.out_off < conn.out.size() && !on_writable(conn)) {
        conn.dead = true;
        continue;
      }
    }

    // Idle eviction: no buffered request, nothing left to write, and
    // quiet past the timeout.
    const auto now = Clock::now();
    for (Connection& conn : conns) {
      if (conn.dead || conn.out_off < conn.out.size()) {
        continue;
      }
      if (now - conn.last_activity >
          std::chrono::milliseconds(options_.idle_timeout_ms)) {
        PROCAP_OBS_COUNTER(evictions, "obs.http.idle_evictions");
        evictions.inc();
        idle_evicted_.fetch_add(1, std::memory_order_relaxed);
        conn.dead = true;
      }
    }

    for (Connection& conn : conns) {
      if (conn.dead && conn.fd >= 0) {
        ::close(conn.fd);
        poller_->forget(conn.fd);
        conn.fd = -1;
        open_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const Connection& c) { return c.dead; }),
                conns.end());
  }
}

/// Read whatever is available; false closes the connection.
bool HttpServer::on_readable(Connection& conn) {
  for (;;) {
    char buf[4096];
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      conn.last_activity = Clock::now();
      continue;
    }
    if (n == 0) {
      // Peer closed its half.  Anything already queued still drains
      // (close_after_write); with nothing queued the connection is done.
      return conn.out_off < conn.out.size() &&
             (conn.close_after_write = true);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    return false;
  }
  process_buffer(conn);
  // Oversized head with no end in sight: answer 431 rather than
  // buffering without bound or silently closing.
  if (!conn.close_after_write && conn.in.size() > options_.max_request_bytes) {
    enqueue_response(conn,
                     {431, "text/plain; charset=utf-8",
                      "request head too large\n"},
                     true, false);
    conn.in.clear();
  }
  if (conn.out_off < conn.out.size()) {
    return on_writable(conn);  // optimistic write saves a poll round
  }
  return !(conn.close_after_write && conn.out_off >= conn.out.size());
}

/// Consume every complete request in the buffer (pipelining-safe).
void HttpServer::process_buffer(Connection& conn) {
  while (!conn.close_after_write) {
    const std::size_t head_end = conn.in.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      return;
    }
    // A head over the limit is rejected even when it arrived complete;
    // otherwise one large write would sail past the configured bound.
    if (head_end > options_.max_request_bytes) {
      enqueue_response(conn,
                       {431, "text/plain; charset=utf-8",
                        "request head too large\n"},
                       true, false);
      conn.in.clear();
      return;
    }
    const RequestHead head =
        parse_head(std::string_view(conn.in).substr(0, head_end));
    // A request body (GET never carries one, but a misbehaving client
    // might) is consumed and ignored — bounded by the same head limit.
    const std::size_t body_len =
        std::min(head.content_length, options_.max_request_bytes);
    const std::size_t consumed = head_end + 4 + body_len;
    if (conn.in.size() < consumed) {
      return;  // wait for the rest of the body
    }
    conn.in.erase(0, consumed);

    const auto t0 = Clock::now();
    HttpResponse response;
    bool close_after = false;
    if (head.malformed) {
      response = {400, "text/plain; charset=utf-8", "bad request\n"};
      close_after = true;
    } else {
      // HTTP/1.1 defaults to keep-alive; HTTP/1.0 must ask for it.
      close_after = head.connection_close ||
                    (head.version == "HTTP/1.0" && !head.connection_keepalive);
      if (head.method != "GET") {
        response = {405, "text/plain; charset=utf-8", "GET only\n"};
      } else {
        std::string target = head.target;
        std::string query;
        if (const std::size_t q = target.find('?');
            q != std::string::npos) {
          query = target.substr(q + 1);
          target.resize(q);
        }
        response = {404, "text/plain; charset=utf-8", "not found\n"};
        for (const auto& [path, handler] : handlers_) {
          if (path == target) {
            try {
              response = handler(query);
            } catch (const std::exception&) {
              response = {500, "text/plain; charset=utf-8",
                          "handler error\n"};
            }
            break;
          }
        }
      }
    }
    enqueue_response(conn, std::move(response), close_after,
                     head.accept_gzip);
    PROCAP_OBS_SKETCH(latency, "obs.http.handle_seconds");
    latency.observe(
        std::chrono::duration<double>(Clock::now() - t0).count());
    if (close_after) {
      conn.in.clear();  // later pipelined requests die with the connection
    }
  }
}

void HttpServer::enqueue_response(Connection& conn, HttpResponse&& response,
                                  bool close_after, bool accept_gzip) {
  PROCAP_OBS_COUNTER(requests, "obs.http.requests");
  requests.inc();
  // gzip the heavy JSON bodies when the client asked for it: the cluster
  // documents compress ~10x, and the scrape plane is bandwidth-bound
  // before it is CPU-bound.  Tiny bodies and non-JSON stay identity.
  bool gzip = false;
  if (accept_gzip && response.status == 200 && options_.gzip_min_bytes > 0 &&
      response.body.size() >= options_.gzip_min_bytes &&
      response.content_type.rfind("application/json", 0) == 0) {
    if (auto compressed = gzip_compress(response.body)) {
      PROCAP_OBS_COUNTER(gzipped, "obs.http.gzip_responses");
      gzipped.inc();
      response.body = std::move(*compressed);
      gzip = true;
    }
  }
  conn.out += serialize(response, close_after, gzip);
  conn.close_after_write = conn.close_after_write || close_after;
  served_.fetch_add(1, std::memory_order_relaxed);
}

/// Drain as much of the out buffer as the socket accepts; false closes.
bool HttpServer::on_writable(Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      conn.last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return true;  // poll will report POLLOUT when there is room
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  return !conn.close_after_write;
}

/// Bounded final flush: give in-flight responses shutdown_drain_ms to
/// reach the wire, then close everything.
void HttpServer::drain_on_stop(std::vector<Connection>& conns) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.shutdown_drain_ms);
  for (;;) {
    std::vector<pollfd> fds;
    for (Connection& conn : conns) {
      if (!conn.dead && conn.out_off < conn.out.size()) {
        fds.push_back({conn.fd, POLLOUT, 0});
      }
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (fds.empty() || left <= 0) {
      break;
    }
    if (::poll(fds.data(), fds.size(), static_cast<int>(left)) <= 0) {
      break;
    }
    std::size_t i = 0;
    for (Connection& conn : conns) {
      if (conn.dead || conn.out_off >= conn.out.size()) {
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0 && !on_writable(conn)) {
        conn.dead = true;
      }
      ++i;
    }
  }
  for (Connection& conn : conns) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
    }
  }
  conns.clear();
}

namespace {

/// Read one full HTTP response off `fd`, reusing `buffer` for bytes
/// already read past the previous response.  Returns nullopt on
/// timeout/error/premature close.
std::optional<HttpResult> read_response(int fd, std::string& buffer,
                                        int timeout_ms, bool* server_closed) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  *server_closed = false;
  bool eof = false;

  const auto fill = [&]() -> bool {  // one read, respecting the deadline
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - Clock::now())
                          .count();
    if (left <= 0) {
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) {
      return false;
    }
    char buf[8192];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      return errno == EINTR;
    }
    if (n == 0) {
      eof = true;
      *server_closed = true;
      return true;
    }
    buffer.append(buf, static_cast<std::size_t>(n));
    return true;
  };

  std::size_t head_end;
  while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    if (eof || !fill()) {
      return std::nullopt;
    }
  }

  const std::string_view head = std::string_view(buffer).substr(0, head_end);
  if (head.rfind("HTTP/1.", 0) != 0) {
    return std::nullopt;
  }
  const std::size_t sp = head.find(' ');
  if (sp == std::string_view::npos || head.size() < sp + 4) {
    return std::nullopt;
  }
  HttpResult result;
  result.status = std::atoi(std::string(head.substr(sp + 1, 3)).c_str());

  // Content-Length is how keep-alive knows where the body ends; a
  // response without one is read to EOF (the server always sends it,
  // but the one-shot client tolerates others).
  std::size_t content_length = std::string::npos;
  bool close_connection = false;
  std::size_t pos = head.find("\r\n");
  while (pos != std::string_view::npos && pos < head.size()) {
    std::size_t end = head.find("\r\n", pos + 2);
    if (end == std::string_view::npos) {
      end = head.size();
    }
    const std::string_view header = head.substr(pos + 2, end - pos - 2);
    pos = end;
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    const std::string_view key = trim(header.substr(0, colon));
    const std::string_view value = trim(header.substr(colon + 1));
    if (iequals(key, "content-length")) {
      content_length = static_cast<std::size_t>(
          std::strtoull(std::string(value).c_str(), nullptr, 10));
    } else if (iequals(key, "connection") && iequals(value, "close")) {
      close_connection = true;
    } else if (iequals(key, "content-encoding")) {
      result.content_encoding = std::string(value);
    }
  }

  const std::size_t body_start = head_end + 4;
  if (content_length == std::string::npos) {
    while (!eof) {
      if (!fill()) {
        return std::nullopt;
      }
    }
    result.body = buffer.substr(body_start);
    buffer.clear();
    *server_closed = true;
    return result;
  }
  while (buffer.size() < body_start + content_length) {
    if (eof || !fill()) {
      return std::nullopt;
    }
  }
  result.body = buffer.substr(body_start, content_length);
  buffer.erase(0, body_start + content_length);
  if (close_connection) {
    *server_closed = true;
  }
  return result;
}

int connect_to(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

std::optional<HttpResult> http_get(const std::string& host, std::uint16_t port,
                                   const std::string& path, int timeout_ms,
                                   const std::string& extra_headers) {
  const int fd = connect_to(host, port);
  if (fd < 0) {
    return std::nullopt;
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n" + extra_headers +
                              "\r\n";
  if (!write_all(fd, request.data(), request.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string buffer;
  bool server_closed = false;
  const auto result = read_response(fd, buffer, timeout_ms, &server_closed);
  ::close(fd);
  return result;
}

HttpClient::HttpClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { close(); }

bool HttpClient::connect(int /*timeout_ms*/) {
  close();
  fd_ = connect_to(host_, port_);
  return fd_ >= 0;
}

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::optional<HttpResult> HttpClient::get(const std::string& path,
                                          int timeout_ms) {
  if (fd_ < 0 && !connect(timeout_ms)) {
    return std::nullopt;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host_ + "\r\n\r\n";
  if (!write_all(fd_, request.data(), request.size())) {
    close();
    return std::nullopt;
  }
  bool server_closed = false;
  auto result = read_response(fd_, buffer_, timeout_ms, &server_closed);
  if (!result || server_closed) {
    close();
  }
  return result;
}

bool gzip_supported() {
#if defined(PROCAP_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

std::optional<std::string> gzip_compress(std::string_view raw) {
#if defined(PROCAP_HAVE_ZLIB)
  z_stream zs{};
  // windowBits 15+16 selects the gzip wrapper around deflate.
  if (deflateInit2(&zs, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    return std::nullopt;
  }
  std::string out;
  out.resize(deflateBound(&zs, static_cast<uLong>(raw.size())));
  zs.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(raw.data()));
  zs.avail_in = static_cast<uInt>(raw.size());
  zs.next_out = reinterpret_cast<Bytef*>(out.data());
  zs.avail_out = static_cast<uInt>(out.size());
  const int rc = deflate(&zs, Z_FINISH);
  const std::size_t produced = zs.total_out;
  deflateEnd(&zs);
  if (rc != Z_STREAM_END) {
    return std::nullopt;
  }
  out.resize(produced);
  return out;
#else
  (void)raw;
  return std::nullopt;
#endif
}

std::optional<std::string> gzip_decompress(std::string_view gz) {
#if defined(PROCAP_HAVE_ZLIB)
  z_stream zs{};
  if (inflateInit2(&zs, 15 + 16) != Z_OK) {
    return std::nullopt;
  }
  std::string out;
  out.resize(std::max<std::size_t>(gz.size() * 4, 4096));
  zs.next_in = reinterpret_cast<Bytef*>(const_cast<char*>(gz.data()));
  zs.avail_in = static_cast<uInt>(gz.size());
  for (;;) {
    zs.next_out = reinterpret_cast<Bytef*>(out.data() + zs.total_out);
    zs.avail_out = static_cast<uInt>(out.size() - zs.total_out);
    const int rc = inflate(&zs, Z_NO_FLUSH);
    if (rc == Z_STREAM_END) {
      break;
    }
    if (rc == Z_OK && zs.avail_out == 0) {
      out.resize(out.size() * 2);
      continue;
    }
    // Z_BUF_ERROR with input left means the buffer filled (grow);
    // anything else — including running out of input — is corruption.
    if (rc == Z_BUF_ERROR && zs.avail_out == 0) {
      out.resize(out.size() * 2);
      continue;
    }
    inflateEnd(&zs);
    return std::nullopt;
  }
  out.resize(zs.total_out);
  inflateEnd(&zs);
  return out;
#else
  (void)gz;
  return std::nullopt;
#endif
}

std::map<std::string, std::string> parse_query(const std::string& query) {
  const auto decode = [](std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] == '+') {
        out.push_back(' ');
      } else if (raw[i] == '%' && i + 2 < raw.size() &&
                 std::isxdigit(static_cast<unsigned char>(raw[i + 1])) &&
                 std::isxdigit(static_cast<unsigned char>(raw[i + 2]))) {
        out.push_back(static_cast<char>(
            std::stoi(std::string(raw.substr(i + 1, 2)), nullptr, 16)));
        i += 2;
      } else {
        out.push_back(raw[i]);
      }
    }
    return out;
  };
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) {
      amp = query.size();
    }
    const std::string_view pair =
        std::string_view(query).substr(pos, amp - pos);
    if (!pair.empty()) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[decode(pair)] = "";
      } else {
        out[decode(pair.substr(0, eq))] = decode(pair.substr(eq + 1));
      }
    }
    pos = amp + 1;
  }
  return out;
}

}  // namespace procap::obs
