#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace procap::obs {

namespace {

constexpr int kRequestTimeoutMs = 2000;
constexpr std::size_t kMaxRequestBytes = 16 * 1024;

const char* reason_phrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

/// Write the whole buffer, tolerating short writes; false on error.
bool write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

bool HttpServer::start(const std::string& host, std::uint16_t port) {
  if (listen_fd_ >= 0) {
    return false;  // already running
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return false;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    ::close(fd);
    return false;
  }
  if (::pipe(wake_fds_) < 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (listen_fd_ < 0) {
    return;
  }
  const char byte = 'q';
  (void)!::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
}

std::uint64_t HttpServer::requests_served() const {
  return served_.load(std::memory_order_relaxed);
}

void HttpServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      return;  // stop() wrote the wake byte
    }
    if ((fds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    serve_one(client);
    ::close(client);
  }
}

void HttpServer::serve_one(int client_fd) {
  // Read until the end of the request head; GET requests carry no body.
  std::string request;
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{client_fd, POLLIN, 0};
    if (::poll(&pfd, 1, kRequestTimeoutMs) <= 0) {
      return;
    }
    char buf[2048];
    const ssize_t n = ::read(client_fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  // Request line: METHOD SP TARGET SP VERSION.
  const std::size_t m_end = request.find(' ');
  const std::size_t t_end =
      m_end == std::string::npos ? std::string::npos
                                 : request.find(' ', m_end + 1);
  if (t_end == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    const std::string method = request.substr(0, m_end);
    std::string target = request.substr(m_end + 1, t_end - m_end - 1);
    std::string query;
    if (const std::size_t q = target.find('?'); q != std::string::npos) {
      query = target.substr(q + 1);
      target.resize(q);
    }
    if (method != "GET") {
      response = {405, "text/plain; charset=utf-8", "GET only\n"};
    } else {
      response = {404, "text/plain; charset=utf-8", "not found\n"};
      for (const auto& [path, handler] : handlers_) {
        if (path == target) {
          response = handler(query);
          break;
        }
      }
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     reason_phrase(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (write_all(client_fd, head.data(), head.size())) {
    (void)write_all(client_fd, response.body.data(), response.body.size());
  }
  served_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<HttpResult> http_get(const std::string& host, std::uint16_t port,
                                   const std::string& path, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return std::nullopt;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return std::nullopt;
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, request.data(), request.size())) {
    ::close(fd);
    return std::nullopt;
  }
  std::string raw;
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) {
      break;
    }
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 NNN ...\r\n" headers "\r\n\r\n" body.
  if (raw.rfind("HTTP/1.", 0) != 0) {
    return std::nullopt;
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || raw.size() < sp + 4) {
    return std::nullopt;
  }
  HttpResult result;
  result.status = std::atoi(raw.c_str() + sp + 1);
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return std::nullopt;
  }
  result.body = raw.substr(head_end + 4);
  return result;
}

}  // namespace procap::obs
