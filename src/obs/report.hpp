// report.hpp — offline summary of a recorded Chrome trace.
//
// The reading side of the observability pipeline: load the trace-event
// JSON a `power_policy --trace-out` run emitted, and reduce it to the
// numbers the paper's methodology needs — tick-latency distribution,
// actuation counts, the cap-to-effect latency histogram (from the flow
// events), degraded-mode occupancy, per-app window/health totals, and
// the tracer's own measured overhead.  tools/obs_report prints it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap::obs {

/// Everything obs_report prints about one trace.
struct TraceReport {
  std::uint64_t events = 0;

  // Control loop.
  std::uint64_t daemon_ticks = 0;
  std::vector<double> tick_wall_ns;  ///< per-tick daemon wall cost

  // Actuation.
  std::uint64_t cap_changes = 0;
  std::uint64_t actuations = 0;
  std::uint64_t failed_actuations = 0;

  // Cap-to-effect flows (seconds, one per closed flow).
  std::vector<double> cap_effect_s;

  // Flow arrows that began ("s") but never finished ("f") — the node
  // died or left mid-epoch, so the effect never landed.  Previously
  // these were silently ignored; now they surface as an orphaned count.
  std::uint64_t orphaned_flows = 0;

  // NRM mode occupancy (seconds in each mode, integrated between mode
  // events; empty when the trace has no NRM).
  std::map<std::string, double> mode_occupancy_s;
  std::uint64_t mode_changes = 0;

  // Progress windows per application.
  std::map<std::string, std::uint64_t> windows_by_app;

  // Timeline extent.
  Seconds start_s = 0.0;
  Seconds end_s = 0.0;

  // Run metadata (otherData), including exporter-stamped self-overhead.
  std::map<std::string, std::string> meta;

  /// Tracer self-overhead estimate: events × measured ns/event, from the
  /// "self_ns_per_event" meta key; 0 when the exporter did not stamp it.
  [[nodiscard]] double self_overhead_us() const;
};

/// Parse and reduce a Chrome trace-event file (as written by
/// TraceCollector::write_chrome).  Throws std::runtime_error on
/// unreadable files, std::invalid_argument on malformed JSON.
[[nodiscard]] TraceReport summarize_chrome_trace(const std::string& path);

/// Print a human-readable summary with text histograms.
void print_report(const TraceReport& report, std::ostream& os);

/// One kept flow from a cap-to-effect dump.
struct FlowRow {
  std::uint64_t id = 0;
  std::uint64_t epoch = 0;
  unsigned node = 0;
  double from_w = 0.0;
  double to_w = 0.0;
  double latency_ms = -1.0;  ///< <0 when the flow never closed
  std::string state;         ///< open | closed | orphaned
  std::string keep;          ///< head | slow | orphan
  std::string orphan_reason;
};

/// Reduced form of one cap-to-effect flow dump — the document
/// cluster_sim --trace-out writes and GET /traces.json serves.
struct FlowDumpReport {
  std::string path;
  std::map<std::string, std::string> meta;
  std::string strategy;  ///< meta "strategy", "?" when absent

  // Tracer lifetime counters (all flows, kept or dropped).
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t open = 0;  ///< still open when the dump was taken
  std::uint64_t kept = 0;
  std::uint64_t dropped = 0;
  std::uint64_t evicted = 0;
  std::uint64_t epochs = 0;
  std::uint64_t epochs_closed = 0;

  // Sketch quantiles over every closed flow (not just kept ones).
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double span_p50_ms = 0.0;
  double span_p99_ms = 0.0;

  std::string kept_hash;
  std::vector<FlowRow> flows;  ///< the kept ring, dump order
};

/// Parse one flow dump.  Throws std::runtime_error on unreadable files,
/// std::invalid_argument on malformed or non-flow-dump JSON.
[[nodiscard]] FlowDumpReport summarize_flow_dump(const std::string& path);

/// Print the --traces analysis: per-strategy latency histogram,
/// slowest-flow table, and orphaned/open-span accounting.
void print_flow_reports(const std::vector<FlowDumpReport>& reports,
                        std::ostream& os);

}  // namespace procap::obs
