// report.hpp — offline summary of a recorded Chrome trace.
//
// The reading side of the observability pipeline: load the trace-event
// JSON a `power_policy --trace-out` run emitted, and reduce it to the
// numbers the paper's methodology needs — tick-latency distribution,
// actuation counts, the cap-to-effect latency histogram (from the flow
// events), degraded-mode occupancy, per-app window/health totals, and
// the tracer's own measured overhead.  tools/obs_report prints it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap::obs {

/// Everything obs_report prints about one trace.
struct TraceReport {
  std::uint64_t events = 0;

  // Control loop.
  std::uint64_t daemon_ticks = 0;
  std::vector<double> tick_wall_ns;  ///< per-tick daemon wall cost

  // Actuation.
  std::uint64_t cap_changes = 0;
  std::uint64_t actuations = 0;
  std::uint64_t failed_actuations = 0;

  // Cap-to-effect flows (seconds, one per closed flow).
  std::vector<double> cap_effect_s;

  // NRM mode occupancy (seconds in each mode, integrated between mode
  // events; empty when the trace has no NRM).
  std::map<std::string, double> mode_occupancy_s;
  std::uint64_t mode_changes = 0;

  // Progress windows per application.
  std::map<std::string, std::uint64_t> windows_by_app;

  // Timeline extent.
  Seconds start_s = 0.0;
  Seconds end_s = 0.0;

  // Run metadata (otherData), including exporter-stamped self-overhead.
  std::map<std::string, std::string> meta;

  /// Tracer self-overhead estimate: events × measured ns/event, from the
  /// "self_ns_per_event" meta key; 0 when the exporter did not stamp it.
  [[nodiscard]] double self_overhead_us() const;
};

/// Parse and reduce a Chrome trace-event file (as written by
/// TraceCollector::write_chrome).  Throws std::runtime_error on
/// unreadable files, std::invalid_argument on malformed JSON.
[[nodiscard]] TraceReport summarize_chrome_trace(const std::string& path);

/// Print a human-readable summary with text histograms.
void print_report(const TraceReport& report, std::ostream& os);

}  // namespace procap::obs
