// json.hpp — minimal JSON parser for the observability artifacts.
//
// procap emits Chrome trace-event JSON and JSONL event dumps; this is the
// matching in-repo reader, so `obs_report` and `analyze` can consume the
// same artifacts the daemon writes, and tests can validate the exporters
// without an external dependency.  It is a strict recursive-descent
// parser over the full JSON grammar (RFC 8259 minus \uXXXX surrogate
// pairs, which our exporters never emit: non-ASCII is escaped as-is to
// \u00xx by the writer).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace procap::obs::json {

/// One parsed JSON value (tree-owning).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered object members.
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Typed member access with defaults (missing/mistyped → default).
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback) const;
};

/// Parse one JSON document; trailing non-whitespace is an error.
/// Throws std::invalid_argument with a byte offset on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// True iff `text` parses as a single JSON document.
[[nodiscard]] bool valid(std::string_view text);

/// Escape a string for embedding in JSON output (quotes not included).
[[nodiscard]] std::string escape(std::string_view raw);

}  // namespace procap::obs::json
