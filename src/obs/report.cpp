#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace procap::obs {

double TraceReport::self_overhead_us() const {
  const auto it = meta.find("self_ns_per_event");
  if (it == meta.end()) {
    return 0.0;
  }
  const double per_event = std::atof(it->second.c_str());
  return per_event * static_cast<double>(events) / 1e3;
}

TraceReport summarize_chrome_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("obs_report: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const json::Value root = json::parse(buffer.str());

  const json::Value* events = root.find("traceEvents");
  if (!events || !events->is_array()) {
    throw std::invalid_argument("obs_report: " + path +
                                ": no traceEvents array");
  }

  TraceReport report;
  double min_ts = 1e300;
  double max_ts = -1e300;
  // Flow-arrow matching: a begin ("s") with no finish ("f") for the
  // same id is an orphaned flow (node death mid-epoch).  "t" steps do
  // not close a flow.
  std::vector<std::string> flow_begun;
  std::vector<std::string> flow_finished;
  // NRM occupancy: integrate time between consecutive mode events; the
  // first event's "from" mode covers the span from trace start.
  struct ModeEdge {
    double ts_us;
    std::string from, to;
  };
  std::vector<ModeEdge> mode_edges;

  for (const json::Value& ev : events->array) {
    if (!ev.is_object()) {
      throw std::invalid_argument("obs_report: non-object trace event");
    }
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M") {
      continue;  // metadata (thread names)
    }
    ++report.events;
    const std::string name = ev.string_or("name", "");
    const double ts_us = ev.number_or("ts", 0.0);
    min_ts = std::min(min_ts, ts_us);
    max_ts = std::max(max_ts, ts_us + ev.number_or("dur", 0.0));
    const json::Value* args = ev.find("args");

    if (ph == "s" || ph == "f") {
      std::string fid;
      if (const json::Value* id = ev.find("id")) {
        fid = id->is_string()
                  ? id->string
                  : std::to_string(static_cast<long long>(id->number));
      }
      (ph == "s" ? flow_begun : flow_finished).push_back(std::move(fid));
    }

    if (name == "daemon.tick") {
      ++report.daemon_ticks;
      if (args) {
        report.tick_wall_ns.push_back(args->number_or("wall_ns", 0.0));
      }
    } else if (name == "cap.change") {
      ++report.cap_changes;
    } else if (name == "rapl.actuate") {
      ++report.actuations;
      if (args && args->find("ok") && !args->find("ok")->boolean) {
        ++report.failed_actuations;
      }
    } else if (name == "cap.effect") {
      if (args) {
        report.cap_effect_s.push_back(args->number_or("latency_ns", 0.0) /
                                      1e9);
      }
    } else if (name == "progress.window") {
      if (args) {
        ++report.windows_by_app[args->string_or("app", "?")];
      }
    } else if (name == "nrm.mode") {
      ++report.mode_changes;
      if (args) {
        mode_edges.push_back(ModeEdge{ts_us, args->string_or("from", "?"),
                                      args->string_or("to", "?")});
      }
    }
  }

  if (report.events > 0) {
    report.start_s = min_ts / 1e6;
    report.end_s = max_ts / 1e6;
  }

  std::sort(flow_begun.begin(), flow_begun.end());
  std::sort(flow_finished.begin(), flow_finished.end());
  std::vector<std::string> unmatched;
  std::set_difference(flow_begun.begin(), flow_begun.end(),
                      flow_finished.begin(), flow_finished.end(),
                      std::back_inserter(unmatched));
  report.orphaned_flows = unmatched.size();

  std::sort(mode_edges.begin(), mode_edges.end(),
            [](const ModeEdge& a, const ModeEdge& b) { return a.ts_us < b.ts_us; });
  double prev_us = min_ts;
  std::string current;
  for (const ModeEdge& edge : mode_edges) {
    if (current.empty()) {
      current = edge.from;
    }
    report.mode_occupancy_s[current] += (edge.ts_us - prev_us) / 1e6;
    prev_us = edge.ts_us;
    current = edge.to;
  }
  if (!current.empty()) {
    report.mode_occupancy_s[current] += (max_ts - prev_us) / 1e6;
  }

  const json::Value* other = root.find("otherData");
  if (other && other->is_object()) {
    for (const auto& [key, value] : other->object) {
      if (value.is_string()) {
        report.meta[key] = value.string;
      }
    }
  }
  return report;
}

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

/// Fixed-width text histogram over [min, max] in `bins` equal buckets.
void text_histogram(std::ostream& os, const std::vector<double>& v,
                    const char* unit, double scale) {
  if (v.empty()) {
    os << "  (no samples)\n";
    return;
  }
  const double lo = *std::min_element(v.begin(), v.end()) * scale;
  const double hi = *std::max_element(v.begin(), v.end()) * scale;
  constexpr int kBins = 8;
  constexpr int kBarWidth = 40;
  std::vector<std::uint64_t> bins(kBins, 0);
  const double width = hi > lo ? (hi - lo) / kBins : 1.0;
  for (const double x : v) {
    auto bin = static_cast<int>((x * scale - lo) / width);
    bins[std::clamp(bin, 0, kBins - 1)] += 1;
  }
  const std::uint64_t peak = *std::max_element(bins.begin(), bins.end());
  for (int i = 0; i < kBins; ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "  [%8.3f, %8.3f) %s |", lo + i * width,
                  lo + (i + 1) * width, unit);
    os << label;
    const auto bar =
        static_cast<int>(bins[i] * kBarWidth / std::max<std::uint64_t>(peak, 1));
    for (int j = 0; j < bar; ++j) {
      os << '#';
    }
    os << " " << bins[i] << "\n";
  }
}

void stats_line(std::ostream& os, const char* what,
                const std::vector<double>& v, const char* unit,
                double scale) {
  if (v.empty()) {
    os << what << ": no samples\n";
    return;
  }
  const double mean =
      std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
  char buf[192];
  std::snprintf(
      buf, sizeof buf,
      "%s: n=%zu  mean=%.3f  p50=%.3f  p95=%.3f  p99=%.3f  max=%.3f %s\n",
      what, v.size(), mean * scale, percentile(v, 0.5) * scale,
      percentile(v, 0.95) * scale, percentile(v, 0.99) * scale,
      *std::max_element(v.begin(), v.end()) * scale, unit);
  os << buf;
}

}  // namespace

void print_report(const TraceReport& report, std::ostream& os) {
  os << "trace: " << report.events << " events over "
     << report.end_s - report.start_s << " s ([" << report.start_s << ", "
     << report.end_s << "] s)\n";
  for (const auto& [key, value] : report.meta) {
    if (key != "self_ns_per_event") {
      os << "  " << key << ": " << value << "\n";
    }
  }

  os << "\ncontrol loop: " << report.daemon_ticks << " daemon ticks, "
     << report.cap_changes << " cap changes, " << report.actuations
     << " actuations (" << report.failed_actuations << " failed)\n";
  stats_line(os, "tick wall latency", report.tick_wall_ns, "us", 1e-3);
  text_histogram(os, report.tick_wall_ns, "us", 1e-3);

  os << "\ncap-to-effect latency (cap change -> first reflecting progress "
        "window):\n";
  stats_line(os, "latency", report.cap_effect_s, "s", 1.0);
  text_histogram(os, report.cap_effect_s, "s ", 1.0);
  os << "  orphaned flows (begun, never closed): " << report.orphaned_flows
     << "\n";

  if (!report.mode_occupancy_s.empty()) {
    os << "\nnrm mode occupancy (" << report.mode_changes
       << " transitions):\n";
    double total = 0.0;
    for (const auto& [mode, seconds] : report.mode_occupancy_s) {
      total += seconds;
    }
    for (const auto& [mode, seconds] : report.mode_occupancy_s) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "  %-16s %8.2f s  (%.1f%%)\n",
                    mode.c_str(), seconds,
                    total > 0 ? 100.0 * seconds / total : 0.0);
      os << buf;
    }
  }

  if (!report.windows_by_app.empty()) {
    os << "\nprogress windows:\n";
    for (const auto& [app, count] : report.windows_by_app) {
      os << "  " << app << ": " << count << "\n";
    }
  }

  const double overhead = report.self_overhead_us();
  if (overhead > 0.0) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "\nobserver self-overhead: ~%.1f us total (%s ns/event x "
                  "%llu events)\n",
                  overhead, report.meta.at("self_ns_per_event").c_str(),
                  static_cast<unsigned long long>(report.events));
    os << buf;
  }
}

FlowDumpReport summarize_flow_dump(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("obs_report: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const json::Value root = json::parse(buffer.str());

  const json::Value* stats = root.find("stats");
  if (!stats || !stats->is_object()) {
    throw std::invalid_argument("obs_report: " + path +
                                ": not a flow dump (no stats object)");
  }

  FlowDumpReport report;
  report.path = path;
  if (const json::Value* meta = root.find("meta")) {
    for (const auto& [key, value] : meta->object) {
      if (value.is_string()) {
        report.meta[key] = value.string;
      }
    }
  }
  const auto it = report.meta.find("strategy");
  report.strategy = it == report.meta.end() ? "?" : it->second;

  const auto u64 = [stats](const char* key) {
    return static_cast<std::uint64_t>(stats->number_or(key, 0.0));
  };
  report.opened = u64("opened");
  report.closed = u64("closed");
  report.orphaned = u64("orphaned");
  report.open = u64("open");
  report.kept = u64("kept");
  report.dropped = u64("dropped");
  report.evicted = u64("evicted");
  report.epochs = u64("epochs");
  report.epochs_closed = u64("epochs_closed");
  report.kept_hash = stats->string_or("kept_hash", "");
  if (const json::Value* lat = stats->find("latency_ms")) {
    report.p50_ms = lat->number_or("p50", 0.0);
    report.p90_ms = lat->number_or("p90", 0.0);
    report.p99_ms = lat->number_or("p99", 0.0);
  }
  if (const json::Value* span = stats->find("epoch_span_ms")) {
    report.span_p50_ms = span->number_or("p50", 0.0);
    report.span_p99_ms = span->number_or("p99", 0.0);
  }

  if (const json::Value* flows = root.find("flows")) {
    report.flows.reserve(flows->array.size());
    for (const json::Value& f : flows->array) {
      FlowRow row;
      row.id = static_cast<std::uint64_t>(f.number_or("id", 0.0));
      row.epoch = static_cast<std::uint64_t>(f.number_or("epoch", 0.0));
      row.node = static_cast<unsigned>(f.number_or("node", 0.0));
      row.from_w = f.number_or("from_w", 0.0);
      row.to_w = f.number_or("to_w", 0.0);
      row.latency_ms = f.number_or("latency_ms", -1.0);
      row.state = f.string_or("state", "?");
      row.keep = f.string_or("keep", "?");
      row.orphan_reason = f.string_or("orphan_reason", "");
      report.flows.push_back(std::move(row));
    }
  }
  return report;
}

void print_flow_reports(const std::vector<FlowDumpReport>& reports,
                        std::ostream& os) {
  // Group kept closed-flow latencies by strategy: one histogram per
  // strategy so runs under different redistribution policies compare
  // side by side.
  std::map<std::string, std::vector<double>> latency_by_strategy;
  std::map<std::string, std::uint64_t> orphans_by_reason;
  std::uint64_t total_closed = 0;
  std::uint64_t total_orphaned = 0;
  std::uint64_t total_open = 0;
  std::vector<std::pair<const FlowDumpReport*, const FlowRow*>> slowest;

  for (const FlowDumpReport& report : reports) {
    os << report.path << ": strategy " << report.strategy << ", "
       << report.opened << " flows opened, " << report.closed << " closed, "
       << report.orphaned << " orphaned, " << report.open
       << " still open, kept " << report.kept << " (dropped "
       << report.dropped << ", evicted " << report.evicted << ")\n";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "  all closed flows: p50=%.1f ms  p90=%.1f ms  p99=%.1f ms"
                  "  epoch span p99=%.1f ms  (%llu/%llu epochs closed)\n",
                  report.p50_ms, report.p90_ms, report.p99_ms,
                  report.span_p99_ms,
                  static_cast<unsigned long long>(report.epochs_closed),
                  static_cast<unsigned long long>(report.epochs));
    os << buf;
    total_closed += report.closed;
    total_orphaned += report.orphaned;
    total_open += report.open;
    for (const FlowRow& flow : report.flows) {
      if (flow.state == "closed" && flow.latency_ms >= 0.0) {
        latency_by_strategy[report.strategy].push_back(flow.latency_ms);
        slowest.emplace_back(&report, &flow);
      } else if (flow.state == "orphaned") {
        ++orphans_by_reason[flow.orphan_reason.empty() ? "?"
                                                       : flow.orphan_reason];
      }
    }
  }

  for (const auto& [strategy, latencies] : latency_by_strategy) {
    os << "\nkept-flow latency, strategy " << strategy << ":\n";
    stats_line(os, "latency", latencies, "ms", 1.0);
    text_histogram(os, latencies, "ms", 1.0);
  }

  std::sort(slowest.begin(), slowest.end(),
            [](const auto& a, const auto& b) {
              if (a.second->latency_ms != b.second->latency_ms) {
                return a.second->latency_ms > b.second->latency_ms;
              }
              return a.second->id < b.second->id;  // deterministic tie-break
            });
  if (slowest.size() > 10) {
    slowest.resize(10);
  }
  if (!slowest.empty()) {
    os << "\nslowest kept flows:\n"
       << "  latency ms  strategy  epoch  node  grant W           keep\n";
    for (const auto& [report, flow] : slowest) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "  %10.1f  %-8s  %5llu  %4u  %6.1f -> %-6.1f  %s\n",
                    flow->latency_ms, report->strategy.c_str(),
                    static_cast<unsigned long long>(flow->epoch), flow->node,
                    flow->from_w, flow->to_w, flow->keep.c_str());
      os << buf;
    }
  }

  os << "\norphaned spans (flow never closed): " << total_orphaned;
  if (!orphans_by_reason.empty()) {
    os << "  [kept:";
    for (const auto& [reason, count] : orphans_by_reason) {
      os << " " << reason << "=" << count;
    }
    os << "]";
  }
  os << "\nopen at dump time (decision not yet effected): " << total_open
     << "\nclosed flows total: " << total_closed << "\n";
}

}  // namespace procap::obs
