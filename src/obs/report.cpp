#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace procap::obs {

double TraceReport::self_overhead_us() const {
  const auto it = meta.find("self_ns_per_event");
  if (it == meta.end()) {
    return 0.0;
  }
  const double per_event = std::atof(it->second.c_str());
  return per_event * static_cast<double>(events) / 1e3;
}

TraceReport summarize_chrome_trace(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("obs_report: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const json::Value root = json::parse(buffer.str());

  const json::Value* events = root.find("traceEvents");
  if (!events || !events->is_array()) {
    throw std::invalid_argument("obs_report: " + path +
                                ": no traceEvents array");
  }

  TraceReport report;
  double min_ts = 1e300;
  double max_ts = -1e300;
  // NRM occupancy: integrate time between consecutive mode events; the
  // first event's "from" mode covers the span from trace start.
  struct ModeEdge {
    double ts_us;
    std::string from, to;
  };
  std::vector<ModeEdge> mode_edges;

  for (const json::Value& ev : events->array) {
    if (!ev.is_object()) {
      throw std::invalid_argument("obs_report: non-object trace event");
    }
    const std::string ph = ev.string_or("ph", "");
    if (ph == "M") {
      continue;  // metadata (thread names)
    }
    ++report.events;
    const std::string name = ev.string_or("name", "");
    const double ts_us = ev.number_or("ts", 0.0);
    min_ts = std::min(min_ts, ts_us);
    max_ts = std::max(max_ts, ts_us + ev.number_or("dur", 0.0));
    const json::Value* args = ev.find("args");

    if (name == "daemon.tick") {
      ++report.daemon_ticks;
      if (args) {
        report.tick_wall_ns.push_back(args->number_or("wall_ns", 0.0));
      }
    } else if (name == "cap.change") {
      ++report.cap_changes;
    } else if (name == "rapl.actuate") {
      ++report.actuations;
      if (args && args->find("ok") && !args->find("ok")->boolean) {
        ++report.failed_actuations;
      }
    } else if (name == "cap.effect") {
      if (args) {
        report.cap_effect_s.push_back(args->number_or("latency_ns", 0.0) /
                                      1e9);
      }
    } else if (name == "progress.window") {
      if (args) {
        ++report.windows_by_app[args->string_or("app", "?")];
      }
    } else if (name == "nrm.mode") {
      ++report.mode_changes;
      if (args) {
        mode_edges.push_back(ModeEdge{ts_us, args->string_or("from", "?"),
                                      args->string_or("to", "?")});
      }
    }
  }

  if (report.events > 0) {
    report.start_s = min_ts / 1e6;
    report.end_s = max_ts / 1e6;
  }

  std::sort(mode_edges.begin(), mode_edges.end(),
            [](const ModeEdge& a, const ModeEdge& b) { return a.ts_us < b.ts_us; });
  double prev_us = min_ts;
  std::string current;
  for (const ModeEdge& edge : mode_edges) {
    if (current.empty()) {
      current = edge.from;
    }
    report.mode_occupancy_s[current] += (edge.ts_us - prev_us) / 1e6;
    prev_us = edge.ts_us;
    current = edge.to;
  }
  if (!current.empty()) {
    report.mode_occupancy_s[current] += (max_ts - prev_us) / 1e6;
  }

  const json::Value* other = root.find("otherData");
  if (other && other->is_object()) {
    for (const auto& [key, value] : other->object) {
      if (value.is_string()) {
        report.meta[key] = value.string;
      }
    }
  }
  return report;
}

namespace {

double percentile(std::vector<double> v, double p) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

/// Fixed-width text histogram over [min, max] in `bins` equal buckets.
void text_histogram(std::ostream& os, const std::vector<double>& v,
                    const char* unit, double scale) {
  if (v.empty()) {
    os << "  (no samples)\n";
    return;
  }
  const double lo = *std::min_element(v.begin(), v.end()) * scale;
  const double hi = *std::max_element(v.begin(), v.end()) * scale;
  constexpr int kBins = 8;
  constexpr int kBarWidth = 40;
  std::vector<std::uint64_t> bins(kBins, 0);
  const double width = hi > lo ? (hi - lo) / kBins : 1.0;
  for (const double x : v) {
    auto bin = static_cast<int>((x * scale - lo) / width);
    bins[std::clamp(bin, 0, kBins - 1)] += 1;
  }
  const std::uint64_t peak = *std::max_element(bins.begin(), bins.end());
  for (int i = 0; i < kBins; ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "  [%8.3f, %8.3f) %s |", lo + i * width,
                  lo + (i + 1) * width, unit);
    os << label;
    const auto bar =
        static_cast<int>(bins[i] * kBarWidth / std::max<std::uint64_t>(peak, 1));
    for (int j = 0; j < bar; ++j) {
      os << '#';
    }
    os << " " << bins[i] << "\n";
  }
}

void stats_line(std::ostream& os, const char* what,
                const std::vector<double>& v, const char* unit,
                double scale) {
  if (v.empty()) {
    os << what << ": no samples\n";
    return;
  }
  const double mean =
      std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
  char buf[192];
  std::snprintf(
      buf, sizeof buf,
      "%s: n=%zu  mean=%.3f  p50=%.3f  p95=%.3f  p99=%.3f  max=%.3f %s\n",
      what, v.size(), mean * scale, percentile(v, 0.5) * scale,
      percentile(v, 0.95) * scale, percentile(v, 0.99) * scale,
      *std::max_element(v.begin(), v.end()) * scale, unit);
  os << buf;
}

}  // namespace

void print_report(const TraceReport& report, std::ostream& os) {
  os << "trace: " << report.events << " events over "
     << report.end_s - report.start_s << " s ([" << report.start_s << ", "
     << report.end_s << "] s)\n";
  for (const auto& [key, value] : report.meta) {
    if (key != "self_ns_per_event") {
      os << "  " << key << ": " << value << "\n";
    }
  }

  os << "\ncontrol loop: " << report.daemon_ticks << " daemon ticks, "
     << report.cap_changes << " cap changes, " << report.actuations
     << " actuations (" << report.failed_actuations << " failed)\n";
  stats_line(os, "tick wall latency", report.tick_wall_ns, "us", 1e-3);
  text_histogram(os, report.tick_wall_ns, "us", 1e-3);

  os << "\ncap-to-effect latency (cap change -> first reflecting progress "
        "window):\n";
  stats_line(os, "latency", report.cap_effect_s, "s", 1.0);
  text_histogram(os, report.cap_effect_s, "s ", 1.0);

  if (!report.mode_occupancy_s.empty()) {
    os << "\nnrm mode occupancy (" << report.mode_changes
       << " transitions):\n";
    double total = 0.0;
    for (const auto& [mode, seconds] : report.mode_occupancy_s) {
      total += seconds;
    }
    for (const auto& [mode, seconds] : report.mode_occupancy_s) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "  %-16s %8.2f s  (%.1f%%)\n",
                    mode.c_str(), seconds,
                    total > 0 ? 100.0 * seconds / total : 0.0);
      os << buf;
    }
  }

  if (!report.windows_by_app.empty()) {
    os << "\nprogress windows:\n";
    for (const auto& [app, count] : report.windows_by_app) {
      os << "  " << app << ": " << count << "\n";
    }
  }

  const double overhead = report.self_overhead_us();
  if (overhead > 0.0) {
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "\nobserver self-overhead: ~%.1f us total (%s ns/event x "
                  "%llu events)\n",
                  overhead, report.meta.at("self_ns_per_event").c_str(),
                  static_cast<unsigned long long>(report.events));
    os << buf;
  }
}

}  // namespace procap::obs
