// metrics.hpp — process-wide, low-overhead metrics registry.
//
// The observability layer the RAPL-overhead literature demands we have
// before claiming anything about "low-overhead monitoring": every layer
// of the cap→actuation→progress pipeline (sim engine, msgbus, RAPL,
// daemon, NRM, monitors) registers counters, gauges and fixed-bucket
// histograms here, and exporters (Prometheus text, Chrome trace, JSONL)
// read them out without perturbing the hot path.
//
// Hot-path contract:
//   * Counter::inc / Gauge::set / Histogram::observe are lock-free:
//     one relaxed atomic op (plus a relaxed kill-switch load).
//   * Registration (Registry::counter et al.) takes a mutex but returns
//     a stable reference; instrument sites bind it once through a
//     function-local static via the PROCAP_OBS_* macros, so steady-state
//     cost is the atomic op alone.
//   * The whole layer compiles out with -DPROCAP_OBS_DISABLED (CMake
//     -DPROCAP_OBS=OFF): the macros then declare inert stubs and
//     instrument sites become no-ops the optimizer deletes.
//
// The registry measures its own cost rather than asserting it: the
// perf-labelled overhead test (tests/obs_overhead_test.cpp) runs the sim
// hot loop instrumented and with the kill switch off and bounds the
// difference (≤3 %), and self_cost_ns() micro-benchmarks one increment
// so exporters can stamp the observer cost into the artifacts they emit.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace procap::obs {

namespace detail {
/// Global kill switch consulted by every mutation; relaxed reads keep the
/// disabled path to one load + branch.
inline std::atomic<bool> g_enabled{true};
inline bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}
}  // namespace detail

/// Monotonic event count.  Lock-free; relaxed ordering (metrics are
/// statistical, not synchronizing).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (detail::enabled()) {
      v_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept {
    if (detail::enabled()) {
      v_.store(v, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are inclusive
/// upper edges, ascending; an implicit +Inf bucket catches the rest).
class Histogram {
 public:
  /// Throws std::invalid_argument unless bounds are non-empty and
  /// strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; index bounds().size()
  /// is the total (the +Inf bucket).
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Linear-interpolated quantile estimate from the buckets (q in [0,1]);
  /// 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  // One non-cumulative cell per bucket, +Inf last.  unique_ptr-free: the
  // vector is sized once in the constructor and never resized.
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket edge sets for the common cases.
[[nodiscard]] std::vector<double> latency_buckets_ns();
[[nodiscard]] std::vector<double> seconds_buckets();

/// Log-bucketed quantile sketch (obs/sketch.hpp); registered alongside
/// the fixed-bucket instruments for quantities whose scale is unknown
/// up front.
class Sketch;

/// Escape a Prometheus label *value* per the text exposition format:
/// backslash, double quote and newline become \\, \" and \n.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Build one `key="value"` label pair with the value escaped.  Every
/// instrument registered with a runtime-derived label value (app names
/// from spec files, paths, ...) must go through this, or the exposition
/// breaks on hostile values.
[[nodiscard]] std::string prometheus_label(std::string_view key,
                                           std::string_view value);

/// Point-in-time copy of one instrument's exported state — the read path
/// of the time-series sampler (obs/timeseries.hpp).
struct InstrumentSnapshot {
  std::string name;
  std::string labels;
  int type = 0;             ///< 0 counter, 1 gauge, 2 histogram, 3 sketch
  double value = 0.0;       ///< counter cumulative / gauge value
  std::uint64_t count = 0;  ///< histogram/sketch observations
  double sum = 0.0;         ///< histogram/sketch sum
  /// Estimated quantiles (histograms: bucket-interpolated; sketches:
  /// relative-error bounded).
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Process-wide registry of named instruments.  Names use dotted paths
/// ("daemon.ticks"); an optional Prometheus-style label set ("app=\"x\"")
/// distinguishes per-entity instances of one metric.
class Registry {
 public:
  /// The process-wide instance the PROCAP_OBS_* macros bind to.
  [[nodiscard]] static Registry& global();

  /// Find-or-create.  References remain valid for the registry's
  /// lifetime; re-registration with the same name+labels returns the
  /// same instrument (histogram bounds are fixed by the first call).
  [[nodiscard]] Counter& counter(const std::string& name,
                                 const std::string& labels = "");
  [[nodiscard]] Gauge& gauge(const std::string& name,
                             const std::string& labels = "");
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     const std::string& labels = "");
  /// Sketch accuracy is fixed by the first registration, like histogram
  /// bounds.
  [[nodiscard]] Sketch& sketch(const std::string& name,
                               const std::string& labels = "",
                               double relative_error = 0.01);

  /// Kill switch: disabled instruments drop mutations (reads still work).
  static void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept { return detail::enabled(); }

  /// Prometheus text exposition (one # TYPE line per metric family,
  /// histogram with _bucket/_sum/_count, names sanitized and prefixed
  /// with "procap_").
  void write_prometheus(std::ostream& os) const;

  /// Zero every registered instrument (tests; registration persists).
  void reset_values();

  /// Registered instrument names ("name{labels}"), registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Snapshot every instrument's current value, registration order.
  [[nodiscard]] std::vector<InstrumentSnapshot> snapshot() const;

  /// Measured wall cost of one enabled Counter::inc, in nanoseconds —
  /// the registry's own hot-path price, micro-benchmarked on demand so
  /// exporters can embed the observer cost in their artifacts.
  [[nodiscard]] static double self_cost_ns();

 private:
  Registry() = default;

  struct Entry;
  /// Requires mutex_ held: the caller check-then-sets the instrument
  /// pointer on the returned entry.
  Entry& find_or_create(const std::string& name, const std::string& labels,
                        int type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace procap::obs

// Static-registration macros: bind a function-local static reference on
// first execution, then the instrument call is the only per-hit cost.
//
//   PROCAP_OBS_COUNTER(ticks, "sim.ticks");
//   ticks.inc();
#if !defined(PROCAP_OBS_DISABLED)

#define PROCAP_OBS_COUNTER(var, name)    \
  static ::procap::obs::Counter& var =   \
      ::procap::obs::Registry::global().counter(name)
#define PROCAP_OBS_GAUGE(var, name)      \
  static ::procap::obs::Gauge& var =     \
      ::procap::obs::Registry::global().gauge(name)
#define PROCAP_OBS_HISTOGRAM(var, name, bounds) \
  static ::procap::obs::Histogram& var =        \
      ::procap::obs::Registry::global().histogram(name, bounds)

#else  // PROCAP_OBS_DISABLED: inert stubs with the same call surface.

namespace procap::obs {
struct NullCounter {
  void inc(std::uint64_t = 1) const noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};
struct NullGauge {
  void set(double) const noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
};
struct NullHistogram {
  void observe(double) const noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
};
}  // namespace procap::obs

#define PROCAP_OBS_COUNTER(var, name) \
  static constexpr ::procap::obs::NullCounter var {}
#define PROCAP_OBS_GAUGE(var, name) \
  static constexpr ::procap::obs::NullGauge var {}
#define PROCAP_OBS_HISTOGRAM(var, name, bounds) \
  static constexpr ::procap::obs::NullHistogram var {}

#endif  // PROCAP_OBS_DISABLED
