// http.hpp — minimal blocking HTTP/1.1 server for the live endpoints.
//
// Serves the pull side of observability stage two: /metrics (Prometheus
// text exposition), /timeseries.json, /alerts.json and /healthz, each
// backed by a registered handler.  Deliberately tiny — GET only, one
// request per connection (Connection: close), loopback by default, a
// single accept-and-serve thread woken through a self-pipe so stop() is
// prompt.  No external dependencies: plain POSIX sockets + poll.
//
// Handlers run on the server thread while the simulation runs on the
// main thread, so anything a handler touches must be thread-safe
// (Registry, TimeSeriesStore and AlertEngine are; raw sim state is not —
// snapshot it into a mutex-protected copy first, as power_policy does
// for /healthz).
//
// The matching http_get() client exists for tests and procap_top.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace procap::obs {

/// What a handler returns.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// What http_get() returns (headers already consumed).
struct HttpResult {
  int status = 0;
  std::string body;
};

/// Single-threaded embedded HTTP server.
class HttpServer {
 public:
  /// Handler for one exact path; `query` is the raw string after '?'
  /// ("" when absent).
  using Handler = std::function<HttpResponse(const std::string& query)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register `handler` for GET `path` (exact match, no trailing-slash
  /// games).  Call before start(); not thread-safe afterwards.
  void handle(std::string path, Handler handler);

  /// Bind `host:port` (port 0 picks an ephemeral port) and launch the
  /// serve thread.  Returns false (with no thread) when binding fails.
  [[nodiscard]] bool start(const std::string& host = "127.0.0.1",
                           std::uint16_t port = 0);

  /// Stop the serve thread and close the socket; idempotent.
  void stop();

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }

  /// The bound port (the chosen one when start() was given port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const;

 private:
  void serve_loop();
  void serve_one(int client_fd);

  std::vector<std::pair<std::string, Handler>> handlers_;
  std::thread thread_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written by stop
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> served_{0};
};

/// Blocking GET against a local/remote server; nullopt on connect/IO
/// failure or timeout.  Used by procap_top and the endpoint tests.
[[nodiscard]] std::optional<HttpResult> http_get(const std::string& host,
                                                 std::uint16_t port,
                                                 const std::string& path,
                                                 int timeout_ms = 2000);

}  // namespace procap::obs
