// http.hpp — event-loop HTTP/1.1 server for the live endpoints.
//
// Serves the pull side of observability: /metrics (Prometheus text
// exposition), /timeseries.json, /cluster.json, /alerts.json and
// /healthz, each backed by a registered handler.  Built for a cluster
// of scrapers, not one dashboard: a single serve thread runs a poll()
// event loop over non-blocking sockets with
//
//   * HTTP/1.1 keep-alive — one connection serves many sequential
//     (or pipelined) requests, each response carrying an exact
//     Content-Length; a request's `Connection: close` is honored;
//   * a per-connection state machine (reading head → writing response →
//     reading again) with bounded buffers: request heads past
//     max_request_bytes answer 431, non-GET methods answer 405, and
//     malformed request lines answer 400 — always with a body and a
//     correct Content-Length, never a silent close;
//   * a bounded connection table — connections past max_connections are
//     answered 503 + Connection: close and the table recovers as
//     existing connections finish;
//   * idle-timeout eviction, so scrapers that stall or vanish without a
//     FIN cannot pin table slots;
//   * graceful shutdown through the existing self-pipe: stop() wakes the
//     loop, in-flight responses get a bounded drain, then everything
//     closes.
//
// Still dependency-free POSIX, and the Handler seam is unchanged, so
// power_policy --serve-obs, cluster_sim --serve-obs and procap_top work
// against either generation of the server.
//
// Two optional accelerations, both transparent to handlers:
//
//   * an epoll(7) readiness backend on Linux (the default there) — the
//     kernel holds the interest set, so a wait costs O(ready) instead
//     of the O(connections) scan poll() does, lifting the >1k-connection
//     ceiling; non-Linux builds compile the poll() backend only, and
//     PROCAP_HTTP_BACKEND=poll|epoll overrides the choice at runtime;
//   * gzip response encoding (when built against zlib) for
//     application/json bodies past gzip_min_bytes when the client sent
//     Accept-Encoding: gzip — Content-Encoding/Content-Length are set
//     on the compressed form; without zlib the identity form is served.
//
// Handlers run on the serve thread while the simulation runs on the
// main thread, so anything a handler touches must be thread-safe
// (Registry, TimeSeriesStore, AlertEngine and ClusterTelemetry are; raw
// sim state is not — snapshot it into a mutex-protected copy first, as
// power_policy does for /healthz).
//
// The matching clients: http_get() for one-shot requests and HttpClient
// for keep-alive scraping (bench/obs_load, procap_top).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace procap::obs {

namespace detail {
class Poller;  // readiness backend seam (poll / epoll), http.cpp-private
}  // namespace detail

/// What a handler returns.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// What the clients return (headers already consumed).
struct HttpResult {
  int status = 0;
  std::string body;  ///< raw bytes (still compressed when gzip-encoded)
  std::string content_encoding;  ///< "" when identity
};

/// Readiness backend selection.  kAuto prefers epoll where compiled in
/// (Linux) and falls back to poll elsewhere; the PROCAP_HTTP_BACKEND
/// environment variable ("poll" | "epoll") overrides either way.
enum class HttpBackend { kAuto, kPoll, kEpoll };

/// Event-loop tuning; the defaults serve a 256-node cluster's scrape
/// plane comfortably.
struct HttpServerOptions {
  /// Concurrent connections; further arrivals answer 503 and close.
  std::size_t max_connections = 128;
  /// A connection idle (no request bytes, nothing to write) this long
  /// is evicted.
  int idle_timeout_ms = 5000;
  /// Request heads past this answer 431 and close.
  std::size_t max_request_bytes = 16 * 1024;
  /// Drain budget for in-flight responses during stop().
  int shutdown_drain_ms = 250;
  /// application/json bodies at or past this size are gzip-compressed
  /// for clients that sent Accept-Encoding: gzip (0 disables; served
  /// identity when zlib is not compiled in).
  std::size_t gzip_min_bytes = 512;
  /// Readiness backend (see HttpBackend).
  HttpBackend backend = HttpBackend::kAuto;
};

/// Poll-based embedded HTTP server; one serve thread, many connections.
class HttpServer {
 public:
  /// Handler for one exact path; `query` is the raw string after '?'
  /// ("" when absent).
  using Handler = std::function<HttpResponse(const std::string& query)>;

  HttpServer();
  explicit HttpServer(HttpServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register `handler` for GET `path` (exact match, no trailing-slash
  /// games).  Call before start(); not thread-safe afterwards.
  void handle(std::string path, Handler handler);

  /// Bind `host:port` (port 0 picks an ephemeral port) and launch the
  /// serve thread.  Returns false (with no thread) when binding fails.
  [[nodiscard]] bool start(const std::string& host = "127.0.0.1",
                           std::uint16_t port = 0);

  /// Stop the serve thread and close every connection; idempotent.
  /// In-flight responses get options().shutdown_drain_ms to finish.
  void stop();

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }

  /// The bound port (the chosen one when start() was given port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] const HttpServerOptions& options() const { return options_; }

  /// Resolved readiness backend ("poll" or "epoll"); meaningful after a
  /// successful start().
  [[nodiscard]] const char* backend_name() const { return backend_name_; }

  /// Requests answered so far (any status, including 503 rejects).
  [[nodiscard]] std::uint64_t requests_served() const;
  /// Connections accepted so far (including ones later evicted).
  [[nodiscard]] std::uint64_t connections_accepted() const;
  /// Connections answered 503 because the table was full.
  [[nodiscard]] std::uint64_t connections_rejected() const;
  /// Connections evicted by the idle timeout.
  [[nodiscard]] std::uint64_t idle_evictions() const;
  /// Connections currently in the table (racy read; tests poll it).
  [[nodiscard]] std::size_t open_connections() const;

 private:
  struct Connection;

  void serve_loop();
  bool on_readable(Connection& conn);
  bool on_writable(Connection& conn);
  void process_buffer(Connection& conn);
  void enqueue_response(Connection& conn, HttpResponse&& response,
                        bool close_after, bool accept_gzip);
  void drain_on_stop(std::vector<Connection>& conns);

  HttpServerOptions options_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  std::thread thread_;
  std::unique_ptr<detail::Poller> poller_;
  const char* backend_name_ = "poll";
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written by stop
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> idle_evicted_{0};
  std::atomic<std::size_t> open_{0};
};

/// Blocking one-shot GET (Connection: close) against a local/remote
/// server; nullopt on connect/IO failure or timeout.  `extra_headers`
/// is appended raw to the request head (each line CRLF-terminated,
/// e.g. "Accept-Encoding: gzip\r\n").
[[nodiscard]] std::optional<HttpResult> http_get(
    const std::string& host, std::uint16_t port, const std::string& path,
    int timeout_ms = 2000, const std::string& extra_headers = "");

/// True when the build carries zlib (gzip response encoding active).
[[nodiscard]] bool gzip_supported();

/// gzip-wrap `raw` (nullopt without zlib or on compressor failure).
[[nodiscard]] std::optional<std::string> gzip_compress(std::string_view raw);

/// Inverse of gzip_compress (nullopt without zlib or on corrupt input).
[[nodiscard]] std::optional<std::string> gzip_decompress(std::string_view gz);

/// Keep-alive HTTP/1.1 client: one TCP connection, many sequential
/// GETs.  This is what a real scraper does, and what bench/obs_load
/// measures.  Not thread-safe; use one per scraper thread.
class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connect (or reconnect after close()/server loss); false on failure.
  [[nodiscard]] bool connect(int timeout_ms = 2000);

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// One GET over the persistent connection.  Reads exactly
  /// Content-Length body bytes, so the connection stays usable for the
  /// next call.  On server-side close or error the socket is dropped
  /// (connected() goes false) and nullopt returns — call connect() to
  /// resume.  Automatically connects on first use.
  [[nodiscard]] std::optional<HttpResult> get(const std::string& path,
                                              int timeout_ms = 2000);

  void close();

 private:
  std::string host_;
  std::uint16_t port_;
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the previous response
};

/// Split a raw query string ("a=1&b=x%20y") into decoded key→value
/// pairs; repeated keys keep the last value.  %XX and '+' decode per
/// application/x-www-form-urlencoded.
[[nodiscard]] std::map<std::string, std::string> parse_query(
    const std::string& query);

}  // namespace procap::obs
