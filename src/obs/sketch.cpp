#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procap::obs {

Sketch::Sketch(double relative_error, double min_value, double max_value)
    : alpha_(relative_error),
      gamma_((1.0 + relative_error) / (1.0 - relative_error)),
      inv_log_gamma_(1.0 / std::log(gamma_)) {
  if (!(relative_error > 0.0) || !(relative_error < 1.0)) {
    throw std::invalid_argument("Sketch: relative_error must be in (0,1)");
  }
  if (!(min_value > 0.0) || !(min_value < max_value)) {
    throw std::invalid_argument(
        "Sketch: need 0 < min_value < max_value");
  }
  min_index_ = static_cast<std::int32_t>(
      std::ceil(std::log(min_value) * inv_log_gamma_));
  const auto max_index = static_cast<std::int32_t>(
      std::ceil(std::log(max_value) * inv_log_gamma_));
  cells_ = std::vector<std::atomic<std::uint64_t>>(
      static_cast<std::size_t>(max_index - min_index_ + 1));
}

std::size_t Sketch::index_of(double v) const noexcept {
  const auto raw = static_cast<std::int64_t>(
      std::ceil(std::log(v) * inv_log_gamma_));
  const std::int64_t clamped =
      std::clamp<std::int64_t>(raw - min_index_, 0,
                               static_cast<std::int64_t>(cells_.size()) - 1);
  return static_cast<std::size_t>(clamped);
}

double Sketch::value_of(std::size_t cell) const noexcept {
  // Midpoint estimator: values in bucket i lie in (γ^(i-1), γ^i]; the
  // point 2γ^i/(γ+1) is within α of every one of them.
  const double exponent =
      static_cast<double>(min_index_ + static_cast<std::int32_t>(cell));
  return 2.0 * std::pow(gamma_, exponent) / (gamma_ + 1.0);
}

void Sketch::observe(double v) noexcept {
  if (!detail::enabled()) {
    return;
  }
  if (!(v > 0.0)) {  // zero, negative, NaN
    zero_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cells_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(std::isfinite(v) ? v : 0.0, std::memory_order_relaxed);
}

double Sketch::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // DDSketch rank convention: the q-quantile is the value whose rank is
  // q * (n - 1) in the sorted stream.
  const double rank = q * static_cast<double>(n - 1);
  std::uint64_t cum = zero_.load(std::memory_order_relaxed);
  if (static_cast<double>(cum) > rank) {
    return 0.0;
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cum += cells_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cum) > rank) {
      return value_of(i);
    }
  }
  // Concurrent observers may have bumped count_ before their cell write
  // landed; answer with the top non-empty bucket.
  for (std::size_t i = cells_.size(); i-- > 0;) {
    if (cells_[i].load(std::memory_order_relaxed) > 0) {
      return value_of(i);
    }
  }
  return 0.0;
}

bool Sketch::mergeable(const Sketch& other) const {
  return alpha_ == other.alpha_ && min_index_ == other.min_index_ &&
         cells_.size() == other.cells_.size();
}

void Sketch::merge(const Sketch& other) {
  if (!mergeable(other)) {
    throw std::invalid_argument(
        "Sketch::merge: parameter mismatch (relative_error/span)");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const std::uint64_t v = other.cells_[i].load(std::memory_order_relaxed);
    if (v != 0) {
      cells_[i].fetch_add(v, std::memory_order_relaxed);
    }
  }
  zero_.fetch_add(other.zero_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void Sketch::reset() noexcept {
  for (auto& cell : cells_) {
    cell.store(0, std::memory_order_relaxed);
  }
  zero_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

}  // namespace procap::obs
