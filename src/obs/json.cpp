#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace procap::obs::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v && v->is_number() ? v->number : fallback;
}

std::string Value::string_or(std::string_view key,
                             std::string fallback) const {
  const Value* v = find(key);
  return v && v->is_string() ? v->string : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("json: " + std::string(what) +
                                " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail("unexpected character");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.string = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) {
          fail("bad literal");
        }
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) {
          fail("bad literal");
        }
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) {
          fail("bad literal");
        }
        return Value{};
      }
      default:
        return number();
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Our writers only escape bytes < 0x80 this way; decode the
          // BMP code point as UTF-8 and reject surrogates outright.
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.type = Value::Type::kNumber;
    const auto [ptr, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, v.number);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

bool valid(std::string_view text) {
  try {
    (void)parse(text);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace procap::obs::json
