#include "obs/alert.hpp"

#include <algorithm>
#include <exception>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace procap::obs {

const char* to_string(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "?";
}

namespace {

std::optional<AlertState> state_from(std::string_view text) {
  if (text == "inactive") {
    return AlertState::kInactive;
  }
  if (text == "pending") {
    return AlertState::kPending;
  }
  if (text == "firing") {
    return AlertState::kFiring;
  }
  return std::nullopt;
}

}  // namespace

std::string AlertTransition::to_json() const {
  std::ostringstream os;
  os << "{\"rule\":\"" << json::escape(rule) << "\",\"labels\":\""
     << json::escape(labels) << "\",\"severity\":\"" << json::escape(severity)
     << "\",\"from\":\"" << to_string(from) << "\",\"to\":\"" << to_string(to)
     << "\",\"t\":" << to_seconds(t) << ",\"value\":" << value
     << ",\"degrades_control\":" << (degrades_control ? "true" : "false")
     << "}";
  return os.str();
}

std::optional<AlertTransition> parse_alert_payload(std::string_view payload) {
  json::Value root;
  try {
    root = json::parse(payload);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!root.is_object()) {
    return std::nullopt;
  }
  const auto from = state_from(root.string_or("from", ""));
  const auto to = state_from(root.string_or("to", ""));
  const std::string rule = root.string_or("rule", "");
  if (!from || !to || rule.empty()) {
    return std::nullopt;
  }
  AlertTransition transition;
  transition.rule = rule;
  transition.labels = root.string_or("labels", "");
  transition.severity = root.string_or("severity", "");
  transition.from = *from;
  transition.to = *to;
  transition.t = to_nanos(root.number_or("t", 0.0));
  transition.value = root.number_or("value", 0.0);
  const json::Value* degrades = root.find("degrades_control");
  transition.degrades_control = degrades != nullptr && degrades->boolean;
  return transition;
}

std::vector<AlertRule> builtin_rules(const BuiltinRuleConfig& config) {
  std::vector<AlertRule> rules;

  AlertRule stall;
  stall.name = "progress_stall";
  stall.metric = "progress.rate";
  stall.kind = AlertRule::Kind::kThreshold;
  stall.op = AlertRule::Op::kBelow;
  stall.stat = RuleStat::kValue;
  stall.threshold = config.stall_rate;
  stall.hold = config.stall_hold;
  stall.severity = "critical";
  stall.description = "application progress rate stuck at zero";
  rules.push_back(std::move(stall));

  AlertRule slo;
  slo.name = "cap_effect_slo";
  slo.metric = "obs.cap_to_effect_ns";
  slo.kind = AlertRule::Kind::kThreshold;
  slo.op = AlertRule::Op::kAbove;
  slo.stat = RuleStat::kP95;
  slo.threshold = config.cap_effect_slo * 1e9;
  slo.severity = "warning";
  slo.description = "p95 cap-to-effect latency above SLO";
  rules.push_back(std::move(slo));

  AlertRule overshoot;
  overshoot.name = "power_overshoot";
  overshoot.metric = "daemon.power_over_cap_watts";
  overshoot.kind = AlertRule::Kind::kThreshold;
  overshoot.op = AlertRule::Op::kAbove;
  overshoot.stat = RuleStat::kValue;
  overshoot.threshold = config.overshoot_watts;
  overshoot.hold = config.overshoot_hold;
  overshoot.severity = "warning";
  overshoot.description = "measured node power above the programmed cap";
  rules.push_back(std::move(overshoot));

  AlertRule health;
  health.name = "telemetry_health";
  health.metric = "progress.health.grade";
  health.kind = AlertRule::Kind::kThreshold;
  health.op = AlertRule::Op::kAbove;
  health.stat = RuleStat::kValue;
  health.threshold = 0.5;  // grade 1 = degraded, 2 = lost (§V-C)
  health.hold = config.health_hold;
  health.severity = "critical";
  health.description = "progress signal degraded or lost";
  health.degrades_control = true;
  rules.push_back(std::move(health));

  AlertRule absent;
  absent.name = "telemetry_absent";
  absent.metric = "progress.samples";
  absent.kind = AlertRule::Kind::kAbsence;
  absent.absence_window = config.absence_window;
  absent.severity = "critical";
  absent.description = "no progress samples accepted over the window";
  absent.degrades_control = true;
  rules.push_back(std::move(absent));

  return rules;
}

AlertEngine::AlertEngine(const TimeSeriesStore& store) : store_(&store) {}

void AlertEngine::add_rule(AlertRule rule) {
  const std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(Tracked{std::move(rule), {}});
}

void AlertEngine::add_builtin_rules(const BuiltinRuleConfig& config) {
  for (AlertRule& rule : builtin_rules(config)) {
    add_rule(std::move(rule));
  }
}

std::size_t AlertEngine::rule_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rules_.size();
}

void AlertEngine::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void AlertEngine::step(Tracked& tracked, Instance& instance, bool condition,
                       double value, Nanos now) {
  instance.value = value;
  const auto transition = [&](AlertState to) {
    AlertTransition record;
    record.t = now;
    record.rule = tracked.rule.name;
    record.labels = instance.labels;
    record.severity = tracked.rule.severity;
    record.from = instance.state;
    record.to = to;
    record.value = value;
    record.degrades_control = tracked.rule.degrades_control;
    instance.state = to;
    instance.since = now;
    transitions_.push_back(record);
    if (sink_ && (record.fired() || record.resolved())) {
      sink_(record);
    }
  };
  if (condition) {
    if (instance.state == AlertState::kInactive) {
      transition(AlertState::kPending);
    }
    if (instance.state == AlertState::kPending &&
        now - instance.since >= tracked.rule.hold) {
      transition(AlertState::kFiring);
    }
  } else if (instance.state != AlertState::kInactive) {
    transition(AlertState::kInactive);
  }
}

void AlertEngine::evaluate(Nanos now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Tracked& tracked : rules_) {
    const AlertRule& rule = tracked.rule;
    const std::vector<SeriesView> views = store_->series(rule.metric);
    bool metric_present = false;
    std::vector<const std::string*> seen_labels;
    for (const SeriesView& view : views) {
      if (view.points.empty()) {
        continue;
      }
      metric_present = true;
      seen_labels.push_back(&view.labels);
      Instance* instance = nullptr;
      for (Instance& candidate : tracked.instances) {
        if (candidate.labels == view.labels) {
          instance = &candidate;
          break;
        }
      }
      if (instance == nullptr) {
        tracked.instances.push_back(Instance{view.labels,
                                             AlertState::kInactive, now, 0.0});
        instance = &tracked.instances.back();
      }

      bool condition = false;
      double value = 0.0;
      const TsPoint& newest = view.points.back();
      if (rule.kind == AlertRule::Kind::kAbsence) {
        // Evidence-based absence: compare the newest value against the
        // last point old enough to bracket the window.  Without such a
        // point (short history) nothing can be concluded yet.
        const TsPoint* baseline = nullptr;
        for (const TsPoint& point : view.points) {
          if (point.t <= now - rule.absence_window) {
            baseline = &point;
          } else {
            break;
          }
        }
        if (baseline != nullptr) {
          value = newest.value - baseline->value;
          condition = value <= 0.0;
        }
      } else {
        const RuleStat stat =
            rule.kind == AlertRule::Kind::kRate ? RuleStat::kRate : rule.stat;
        switch (stat) {
          case RuleStat::kValue:
            value = newest.value;
            break;
          case RuleStat::kRate:
            value = newest.rate;
            break;
          case RuleStat::kP50:
            value = newest.p50;
            break;
          case RuleStat::kP95:
            value = newest.p95;
            break;
          case RuleStat::kP99:
            value = newest.p99;
            break;
        }
        condition = rule.op == AlertRule::Op::kAbove ? value > rule.threshold
                                                     : value < rule.threshold;
      }
      step(tracked, *instance, condition, value, now);
    }
    if (rule.kind != AlertRule::Kind::kAbsence) {
      continue;
    }
    if (!metric_present) {
      // The watched instrument has no series at all — it was never
      // registered (or never produced a point).  Previously this fell
      // through the series loop and the rule stayed silently inactive:
      // a reporter that never came up was indistinguishable from one
      // being watched with no rule.  The store's first sample time is
      // the evidence anchor: once sampling has covered a full absence
      // window with still no series, the metric is absent, not merely
      // unobserved yet.
      const std::optional<Nanos> first = store_->first_sample_time();
      if (first && *first + rule.absence_window <= now) {
        Instance* instance = nullptr;
        for (Instance& candidate : tracked.instances) {
          if (candidate.labels.empty()) {
            instance = &candidate;
            break;
          }
        }
        if (instance == nullptr) {
          tracked.instances.push_back(
              Instance{"", AlertState::kInactive, now, 0.0});
          instance = &tracked.instances.back();
        }
        step(tracked, *instance, true, 0.0, now);
      }
    } else {
      // The metric exists now; resolve any instance left over from the
      // never-registered phase whose label set has no series (e.g. the
      // instrument finally registered under per-app labels).
      for (Instance& instance : tracked.instances) {
        const bool seen = std::any_of(
            seen_labels.begin(), seen_labels.end(),
            [&](const std::string* l) { return *l == instance.labels; });
        if (!seen) {
          step(tracked, instance, false, instance.value, now);
        }
      }
    }
  }
}

std::vector<Alert> AlertEngine::alerts() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Alert> out;
  for (const Tracked& tracked : rules_) {
    for (const Instance& instance : tracked.instances) {
      Alert alert;
      alert.rule = tracked.rule.name;
      alert.labels = instance.labels;
      alert.severity = tracked.rule.severity;
      alert.description = tracked.rule.description;
      alert.degrades_control = tracked.rule.degrades_control;
      alert.state = instance.state;
      alert.since = instance.since;
      alert.value = instance.value;
      out.push_back(std::move(alert));
    }
  }
  return out;
}

std::vector<Alert> AlertEngine::firing() const {
  std::vector<Alert> out;
  for (Alert& alert : alerts()) {
    if (alert.state == AlertState::kFiring) {
      out.push_back(std::move(alert));
    }
  }
  return out;
}

std::vector<AlertTransition> AlertEngine::transitions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return transitions_;
}

void AlertEngine::write_json(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  os << "{\"rules\":" << rules_.size() << ",\"alerts\":[";
  bool first = true;
  for (const Tracked& tracked : rules_) {
    for (const Instance& instance : tracked.instances) {
      os << (first ? "" : ",") << "{\"rule\":\""
         << json::escape(tracked.rule.name) << "\",\"labels\":\""
         << json::escape(instance.labels) << "\",\"severity\":\""
         << json::escape(tracked.rule.severity) << "\",\"state\":\""
         << to_string(instance.state)
         << "\",\"since\":" << to_seconds(instance.since)
         << ",\"value\":" << instance.value << ",\"description\":\""
         << json::escape(tracked.rule.description) << "\"}";
      first = false;
    }
  }
  os << "],\"transitions\":" << transitions_.size() << "}";
}

}  // namespace procap::obs
