// trace.hpp — control-loop span tracer for the cap→actuation→progress
// pipeline.
//
// The paper's core question is one of timing and attribution: when did
// the cap change, when did RAPL act, and when did the progress signal
// move?  The TraceCollector records those moments as semantic events on
// the *simulation/monotonic timeline* (all timestamps are caller-passed
// Nanos from the run's TimeSource) and lowers them to two artifacts:
//
//   * Chrome trace-event JSON (write_chrome) — loadable in
//     chrome://tracing / Perfetto.  Each cap change opens a *flow*: a
//     "s" arrow at the cap.change slice, a "t" step at the rapl.actuate
//     slice, and an "f" finish at the first progress.window slice whose
//     interval extends past the actuation — so the cap-to-effect path is
//     a visible arrow across the trace, and the latency distribution a
//     measured quantity (cap.effect events, cap_effect_latencies()).
//   * JSONL event dump (write_jsonl) — one JSON object per line, the
//     same semantic events in a grep/stream-friendly form that
//     tools/analyze accepts as a third input format.
//
// Recording is mutex-guarded: producers are the 1 Hz control loops
// (daemon tick, monitor window close, NRM mode changes), so hot-path
// cost is irrelevant here — the lock-free budget lives in metrics.hpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap::obs {

/// One semantic event on the pipeline timeline.
struct TraceEvent {
  enum class Kind {
    kCapChange,       ///< daemon decided a new cap (a=from W, b=to W; 0=uncapped)
    kActuation,       ///< RAPL write attempted (s1=op, b=W, ok=result)
    kDaemonTick,      ///< one daemon cycle (a=wall-clock cost ns)
    kProgressWindow,  ///< closed monitor window (ts..ts_end, a=rate, s1=app)
    kCapEffect,       ///< flow closed (a=latency ns, flow id links arrows)
    kModeChange,      ///< NRM transition (s1=from, s2=to, s3=reason)
    kMark,            ///< free-form instant (s1=name)
  };

  Kind kind;
  Nanos ts = 0;
  Nanos ts_end = 0;      ///< progress windows only
  double a = 0.0;
  double b = 0.0;
  bool ok = true;
  std::uint64_t flow = 0;  ///< nonzero links cap change → actuation → effect
  std::string s1, s2, s3;
};

/// Collects pipeline events and exports Chrome-trace / JSONL artifacts.
/// Thread-safe; timestamps are caller-provided (pass the run's
/// TimeSource::now() so sim and wall-clock deployments both work).
class TraceCollector {
 public:
  TraceCollector() = default;

  // -- Recording (called by instrumented components) -------------------

  /// Daemon decided to change the cap; opens a flow.  `from`/`to` use
  /// nullopt for uncapped.
  void cap_change(Nanos ts, std::optional<double> from,
                  std::optional<double> to, const std::string& scheme);

  /// RAPL actuation attempt for the pending cap change.  A failed write
  /// abandons the pending flow (the retry opens a fresh one).
  void actuation(Nanos ts, const std::string& op, double watts, bool ok);

  /// One daemon control cycle costing `wall_ns` of real time.
  void daemon_tick(Nanos ts, double wall_ns);

  /// A monitor window [start, end) closed at `rate` for `app`.  Closes
  /// every open cap flow whose actuation precedes `end`, emitting a
  /// cap.effect event with latency end - change_ts per flow.
  void progress_window(Nanos start, Nanos end, double rate,
                       const std::string& app);

  /// NRM mode transition.
  void mode_change(Nanos ts, const std::string& from, const std::string& to,
                   const std::string& reason);

  /// Free-form instant marker.
  void mark(Nanos ts, const std::string& name);

  /// Attach run metadata (app, scheme, self-overhead…) exported into the
  /// Chrome trace's otherData and a JSONL meta line.
  void set_meta(const std::string& key, const std::string& value);

  // -- Introspection ----------------------------------------------------

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;

  /// Measured cap-to-effect latencies (ns), one per closed flow.
  [[nodiscard]] std::vector<Nanos> cap_effect_latencies() const;

  // -- Export ------------------------------------------------------------

  /// Chrome trace-event JSON ({"traceEvents": [...], "otherData": {...}}).
  void write_chrome(std::ostream& os) const;

  /// JSONL: one event object per line, meta lines first.
  void write_jsonl(std::ostream& os) const;

 private:
  struct OpenFlow {
    std::uint64_t id = 0;
    Nanos change_ts = 0;
    bool actuated = false;
  };

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<OpenFlow> open_flows_;
  std::vector<Nanos> latencies_;
  std::map<std::string, std::string> meta_;
  std::uint64_t next_flow_ = 1;
};

}  // namespace procap::obs
