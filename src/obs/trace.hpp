// trace.hpp — control-loop span tracer for the cap→actuation→progress
// pipeline.
//
// The paper's core question is one of timing and attribution: when did
// the cap change, when did RAPL act, and when did the progress signal
// move?  The TraceCollector records those moments as semantic events on
// the *simulation/monotonic timeline* (all timestamps are caller-passed
// Nanos from the run's TimeSource) and lowers them to two artifacts:
//
//   * Chrome trace-event JSON (write_chrome) — loadable in
//     chrome://tracing / Perfetto.  Each cap change opens a *flow*: a
//     "s" arrow at the cap.change slice, a "t" step at the rapl.actuate
//     slice, and an "f" finish at the first progress.window slice whose
//     interval extends past the actuation — so the cap-to-effect path is
//     a visible arrow across the trace, and the latency distribution a
//     measured quantity (cap.effect events, cap_effect_latencies()).
//   * JSONL event dump (write_jsonl) — one JSON object per line, the
//     same semantic events in a grep/stream-friendly form that
//     tools/analyze accepts as a third input format.
//
// Recording is mutex-guarded: producers are the 1 Hz control loops
// (daemon tick, monitor window close, NRM mode changes), so hot-path
// cost is irrelevant here — the lock-free budget lives in metrics.hpp.
//
// The cluster-scale sibling is FlowTracer (below): the same causal story
// — decision → actuation → first reflecting progress sample — told per
// node across a whole cluster control loop, with sampling and bounded
// retention so it stays cheap at hundreds of nodes (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sketch.hpp"
#include "util/units.hpp"

namespace procap::obs {

/// One semantic event on the pipeline timeline.
struct TraceEvent {
  enum class Kind {
    kCapChange,       ///< daemon decided a new cap (a=from W, b=to W; 0=uncapped)
    kActuation,       ///< RAPL write attempted (s1=op, b=W, ok=result)
    kDaemonTick,      ///< one daemon cycle (a=wall-clock cost ns)
    kProgressWindow,  ///< closed monitor window (ts..ts_end, a=rate, s1=app)
    kCapEffect,       ///< flow closed (a=latency ns, flow id links arrows)
    kModeChange,      ///< NRM transition (s1=from, s2=to, s3=reason)
    kMark,            ///< free-form instant (s1=name)
  };

  Kind kind;
  Nanos ts = 0;
  Nanos ts_end = 0;      ///< progress windows only
  double a = 0.0;
  double b = 0.0;
  bool ok = true;
  std::uint64_t flow = 0;  ///< nonzero links cap change → actuation → effect
  std::string s1, s2, s3;
};

/// Collects pipeline events and exports Chrome-trace / JSONL artifacts.
/// Thread-safe; timestamps are caller-provided (pass the run's
/// TimeSource::now() so sim and wall-clock deployments both work).
class TraceCollector {
 public:
  TraceCollector() = default;

  // -- Recording (called by instrumented components) -------------------

  /// Daemon decided to change the cap; opens a flow.  `from`/`to` use
  /// nullopt for uncapped.
  void cap_change(Nanos ts, std::optional<double> from,
                  std::optional<double> to, const std::string& scheme);

  /// RAPL actuation attempt for the pending cap change.  A failed write
  /// abandons the pending flow (the retry opens a fresh one).
  void actuation(Nanos ts, const std::string& op, double watts, bool ok);

  /// One daemon control cycle costing `wall_ns` of real time.
  void daemon_tick(Nanos ts, double wall_ns);

  /// A monitor window [start, end) closed at `rate` for `app`.  Closes
  /// every open cap flow whose actuation precedes `end`, emitting a
  /// cap.effect event with latency end - change_ts per flow.
  void progress_window(Nanos start, Nanos end, double rate,
                       const std::string& app);

  /// NRM mode transition.
  void mode_change(Nanos ts, const std::string& from, const std::string& to,
                   const std::string& reason);

  /// Free-form instant marker.
  void mark(Nanos ts, const std::string& name);

  /// Attach run metadata (app, scheme, self-overhead…) exported into the
  /// Chrome trace's otherData and a JSONL meta line.
  void set_meta(const std::string& key, const std::string& value);

  // -- Introspection ----------------------------------------------------

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;

  /// Measured cap-to-effect latencies (ns), one per closed flow.
  [[nodiscard]] std::vector<Nanos> cap_effect_latencies() const;

  // -- Export ------------------------------------------------------------

  /// Chrome trace-event JSON ({"traceEvents": [...], "otherData": {...}}).
  void write_chrome(std::ostream& os) const;

  /// JSONL: one event object per line, meta lines first.
  void write_jsonl(std::ostream& os) const;

 private:
  struct OpenFlow {
    std::uint64_t id = 0;
    Nanos change_ts = 0;
    bool actuated = false;
  };

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<OpenFlow> open_flows_;
  std::vector<Nanos> latencies_;
  std::map<std::string, std::string> meta_;
  std::uint64_t next_flow_ = 1;
};

// ---------------------------------------------------------------------------
// FlowTracer — cluster-wide cap-to-effect flows with sampled, bounded
// retention.
// ---------------------------------------------------------------------------

/// Tuning knobs for the cluster trace pipeline.  Every decision that
/// follows from them is a pure function of (seed, epoch, node) and the
/// simulation clock, so the kept-flow set is bit-identical across runs
/// and thread counts.
struct FlowTracerOptions {
  /// Head sampling: keep 1-in-N closed flows (1 = keep all, 0 = none).
  /// The keep decision hashes (seed, epoch, node), not arrival order.
  std::uint64_t sample_period = 8;
  /// Tail sampling: a closed flow at or above this latency is always
  /// kept, whatever the head decision (slow flows are the story).
  Nanos slow_latency = msec(750);
  /// Ring capacity for kept flows; the oldest (by close time on the sim
  /// clock) is evicted first.
  std::size_t capacity = 4096;
  /// Salt for the head-sampling hash (pass the run seed).
  std::uint64_t seed = 0;
  /// A grant change smaller than this (|to − from|, watts) does not open
  /// a flow: small deltas are redistribution jitter — the strategy
  /// re-balancing around an unchanged decision — whose effect is not
  /// causally separable in the progress signal.  The default is ~2% of a
  /// typical ~100 W grant; in a measured demand-strategy run a quarter
  /// of all re-grants sit below a watt while the median real decision
  /// moves ~8 W, so the cut removes noise flows, not decisions.  0
  /// traces every change.
  Watts min_change_w = 2.0;
};

/// One cap change pushed to a node by a redistribution decision.
struct GrantChange {
  unsigned node = 0;
  double from_w = 0.0;
  double to_w = 0.0;
};

/// Lifecycle of a per-node flow.
enum class FlowState : std::uint8_t {
  kOpen,      ///< grant issued, effect not yet observed
  kClosed,    ///< first reflecting progress sample landed
  kOrphaned,  ///< never closed (node death/leave, stale re-grant)
};

/// Why a flow survived sampling.
enum class KeepReason : std::uint8_t {
  kDropped = 0,  ///< closed but not retained
  kHead,         ///< 1-in-N head sample
  kSlow,         ///< latency >= slow_latency (tail keep)
  kOrphan,       ///< orphans are always kept
};

/// One decision→grant→actuation→effect flow for one node.
struct FlowRecord {
  std::uint64_t id = 0;     ///< open order, 1-based
  std::uint64_t epoch = 0;  ///< epoch of the owning decision
  unsigned node = 0;
  double from_w = 0.0;
  double to_w = 0.0;
  Nanos t_decision = 0;
  Nanos t_actuate = -1;  ///< first step under the new cap (-1: never)
  Nanos t_effect = -1;   ///< first reflecting progress sample (-1: never)
  double rate = 0.0;     ///< progress rate at the effect sample
  Nanos latency = -1;    ///< t_effect - t_decision (closed flows only)
  FlowState state = FlowState::kOpen;
  KeepReason keep = KeepReason::kDropped;
  /// Owning span's sequence number (internal: O(1) span resolution).
  std::uint32_t span_seq = 0;
  /// "node_death" | "node_left" | "stale_grant" | nullptr.  Static
  /// strings only: keeps FlowRecord allocation-free on the hot path.
  const char* orphan_reason = nullptr;
};

/// One node's tick outcome, batched into FlowTracer::advance().
struct FlowTick {
  unsigned node = 0;
  bool effect = false;  ///< the node heartbeated this tick
  bool skip = false;    ///< callback variant: leave this flow untouched
  double rate = 0.0;    ///< progress rate when `effect`
};

/// Counters over the tracer's lifetime (all monotonic except `open`).
struct FlowTracerStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;
  std::uint64_t orphaned = 0;
  std::uint64_t kept = 0;     ///< flows retained in the ring (pre-eviction)
  std::uint64_t dropped = 0;  ///< closed flows sampled out
  std::uint64_t evicted = 0;  ///< kept flows pushed out by capacity
  std::uint64_t epochs = 0;   ///< decision spans opened
  std::uint64_t epochs_closed = 0;  ///< spans whose every child resolved
  std::size_t open = 0;             ///< flows currently pending
};

/// Per-node roll-up for the cluster pane / /cluster.json.
struct NodeFlowSummary {
  unsigned node = 0;
  std::uint64_t closed = 0;
  std::uint64_t orphaned = 0;
  double last_latency_ms = -1.0;  ///< most recent closed-flow latency
  double mean_latency_ms = 0.0;
};

/// /traces.json query filters (all optional; negatives mean "any").
struct TraceQuery {
  std::int64_t epoch = -1;
  std::int64_t node = -1;
  double min_latency_ms = 0.0;
  bool include_flows = true;  ///< flows=0 serves stats + summary only
};

/// Cluster-wide causal tracer: an epoch span per redistribution decision
/// fans out one flow per re-granted node; the flow closes when the first
/// progress sample under the new cap lands, orphans when the node dies
/// or leaves first.  Head+tail sampling and a close-time ring bound
/// memory; all timestamps are sim-clock Nanos so exports are
/// byte-deterministic.  Thread-safe (sim thread writes, HTTP serves).
class FlowTracer {
 public:
  explicit FlowTracer(FlowTracerOptions options = {});

  /// One redistribution decision at sim time `t`: opens the epoch span
  /// and one flow per change.  A node with a still-open flow has it
  /// orphaned first ("stale_grant") — the old grant can no longer be
  /// observed in isolation.  `changes` must be in ascending node order
  /// (the manager emits them that way); this keeps the open list merge
  /// O(n) instead of a per-epoch sort.
  void epoch_decision(std::uint64_t epoch, Nanos t,
                      const std::vector<GrantChange>& changes);

  /// Fill `out` with the node ids of currently open flows, ascending,
  /// compacting the internal open list as it goes.  The caller iterates
  /// these each tick (no allocation in steady state).
  void pending_into(std::vector<unsigned>& out);

  /// Batched tick update, one lock for the whole tick: every entry
  /// actuates its open flow (first step under the new cap), entries
  /// with `effect` set also close it (latency recorded, sampling
  /// applied).  Entries without an open flow are ignored.
  void advance(Nanos t, const std::vector<FlowTick>& ticks);

  /// Fused per-tick update: pending_into + advance under ONE lock and
  /// with no intermediate node list.  `tick_of(node, ctx)` is invoked
  /// for each currently open flow, in ascending node order, and its
  /// result actuates/closes that flow exactly as the batched overload
  /// does; a returned `skip` leaves the flow untouched.  The open list
  /// is compacted in the same pass.  This is the control-loop hot path:
  /// one mutex acquisition and one iteration per tick, total.
  void advance(Nanos t, FlowTick (*tick_of)(unsigned node, void* ctx),
               void* ctx);

  /// The node completed a model step under the newly granted cap.
  /// Idempotent; no-op without an open flow.
  void actuate(unsigned node, Nanos t);

  /// First progress sample reflecting the grant: closes the node's open
  /// flow, records latency, and applies the sampling policy.
  void effect(unsigned node, Nanos t, double rate);

  /// The node's open flow can never close (death, leave, stale grant).
  /// Orphans are always kept.  `reason` must point at a static string.
  /// No-op without an open flow.
  void orphan(unsigned node, Nanos t, const char* reason);

  /// Run metadata exported into every dump (strategy, seed, nodes…).
  void set_meta(const std::string& key, const std::string& value);

  // -- Introspection ----------------------------------------------------

  /// The options this tracer was built with (immutable after
  /// construction, so safe to read without the lock — the manager uses
  /// min_change_w to pre-filter jitter before building its change list).
  [[nodiscard]] const FlowTracerOptions& options() const { return options_; }

  [[nodiscard]] FlowTracerStats stats() const;
  [[nodiscard]] std::vector<NodeFlowSummary> node_summary() const;
  /// Allocation-free variant for per-epoch roll-ups: clears and refills
  /// `out` (rows for nodes with any closed/orphaned flows, ascending).
  void node_summary_into(std::vector<NodeFlowSummary>& out) const;
  [[nodiscard]] std::vector<FlowRecord> kept_flows() const;
  /// Chained mix over (id, epoch, node, latency) of every kept flow, in
  /// keep order: the sampling-determinism fingerprint.
  [[nodiscard]] std::uint64_t kept_hash() const;
  /// Cap-to-effect latency quantile (seconds) over all closed flows
  /// (sampled and dropped alike — the histogram sees everything).
  [[nodiscard]] double latency_quantile(double q) const;
  /// Batched quantiles (seconds): one lock, one histogram sort for all
  /// of `qs[0..n)` — the per-epoch roll-up path.
  void latency_quantiles(const double* qs, double* out, std::size_t n) const;
  /// Per-node last cap-to-effect latency in ms (-1 = none yet), indexed
  /// by node id.  Clears and refills `out`; allocation-free in steady
  /// state — the telemetry roll-in calls this every epoch.
  void last_latency_ms_into(std::vector<double>& out) const;
  /// One-lock telemetry roll-up: counters, the `n` requested latency
  /// quantiles (seconds; untouched unless any flow has closed) and the
  /// per-node last latencies — equivalent to stats() +
  /// latency_quantiles() + last_latency_ms_into() under a single mutex
  /// acquisition.  The per-epoch telemetry update calls this.
  void rollup(FlowTracerStats& stats, const double* qs, double* quantiles,
              std::size_t n, std::vector<double>& last_ms) const;

  // -- Export ------------------------------------------------------------

  /// /traces.json document: {meta, options, stats, node_summary, flows}.
  /// Deterministic byte-for-byte given identical recorded history.
  void write_traces_json(std::ostream& os, const TraceQuery& query = {}) const;

  /// Merged multi-node Chrome trace: a "cluster.decisions" lane of epoch
  /// slices plus one lane per node carrying grant/actuate/effect events
  /// linked by flow arrows.  Built from kept flows only.
  void write_perfetto(std::ostream& os) const;

 private:
  struct EpochSpan {
    std::uint64_t epoch = 0;
    Nanos t_decision = 0;
    std::uint32_t children = 0;
    std::uint32_t resolved = 0;
    Nanos t_last = -1;  ///< latest child resolution
  };
  // Spans live in a seq-indexed ring: spans_[seq - span_base_seq_].
  // Completed spans pop from the front once everything older is also
  // complete, so resolution is O(1) — no scan, no middle erase.

  struct NodeAgg {
    std::uint64_t closed = 0;
    std::uint64_t orphaned = 0;
    Nanos last_latency = -1;  ///< integer ns: no fp divides on close
    Nanos latency_sum = 0;
  };

  /// Deterministic head-sampling decision for (epoch, node).
  [[nodiscard]] bool head_keep(std::uint64_t epoch, unsigned node) const;
  /// Retain or drop a finished (closed/orphaned) flow.  Requires mutex_
  /// held.
  void finish_flow(const FlowRecord& flow);
  /// Child of span `seq` resolved at `t`; closes the span when complete.
  /// Requires mutex_ held.
  void resolve_span_child(std::uint32_t seq, Nanos t);
  void close_flow_locked(FlowRecord& flow, Nanos t, double rate);
  void orphan_locked(unsigned node, Nanos t, const char* reason);
  void observe_latency(Nanos latency);
  [[nodiscard]] double latency_quantile_locked(double q) const;
  /// Batched core: one prefix walk of the sorted histogram per q.
  /// Requires mutex_ held.
  void latency_quantiles_locked(const double* qs, double* out,
                                std::size_t n) const;

  mutable std::mutex mutex_;
  FlowTracerOptions options_;
  std::map<std::string, std::string> meta_;
  /// Per-node flow slot, indexed by node id; slots_[n].state == kOpen
  /// marks an open flow.  O(1) lookup, no per-flow allocation.
  std::vector<FlowRecord> slots_;
  /// Candidate open nodes, ascending; compacted lazily (pending_into,
  /// epoch_decision) as slots close.
  std::vector<unsigned> open_nodes_;
  std::vector<unsigned> open_scratch_;  ///< epoch_decision merge scratch
  std::size_t open_count_ = 0;
  std::deque<FlowRecord> ring_;  ///< kept flows, close order
  std::deque<EpochSpan> spans_;  ///< span ring (see EpochSpan note)
  std::uint32_t span_base_seq_ = 0;  ///< seq of spans_.front()
  std::uint32_t span_next_seq_ = 0;  ///< seq the next decision gets
  std::vector<NodeAgg> nodes_;   ///< grown on demand
  /// Exact flow-latency histogram, kept sorted by latency.  Sim-clock
  /// latencies take only a few distinct values (tick multiples), so
  /// counting exact values beats a sketch on both cost (no log() per
  /// close) and accuracy, and keeping the short list sorted on insert
  /// makes quantile reads a plain prefix walk — no per-read sort.
  /// latency_last_ caches the hot bucket (most closes repeat the
  /// previous latency).
  std::vector<std::pair<Nanos, std::uint64_t>> latency_hist_;
  std::size_t latency_last_ = 0;
  std::uint64_t latency_count_ = 0;
  Sketch epoch_span_{0.01, 1e-6, 1e6};  ///< seconds, one obs per epoch
  FlowTracerStats stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t kept_hash_;
};

}  // namespace procap::obs
