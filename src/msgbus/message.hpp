// message.hpp — the unit of communication on the progress message bus.
//
// The paper publishes progress samples over ZeroMQ PUB/SUB sockets;
// procap::msgbus is a from-scratch equivalent.  A Message is a topic
// string (prefix-matched by subscribers, exactly like ZeroMQ), an opaque
// payload, and a publish timestamp stamped by the transport.
#pragma once

#include <string>

#include "util/units.hpp"

namespace procap::msgbus {

/// One published message.
struct Message {
  /// Routing topic, e.g. "progress/lammps".  Subscribers match by prefix.
  std::string topic;
  /// Opaque payload bytes; procap::progress encodes samples here.
  std::string payload;
  /// Publish time (from the bus's TimeSource) in nanoseconds.
  Nanos timestamp = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// ZeroMQ-style prefix match: `topic` matches `filter` iff `filter` is a
/// prefix of `topic` (the empty filter matches everything).
[[nodiscard]] inline bool topic_matches(const std::string& topic,
                                        const std::string& filter) {
  return topic.size() >= filter.size() &&
         topic.compare(0, filter.size(), filter) == 0;
}

/// Topic prefix carrying alert-engine transitions; subscribe to
/// alert_topic() for everything, or alert_topic("telemetry_health") for
/// one rule.  Payloads are obs::AlertTransition::to_json().
[[nodiscard]] inline std::string alert_topic(const std::string& rule = "") {
  return rule.empty() ? "alert/" : "alert/" + rule;
}

}  // namespace procap::msgbus
