#include "msgbus/bus.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace procap::msgbus {

SubSocket::SubSocket(const Broker* broker, LinkOptions opts)
    : broker_(broker), opts_(opts), drop_rng_(opts.seed) {}

void SubSocket::subscribe(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(filters_.begin(), filters_.end(), prefix) == filters_.end()) {
    filters_.push_back(prefix);
  }
}

void SubSocket::unsubscribe(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::erase(filters_, prefix);
}

void SubSocket::offer(const Message& msg) {
  PROCAP_OBS_COUNTER(dropped_total, "bus.dropped");
  PROCAP_OBS_COUNTER(delivered_total, "bus.delivered");
  PROCAP_OBS_COUNTER(duplicated_total, "bus.duplicated");
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool matches =
      std::any_of(filters_.begin(), filters_.end(), [&](const std::string& f) {
        return topic_matches(msg.topic, f);
      });
  if (!matches) {
    return;
  }
  if (opts_.drop_probability > 0.0 &&
      drop_rng_.uniform() < opts_.drop_probability) {
    ++dropped_;
    dropped_total.inc();
    return;
  }
  if (!opts_.fault) {
    enqueue(msg, msg.timestamp + opts_.latency);
    delivered_total.inc();
    return;
  }
  Message mutated = msg;
  const LinkFault::Action action = opts_.fault->apply(mutated, broker_->now());
  if (action.drop) {
    ++dropped_;
    dropped_total.inc();
    return;
  }
  const Nanos deliver_at = msg.timestamp + opts_.latency + action.extra_delay;
  for (unsigned copy = 0; copy < std::max(1u, action.copies); ++copy) {
    enqueue(mutated, deliver_at);
    delivered_total.inc();
  }
  duplicated_ += std::max(1u, action.copies) - 1;
  duplicated_total.inc(std::max(1u, action.copies) - 1);
}

void SubSocket::enqueue(const Message& msg, Nanos deliver_at) {
  // Keep the queue sorted by delivery time so jittered delays reorder
  // deliveries the way a real transport would; stable for equal times.
  const auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), deliver_at,
      [](Nanos t, const Queued& q) { return t < q.deliver_at; });
  queue_.insert(pos, Queued{msg, deliver_at});
}

std::optional<Message> SubSocket::try_recv() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty() || queue_.front().deliver_at > broker_->now()) {
    return std::nullopt;
  }
  Message msg = std::move(queue_.front().msg);
  queue_.pop_front();
  return msg;
}

std::size_t SubSocket::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t SubSocket::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t SubSocket::duplicated() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return duplicated_;
}

void PubSocket::publish(const std::string& topic, const std::string& payload) {
  PROCAP_OBS_COUNTER(published_total, "bus.published");
  published_total.inc();
  ++published_;
  broker_->route(topic, payload);
}

std::shared_ptr<PubSocket> Broker::make_pub() {
  return std::shared_ptr<PubSocket>(new PubSocket(this));
}

std::shared_ptr<SubSocket> Broker::make_sub(LinkOptions opts) {
  auto sub = std::shared_ptr<SubSocket>(new SubSocket(this, opts));
  const std::lock_guard<std::mutex> lock(mutex_);
  subs_.push_back(sub);
  return sub;
}

std::uint64_t Broker::routed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return routed_;
}

void Broker::route(const std::string& topic, const std::string& payload) {
  PROCAP_OBS_COUNTER(routed_total, "bus.routed");
  routed_total.inc();
  Message msg{topic, payload, time_.now()};
  const std::lock_guard<std::mutex> lock(mutex_);
  ++routed_;
  bool needs_compaction = false;
  for (auto& weak : subs_) {
    if (auto sub = weak.lock()) {
      sub->offer(msg);
    } else {
      needs_compaction = true;
    }
  }
  if (needs_compaction) {
    std::erase_if(subs_, [](const std::weak_ptr<SubSocket>& w) {
      return w.expired();
    });
  }
}

}  // namespace procap::msgbus
