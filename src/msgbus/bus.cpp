#include "msgbus/bus.hpp"

#include <algorithm>

namespace procap::msgbus {

SubSocket::SubSocket(const Broker* broker, LinkOptions opts)
    : broker_(broker), opts_(opts), drop_rng_(opts.seed) {}

void SubSocket::subscribe(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(filters_.begin(), filters_.end(), prefix) == filters_.end()) {
    filters_.push_back(prefix);
  }
}

void SubSocket::unsubscribe(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::erase(filters_, prefix);
}

void SubSocket::offer(const Message& msg) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const bool matches =
      std::any_of(filters_.begin(), filters_.end(), [&](const std::string& f) {
        return topic_matches(msg.topic, f);
      });
  if (!matches) {
    return;
  }
  if (opts_.drop_probability > 0.0 &&
      drop_rng_.uniform() < opts_.drop_probability) {
    ++dropped_;
    return;
  }
  queue_.push_back(Queued{msg, msg.timestamp + opts_.latency});
}

std::optional<Message> SubSocket::try_recv() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty() || queue_.front().deliver_at > broker_->now()) {
    return std::nullopt;
  }
  Message msg = std::move(queue_.front().msg);
  queue_.pop_front();
  return msg;
}

std::size_t SubSocket::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t SubSocket::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void PubSocket::publish(const std::string& topic, const std::string& payload) {
  ++published_;
  broker_->route(topic, payload);
}

std::shared_ptr<PubSocket> Broker::make_pub() {
  return std::shared_ptr<PubSocket>(new PubSocket(this));
}

std::shared_ptr<SubSocket> Broker::make_sub(LinkOptions opts) {
  auto sub = std::shared_ptr<SubSocket>(new SubSocket(this, opts));
  const std::lock_guard<std::mutex> lock(mutex_);
  subs_.push_back(sub);
  return sub;
}

std::uint64_t Broker::routed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return routed_;
}

void Broker::route(const std::string& topic, const std::string& payload) {
  Message msg{topic, payload, time_.now()};
  const std::lock_guard<std::mutex> lock(mutex_);
  ++routed_;
  bool needs_compaction = false;
  for (auto& weak : subs_) {
    if (auto sub = weak.lock()) {
      sub->offer(msg);
    } else {
      needs_compaction = true;
    }
  }
  if (needs_compaction) {
    std::erase_if(subs_, [](const std::weak_ptr<SubSocket>& w) {
      return w.expired();
    });
  }
}

}  // namespace procap::msgbus
