// uds.hpp — Unix-domain-socket PUB/SUB transport.
//
// The in-proc Broker covers same-process monitoring; this transport covers
// the paper's actual deployment shape, where instrumented applications and
// the power-policy daemon are separate processes on one node talking over
// sockets.  Semantics mirror early ZeroMQ PUB/SUB: the publisher fans every
// message out to all connected subscribers, and each subscriber filters by
// topic prefix locally.  Wire format per frame (host byte order; this is a
// same-host transport by construction):
//
//   u32 topic_len | u32 payload_len | i64 timestamp_ns | topic | payload
//
// Slow-joiner caveat (as in ZeroMQ): messages published before a
// subscriber connects are not delivered to it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "msgbus/message.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace procap::msgbus {

/// PUB endpoint bound to a filesystem socket path.  Thread-safe.
class UdsPublisher {
 public:
  /// Binds `path` (unlinking any stale socket file) and starts accepting.
  /// `time_source` stamps outgoing messages and must outlive the publisher.
  UdsPublisher(const std::string& path, const TimeSource& time_source);
  ~UdsPublisher();

  UdsPublisher(const UdsPublisher&) = delete;
  UdsPublisher& operator=(const UdsPublisher&) = delete;

  /// Send to every currently connected subscriber.  Disconnected peers are
  /// pruned; publishing with no subscribers is a silent no-op (PUB/SUB).
  void publish(const std::string& topic, const std::string& payload);

  /// Number of currently connected subscribers.
  [[nodiscard]] std::size_t connections() const;

  /// Socket path this publisher is bound to.
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void accept_loop();

  std::string path_;
  const TimeSource& time_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex mutex_;
  std::vector<int> client_fds_;
};

/// Reconnection behaviour for UdsSubscriber.
struct UdsSubscriberOptions {
  /// When the publisher goes away, keep retrying the socket path with
  /// randomized (decorrelated-jitter) backoff instead of going dead.
  /// Messages published while disconnected are lost (PUB/SUB slow-joiner
  /// semantics), but the feed resumes as soon as a publisher rebinds the
  /// path.
  bool reconnect = true;
  Nanos backoff_initial = msec(10);
  Nanos backoff_max = msec(500);
  /// Seed for the backoff jitter stream; 0 (the default) derives a
  /// per-subscriber seed from entropy, so a herd of subscribers losing
  /// one publisher does not retry in lockstep.  Tests pin it.
  std::uint64_t backoff_seed = 0;
};

/// Decorrelated-jitter backoff step: the next sleep is drawn uniformly
/// from [backoff_initial, 3 * prev], clamped to backoff_max.  Unlike
/// plain doubling, consecutive sleeps are randomized over a widening
/// window, so subscribers that disconnected together (one publisher
/// death = a whole herd) spread their retries instead of hammering the
/// socket in synchronized waves.
[[nodiscard]] Nanos decorrelated_backoff(Nanos prev, Rng& rng,
                                         const UdsSubscriberOptions& options);

/// SUB endpoint connected to a UdsPublisher.  Thread-safe.
class UdsSubscriber {
 public:
  /// Connects to `path`; throws std::runtime_error if nothing is
  /// listening at construction (reconnection only covers later losses).
  explicit UdsSubscriber(const std::string& path,
                         UdsSubscriberOptions options = {});
  ~UdsSubscriber();

  UdsSubscriber(const UdsSubscriber&) = delete;
  UdsSubscriber& operator=(const UdsSubscriber&) = delete;

  /// Add a topic prefix filter (no filters -> nothing is delivered).
  /// Filtering is subscriber-local, so filters survive reconnects.
  void subscribe(const std::string& prefix);

  /// Pop the oldest received message, if any.
  [[nodiscard]] std::optional<Message> try_recv();

  /// Block until a message arrives or `timeout` elapses.
  [[nodiscard]] std::optional<Message> recv(Nanos timeout);

  /// True while the connection to the publisher is alive.
  [[nodiscard]] bool connected() const { return connected_.load(); }

  /// Successful reconnections so far.
  [[nodiscard]] std::uint64_t reconnects() const {
    return reconnects_.load();
  }

 private:
  void read_loop();
  /// Drain frames from `fd` until EOF/error.
  void read_frames(int fd);
  /// Retry connect until it succeeds or the subscriber is stopping.
  bool reconnect_with_backoff();

  std::string path_;
  UdsSubscriberOptions options_;
  int fd_ = -1;                  // guarded by fd_mutex_
  mutable std::mutex fd_mutex_;  // swap/shutdown/close coordination
  std::thread read_thread_;
  std::atomic<bool> connected_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  Rng backoff_rng_;  // touched only by the read thread
  mutable std::mutex mutex_;  // filters + queue
  std::vector<std::string> filters_;
  std::deque<Message> queue_;
};

}  // namespace procap::msgbus
