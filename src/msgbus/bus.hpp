// bus.hpp — in-process publish/subscribe broker.
//
// The in-proc transport backs both real-threaded use (the quickstart and
// Listing-1 examples, where application threads publish and a monitor
// thread polls) and simulated use (apps in src/apps publish on the sim
// clock).  Per-subscriber LinkOptions model transport imperfections:
// message loss and delivery latency, plus an optional pluggable LinkFault
// policy for richer fault models (delay jitter with reordering,
// duplication, corruption, burst outages — see procap::fault).  The paper
// observed its ZeroMQ-based framework occasionally reporting zero progress
// for OpenMC (Section V-C); with a lossy link, an aggregation window that
// loses its samples reads as zero — the same artifact, reproduced as a
// testable transport property.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "msgbus/message.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace procap::msgbus {

/// Pluggable per-link fault policy, consulted for every matching message.
/// Implementations may mutate the message in place (payload corruption /
/// truncation) and return how the transport should treat it.  The stock
/// implementation is procap::fault::LinkFaultInjector, driven by a
/// scripted FaultPlan; the interface lives here so the transport has no
/// dependency on the fault subsystem.
class LinkFault {
 public:
  virtual ~LinkFault() = default;

  struct Action {
    /// Discard the message entirely (loss or outage).
    bool drop = false;
    /// Number of queued deliveries when not dropped (2+ = duplication).
    unsigned copies = 1;
    /// Extra delivery delay on top of the link's base latency.  Distinct
    /// per-message delays reorder deliveries relative to publish order.
    Nanos extra_delay = 0;
  };

  /// Decide the fate of `msg` (publish-stamped) at bus time `now`.
  virtual Action apply(Message& msg, Nanos now) = 0;
};

/// Per-subscription delivery characteristics.
struct LinkOptions {
  /// Probability in [0, 1] that a matching message is silently dropped.
  double drop_probability = 0.0;
  /// Delivery latency: a message becomes receivable at publish + latency.
  Nanos latency = 0;
  /// Seed for the drop decision stream (deterministic per link).
  std::uint64_t seed = 0x5eed;
  /// Optional generalized fault policy, applied after the plain drop
  /// check.  Shared so one scripted injector can be inspected by tests
  /// while the socket holds it alive.
  std::shared_ptr<LinkFault> fault;
};

class Broker;

/// Receiving endpoint.  Created by Broker::make_sub(); thread-safe.
class SubSocket {
 public:
  /// Add a topic prefix filter.  A socket with no filters receives nothing
  /// (subscribe("") to receive everything) — matching ZeroMQ SUB semantics.
  void subscribe(const std::string& prefix);

  /// Remove a previously added filter (no-op if absent).
  void unsubscribe(const std::string& prefix);

  /// Pop the oldest message whose delivery time has arrived, if any.
  [[nodiscard]] std::optional<Message> try_recv();

  /// Messages queued (including not-yet-deliverable delayed ones).
  [[nodiscard]] std::size_t pending() const;

  /// Total matching messages dropped by the lossy link so far (both the
  /// plain drop_probability stream and the LinkFault policy).
  [[nodiscard]] std::uint64_t dropped() const;

  /// Extra deliveries queued by LinkFault duplication so far.
  [[nodiscard]] std::uint64_t duplicated() const;

 private:
  friend class Broker;
  SubSocket(const Broker* broker, LinkOptions opts);

  struct Queued {
    Message msg;
    Nanos deliver_at;
  };

  void offer(const Message& msg);  // called by Broker under its routing pass
  void enqueue(const Message& msg, Nanos deliver_at);  // sorted by deliver_at

  const Broker* broker_;
  LinkOptions opts_;
  Rng drop_rng_;
  mutable std::mutex mutex_;
  std::vector<std::string> filters_;
  std::deque<Queued> queue_;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
};

/// Sending endpoint.  Created by Broker::make_pub(); thread-safe.
class PubSocket {
 public:
  /// Publish to every currently attached subscriber with a matching filter.
  /// The message is stamped with the broker's TimeSource.
  void publish(const std::string& topic, const std::string& payload);

  /// Number of messages published through this socket.
  [[nodiscard]] std::uint64_t published() const { return published_; }

 private:
  friend class Broker;
  explicit PubSocket(Broker* broker) : broker_(broker) {}

  Broker* broker_;
  std::uint64_t published_ = 0;
};

/// In-process broker: owns the subscriber registry and the clock used to
/// stamp messages and release delayed deliveries.
class Broker {
 public:
  /// `time_source` must outlive the broker; pass the simulation clock in
  /// simulated runs or a SteadyTimeSource for wall-clock runs.
  explicit Broker(const TimeSource& time_source) : time_(time_source) {}

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Create a publisher endpoint bound to this broker.
  [[nodiscard]] std::shared_ptr<PubSocket> make_pub();

  /// Create a subscriber endpoint with the given link characteristics.
  [[nodiscard]] std::shared_ptr<SubSocket> make_sub(LinkOptions opts = {});

  /// Current bus time (exposed so endpoints can stamp consistently).
  [[nodiscard]] Nanos now() const { return time_.now(); }

  /// Total messages routed (delivered to at least zero subscribers each).
  [[nodiscard]] std::uint64_t routed() const;

 private:
  friend class PubSocket;
  void route(const std::string& topic, const std::string& payload);

  const TimeSource& time_;
  mutable std::mutex mutex_;
  std::vector<std::weak_ptr<SubSocket>> subs_;
  std::uint64_t routed_ = 0;
};

}  // namespace procap::msgbus
