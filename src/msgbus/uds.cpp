#include "msgbus/uds.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace procap::msgbus {

namespace {

struct FrameHeader {
  std::uint32_t topic_len;
  std::uint32_t payload_len;
  std::int64_t timestamp;
};

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("uds: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

// Write the full buffer; returns false on any error (peer gone).
bool send_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Read exactly `len` bytes; returns false on EOF or error.
bool recv_all(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n <= 0) {
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

// Sanity bound on frame sizes to catch stream desync.
constexpr std::uint32_t kMaxFramePart = 1u << 24;  // 16 MiB

// Connect to `path`; returns the fd or -1 (no throw — used by the
// reconnect loop where failure is routine).
int connect_once(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

UdsPublisher::UdsPublisher(const std::string& path,
                           const TimeSource& time_source)
    : path_(path), time_(time_source) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("UdsPublisher: socket() failed");
  }
  ::unlink(path.c_str());
  const sockaddr_un addr = make_addr(path);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("UdsPublisher: bind(" + path + ") failed");
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("UdsPublisher: listen() failed");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

UdsPublisher::~UdsPublisher() {
  stopping_.store(true);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const int fd : client_fds_) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  ::unlink(path_.c_str());
}

void UdsPublisher::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) {
        return;
      }
      continue;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    client_fds_.push_back(fd);
  }
}

void UdsPublisher::publish(const std::string& topic,
                           const std::string& payload) {
  PROCAP_OBS_COUNTER(published_total, "uds.published");
  published_total.inc();
  const FrameHeader header{static_cast<std::uint32_t>(topic.size()),
                           static_cast<std::uint32_t>(payload.size()),
                           time_.now()};
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> dead;
  for (const int fd : client_fds_) {
    const bool ok = send_all(fd, &header, sizeof(header)) &&
                    send_all(fd, topic.data(), topic.size()) &&
                    send_all(fd, payload.data(), payload.size());
    if (!ok) {
      dead.push_back(fd);
    }
  }
  for (const int fd : dead) {
    ::close(fd);
    std::erase(client_fds_, fd);
  }
}

std::size_t UdsPublisher::connections() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return client_fds_.size();
}

Nanos decorrelated_backoff(Nanos prev, Rng& rng,
                           const UdsSubscriberOptions& options) {
  const Nanos lo = std::max<Nanos>(options.backoff_initial, 1);
  // Widening window [initial, 3 * prev]: random within it decorrelates
  // retry phases across subscribers while still growing toward the cap.
  const Nanos hi = std::max(lo, std::min(options.backoff_max,
                                         prev > options.backoff_max / 3
                                             ? options.backoff_max
                                             : 3 * prev));
  return rng.uniform_int(lo, hi);
}

namespace {

/// Per-subscriber jitter seed when the options leave it to us: distinct
/// per object and per construction instant, which is all the herd needs.
std::uint64_t auto_backoff_seed(const void* self) {
  const auto t = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return SplitMix64(t ^ reinterpret_cast<std::uintptr_t>(self)).next();
}

}  // namespace

UdsSubscriber::UdsSubscriber(const std::string& path,
                             UdsSubscriberOptions options)
    : path_(path),
      options_(options),
      backoff_rng_(options.backoff_seed != 0 ? options.backoff_seed
                                             : auto_backoff_seed(this)) {
  // Validate the path length eagerly (make_addr throws) so the reconnect
  // loop never has to.
  (void)make_addr(path);
  fd_ = connect_once(path);
  if (fd_ < 0) {
    throw std::runtime_error("UdsSubscriber: connect(" + path + ") failed");
  }
  connected_.store(true);
  read_thread_ = std::thread([this] { read_loop(); });
}

UdsSubscriber::~UdsSubscriber() {
  stopping_.store(true);
  {
    const std::lock_guard<std::mutex> lock(fd_mutex_);
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }
  if (read_thread_.joinable()) {
    read_thread_.join();
  }
  const std::lock_guard<std::mutex> lock(fd_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdsSubscriber::subscribe(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(filters_.begin(), filters_.end(), prefix) == filters_.end()) {
    filters_.push_back(prefix);
  }
}

void UdsSubscriber::read_frames(int fd) {
  PROCAP_OBS_COUNTER(frames_total, "uds.frames");
  for (;;) {
    FrameHeader header{};
    if (!recv_all(fd, &header, sizeof(header))) {
      break;
    }
    if (header.topic_len > kMaxFramePart || header.payload_len > kMaxFramePart) {
      PROCAP_ERROR << "UdsSubscriber: oversized frame, closing";
      break;
    }
    Message msg;
    msg.topic.resize(header.topic_len);
    msg.payload.resize(header.payload_len);
    msg.timestamp = header.timestamp;
    if (!recv_all(fd, msg.topic.data(), msg.topic.size()) ||
        !recv_all(fd, msg.payload.data(), msg.payload.size())) {
      break;
    }
    frames_total.inc();
    const std::lock_guard<std::mutex> lock(mutex_);
    const bool matches = std::any_of(
        filters_.begin(), filters_.end(),
        [&](const std::string& f) { return topic_matches(msg.topic, f); });
    if (matches) {
      queue_.push_back(std::move(msg));
    }
  }
}

bool UdsSubscriber::reconnect_with_backoff() {
  Nanos backoff = options_.backoff_initial;
  while (!stopping_.load()) {
    const int fd = connect_once(path_);
    if (fd >= 0) {
      const std::lock_guard<std::mutex> lock(fd_mutex_);
      if (stopping_.load()) {
        ::close(fd);
        return false;
      }
      if (fd_ >= 0) {
        ::close(fd_);
      }
      fd_ = fd;
      connected_.store(true);
      reconnects_.fetch_add(1);
      PROCAP_OBS_COUNTER(reconnects_total, "uds.reconnects");
      reconnects_total.inc();
      return true;
    }
    // Sleep the backoff in small chunks so destruction stays prompt.
    Nanos remaining = backoff;
    while (remaining > 0 && !stopping_.load()) {
      const Nanos chunk = std::min<Nanos>(remaining, msec(1));
      std::this_thread::sleep_for(std::chrono::nanoseconds(chunk));
      remaining -= chunk;
    }
    backoff = decorrelated_backoff(backoff, backoff_rng_, options_);
  }
  return false;
}

void UdsSubscriber::read_loop() {
  for (;;) {
    int fd;
    {
      const std::lock_guard<std::mutex> lock(fd_mutex_);
      fd = fd_;
    }
    read_frames(fd);
    connected_.store(false);
    if (stopping_.load() || !options_.reconnect) {
      return;
    }
    if (!reconnect_with_backoff()) {
      return;
    }
    PROCAP_DEBUG << "UdsSubscriber: reconnected to " << path_;
  }
}

std::optional<Message> UdsSubscriber::try_recv() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  Message msg = std::move(queue_.front());
  queue_.pop_front();
  return msg;
}

std::optional<Message> UdsSubscriber::recv(Nanos timeout) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
  for (;;) {
    if (auto msg = try_recv()) {
      return msg;
    }
    if (std::chrono::steady_clock::now() >= deadline || !connected_.load()) {
      return try_recv();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace procap::msgbus
