// injectors.hpp — runtime fault injectors driven by a FaultPlan.
//
// Two injectors translate the scripted episodes of a FaultPlan into the
// extension points the substrates expose:
//
//   * LinkFaultInjector implements msgbus::LinkFault — per-message drop,
//     duplication, payload corruption/truncation, and delay/jitter (which
//     reorders deliveries), plus burst outages that drop everything in a
//     window.  Supersedes the bare LinkOptions::drop_probability.
//   * MsrFaultInjector produces an EmulatedMsr fault hook — transient
//     EIO on reads/writes and stuck registers whose writes are silently
//     swallowed, the observable failure modes of /dev/cpu/*/msr.
//   * NodeFaultInjector scripts cluster churn — crash (with rejoin at a
//     finite episode end), hang, heartbeat loss and slow-node — as pure
//     per-(node, time) state queries for the cluster layer.
//
// Each injector owns an Rng stream forked deterministically from the plan
// seed, so a chaos scenario is bit-reproducible: same plan, same message
// and MSR access sequence, same faults.
#pragma once

#include <cstdint>
#include <mutex>

#include "fault/plan.hpp"
#include "msgbus/bus.hpp"
#include "msr/emulated.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace procap::fault {

/// Counters for everything a link injector did.
struct LinkFaultStats {
  std::uint64_t dropped = 0;         ///< messages discarded (incl. outages)
  std::uint64_t outage_dropped = 0;  ///< subset discarded by burst outages
  std::uint64_t duplicated = 0;      ///< extra copies queued
  std::uint64_t corrupted = 0;       ///< payloads bit-flipped
  std::uint64_t truncated = 0;       ///< payloads cut short
  std::uint64_t delayed = 0;         ///< messages given extra delay

  friend bool operator==(const LinkFaultStats&, const LinkFaultStats&) =
      default;
};

/// msgbus::LinkFault implementation scripted by a FaultPlan.  Install one
/// per subscriber link (LinkOptions::fault); sharing across links works
/// but entangles their random streams.
class LinkFaultInjector final : public msgbus::LinkFault {
 public:
  explicit LinkFaultInjector(const FaultPlan& plan);

  Action apply(msgbus::Message& msg, Nanos now) override;

  [[nodiscard]] LinkFaultStats stats() const;

 private:
  std::vector<LinkEpisode> episodes_;
  mutable std::mutex mutex_;
  Rng rng_;
  LinkFaultStats stats_;
};

/// Counters for everything an MSR injector did.
struct MsrFaultStats {
  std::uint64_t read_failures = 0;   ///< reads failed with EIO
  std::uint64_t write_failures = 0;  ///< writes failed with EIO
  std::uint64_t dropped_writes = 0;  ///< writes swallowed by stuck regs

  friend bool operator==(const MsrFaultStats&, const MsrFaultStats&) = default;
};

/// EmulatedMsr fault-hook provider scripted by a FaultPlan.  Needs the
/// clock the episodes are timed against (the simulation clock in sim
/// runs); `time_source` must outlive the injector, and the injector must
/// outlive the device it is installed on.
class MsrFaultInjector {
 public:
  MsrFaultInjector(const FaultPlan& plan, const TimeSource& time_source);

  /// Decide one access's fate; usable directly as an EmulatedMsr hook.
  [[nodiscard]] msr::EmulatedMsr::FaultAction decide(unsigned cpu,
                                                     std::uint32_t reg,
                                                     bool write);

  /// Convenience: install decide() as `dev`'s fault hook.
  void install(msr::EmulatedMsr& dev);

  [[nodiscard]] MsrFaultStats stats() const;

 private:
  std::vector<MsrEpisode> episodes_;
  const TimeSource* time_;
  mutable std::mutex mutex_;
  Rng rng_;
  MsrFaultStats stats_;
};

/// Per-node fault state at one instant, as the cluster layer consumes it.
struct NodeFaultState {
  bool crashed = false;
  bool hung = false;
  bool hb_lost = false;
  /// Product of every active slow episode's factor (1.0 = full speed).
  double slow_factor = 1.0;

  /// Node is executing its workload (possibly slowed).
  [[nodiscard]] bool progressing() const { return !crashed && !hung; }
  /// Node's heartbeats reach the cluster manager.
  [[nodiscard]] bool heartbeating() const {
    return !crashed && !hung && !hb_lost;
  }
  /// Node draws power: crash cuts it, a hang leaves it stuck.
  [[nodiscard]] bool powered() const { return !crashed; }

  friend bool operator==(const NodeFaultState&, const NodeFaultState&) =
      default;
};

/// Scripted node churn for a cluster of known size.  Binding resolves
/// every `frac` episode to a concrete target set, drawn once from an Rng
/// stream forked from the plan seed in episode order — so (plan, size)
/// fully determines who fails when, and state() is a pure lookup that
/// any worker thread may call concurrently.
class NodeFaultInjector {
 public:
  NodeFaultInjector(const FaultPlan& plan, unsigned nodes);

  /// Fault state of `node` at time `t`.  Thread-safe (const, no locks).
  [[nodiscard]] NodeFaultState state(unsigned node, Nanos t) const;

  /// Resolved target nodes of episode `i` (sorted; explicit-id episodes
  /// have one entry).  For tests and churn reporting.
  [[nodiscard]] const std::vector<unsigned>& targets(std::size_t i) const;

  [[nodiscard]] std::size_t episodes() const { return bound_.size(); }

  [[nodiscard]] unsigned nodes() const { return nodes_; }

 private:
  struct Bound {
    NodeEpisode episode;
    std::vector<unsigned> targets;  // sorted ascending
  };

  std::vector<Bound> bound_;
  unsigned nodes_ = 0;
};

}  // namespace procap::fault
