#include "fault/plan.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace procap::fault {

namespace {

[[noreturn]] void fail(int line, const std::string& why) {
  throw std::invalid_argument("FaultPlan: line " + std::to_string(line) +
                              ": " + why);
}

double parse_probability(const std::string& token, int line,
                         const std::string& key) {
  std::size_t pos = 0;
  double p = 0.0;
  try {
    p = std::stod(token, &pos);
  } catch (const std::exception&) {
    fail(line, "bad probability for '" + key + "': " + token);
  }
  if (pos != token.size() || p < 0.0 || p > 1.0) {
    fail(line, "probability for '" + key + "' must be in [0, 1]: " + token);
  }
  return p;
}

Nanos parse_seconds(const std::string& token, int line,
                    const std::string& key) {
  if (token == "inf") {
    return kForever;
  }
  std::size_t pos = 0;
  double s = 0.0;
  try {
    s = std::stod(token, &pos);
  } catch (const std::exception&) {
    fail(line, "bad time for '" + key + "': " + token);
  }
  if (pos != token.size() || s < 0.0) {
    fail(line, "time for '" + key + "' must be non-negative: " + token);
  }
  return to_nanos(s);
}

std::uint32_t parse_reg(const std::string& token, int line,
                        const std::string& key) {
  std::size_t pos = 0;
  unsigned long reg = 0;
  try {
    reg = std::stoul(token, &pos, 0);  // base 0: accepts 0x…, decimal
  } catch (const std::exception&) {
    fail(line, "bad register for '" + key + "': " + token);
  }
  if (pos != token.size() || reg > 0xFFFFFFFFUL) {
    fail(line, "bad register for '" + key + "': " + token);
  }
  return static_cast<std::uint32_t>(reg);
}

// Pull the next token; fails if the line ends early.
std::string need(std::istringstream& is, int line, const std::string& key) {
  std::string token;
  if (!(is >> token)) {
    fail(line, "missing value for '" + key + "'");
  }
  return token;
}

NodeFault parse_node_fault(const std::string& token, int line) {
  if (token == "crash") {
    return NodeFault::kCrash;
  }
  if (token == "hang") {
    return NodeFault::kHang;
  }
  if (token == "hbloss") {
    return NodeFault::kHbLoss;
  }
  if (token == "slow") {
    return NodeFault::kSlow;
  }
  fail(line, "unknown node fault '" + token + "'");
}

int parse_node_id(const std::string& token, int line) {
  std::size_t pos = 0;
  long id = 0;
  try {
    id = std::stol(token, &pos);
  } catch (const std::exception&) {
    fail(line, "bad node id: " + token);
  }
  if (pos != token.size() || id < 0) {
    fail(line, "node id must be a non-negative integer: " + token);
  }
  return static_cast<int>(id);
}

}  // namespace

const char* to_string(NodeFault fault) {
  switch (fault) {
    case NodeFault::kCrash:
      return "crash";
    case NodeFault::kHang:
      return "hang";
    case NodeFault::kHbLoss:
      return "hbloss";
    case NodeFault::kSlow:
      return "slow";
  }
  return "?";
}

FaultPlan FaultPlan::parse(std::istream& is) {
  FaultPlan plan;
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) {
      raw.erase(hash);
    }
    std::istringstream line(raw);
    std::string kind;
    if (!(line >> kind)) {
      continue;  // blank or comment-only line
    }
    if (kind == "seed") {
      const std::string token = need(line, line_no, "seed");
      try {
        plan.seed = std::stoull(token, nullptr, 0);
      } catch (const std::exception&) {
        fail(line_no, "bad seed: " + token);
      }
    } else if (kind == "link") {
      LinkEpisode ep;
      ep.start = parse_seconds(need(line, line_no, "start"), line_no, "start");
      ep.end = parse_seconds(need(line, line_no, "end"), line_no, "end");
      std::string key;
      while (line >> key) {
        if (key == "outage") {
          ep.outage = true;
        } else if (key == "drop") {
          ep.drop = parse_probability(need(line, line_no, key), line_no, key);
        } else if (key == "duplicate") {
          ep.duplicate =
              parse_probability(need(line, line_no, key), line_no, key);
        } else if (key == "corrupt") {
          ep.corrupt =
              parse_probability(need(line, line_no, key), line_no, key);
        } else if (key == "truncate") {
          ep.truncate =
              parse_probability(need(line, line_no, key), line_no, key);
        } else if (key == "delay") {
          ep.delay = parse_seconds(need(line, line_no, key), line_no, key);
        } else if (key == "jitter") {
          ep.jitter = parse_seconds(need(line, line_no, key), line_no, key);
        } else {
          fail(line_no, "unknown link fault '" + key + "'");
        }
      }
      if (ep.end <= ep.start) {
        fail(line_no, "episode end must follow start");
      }
      plan.link.push_back(ep);
    } else if (kind == "msr") {
      MsrEpisode ep;
      ep.start = parse_seconds(need(line, line_no, "start"), line_no, "start");
      ep.end = parse_seconds(need(line, line_no, "end"), line_no, "end");
      std::string key;
      while (line >> key) {
        if (key == "read_fail") {
          ep.read_fail =
              parse_probability(need(line, line_no, key), line_no, key);
        } else if (key == "write_fail") {
          ep.write_fail =
              parse_probability(need(line, line_no, key), line_no, key);
        } else if (key == "stuck") {
          ep.stuck = true;
          ep.regs.push_back(parse_reg(need(line, line_no, key), line_no, key));
        } else if (key == "reg") {
          // Scope the episode's probabilities to this register (repeat for
          // several; no 'reg' keys = every register).
          ep.regs.push_back(parse_reg(need(line, line_no, key), line_no, key));
        } else {
          fail(line_no, "unknown msr fault '" + key + "'");
        }
      }
      if (ep.end <= ep.start) {
        fail(line_no, "episode end must follow start");
      }
      plan.msr.push_back(ep);
    } else if (kind == "node") {
      NodeEpisode ep;
      ep.start = parse_seconds(need(line, line_no, "start"), line_no, "start");
      ep.end = parse_seconds(need(line, line_no, "end"), line_no, "end");
      ep.fault = parse_node_fault(need(line, line_no, "fault"), line_no);
      bool has_target = false;
      bool has_factor = false;
      std::string key;
      while (line >> key) {
        if (key == "id") {
          if (has_target) {
            fail(line_no, "episode already has a target");
          }
          ep.node = parse_node_id(need(line, line_no, key), line_no);
          has_target = true;
        } else if (key == "frac") {
          if (has_target) {
            fail(line_no, "episode already has a target");
          }
          ep.fraction =
              parse_probability(need(line, line_no, key), line_no, key);
          if (ep.fraction <= 0.0) {
            fail(line_no, "frac must be in (0, 1]");
          }
          has_target = true;
        } else if (key == "factor") {
          ep.factor =
              parse_probability(need(line, line_no, key), line_no, key);
          if (ep.factor <= 0.0) {
            fail(line_no, "factor must be in (0, 1]");
          }
          has_factor = true;
        } else {
          fail(line_no, "unknown node fault key '" + key + "'");
        }
      }
      if (!has_target) {
        fail(line_no, "node episode needs 'id N' or 'frac P'");
      }
      if (has_factor && ep.fault != NodeFault::kSlow) {
        fail(line_no, "'factor' only applies to 'slow'");
      }
      if (ep.end <= ep.start) {
        fail(line_no, "episode end must follow start");
      }
      // Same-kind overlap on one explicit node is ambiguous: the
      // injector could not decide which episode governs the window.
      for (const NodeEpisode& prior : plan.node) {
        if (prior.node >= 0 && prior.node == ep.node &&
            prior.fault == ep.fault && ep.start < prior.end &&
            prior.start < ep.end) {
          fail(line_no, std::string("overlapping '") + to_string(ep.fault) +
                            "' episodes for node " + std::to_string(ep.node));
        }
      }
      plan.node.push_back(ep);
    } else {
      fail(line_no, "unknown directive '" + kind + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("FaultPlan: cannot open " + path);
  }
  return parse(is);
}

}  // namespace procap::fault
