// plan.hpp — scripted, seed-reproducible fault schedules.
//
// The paper's own evaluation hit a telemetry fault in the wild: dropped
// progress reports surfacing as zero-progress windows (Section V-C).  A
// FaultPlan makes that class of event a first-class, scriptable input: a
// schedule of fault episodes over simulation time, covering both the
// message transport (drop, delay/jitter, duplication, corruption,
// truncation, burst outages) and the MSR substrate (transient EIO on
// read/write, stuck registers — the failure modes of /dev/cpu/*/msr).
// Every random decision an injector makes is drawn from a generator
// seeded from the plan, so a chaos run is bit-reproducible from
// (plan, workload seed) alone.
//
// Text format, one episode per line (times in seconds, `inf` for open
// intervals; '#' starts a comment):
//
//   seed 42
//   link 10 20  drop 0.3 delay 0.05 jitter 0.02
//   link 30 32  outage
//   link 0 inf  duplicate 0.05 corrupt 0.01 truncate 0.01
//   msr  40 45  read_fail 0.5 write_fail 0.2
//   msr  40 45  read_fail 0.5 reg 0x611 reg 0x610   (scoped to registers)
//   msr  50 60  stuck 0x610
//
// Node-level faults (the cluster layer's churn vocabulary) use the same
// line shape.  Every node episode names one fault kind and one target —
// either an explicit node (`id N`) or a seeded random fraction of the
// cluster (`frac P`, drawn once per episode from the plan seed).  An
// episode with a finite end models recovery: a crashed node *rejoins* at
// the end time with fresh state.
//
//   node 10 20   crash id 5        # node 5 dies at 10 s, rejoins at 20 s
//   node 30 inf  crash frac 0.10   # a random 10% of nodes die for good
//   node 10 40   hang id 7         # no progress, no heartbeats, power stuck
//   node 15 25   hbloss frac 0.05  # heartbeats lost; node keeps running
//   node 0 inf   slow id 2 factor 0.5   # node 2 progresses at half speed
//
// Parse-time validation rejects malformed lines (unknown fault kinds,
// missing/duplicate targets, probabilities outside (0, 1]), episodes
// whose end does not follow their start, and overlapping same-kind
// episodes that target the same explicit node (the injector could not
// decide which one governs).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap::fault {

/// Sentinel end time for episodes that never end.
inline constexpr Nanos kForever = std::numeric_limits<Nanos>::max();

/// One transport-fault episode, active over [start, end).
struct LinkEpisode {
  Nanos start = 0;
  Nanos end = kForever;
  /// Drop every matching message while active (burst outage).
  bool outage = false;
  /// Per-message probabilities in [0, 1].
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;   ///< flip bits in one payload byte
  double truncate = 0.0;  ///< cut the payload short
  /// Added delivery delay; jitter adds uniform [0, jitter) on top, which
  /// reorders messages relative to their publish order.
  Nanos delay = 0;
  Nanos jitter = 0;

  [[nodiscard]] bool active(Nanos t) const { return t >= start && t < end; }

  friend bool operator==(const LinkEpisode&, const LinkEpisode&) = default;
};

/// One MSR-fault episode, active over [start, end).
struct MsrEpisode {
  Nanos start = 0;
  Nanos end = kForever;
  /// Per-access probability of a transient EIO (MsrError) in [0, 1].
  double read_fail = 0.0;
  double write_fail = 0.0;
  /// Registers whose writes are silently dropped while active ("stuck").
  /// Empty with stuck == false means the probabilities apply to every
  /// register; a non-empty list scopes the whole episode to those regs.
  bool stuck = false;
  std::vector<std::uint32_t> regs;

  [[nodiscard]] bool active(Nanos t) const { return t >= start && t < end; }

  /// True when the episode applies to `reg` (empty list = all registers).
  [[nodiscard]] bool affects(std::uint32_t reg) const {
    if (regs.empty()) {
      return true;
    }
    for (const std::uint32_t r : regs) {
      if (r == reg) {
        return true;
      }
    }
    return false;
  }

  friend bool operator==(const MsrEpisode&, const MsrEpisode&) = default;
};

/// Node-level fault kinds (cluster churn).
enum class NodeFault {
  kCrash,   ///< node vanishes: no progress, no heartbeats, no power
  kHang,    ///< wedged: no progress, no heartbeats, power stays stuck
  kHbLoss,  ///< telemetry plane only: heartbeats lost, node keeps running
  kSlow,    ///< progresses at `factor` of nominal speed
};

[[nodiscard]] const char* to_string(NodeFault fault);

/// One node-fault episode, active over [start, end).  A finite end means
/// the fault clears then — for kCrash that is the node rejoining.
struct NodeEpisode {
  Nanos start = 0;
  Nanos end = kForever;
  NodeFault fault = NodeFault::kCrash;
  /// Explicit target node, or -1 when `fraction` selects the targets.
  int node = -1;
  /// Seeded random fraction of the cluster to hit (0 = use `node`).
  double fraction = 0.0;
  /// kSlow only: progress multiplier in (0, 1].
  double factor = 1.0;

  [[nodiscard]] bool active(Nanos t) const { return t >= start && t < end; }

  friend bool operator==(const NodeEpisode&, const NodeEpisode&) = default;
};

/// A complete scripted fault scenario.
struct FaultPlan {
  /// Seed for every injector RNG stream derived from this plan.
  std::uint64_t seed = 0x5eed;
  std::vector<LinkEpisode> link;
  std::vector<MsrEpisode> msr;
  std::vector<NodeEpisode> node;

  [[nodiscard]] bool empty() const {
    return link.empty() && msr.empty() && node.empty();
  }

  /// Parse the text format above; throws std::invalid_argument with the
  /// offending line number on malformed input.
  [[nodiscard]] static FaultPlan parse(std::istream& is);

  /// Load a plan from a file; throws std::runtime_error if unreadable.
  [[nodiscard]] static FaultPlan load(const std::string& path);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace procap::fault
