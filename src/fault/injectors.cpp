#include "fault/injectors.hpp"

#include <algorithm>
#include <cmath>

namespace procap::fault {

namespace {
// Distinct SplitMix64 streams per injector kind so link and MSR faults
// drawn from the same plan seed are statistically independent.
constexpr std::uint64_t kLinkStream = 0x11A7ULL;
constexpr std::uint64_t kMsrStream = 0x3517ULL;
constexpr std::uint64_t kNodeStream = 0x40DEULL;
}  // namespace

LinkFaultInjector::LinkFaultInjector(const FaultPlan& plan)
    : episodes_(plan.link), rng_(SplitMix64(plan.seed ^ kLinkStream).next()) {}

msgbus::LinkFault::Action LinkFaultInjector::apply(msgbus::Message& msg,
                                                   Nanos now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Action action;
  bool delayed = false;
  for (const LinkEpisode& ep : episodes_) {
    if (!ep.active(now)) {
      continue;
    }
    if (ep.outage) {
      ++stats_.outage_dropped;
      ++stats_.dropped;
      action.drop = true;
      return action;
    }
    if (ep.drop > 0.0 && rng_.uniform() < ep.drop) {
      ++stats_.dropped;
      action.drop = true;
      return action;
    }
    if (ep.duplicate > 0.0 && rng_.uniform() < ep.duplicate) {
      ++action.copies;
      ++stats_.duplicated;
    }
    if (ep.corrupt > 0.0 && !msg.payload.empty() &&
        rng_.uniform() < ep.corrupt) {
      const auto i = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(msg.payload.size()) - 1));
      const auto mask = static_cast<char>(rng_.uniform_int(1, 255));
      msg.payload[i] = static_cast<char>(msg.payload[i] ^ mask);
      ++stats_.corrupted;
    }
    if (ep.truncate > 0.0 && !msg.payload.empty() &&
        rng_.uniform() < ep.truncate) {
      msg.payload.resize(static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(msg.payload.size()) - 1)));
      ++stats_.truncated;
    }
    if (ep.delay > 0 || ep.jitter > 0) {
      Nanos extra = ep.delay;
      if (ep.jitter > 0) {
        extra += rng_.uniform_int(0, ep.jitter - 1);
      }
      action.extra_delay += extra;
      delayed = true;
    }
  }
  if (delayed) {
    ++stats_.delayed;
  }
  return action;
}

LinkFaultStats LinkFaultInjector::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

MsrFaultInjector::MsrFaultInjector(const FaultPlan& plan,
                                   const TimeSource& time_source)
    : episodes_(plan.msr),
      time_(&time_source),
      rng_(SplitMix64(plan.seed ^ kMsrStream).next()) {}

msr::EmulatedMsr::FaultAction MsrFaultInjector::decide(unsigned /*cpu*/,
                                                       std::uint32_t reg,
                                                       bool write) {
  const Nanos now = time_->now();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const MsrEpisode& ep : episodes_) {
    if (!ep.active(now) || !ep.affects(reg)) {
      continue;
    }
    if (write && ep.stuck) {
      ++stats_.dropped_writes;
      return msr::EmulatedMsr::FaultAction::kDropWrite;
    }
    const double p = write ? ep.write_fail : ep.read_fail;
    if (p > 0.0 && rng_.uniform() < p) {
      if (write) {
        ++stats_.write_failures;
      } else {
        ++stats_.read_failures;
      }
      return msr::EmulatedMsr::FaultAction::kFailEio;
    }
  }
  return msr::EmulatedMsr::FaultAction::kNone;
}

void MsrFaultInjector::install(msr::EmulatedMsr& dev) {
  dev.set_fault_hook([this](unsigned cpu, std::uint32_t reg, bool write) {
    return decide(cpu, reg, write);
  });
}

MsrFaultStats MsrFaultInjector::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

NodeFaultInjector::NodeFaultInjector(const FaultPlan& plan, unsigned nodes)
    : nodes_(nodes) {
  // One root stream per plan; each frac episode forks a child in episode
  // order, so inserting an explicit-id episode does not shift the draws
  // of the frac episodes after it.
  Rng root(SplitMix64(plan.seed ^ kNodeStream).next());
  bound_.reserve(plan.node.size());
  for (const NodeEpisode& ep : plan.node) {
    Bound bound{ep, {}};
    if (ep.fraction > 0.0) {
      // Hit max(1, round(frac * n)) distinct nodes via a partial
      // Fisher-Yates shuffle on the episode's own child stream.
      const auto count = static_cast<std::size_t>(std::max<long long>(
          1, std::llround(ep.fraction * static_cast<double>(nodes))));
      std::vector<unsigned> pool(nodes);
      for (unsigned i = 0; i < nodes; ++i) {
        pool[i] = i;
      }
      Rng child = root.fork();
      for (std::size_t i = 0; i < count && i < pool.size(); ++i) {
        const auto j = static_cast<std::size_t>(child.uniform_int(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(pool.size()) - 1));
        std::swap(pool[i], pool[j]);
        bound.targets.push_back(pool[i]);
      }
      std::sort(bound.targets.begin(), bound.targets.end());
    } else if (ep.node >= 0 && static_cast<unsigned>(ep.node) < nodes) {
      bound.targets.push_back(static_cast<unsigned>(ep.node));
    }
    // Explicit ids beyond the cluster size resolve to no targets: the
    // plan stays usable across cluster sizes.
    bound_.push_back(std::move(bound));
  }
}

NodeFaultState NodeFaultInjector::state(unsigned node, Nanos t) const {
  NodeFaultState state;
  for (const Bound& bound : bound_) {
    if (!bound.episode.active(t) ||
        !std::binary_search(bound.targets.begin(), bound.targets.end(),
                            node)) {
      continue;
    }
    switch (bound.episode.fault) {
      case NodeFault::kCrash:
        state.crashed = true;
        break;
      case NodeFault::kHang:
        state.hung = true;
        break;
      case NodeFault::kHbLoss:
        state.hb_lost = true;
        break;
      case NodeFault::kSlow:
        state.slow_factor *= bound.episode.factor;
        break;
    }
  }
  return state;
}

const std::vector<unsigned>& NodeFaultInjector::targets(std::size_t i) const {
  return bound_.at(i).targets;
}

}  // namespace procap::fault
