#include "apps/app.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procap::apps {

SimApp::SimApp(hw::Package& package, msgbus::Broker& broker, WorkloadSpec spec,
               std::uint64_t seed, CoreRange cores)
    : package_(&package), cores_(cores), spec_(std::move(spec)), rng_(seed) {
  if (spec_.phases.empty()) {
    throw std::invalid_argument("SimApp: workload has no phases");
  }
  if (cores_.count == 0) {
    cores_.first = 0;
    cores_.count = package_->core_count();
  }
  if (cores_.first + cores_.count > package_->core_count()) {
    throw std::invalid_argument("SimApp: core range exceeds the package");
  }
  reporter_ = std::make_unique<progress::Reporter>(
      broker.make_pub(),
      progress::ReporterConfig{spec_.name, spec_.unit});
  workers_.assign(cores_.count, WorkerState::kRunning);
  for (unsigned w = 0; w < cores_.count; ++w) {
    worker_core(w).set_idle_callback([this](unsigned core, Nanos now) {
      on_core_idle(core - cores_.first, now);
    });
  }
  begin_iteration();
}

hw::CoreHandle SimApp::worker_core(unsigned w) {
  return package_->core(cores_.first + w);
}

void SimApp::set_worker_scale(std::function<double(unsigned)> scale) {
  worker_scale_ = std::move(scale);
}

void SimApp::begin_iteration() {
  const PhaseSpec& ph = spec_.phases[phase_];
  // Iteration-level difficulty noise, shared by all workers.  With
  // noise_ar1 > 0 the noise is an AR(1) process (stationary stddev ==
  // noise_cv), so the iteration cost wanders over many iterations.
  double factor = 1.0;
  if (ph.noise_cv > 0.0) {
    const double rho = std::clamp(ph.noise_ar1, 0.0, 0.999);
    noise_state_ = rho * noise_state_ +
                   ph.noise_cv * std::sqrt(1.0 - rho * rho) * rng_.normal();
    factor = std::clamp(1.0 + noise_state_, 0.3, 2.0);
  }
  const double chunks = static_cast<double>(std::max(ph.interleave, 1U));
  if (!worker_scale_) {
    // Uniform workers: push shared segments to the whole range at once.
    // The cores stay in (or merge back into) a single cohort, so the
    // hardware simulates the barrier group once instead of per worker.
    std::fill(workers_.begin(), workers_.end(), WorkerState::kRunning);
    hw::CoreArray& cores = package_->cores();
    const double scale = factor / chunks;
    cores.set_spin_group(cores_.first, cores_.count, false);
    for (unsigned chunk = 0; chunk < std::max(ph.interleave, 1U); ++chunk) {
      if (ph.cycles > 0.0 || ph.compute_instr > 0.0) {
        cores.push_compute_group(cores_.first, cores_.count,
                                 ph.cycles * scale, ph.compute_instr * scale);
      }
      if (ph.mem_stall > 0.0 || ph.bytes > 0.0) {
        cores.push_memory_group(cores_.first, cores_.count,
                                ph.mem_stall * scale, ph.bytes * scale,
                                ph.memory_instr * scale);
      }
    }
  } else {
    for (unsigned w = 0; w < cores_.count; ++w) {
      const double scale = factor * worker_scale_(w) / chunks;
      hw::CoreHandle core = worker_core(w);
      workers_[w] = WorkerState::kRunning;
      core.set_spin(false);
      for (unsigned chunk = 0; chunk < std::max(ph.interleave, 1U);
           ++chunk) {
        if (ph.cycles > 0.0 || ph.compute_instr > 0.0) {
          core.push_compute(ph.cycles * scale, ph.compute_instr * scale);
        }
        if (ph.mem_stall > 0.0 || ph.bytes > 0.0) {
          core.push_memory(ph.mem_stall * scale, ph.bytes * scale,
                           ph.memory_instr * scale);
        }
      }
    }
  }
  arrived_ = 0;
}

void SimApp::on_core_idle(unsigned worker, Nanos now) {
  if (done_) {
    return;
  }
  if (workers_[worker] != WorkerState::kRunning) {
    return;  // already at the barrier (spinning) or finished
  }
  // This worker finished its iteration work: arrive at the barrier.
  workers_[worker] = WorkerState::kArrived;
  worker_core(worker).set_spin(true);
  ++arrived_;
  if (arrived_ == workers_.size()) {
    complete_iteration(now);
  }
}

void SimApp::complete_iteration(Nanos now) {
  const PhaseSpec& ph = spec_.phases[phase_];
  ++iterations_;
  ++phase_iterations_;
  total_progress_ += ph.progress_per_iter;
  reporter_->report(ph.progress_per_iter, ph.phase_id);

  bool phase_over = stop_requested_;
  if (!phase_over && ph.iterations != kUnbounded &&
      phase_iterations_ >= ph.iterations) {
    phase_over = true;
  }
  if (!phase_over && ph.iterations == kUnbounded && spec_.early_stop &&
      spec_.early_stop(phase_iterations_, rng_)) {
    phase_over = true;
  }
  if (phase_over) {
    advance_phase(now);
  } else {
    begin_iteration();
  }
}

void SimApp::advance_phase(Nanos now) {
  ++phase_;
  phase_iterations_ = 0;
  if (stop_requested_ || phase_ >= spec_.phases.size()) {
    phase_ = spec_.phases.size();
    done_ = true;
    std::fill(workers_.begin(), workers_.end(), WorkerState::kDone);
    package_->cores().set_spin_group(cores_.first, cores_.count, false);
    if (on_done_) {
      on_done_();
    }
    return;
  }
  begin_iteration();
  (void)now;
}

}  // namespace procap::apps
