// app.hpp — runtime that executes a WorkloadSpec on simulated cores.
//
// SimApp drives one worker per core of a package through the workload's
// bulk-synchronous phases.  Workers that finish an iteration early spin
// at the barrier (burning power and instructions but making no progress —
// the load-imbalance effect of paper Table I); the last arrival completes
// the iteration, reports progress through a progress::Reporter, and
// releases everyone into the next iteration.
//
// The app is entirely event-driven off the cores' idle callbacks: it has
// no step function of its own, so its timing comes from the simulated
// hardware, including frequency and duty-cycle changes mid-iteration.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "apps/workload.hpp"
#include "hw/package.hpp"
#include "msgbus/bus.hpp"
#include "progress/reporter.hpp"
#include "util/rng.hpp"

namespace procap::apps {

/// Subset of a package's cores an application runs on.  Multi-component
/// workloads (URBAN's Nek5000 + EnergyPlus, HACC's solvers) co-locate
/// several SimApps on one package by giving each a disjoint range.
struct CoreRange {
  unsigned first = 0;
  /// Number of cores; 0 means "all cores of the package".
  unsigned count = 0;
};

/// One simulated application bound to (a core range of) a package.
class SimApp {
 public:
  /// Starts immediately: the first iteration's work is queued at
  /// construction.  `package` and `broker` must outlive the app.
  SimApp(hw::Package& package, msgbus::Broker& broker, WorkloadSpec spec,
         std::uint64_t seed = 1, CoreRange cores = {});

  SimApp(const SimApp&) = delete;
  SimApp& operator=(const SimApp&) = delete;

  /// Per-worker work multiplier (load imbalance); default uniform 1.0.
  /// Must be set before the affected iterations begin.
  void set_worker_scale(std::function<double(unsigned worker)> scale);

  /// Invoked once when the app finishes (all phases done or stop() took
  /// effect).  Lets a driving engine stop as soon as the workload ends
  /// instead of polling done() every tick.
  void set_on_done(std::function<void()> cb) { on_done_ = std::move(cb); }

  /// Request a stop at the next iteration boundary.
  void stop() { stop_requested_ = true; }

  /// True once all phases completed (or stop() took effect).
  [[nodiscard]] bool done() const { return done_; }

  /// Index of the phase currently executing (== phase count when done).
  [[nodiscard]] std::size_t current_phase() const { return phase_; }

  /// Iterations completed across all phases.
  [[nodiscard]] long iterations_completed() const { return iterations_; }

  /// Total progress amount reported.
  [[nodiscard]] double total_progress() const { return total_progress_; }

  [[nodiscard]] const WorkloadSpec& spec() const { return spec_; }
  [[nodiscard]] const progress::Reporter& reporter() const {
    return *reporter_;
  }

 private:
  enum class WorkerState { kRunning, kArrived, kDone };

  void on_core_idle(unsigned core, Nanos now);
  void begin_iteration();
  void complete_iteration(Nanos now);
  void advance_phase(Nanos now);

  /// Core behind local worker index `w`.
  [[nodiscard]] hw::CoreHandle worker_core(unsigned w);

  hw::Package* package_;
  CoreRange cores_;
  WorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<progress::Reporter> reporter_;
  std::function<double(unsigned)> worker_scale_;
  std::function<void()> on_done_;

  std::size_t phase_ = 0;
  long phase_iterations_ = 0;  ///< completed in the current phase
  double noise_state_ = 0.0;   ///< AR(1) state of the iteration noise
  long iterations_ = 0;
  double total_progress_ = 0.0;
  std::vector<WorkerState> workers_;
  unsigned arrived_ = 0;
  bool done_ = false;
  bool stop_requested_ = false;
};

}  // namespace procap::apps
