// specfile.hpp — workload specifications from text files.
//
// The built-in suite covers the paper's applications; users modeling their
// own codes describe them in a small INI-style file and feed it to the
// CLI tools (`power_policy --spec my_app.spec`, `characterize --spec ...`)
// or to apps::SimApp directly:
//
//   # my_app.spec — comments start with '#'
//   name = myapp
//   unit = timesteps
//
//   [phase warmup]
//   iterations    = 50
//   cycles        = 1.2e8      # per worker per iteration, at f_nominal
//   mem_stall     = 2e-3       # seconds per worker per iteration
//   bytes         = 3e7
//   compute_instr = 2.4e8
//   progress      = 1.0
//
//   [phase main]
//   iterations    = unbounded
//   cycles        = 3.1e8
//   mem_stall     = 8e-3
//   bytes         = 9e7
//   compute_instr = 5e8
//   noise_cv      = 0.05
//   noise_ar1     = 0.9
//   phase_id      = 1
//
// Unknown keys are errors (they are always typos); numbers accept
// scientific notation; every phase field except `cycles`/`mem_stall`
// (at least one of which must be positive) has a sane default.
#pragma once

#include <iosfwd>
#include <string>

#include "apps/workload.hpp"

namespace procap::apps {

/// Parse a workload spec from text.  Throws std::invalid_argument with a
/// line-numbered message on malformed input.
[[nodiscard]] WorkloadSpec parse_spec(const std::string& text);

/// Parse a workload spec from a file.  Throws std::runtime_error if the
/// file cannot be read, std::invalid_argument on malformed content.
[[nodiscard]] WorkloadSpec load_spec(const std::string& path);

/// Serialize a spec in the same format (round-trips through parse_spec).
void write_spec(std::ostream& os, const WorkloadSpec& spec);

}  // namespace procap::apps
