#include "apps/specfile.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace procap::apps {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("spec line " + std::to_string(line) + ": " +
                              what);
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

double parse_number(const std::string& value, std::size_t line) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    fail(line, "expected a number, got '" + value + "'");
  }
  return v;
}

long parse_iterations(const std::string& value, std::size_t line) {
  if (value == "unbounded") {
    return kUnbounded;
  }
  const double v = parse_number(value, line);
  if (v < 1.0) {
    fail(line, "iterations must be >= 1 or 'unbounded'");
  }
  return static_cast<long>(v);
}

void validate_phase(const PhaseSpec& ph, std::size_t line) {
  if (ph.cycles <= 0.0 && ph.mem_stall <= 0.0) {
    fail(line, "phase '" + ph.name +
                   "' needs cycles > 0 or mem_stall > 0");
  }
  if (ph.noise_cv < 0.0 || ph.noise_ar1 < 0.0 || ph.noise_ar1 >= 1.0) {
    fail(line, "phase '" + ph.name + "': noise_cv >= 0, noise_ar1 in [0,1)");
  }
  if (ph.progress_per_iter <= 0.0) {
    fail(line, "phase '" + ph.name + "': progress must be positive");
  }
}

}  // namespace

WorkloadSpec parse_spec(const std::string& text) {
  WorkloadSpec spec;
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;
  bool in_phase = false;
  PhaseSpec phase;
  std::size_t phase_line = 0;

  auto close_phase = [&]() {
    if (in_phase) {
      validate_phase(phase, phase_line);
      spec.phases.push_back(phase);
    }
  };

  while (std::getline(stream, raw)) {
    ++line_no;
    std::string line = raw;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }

    if (line.front() == '[') {
      if (line.back() != ']') {
        fail(line_no, "unterminated section header");
      }
      const std::string header = trim(line.substr(1, line.size() - 2));
      if (header.rfind("phase", 0) != 0) {
        fail(line_no, "unknown section '" + header + "'");
      }
      close_phase();
      phase = PhaseSpec{};
      phase.name = trim(header.substr(5));
      if (phase.name.empty()) {
        phase.name = "phase" + std::to_string(spec.phases.size());
      }
      phase.iterations = kUnbounded;
      in_phase = true;
      phase_line = line_no;
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail(line_no, "expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) {
      fail(line_no, "empty value for '" + key + "'");
    }

    if (!in_phase) {
      if (key == "name") {
        spec.name = value;
      } else if (key == "unit") {
        spec.unit = value;
      } else {
        fail(line_no, "unknown top-level key '" + key + "'");
      }
      continue;
    }

    if (key == "iterations") {
      phase.iterations = parse_iterations(value, line_no);
    } else if (key == "cycles") {
      phase.cycles = parse_number(value, line_no);
    } else if (key == "mem_stall") {
      phase.mem_stall = parse_number(value, line_no);
    } else if (key == "bytes") {
      phase.bytes = parse_number(value, line_no);
    } else if (key == "compute_instr") {
      phase.compute_instr = parse_number(value, line_no);
    } else if (key == "memory_instr") {
      phase.memory_instr = parse_number(value, line_no);
    } else if (key == "noise_cv") {
      phase.noise_cv = parse_number(value, line_no);
    } else if (key == "noise_ar1") {
      phase.noise_ar1 = parse_number(value, line_no);
    } else if (key == "interleave") {
      phase.interleave =
          static_cast<unsigned>(parse_number(value, line_no));
    } else if (key == "progress") {
      phase.progress_per_iter = parse_number(value, line_no);
    } else if (key == "phase_id") {
      phase.phase_id = static_cast<int>(parse_number(value, line_no));
    } else {
      fail(line_no, "unknown phase key '" + key + "'");
    }
  }
  close_phase();

  if (spec.name.empty()) {
    throw std::invalid_argument("spec: missing 'name'");
  }
  if (spec.unit.empty()) {
    spec.unit = "iterations";
  }
  if (spec.phases.empty()) {
    throw std::invalid_argument("spec: needs at least one [phase ...]");
  }
  return spec;
}

WorkloadSpec load_spec(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("load_spec: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_spec(buffer.str());
}

void write_spec(std::ostream& os, const WorkloadSpec& spec) {
  os << "name = " << spec.name << "\n"
     << "unit = " << spec.unit << "\n";
  for (const PhaseSpec& ph : spec.phases) {
    os << "\n[phase " << ph.name << "]\n";
    if (ph.iterations == kUnbounded) {
      os << "iterations = unbounded\n";
    } else {
      os << "iterations = " << ph.iterations << "\n";
    }
    os << "cycles = " << ph.cycles << "\n"
       << "mem_stall = " << ph.mem_stall << "\n"
       << "bytes = " << ph.bytes << "\n"
       << "compute_instr = " << ph.compute_instr << "\n"
       << "memory_instr = " << ph.memory_instr << "\n"
       << "noise_cv = " << ph.noise_cv << "\n"
       << "noise_ar1 = " << ph.noise_ar1 << "\n"
       << "interleave = " << ph.interleave << "\n"
       << "progress = " << ph.progress_per_iter << "\n"
       << "phase_id = " << ph.phase_id << "\n";
  }
}

}  // namespace procap::apps
