// suite.hpp — the application suite of the paper, as workload models.
//
// Each factory returns a WorkloadSpec calibrated so that, on the default
// simulated package (CpuSpec::skylake24, f_max = 3300 MHz), the measured
// characterization matches the paper's Table VI:
//
//   app              beta    MPO(x1e-3)   progress metric (Table V)
//   LAMMPS (lj)      1.00    0.32         atom timesteps / s
//   STREAM           0.37    50.9         iterations / s
//   AMG              0.52    30.1         GMRES iterations / s
//   QMCPACK (DMC)    0.84    3.91         blocks / s
//   OpenMC (active)  0.93    0.20         particles / s
//   CANDLE           ~0.88   ~1.0         epochs / s (accuracy-bounded)
//
// and the structural behaviour matches Section IV: LAMMPS/STREAM steady,
// AMG fluctuating (8 % iteration noise), QMCPACK three-phased
// (VMC1/VMC2/DMC at distinct block rates), OpenMC inactive+active batches,
// CANDLE running an unpredictable number of epochs.
//
// Each factory also carries the application's interview traits (paper
// Tables III/IV), which drive the Category 1/2/3 classification.
#pragma once

#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "progress/category.hpp"

namespace procap::apps {

/// A workload model plus its interview traits.
struct AppModel {
  WorkloadSpec spec;
  progress::AppTraits traits;
};

/// LAMMPS Lennard-Jones: compute-bound timestep loop, 40,000 atoms,
/// ~20 timesteps/s uncapped; progress = atoms * timesteps.
[[nodiscard]] AppModel lammps(long iterations = kUnbounded);

/// STREAM: memory-bandwidth benchmark, ~16 iterations/s uncapped.
[[nodiscard]] AppModel stream(long iterations = kUnbounded);

/// AMG (GMRES + AMG preconditioning): ~3 solver iterations/s with
/// visible iteration-to-iteration fluctuation.
[[nodiscard]] AppModel amg(long iterations = kUnbounded);

/// QMCPACK performance-NiO: VMC1, VMC2 and DMC phases computing blocks
/// at distinct rates (~30, ~24, ~16 blocks/s).
[[nodiscard]] AppModel qmcpack();

/// QMCPACK DMC phase only (what the paper's power-cap sweeps measure).
[[nodiscard]] AppModel qmcpack_dmc(long iterations = kUnbounded);

/// OpenMC: 10 inactive + 300 active batches of 100,000 particles.
[[nodiscard]] AppModel openmc();

/// OpenMC active phase only.
[[nodiscard]] AppModel openmc_active(long iterations = kUnbounded);

/// CANDLE training: ~0.5 epochs/s, stopping when the simulated validation
/// accuracy reaches its goal — the epoch count is not predictable, only
/// the online rate is (Category 1/2 in the paper).
[[nodiscard]] AppModel candle();

/// Names accepted by by_name(), in canonical order.
[[nodiscard]] std::vector<std::string> suite_names();

/// Lookup by name ("lammps", "stream", "amg", "qmcpack", "qmcpack-dmc",
/// "openmc", "openmc-active", "candle").  Throws std::invalid_argument
/// for unknown names.  `iterations` applies to single-phase models.
[[nodiscard]] AppModel by_name(const std::string& name,
                               long iterations = kUnbounded);

/// Interview traits for *all* applications of paper Table IV, including
/// the Category-3 ones procap does not model as workloads (URBAN,
/// Nek5000, HACC).
[[nodiscard]] std::vector<progress::AppTraits> interview_traits();

}  // namespace procap::apps
