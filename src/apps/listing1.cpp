#include "apps/listing1.hpp"

namespace procap::apps {

Listing1App::Listing1App(hw::Package& package, msgbus::Broker& broker,
                         WorkPattern pattern, long iterations,
                         Seconds base_sleep, double sleep_mips)
    : package_(&package),
      pattern_(pattern),
      iterations_(iterations),
      base_sleep_(base_sleep),
      sleep_mips_(sleep_mips) {
  reporter_ = std::make_unique<progress::Reporter>(
      broker.make_pub(),
      progress::ReporterConfig{"listing1", "iterations"});
  ranks_.assign(package_->core_count(), RankState::kRunning);
  for (unsigned c = 0; c < package_->core_count(); ++c) {
    package_->core(c).set_idle_callback(
        [this](unsigned core, Nanos now) { on_core_idle(core, now); });
  }
  begin_iteration();
}

double Listing1App::work_units_per_iteration() const {
  const auto size = static_cast<double>(ranks_.size());
  double units = 0.0;
  for (unsigned r = 0; r < ranks_.size(); ++r) {
    const double share =
        pattern_ == WorkPattern::kEqual
            ? 1.0
            : static_cast<double>(r + 1) / size;  // Listing 1: rank+1
    units += share * base_sleep_ * 1e6;  // one unit per microsecond slept
  }
  return units;
}

void Listing1App::begin_iteration() {
  const auto size = static_cast<double>(ranks_.size());
  for (unsigned r = 0; r < ranks_.size(); ++r) {
    const double share =
        pattern_ == WorkPattern::kEqual
            ? 1.0
            : static_cast<double>(r + 1) / size;
    const Seconds sleep_time = share * base_sleep_;
    hw::CoreHandle core = package_->core(r);
    ranks_[r] = RankState::kRunning;
    core.set_spin(false);
    core.push_sleep(sleep_time, sleep_mips_ * 1e6 * sleep_time);
  }
  arrived_ = 0;
}

void Listing1App::on_core_idle(unsigned core, Nanos /*now*/) {
  if (done_ || ranks_[core] != RankState::kRunning) {
    return;
  }
  // MPI_Barrier: busy-poll until every rank arrives.
  ranks_[core] = RankState::kArrived;
  package_->core(core).set_spin(true);
  ++arrived_;
  if (arrived_ < ranks_.size()) {
    return;
  }
  ++iterations_done_;
  reporter_->report(1.0);
  if (iterations_done_ >= iterations_) {
    done_ = true;
    for (unsigned r = 0; r < ranks_.size(); ++r) {
      ranks_[r] = RankState::kDone;
      package_->core(r).set_spin(false);
    }
    if (on_done_) {
      on_done_();
    }
    return;
  }
  begin_iteration();
}

}  // namespace procap::apps
