// multi.hpp — multi-component application models (the paper's Category 3).
//
// URBAN couples the Nek5000 CFD solver with the EnergyPlus building-energy
// simulator, "running at timescales that are orders of magnitudes apart"
// (paper Section III-A); HACC has "many individual components with
// distinct performance characteristics" (Table II).  No single online
// metric is reliable for these — which is exactly why the paper assigns
// them Category 3 and defers them to the composite-progress future work
// that procap implements in progress/composite.hpp.
//
// A MultiAppModel is a set of components, each a normal WorkloadSpec with
// a core allotment and a composite weight; launch() co-locates them on
// disjoint core ranges of one package and wires a CompositeMonitor over
// their individual monitors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "apps/workload.hpp"
#include "hw/package.hpp"
#include "msgbus/bus.hpp"
#include "progress/category.hpp"
#include "progress/composite.hpp"

namespace procap::apps {

/// One component of a multi-component application.
struct ComponentModel {
  WorkloadSpec spec;
  /// Cores allotted to this component on the package.
  unsigned cores = 0;
  /// Share of the composite progress metric.
  double weight = 1.0;
};

/// A Category-3 application: several components, one set of traits.
struct MultiAppModel {
  std::string name;
  std::vector<ComponentModel> components;
  progress::AppTraits traits;
};

/// URBAN: a fast, irregular CFD component (Nek5000-like, ~30 steps/s with
/// heavy step-to-step variation) plus a slow building-energy component
/// (EnergyPlus-like, ~0.5 zone-steps/s) — timescales ~60x apart.
/// Component core split: 16 + 8 on the default 24-core package.
[[nodiscard]] MultiAppModel urban();

/// HACC: a compute-bound short-range force component next to a
/// bandwidth-bound long-range (FFT) component, with irregular per-step
/// cost.  Component core split: 16 + 8.
[[nodiscard]] MultiAppModel hacc();

/// Analytic nominal progress rate of a workload's first phase at
/// frequency `f` (used to normalize components in the composite).
[[nodiscard]] double nominal_rate(const WorkloadSpec& spec, Hertz f);

/// A launched multi-component application.
struct MultiAppInstance {
  std::vector<std::unique_ptr<SimApp>> apps;
  std::vector<std::shared_ptr<progress::Monitor>> monitors;
  std::unique_ptr<progress::CompositeMonitor> composite;
};

/// Co-locate the model's components on disjoint core ranges of `package`
/// (ranges must fit) and build the composite monitor, with nominal rates
/// taken at `nominal_frequency`.
[[nodiscard]] MultiAppInstance launch(const MultiAppModel& model,
                                      hw::Package& package,
                                      msgbus::Broker& broker,
                                      const TimeSource& time_source,
                                      Hertz nominal_frequency,
                                      std::uint64_t seed = 1);

}  // namespace procap::apps
