// listing1.hpp — the paper's Listing 1: MPI workload imbalance demo.
//
// Each rank sleeps (usleep) for its share of work, then enters a barrier;
// the highest rank always sleeps the full second, so every iteration takes
// one second and "online performance, Definition 1" is one iteration per
// second regardless of the work pattern.  With unequal work, the early
// ranks busy-wait at the barrier, retiring instructions at full tilt —
// inflating MIPS by an order of magnitude while progress is unchanged.
// That divergence is exactly paper Table I, and this class reproduces it
// on the simulated package (the examples directory also carries a
// real-thread version built on procap::minimpi).
//
// Work-unit accounting follows the paper: one work unit per microsecond a
// rank spends inside sleep().
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hw/package.hpp"
#include "msgbus/bus.hpp"
#include "progress/reporter.hpp"

namespace procap::apps {

/// Which do_work() variant of Listing 1 to run.
enum class WorkPattern {
  kEqual,    ///< do_equal_work: every rank sleeps 1 s
  kUnequal,  ///< do_unequal_work: rank r sleeps (r+1)/size seconds
};

/// Listing-1 workload on a simulated package (one rank per core).
class Listing1App {
 public:
  /// `sleep_mips`: background instruction rate (per rank, in MIPS) while
  /// blocked in sleep — OS timer ticks and MPI runtime bookkeeping.
  Listing1App(hw::Package& package, msgbus::Broker& broker,
              WorkPattern pattern, long iterations = 5,
              Seconds base_sleep = 1.0, double sleep_mips = 170.0);

  Listing1App(const Listing1App&) = delete;
  Listing1App& operator=(const Listing1App&) = delete;

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] long iterations_completed() const { return iterations_done_; }

  /// Invoked once when the last iteration completes; lets a driving
  /// engine stop at the completion event instead of polling done().
  void set_on_done(std::function<void()> cb) { on_done_ = std::move(cb); }

  /// Work units (rank-microseconds of sleep) per iteration — the paper's
  /// "Definition 2" numerator.
  [[nodiscard]] double work_units_per_iteration() const;

  [[nodiscard]] const progress::Reporter& reporter() const {
    return *reporter_;
  }

 private:
  enum class RankState { kRunning, kArrived, kDone };

  void on_core_idle(unsigned core, Nanos now);
  void begin_iteration();

  hw::Package* package_;
  WorkPattern pattern_;
  long iterations_;
  Seconds base_sleep_;
  double sleep_mips_;
  std::unique_ptr<progress::Reporter> reporter_;
  std::function<void()> on_done_;

  std::vector<RankState> ranks_;
  unsigned arrived_ = 0;
  long iterations_done_ = 0;
  bool done_ = false;
};

}  // namespace procap::apps
