#include "apps/multi.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/suite.hpp"

namespace procap::apps {

namespace {

progress::AppTraits traits_by_name(const std::string& name) {
  for (const auto& traits : interview_traits()) {
    if (traits.name == name) {
      return traits;
    }
  }
  throw std::logic_error("multi: missing interview traits for " + name);
}

}  // namespace

MultiAppModel urban() {
  // Nek5000-like CFD: ~30 timesteps/s at nominal frequency, beta ~ 0.90,
  // with heavy step-to-step cost variation (adaptive stepping) — the
  // reason "the number of timesteps per second cannot be used to measure
  // online performance reliably" (paper Section III-A).
  PhaseSpec nek;
  nek.name = "cfd-timestep";
  nek.iterations = kUnbounded;
  nek.cycles = 9.89e7;
  nek.mem_stall = 3.33e-3;
  nek.bytes = 1.9e7;
  nek.compute_instr = 1.5e8;
  nek.memory_instr = 1.0e6;
  nek.noise_cv = 0.35;
  nek.noise_ar1 = 0.97;  // cost wanders over ~1 s (adaptive stepping)
  nek.progress_per_iter = 1.0;

  // EnergyPlus-like building simulation: ~0.5 zone-steps/s, beta ~ 0.60.
  PhaseSpec ep;
  ep.name = "zone-step";
  ep.iterations = kUnbounded;
  ep.cycles = 3.96e9;
  ep.mem_stall = 0.8;
  ep.bytes = 3.0e9;
  ep.compute_instr = 4.75e9;
  ep.memory_instr = 2.0e7;
  ep.noise_cv = 0.10;
  ep.interleave = 64;
  ep.progress_per_iter = 1.0;

  MultiAppModel model;
  model.name = "urban";
  model.components.push_back(
      {WorkloadSpec{"urban-nek5000", "timesteps", {nek}, nullptr}, 16, 0.5});
  model.components.push_back(
      {WorkloadSpec{"urban-energyplus", "zone-steps", {ep}, nullptr}, 8, 0.5});
  model.traits = traits_by_name("urban");
  return model;
}

MultiAppModel hacc() {
  // Short-range force kernel: compute-bound, ~2 steps/s.
  PhaseSpec shortrange;
  shortrange.name = "short-range";
  shortrange.iterations = kUnbounded;
  shortrange.cycles = 1.5675e9;
  shortrange.mem_stall = 0.025;
  shortrange.bytes = 1.2e8;
  shortrange.compute_instr = 2.8e9;
  shortrange.memory_instr = 1.0e7;
  shortrange.noise_cv = 0.20;
  shortrange.noise_ar1 = 0.90;
  shortrange.interleave = 32;
  shortrange.progress_per_iter = 1.0e6;  // particle-steps

  // Long-range (FFT) component: bandwidth-bound, ~2 steps/s.
  PhaseSpec longrange;
  longrange.name = "long-range-fft";
  longrange.iterations = kUnbounded;
  longrange.cycles = 7.4e8;
  longrange.mem_stall = 0.275;
  longrange.bytes = 2.2e9;
  longrange.compute_instr = 8.9e8;
  longrange.memory_instr = 1.0e7;
  longrange.noise_cv = 0.20;
  longrange.noise_ar1 = 0.90;
  longrange.interleave = 32;
  longrange.progress_per_iter = 1.0;

  MultiAppModel model;
  model.name = "hacc";
  model.components.push_back(
      {WorkloadSpec{"hacc-shortrange", "particle-steps", {shortrange},
                    nullptr},
       16, 0.6});
  model.components.push_back(
      {WorkloadSpec{"hacc-longrange", "fft-steps", {longrange}, nullptr}, 8,
       0.4});
  model.traits = traits_by_name("hacc");
  return model;
}

double nominal_rate(const WorkloadSpec& spec, Hertz f) {
  const Seconds t = spec.expected_iteration_seconds(0, f);
  return spec.phases.at(0).progress_per_iter / t;
}

MultiAppInstance launch(const MultiAppModel& model, hw::Package& package,
                        msgbus::Broker& broker,
                        const TimeSource& time_source,
                        Hertz nominal_frequency, std::uint64_t seed) {
  unsigned total_cores = 0;
  for (const auto& component : model.components) {
    total_cores += component.cores;
  }
  if (total_cores > package.core_count()) {
    throw std::invalid_argument("multi::launch: components need " +
                                std::to_string(total_cores) + " cores, have " +
                                std::to_string(package.core_count()));
  }

  MultiAppInstance instance;
  instance.composite =
      std::make_unique<progress::CompositeMonitor>(time_source);
  unsigned next_core = 0;
  std::uint64_t component_seed = seed;
  for (const auto& component : model.components) {
    // Slow components (iterations slower than ~3/s) get proportionally
    // longer windows so a window always holds a few reports.
    const Seconds iter_s =
        component.spec.expected_iteration_seconds(0, nominal_frequency);
    const Nanos window =
        std::max<Nanos>(kNanosPerSecond, to_nanos(3.0 * iter_s));
    auto monitor = std::make_shared<progress::Monitor>(
        broker.make_sub(), component.spec.name, time_source, window);
    instance.apps.push_back(std::make_unique<SimApp>(
        package, broker, component.spec, ++component_seed,
        CoreRange{next_core, component.cores}));
    instance.composite->add_component(
        monitor, component.weight,
        nominal_rate(component.spec, nominal_frequency));
    instance.monitors.push_back(std::move(monitor));
    next_core += component.cores;
  }
  return instance;
}

}  // namespace procap::apps
