// workload.hpp — declarative description of a simulated application.
//
// An application is a sequence of phases; each phase is a bulk-synchronous
// iteration loop.  Per iteration, every worker executes a compute segment
// (cycles, frequency-scaled) and a memory segment (stall seconds,
// frequency-invariant), then meets the others at a barrier; the iteration
// completes — and progress is reported — when the slowest worker arrives.
//
// The numbers are *per worker at the nominal maximum frequency*; the
// application's compute-boundedness (beta) and misses-per-operation (MPO)
// are emergent:
//
//   beta = (cycles/f_max) / (cycles/f_max + mem_stall)
//   MPO  = (bytes/64) / instructions
//
// The suite in apps/suite.hpp instantiates these to match the paper's
// Table VI characterization for each application.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace procap::apps {

/// Marks a phase that runs until stopped (or until early_stop fires).
inline constexpr long kUnbounded = -1;

/// One bulk-synchronous phase.
struct PhaseSpec {
  std::string name;
  /// Tag attached to progress samples (progress::kNoPhase to omit).
  int phase_id = -1;
  /// Iterations in the phase, or kUnbounded.
  long iterations = 0;

  // Per-worker, per-iteration amounts at f_max:
  double cycles = 0.0;          ///< compute cycles
  Seconds mem_stall = 0.0;      ///< memory-stall seconds
  double bytes = 0.0;           ///< memory traffic
  double compute_instr = 0.0;   ///< instructions retired in compute
  double memory_instr = 0.0;    ///< instructions retired during stalls

  /// Per-iteration multiplicative noise (coefficient of variation) on the
  /// work amounts, shared by all workers (iteration difficulty).
  double noise_cv = 0.0;

  /// AR(1) correlation of the iteration noise.  0 = white noise (AMG's
  /// fluctuation); values near 1 make the iteration cost *wander* over
  /// seconds, as adaptive CFD timestepping does — the mechanism behind
  /// "the number of timesteps per second cannot be used to measure online
  /// performance reliably" for Nek5000/HACC (paper Section III-A).
  double noise_ar1 = 0.0;

  /// Number of alternating compute/memory chunks an iteration's work is
  /// split into.  Real codes interleave arithmetic and traffic at fine
  /// grain; without interleaving, bulk-synchronous workers would swing
  /// package power between all-compute and all-stalled at the iteration
  /// period, which no real application does.
  unsigned interleave = 8;

  /// Progress amount reported per completed iteration (whole application).
  double progress_per_iter = 1.0;
};

/// A full application workload.
struct WorkloadSpec {
  std::string name;
  /// Unit of the progress metric (paper Table V).
  std::string unit;
  std::vector<PhaseSpec> phases;

  /// Optional early-stop predicate, checked after each completed
  /// iteration of an unbounded phase (e.g. CANDLE stopping when its
  /// simulated training accuracy crosses the goal).  Returning true ends
  /// the phase.
  std::function<bool(long completed_iterations, Rng& rng)> early_stop;

  /// Analytic expected iteration seconds for phase `p` at frequency `f`
  /// (noise-free, ignoring barrier skew): cycles/f + mem_stall.
  [[nodiscard]] Seconds expected_iteration_seconds(std::size_t p,
                                                   Hertz f) const {
    const PhaseSpec& ph = phases.at(p);
    return ph.cycles / f + ph.mem_stall;
  }

  /// Analytic compute-boundedness of phase `p` at reference `f_max`.
  [[nodiscard]] double analytic_beta(std::size_t p, Hertz f_max) const {
    const PhaseSpec& ph = phases.at(p);
    const Seconds compute = ph.cycles / f_max;
    return compute / (compute + ph.mem_stall);
  }
};

}  // namespace procap::apps
