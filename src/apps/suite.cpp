#include "apps/suite.hpp"

#include <cmath>
#include <stdexcept>

namespace procap::apps {

namespace {

// Traits rows transcribed from paper Table IV.
progress::AppTraits qmcpack_traits() {
  return {.name = "qmcpack",
          .has_fom = true,
          .measurable_online = true,
          .relates_to_science = true,
          .predictable_time = true,
          .iterations_known = true,
          .uniform_iterations = true,
          .has_phases = true,
          .multi_component = false,
          .bound_by = "compute"};
}

progress::AppTraits openmc_traits() {
  return {.name = "openmc",
          .has_fom = false,
          .measurable_online = true,
          .relates_to_science = true,
          .predictable_time = true,
          .iterations_known = true,
          .uniform_iterations = true,
          .has_phases = true,
          .multi_component = false,
          .bound_by = "memory latency"};
}

progress::AppTraits amg_traits() {
  return {.name = "amg",
          .has_fom = false,
          .measurable_online = true,
          .relates_to_science = false,  // iterations != closeness to goal
          .predictable_time = false,
          .iterations_known = false,
          .uniform_iterations = true,
          .has_phases = false,
          .multi_component = false,
          .bound_by = "memory bandwidth"};
}

progress::AppTraits lammps_traits() {
  return {.name = "lammps",
          .has_fom = false,
          .measurable_online = true,
          .relates_to_science = true,
          .predictable_time = true,
          .iterations_known = true,
          .uniform_iterations = true,
          .has_phases = false,
          .multi_component = false,
          .bound_by = "compute"};
}

progress::AppTraits candle_traits() {
  return {.name = "candle",
          .has_fom = false,
          .measurable_online = true,
          .relates_to_science = false,  // epochs/s says nothing of accuracy
          .predictable_time = false,
          .iterations_known = false,
          .uniform_iterations = true,
          .has_phases = true,
          .multi_component = false,
          .bound_by = "compute"};
}

progress::AppTraits stream_traits() {
  return {.name = "stream",
          .has_fom = true,
          .measurable_online = true,
          .relates_to_science = true,
          .predictable_time = true,
          .iterations_known = true,
          .uniform_iterations = true,
          .has_phases = false,
          .multi_component = false,
          .bound_by = "memory bandwidth"};
}

progress::AppTraits urban_traits() {
  return {.name = "urban",
          .has_fom = false,
          .measurable_online = false,
          .relates_to_science = false,
          .predictable_time = false,
          .iterations_known = false,
          .uniform_iterations = false,
          .has_phases = true,
          .multi_component = true,  // Nek5000 + EnergyPlus, timescales apart
          .bound_by = "component-dependent"};
}

progress::AppTraits nek5000_traits() {
  return {.name = "nek5000",
          .has_fom = false,
          .measurable_online = false,  // timesteps/s is not uniform
          .relates_to_science = false,
          .predictable_time = false,
          .iterations_known = true,
          .uniform_iterations = false,
          .has_phases = false,
          .multi_component = false,
          .bound_by = "compute"};
}

progress::AppTraits hacc_traits() {
  return {.name = "hacc",
          .has_fom = true,
          .measurable_online = false,
          .relates_to_science = false,
          .predictable_time = true,
          .iterations_known = true,
          .uniform_iterations = false,
          .has_phases = true,
          .multi_component = true,  // many components, distinct behaviour
          .bound_by = "compute"};
}

}  // namespace

AppModel lammps(long iterations) {
  // 20 timesteps/s at 3300 MHz; beta ~ 1.00, MPO ~ 0.32e-3.
  PhaseSpec ph;
  ph.name = "timestep";
  ph.iterations = iterations;
  ph.cycles = 1.6434e8;
  ph.mem_stall = 0.0002;
  ph.bytes = 6.77e6;
  ph.compute_instr = 3.287e8;  // IPC ~ 2 (well-vectorized force loop)
  ph.memory_instr = 2.0e6;
  ph.noise_cv = 0.01;
  ph.progress_per_iter = 40000.0;  // atoms * 1 timestep
  return AppModel{WorkloadSpec{"lammps", "atom-steps", {ph}, nullptr},
                  lammps_traits()};
}

AppModel stream(long iterations) {
  // 16 iterations/s; beta ~ 0.37, MPO ~ 50.9e-3, ~95 GB/s of traffic.
  PhaseSpec ph;
  ph.name = "copy-scale-add-triad";
  ph.iterations = iterations;
  ph.cycles = 7.631e7;
  ph.mem_stall = 0.039375;
  ph.bytes = 2.49e8;
  ph.compute_instr = 7.631e7;  // IPC ~ 1 (load/store bound)
  ph.memory_instr = 1.0e6;
  ph.noise_cv = 0.002;
  ph.interleave = 16;  // ~4 ms chunks
  ph.progress_per_iter = 1.0;
  return AppModel{WorkloadSpec{"stream", "iterations", {ph}, nullptr},
                  stream_traits()};
}

AppModel amg(long iterations) {
  // ~3 GMRES iterations/s, fluctuating; beta ~ 0.52, MPO ~ 30.1e-3.
  PhaseSpec ph;
  ph.name = "gmres";
  ph.iterations = iterations;
  ph.cycles = 5.7204e8;
  ph.mem_stall = 0.16;
  ph.bytes = 1.322e9;
  ph.compute_instr = 6.864e8;  // IPC ~ 1.2 (sparse kernels)
  ph.memory_instr = 5.0e6;
  ph.noise_cv = 0.08;  // the paper's 2.5-3 iter/s fluctuation
  ph.interleave = 32;   // ~10 ms chunks at 3 iterations/s
  ph.progress_per_iter = 1.0;
  return AppModel{WorkloadSpec{"amg", "gmres-iterations", {ph}, nullptr},
                  amg_traits()};
}

AppModel qmcpack() {
  // performance-NiO: three phases at distinct block rates.
  // VMC1 walks many configurations through memory: markedly less
  // compute-bound than the DMC phase (beta ~ 0.55 vs 0.84), which is what
  // makes per-phase characterization worthwhile (phases "could have ...
  // distinct performance characteristics", paper Section III).
  PhaseSpec vmc1;
  vmc1.name = "VMC1";
  vmc1.phase_id = 0;
  vmc1.iterations = 300;  // ~10 s at 30 blocks/s
  vmc1.cycles = 6.05e7;
  vmc1.mem_stall = 15.0e-3;
  vmc1.bytes = 1.4e8;
  vmc1.compute_instr = 9.1e7;
  vmc1.memory_instr = 2.0e6;
  vmc1.noise_cv = 0.02;
  vmc1.interleave = 8;
  vmc1.progress_per_iter = 1.0;

  PhaseSpec vmc2 = vmc1;
  vmc2.name = "VMC2";
  vmc2.phase_id = 1;
  vmc2.iterations = 240;  // ~10 s at 24 blocks/s
  vmc2.cycles = 1.128e8;
  vmc2.mem_stall = 7.5e-3;
  vmc2.bytes = 4.33e7;
  vmc2.compute_instr = 1.69e8;

  PhaseSpec dmc = qmcpack_dmc(3000).spec.phases.at(0);

  return AppModel{WorkloadSpec{"qmcpack", "blocks", {vmc1, vmc2, dmc},
                               nullptr},
                  qmcpack_traits()};
}

AppModel qmcpack_dmc(long iterations) {
  // DMC: 16 blocks/s; beta ~ 0.84, MPO ~ 3.91e-3.
  PhaseSpec ph;
  ph.name = "DMC";
  ph.phase_id = 2;
  ph.iterations = iterations;
  ph.cycles = 1.7325e8;
  ph.mem_stall = 0.01;
  ph.bytes = 6.50e7;
  ph.compute_instr = 2.60e8;  // IPC ~ 1.5
  ph.memory_instr = 2.0e6;
  ph.noise_cv = 0.02;
  ph.progress_per_iter = 1.0;
  return AppModel{WorkloadSpec{"qmcpack-dmc", "blocks", {ph}, nullptr},
                  qmcpack_traits()};
}

AppModel openmc() {
  PhaseSpec inactive;
  inactive.name = "inactive";
  inactive.phase_id = 0;
  inactive.iterations = 10;
  inactive.cycles = 2.376e9;
  inactive.mem_stall = 0.08;
  inactive.bytes = 5.50e7;
  inactive.compute_instr = 4.28e9;
  inactive.memory_instr = 1.0e7;
  inactive.noise_cv = 0.03;
  inactive.interleave = 64;
  inactive.progress_per_iter = 100000.0;  // particles per batch

  PhaseSpec active = openmc_active(300).spec.phases.at(0);

  return AppModel{WorkloadSpec{"openmc", "particles", {inactive, active},
                               nullptr},
                  openmc_traits()};
}

AppModel openmc_active(long iterations) {
  // Active batches: 1 batch/s; beta ~ 0.93, MPO ~ 0.20e-3.
  PhaseSpec ph;
  ph.name = "active";
  ph.phase_id = 1;
  ph.iterations = iterations;
  ph.cycles = 3.069e9;
  ph.mem_stall = 0.07;
  ph.bytes = 7.07e7;
  ph.compute_instr = 5.524e9;  // IPC ~ 1.8
  ph.memory_instr = 1.0e7;
  ph.noise_cv = 0.03;
  ph.interleave = 64;  // ~15 ms chunks at 1 batch/s
  ph.progress_per_iter = 100000.0;
  return AppModel{WorkloadSpec{"openmc-active", "particles", {ph}, nullptr},
                  openmc_traits()};
}

AppModel candle() {
  // Training epochs at ~0.5/s; stops when simulated validation accuracy
  // crosses 0.93.  Expected epoch count ~ 23, but the noise term makes it
  // unpredictable — the Category 1/2 situation of the paper.
  PhaseSpec ph;
  ph.name = "training";
  ph.phase_id = 0;
  ph.iterations = kUnbounded;
  ph.cycles = 5.808e9;
  ph.mem_stall = 0.24;
  ph.bytes = 5.57e8;
  ph.compute_instr = 8.70e9;
  ph.memory_instr = 2.0e7;
  ph.noise_cv = 0.05;
  ph.interleave = 64;
  ph.progress_per_iter = 1.0;

  WorkloadSpec spec{"candle", "epochs", {ph}, nullptr};
  spec.early_stop = [](long epochs, Rng& rng) {
    const double accuracy = 0.95 - 0.35 * std::exp(-static_cast<double>(epochs) / 8.0) +
                            0.01 * rng.normal();
    return accuracy >= 0.93;
  };
  return AppModel{std::move(spec), candle_traits()};
}

std::vector<std::string> suite_names() {
  return {"lammps",      "stream", "amg",           "qmcpack",
          "qmcpack-dmc", "openmc", "openmc-active", "candle"};
}

AppModel by_name(const std::string& name, long iterations) {
  if (name == "lammps") {
    return lammps(iterations);
  }
  if (name == "stream") {
    return stream(iterations);
  }
  if (name == "amg") {
    return amg(iterations);
  }
  if (name == "qmcpack") {
    return qmcpack();
  }
  if (name == "qmcpack-dmc") {
    return qmcpack_dmc(iterations);
  }
  if (name == "openmc") {
    return openmc();
  }
  if (name == "openmc-active") {
    return openmc_active(iterations);
  }
  if (name == "candle") {
    return candle();
  }
  throw std::invalid_argument("apps::by_name: unknown application " + name);
}

std::vector<progress::AppTraits> interview_traits() {
  return {qmcpack_traits(), openmc_traits(), amg_traits(),
          lammps_traits(),  candle_traits(), stream_traits(),
          urban_traits(),   nek5000_traits(), hacc_traits()};
}

}  // namespace procap::apps
