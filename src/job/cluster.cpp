#include "job/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace procap::job {

Cluster::Cluster(sim::Engine& engine, const apps::AppModel& app,
                 ClusterSpec spec) {
  if (spec.nodes == 0) {
    throw std::invalid_argument("Cluster: need at least one node");
  }
  Rng rng(spec.seed);
  nodes_.reserve(spec.nodes);
  for (unsigned i = 0; i < spec.nodes; ++i) {
    JobNode jn;
    // Manufacturing variability: clamp to a plausible part spread.
    jn.power_efficiency_factor = std::clamp(
        1.0 + spec.variability_cv * rng.normal(), 0.80, 1.25);
    hw::NodeSpec node_spec = spec.node_spec;
    node_spec.cpu.dyn_coeff *= jn.power_efficiency_factor;

    jn.node = std::make_unique<hw::Node>(node_spec);
    jn.broker = std::make_unique<msgbus::Broker>(engine.time());
    jn.rapl = std::make_unique<rapl::RaplInterface>(
        jn.node->msr(), engine.time(), jn.node->package_leaders());
    jn.app = std::make_unique<apps::SimApp>(jn.node->package(), *jn.broker,
                                            app.spec, rng.next_u64());
    jn.monitor = std::make_unique<progress::Monitor>(
        jn.broker->make_sub(), app.spec.name, engine.time());

    engine.add(*jn.node);
    nodes_.push_back(std::move(jn));
  }
  engine.every(kNanosPerSecond, [this](Nanos) {
    for (JobNode& jn : nodes_) {
      jn.monitor->poll();
    }
  });
}

std::vector<double> Cluster::rates() const {
  std::vector<double> out;
  out.reserve(nodes_.size());
  for (const JobNode& jn : nodes_) {
    out.push_back(jn.monitor->current_rate());
  }
  return out;
}

std::vector<Watts> Cluster::powers() const {
  std::vector<Watts> out;
  out.reserve(nodes_.size());
  for (const JobNode& jn : nodes_) {
    out.push_back(jn.node->package().power());
  }
  return out;
}

double Cluster::job_rate() const {
  const auto all = rates();
  return *std::min_element(all.begin(), all.end());
}

}  // namespace procap::job
