#include "job/manager.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/log.hpp"

namespace procap::job {

JobPowerManager::JobPowerManager(Cluster& cluster,
                                 const TimeSource& time_source,
                                 Watts job_budget, JobManagerConfig config)
    : cluster_(&cluster),
      time_(&time_source),
      budget_(job_budget),
      config_(config) {
  if (job_budget <= 0.0) {
    throw std::invalid_argument("JobPowerManager: budget must be positive");
  }
  const double n = cluster_->size();
  if (budget_ / n < config_.min_node_cap) {
    throw std::invalid_argument(
        "JobPowerManager: budget below nodes * min_node_cap");
  }
  caps_.assign(cluster_->size(),
               std::min(budget_ / n, config_.max_node_cap));
  smoothed_rates_.assign(
      cluster_->size(),
      MovingAverage(config_.rate_smoothing == 0 ? 1 : config_.rate_smoothing));
  apply_caps();
}

void JobPowerManager::set_budget(Watts job_budget) {
  if (job_budget <= 0.0) {
    throw std::invalid_argument("JobPowerManager: budget must be positive");
  }
  if (job_budget / cluster_->size() < config_.min_node_cap) {
    throw std::invalid_argument(
        "JobPowerManager: budget below nodes * min_node_cap");
  }
  const double current_total =
      std::accumulate(caps_.begin(), caps_.end(), 0.0);
  const double scale = job_budget / current_total;
  for (Watts& cap : caps_) {
    cap = std::clamp(cap * scale, config_.min_node_cap,
                     config_.max_node_cap);
  }
  budget_ = job_budget;
  apply_caps();
}

void JobPowerManager::apply_caps() {
  for (unsigned i = 0; i < cluster_->size(); ++i) {
    cluster_->node(i).rapl->set_pkg_cap(caps_[i]);
  }
}

void JobPowerManager::tick() {
  const auto raw = cluster_->rates();
  job_rate_.add(time_->now(), *std::min_element(raw.begin(), raw.end()));
  std::vector<double> rates(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    smoothed_rates_[i].add(raw[i]);
    rates[i] = smoothed_rates_[i].mean();
  }
  const double slowest_rate =
      *std::min_element(rates.begin(), rates.end());

  if (config_.policy == JobPolicy::kCriticalPath && slowest_rate > 0.0) {
    // Identify the laggard and the leader; move watts if the spread is
    // outside the deadband and the bounds allow it.
    const auto slow = static_cast<std::size_t>(
        std::min_element(rates.begin(), rates.end()) - rates.begin());
    const auto fast = static_cast<std::size_t>(
        std::max_element(rates.begin(), rates.end()) - rates.begin());
    const double spread =
        (rates[fast] - rates[slow]) / std::max(rates[fast], 1e-12);
    if (fast != slow && spread > config_.spread_deadband) {
      const Watts give = std::min(
          {config_.shift_step, caps_[fast] - config_.min_node_cap,
           config_.max_node_cap - caps_[slow]});
      if (give > 0.0) {
        caps_[fast] -= give;
        caps_[slow] += give;
        shifted_ += give;
        PROCAP_DEBUG << "job: shifted " << give << " W from node " << fast
                     << " to node " << slow;
      }
    }
  }
  apply_caps();
}

void JobPowerManager::attach(sim::Engine& engine, Nanos interval) {
  // Let the monitors close their first windows before managing.
  engine.every(interval, [this](Nanos) { tick(); }, interval);
}

}  // namespace procap::job
