// system.hpp — the top of the paper's power-management hierarchy.
//
// "At the top, a system controller monitors power across the entire
// machine and distributes power budgets across the jobs" (paper
// Section II).  SystemPowerManager implements that controller over the
// job-level managers: each registered job has a priority and a minimum
// viable budget; the machine budget is divided in proportion to priority
// weights, subject to the per-job floor and ceiling, and every change
// (job arrival, job completion, machine budget revision) cascades down
// through the JobPowerManagers to per-node RAPL caps.
//
// The paper's second motivating scenario — "a large, high-priority job
// begins executing elsewhere on the system, and the power budget for the
// currently executing low-priority job is reduced" — is literally
// add_job() with a higher priority.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "job/manager.hpp"
#include "util/units.hpp"

namespace procap::job {

/// System-level budget distributor over registered jobs.
class SystemPowerManager {
 public:
  /// `machine_budget` is the total watts the facility grants the machine.
  explicit SystemPowerManager(Watts machine_budget);

  /// Register a job.  `priority` >= 1 weights the division;
  /// `min_budget` is the floor below which the job cannot run (its
  /// nodes' static power), `max_budget` the most it can usefully consume
  /// (uncapped power of all its nodes).  Triggers a rebalance; throws if
  /// the floors of all jobs would exceed the machine budget.
  void add_job(const std::string& name, int priority,
               JobPowerManager& manager, Watts min_budget, Watts max_budget);

  /// Deregister a job (it finished); its budget is redistributed.
  void remove_job(const std::string& name);

  /// Facility directive: change the machine budget and redistribute.
  void set_machine_budget(Watts budget);

  [[nodiscard]] Watts machine_budget() const { return machine_budget_; }

  /// Budget currently granted to `name`; throws if unknown.
  [[nodiscard]] Watts budget_of(const std::string& name) const;

  /// Registered job names.
  [[nodiscard]] std::vector<std::string> jobs() const;

  /// Sum of currently granted budgets (<= machine budget).
  [[nodiscard]] Watts total_granted() const;

 private:
  struct Job {
    int priority = 1;
    JobPowerManager* manager = nullptr;
    Watts min_budget = 0.0;
    Watts max_budget = 0.0;
    Watts granted = 0.0;
  };

  /// Water-filling: give every job its floor, then split the remainder by
  /// priority weight, clipping at each job's ceiling and re-spreading any
  /// surplus.  Pushes the results into the job managers.
  void rebalance();

  Watts machine_budget_;
  std::map<std::string, Job> jobs_;
};

}  // namespace procap::job
