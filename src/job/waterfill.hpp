// waterfill.hpp — weighted water-filling under floors and ceilings.
//
// The budget-division primitive every layer of the hierarchy shares:
// give each item its floor, split the remainder in proportion to weight,
// and when an item saturates at its ceiling re-spread the surplus over
// the items still open.  SystemPowerManager uses it to divide a machine
// budget over jobs (weight = priority); the cluster layer's strategies
// use it to divide a cluster budget over nodes (weight = demand or
// progress deficit).
#pragma once

#include <vector>

#include "util/units.hpp"

namespace procap::job {

/// One participant in a water-filling round.
struct WaterfillItem {
  double weight = 1.0;   ///< share of the remainder (> 0)
  Watts floor = 0.0;     ///< granted unconditionally first
  Watts ceiling = 0.0;   ///< grant never exceeds this
  Watts granted = 0.0;   ///< output
};

/// Distribute `budget` over `items` (grants written in place); returns
/// the total granted, <= budget up to floating-point error.  Floors are
/// honoured even when they exceed the budget — validating that floors
/// fit is the caller's admission decision, as in SystemPowerManager.
Watts waterfill(std::vector<WaterfillItem>& items, Watts budget);

}  // namespace procap::job
