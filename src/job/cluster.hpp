// cluster.hpp — a multi-node job on one simulation engine.
//
// The paper's power-management hierarchy (Section II) has a job-level
// layer that "distributes [the job's] power budget to nodes, according to
// application characteristics and node variability".  Cluster provides
// the substrate for that layer: N simulated nodes on one engine, each
// running the same application workload, each with its own RAPL
// interface and progress monitor.
//
// Node *manufacturing variability* — the phenomenon Rountree et al.
// highlight as dominant under power bounds (paper Section VII) — is
// modeled as a per-node multiplier on the dynamic-power coefficient: an
// inefficient part needs more watts for the same frequency, so under an
// identical cap it runs slower.  Uncapped, all nodes perform identically
// (frequency-limited); capped, their progress spreads — exactly the
// behaviour observed on real power-limited clusters.
#pragma once

#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "apps/suite.hpp"
#include "hw/node.hpp"
#include "msgbus/bus.hpp"
#include "progress/monitor.hpp"
#include "rapl/rapl.hpp"
#include "sim/engine.hpp"

namespace procap::job {

/// Everything one node contributes to the job.
struct JobNode {
  std::unique_ptr<hw::Node> node;
  std::unique_ptr<msgbus::Broker> broker;
  std::unique_ptr<rapl::RaplInterface> rapl;
  std::unique_ptr<apps::SimApp> app;
  std::unique_ptr<progress::Monitor> monitor;
  /// This node's dynamic-power multiplier (1.0 = nominal part).
  double power_efficiency_factor = 1.0;
};

/// Configuration for a Cluster.
struct ClusterSpec {
  unsigned nodes = 4;
  hw::NodeSpec node_spec{};
  /// Coefficient of variation of the per-node dynamic-power multiplier
  /// (typical manufacturing spread is a few percent).
  double variability_cv = 0.05;
  /// Seed for the variability draw and the per-node app streams.
  std::uint64_t seed = 1;
};

/// N identical-workload nodes under one engine.
class Cluster {
 public:
  /// Builds the nodes, launches `app` on each, registers everything with
  /// `engine`, and polls every monitor once per second.
  Cluster(sim::Engine& engine, const apps::AppModel& app, ClusterSpec spec);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(nodes_.size());
  }
  [[nodiscard]] JobNode& node(unsigned i) { return nodes_.at(i); }
  [[nodiscard]] const JobNode& node(unsigned i) const { return nodes_.at(i); }

  /// Most recent 1-s progress rate per node.
  [[nodiscard]] std::vector<double> rates() const;

  /// Most recent package power per node (last tick).
  [[nodiscard]] std::vector<Watts> powers() const;

  /// The job's progress under a tightly coupled (bulk-synchronous across
  /// nodes) execution model: the slowest node's rate.
  [[nodiscard]] double job_rate() const;

 private:
  std::vector<JobNode> nodes_;
};

}  // namespace procap::job
