#include "job/waterfill.hpp"

namespace procap::job {

Watts waterfill(std::vector<WaterfillItem>& items, Watts budget) {
  Watts remaining = budget;
  std::vector<WaterfillItem*> open;
  open.reserve(items.size());
  for (WaterfillItem& item : items) {
    item.granted = item.floor;
    remaining -= item.floor;
    open.push_back(&item);
  }
  // Split the remainder by weight; items that hit their ceiling drop out
  // and their share re-spreads over whoever is still open.
  while (remaining > 1e-9 && !open.empty()) {
    double weight_sum = 0.0;
    for (const WaterfillItem* item : open) {
      weight_sum += item->weight;
    }
    if (weight_sum <= 0.0) {
      break;
    }
    const Watts pool = remaining;
    remaining = 0.0;
    std::vector<WaterfillItem*> still_open;
    for (WaterfillItem* item : open) {
      const Watts share = pool * item->weight / weight_sum;
      const Watts headroom = item->ceiling - item->granted;
      if (share >= headroom) {
        item->granted = item->ceiling;
        remaining += share - headroom;  // surplus re-spreads
      } else {
        item->granted += share;
        still_open.push_back(item);
      }
    }
    if (still_open.size() == open.size()) {
      break;  // nobody saturated: the pool is fully distributed
    }
    open = std::move(still_open);
  }
  Watts total = 0.0;
  for (const WaterfillItem& item : items) {
    total += item.granted;
  }
  return total;
}

}  // namespace procap::job
