// manager.hpp — job-level power budget distribution.
//
// The middle layer of the paper's hierarchy (Section II): given a job
// budget from the system level, distribute per-node caps.  Progress
// monitoring is what enables the interesting policies — without an
// online progress signal, the manager can only split uniformly.
//
//   kUniform              budget / N to every node (progress-blind).
//   kCriticalPath         tightly coupled jobs advance at the slowest
//                         node's rate, so shift watts from nodes running
//                         ahead to nodes running behind (the POW /
//                         Conductor idea the paper cites, built on the
//                         paper's own progress metric).
//
// Every redistribution preserves the invariant
//     sum(node caps) <= job budget,
// and caps stay within [min_node_cap, max_node_cap].
#pragma once

#include <cstdint>
#include <vector>

#include "job/cluster.hpp"
#include "sim/engine.hpp"
#include "util/series.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace procap::job {

/// Budget distribution policies.
enum class JobPolicy {
  kUniform,
  kCriticalPath,
};

/// Tuning for the manager.
struct JobManagerConfig {
  JobPolicy policy = JobPolicy::kUniform;
  /// Watts moved per rebalance step between a (fastest, slowest) pair.
  Watts shift_step = 2.0;
  /// Per-node cap bounds.
  Watts min_node_cap = 30.0;
  Watts max_node_cap = 200.0;
  /// Relative rate spread below which no rebalancing happens.
  double spread_deadband = 0.03;
  /// Ticks of smoothing applied to each node's rate before comparing
  /// (1-s windows quantize to whole iterations; decisions on raw windows
  /// would chase that noise).
  std::size_t rate_smoothing = 4;
};

/// Enforces a job budget across a Cluster's nodes.
class JobPowerManager {
 public:
  /// `cluster` and `time_source` must outlive the manager.  Applies the
  /// initial uniform split immediately.
  JobPowerManager(Cluster& cluster, const TimeSource& time_source,
                  Watts job_budget, JobManagerConfig config);

  /// Change the job budget (system-level directive); rescales the current
  /// per-node caps proportionally so the invariant holds immediately.
  void set_budget(Watts job_budget);

  [[nodiscard]] Watts budget() const { return budget_; }

  /// Current per-node caps.
  [[nodiscard]] const std::vector<Watts>& caps() const { return caps_; }

  /// One management cycle (call at 1 Hz): read progress, rebalance under
  /// the active policy, program the node caps.
  void tick();

  /// Register with the engine at `interval`.
  void attach(sim::Engine& engine, Nanos interval = kNanosPerSecond);

  /// Job progress (slowest node) over time, as seen at tick instants.
  [[nodiscard]] const TimeSeries& job_rate_series() const {
    return job_rate_;
  }

  /// Total watts shifted between nodes so far (diagnostic).
  [[nodiscard]] Watts total_shifted() const { return shifted_; }

 private:
  void apply_caps();

  Cluster* cluster_;
  const TimeSource* time_;
  Watts budget_;
  JobManagerConfig config_;
  std::vector<Watts> caps_;
  std::vector<MovingAverage> smoothed_rates_;
  TimeSeries job_rate_{"job_rate"};
  Watts shifted_ = 0.0;
};

}  // namespace procap::job
