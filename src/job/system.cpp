#include "job/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace procap::job {

SystemPowerManager::SystemPowerManager(Watts machine_budget)
    : machine_budget_(machine_budget) {
  if (machine_budget <= 0.0) {
    throw std::invalid_argument(
        "SystemPowerManager: machine budget must be positive");
  }
}

void SystemPowerManager::add_job(const std::string& name, int priority,
                                 JobPowerManager& manager, Watts min_budget,
                                 Watts max_budget) {
  if (priority < 1) {
    throw std::invalid_argument("SystemPowerManager: priority must be >= 1");
  }
  if (min_budget <= 0.0 || max_budget < min_budget) {
    throw std::invalid_argument(
        "SystemPowerManager: need max_budget >= min_budget > 0");
  }
  if (jobs_.contains(name)) {
    throw std::invalid_argument("SystemPowerManager: duplicate job " + name);
  }
  Watts floors = min_budget;
  for (const auto& [n, job] : jobs_) {
    floors += job.min_budget;
  }
  if (floors > machine_budget_) {
    throw std::invalid_argument(
        "SystemPowerManager: job floors exceed the machine budget");
  }
  jobs_[name] = Job{priority, &manager, min_budget, max_budget, 0.0};
  PROCAP_INFO << "system: job " << name << " (priority " << priority
              << ") admitted";
  rebalance();
}

void SystemPowerManager::remove_job(const std::string& name) {
  if (jobs_.erase(name) == 0) {
    throw std::invalid_argument("SystemPowerManager: unknown job " + name);
  }
  if (!jobs_.empty()) {
    rebalance();
  }
}

void SystemPowerManager::set_machine_budget(Watts budget) {
  if (budget <= 0.0) {
    throw std::invalid_argument(
        "SystemPowerManager: machine budget must be positive");
  }
  Watts floors = 0.0;
  for (const auto& [n, job] : jobs_) {
    floors += job.min_budget;
  }
  if (floors > budget) {
    throw std::invalid_argument(
        "SystemPowerManager: budget below the admitted jobs' floors");
  }
  machine_budget_ = budget;
  rebalance();
}

Watts SystemPowerManager::budget_of(const std::string& name) const {
  const auto it = jobs_.find(name);
  if (it == jobs_.end()) {
    throw std::invalid_argument("SystemPowerManager: unknown job " + name);
  }
  return it->second.granted;
}

std::vector<std::string> SystemPowerManager::jobs() const {
  std::vector<std::string> names;
  names.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) {
    names.push_back(name);
  }
  return names;
}

Watts SystemPowerManager::total_granted() const {
  Watts total = 0.0;
  for (const auto& [name, job] : jobs_) {
    total += job.granted;
  }
  return total;
}

void SystemPowerManager::rebalance() {
  // Start from the floors.
  Watts remaining = machine_budget_;
  for (auto& [name, job] : jobs_) {
    job.granted = job.min_budget;
    remaining -= job.min_budget;
  }
  // Water-fill the remainder by priority weight; jobs that hit their
  // ceiling drop out and their share re-spreads.
  std::vector<Job*> open;
  for (auto& [name, job] : jobs_) {
    open.push_back(&job);
  }
  while (remaining > 1e-9 && !open.empty()) {
    double weight_sum = 0.0;
    for (const Job* job : open) {
      weight_sum += job->priority;
    }
    const Watts pool = remaining;
    remaining = 0.0;
    std::vector<Job*> still_open;
    for (Job* job : open) {
      const Watts share = pool * job->priority / weight_sum;
      const Watts headroom = job->max_budget - job->granted;
      if (share >= headroom) {
        job->granted = job->max_budget;
        remaining += share - headroom;  // surplus re-spreads
      } else {
        job->granted += share;
        still_open.push_back(job);
      }
    }
    if (still_open.size() == open.size()) {
      break;  // nobody saturated: the pool is fully distributed
    }
    open = std::move(still_open);
  }
  // Cascade to the job managers.
  for (auto& [name, job] : jobs_) {
    job.manager->set_budget(job.granted);
    PROCAP_DEBUG << "system: " << name << " -> " << job.granted << " W";
  }
}

}  // namespace procap::job
