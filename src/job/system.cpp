#include "job/system.hpp"

#include <algorithm>
#include <stdexcept>

#include "job/waterfill.hpp"
#include "util/log.hpp"

namespace procap::job {

SystemPowerManager::SystemPowerManager(Watts machine_budget)
    : machine_budget_(machine_budget) {
  if (machine_budget <= 0.0) {
    throw std::invalid_argument(
        "SystemPowerManager: machine budget must be positive");
  }
}

void SystemPowerManager::add_job(const std::string& name, int priority,
                                 JobPowerManager& manager, Watts min_budget,
                                 Watts max_budget) {
  if (priority < 1) {
    throw std::invalid_argument("SystemPowerManager: priority must be >= 1");
  }
  if (min_budget <= 0.0 || max_budget < min_budget) {
    throw std::invalid_argument(
        "SystemPowerManager: need max_budget >= min_budget > 0");
  }
  if (jobs_.contains(name)) {
    throw std::invalid_argument("SystemPowerManager: duplicate job " + name);
  }
  Watts floors = min_budget;
  for (const auto& [n, job] : jobs_) {
    floors += job.min_budget;
  }
  if (floors > machine_budget_) {
    throw std::invalid_argument(
        "SystemPowerManager: job floors exceed the machine budget");
  }
  jobs_[name] = Job{priority, &manager, min_budget, max_budget, 0.0};
  PROCAP_INFO << "system: job " << name << " (priority " << priority
              << ") admitted";
  rebalance();
}

void SystemPowerManager::remove_job(const std::string& name) {
  if (jobs_.erase(name) == 0) {
    throw std::invalid_argument("SystemPowerManager: unknown job " + name);
  }
  if (!jobs_.empty()) {
    rebalance();
  }
}

void SystemPowerManager::set_machine_budget(Watts budget) {
  if (budget <= 0.0) {
    throw std::invalid_argument(
        "SystemPowerManager: machine budget must be positive");
  }
  Watts floors = 0.0;
  for (const auto& [n, job] : jobs_) {
    floors += job.min_budget;
  }
  if (floors > budget) {
    throw std::invalid_argument(
        "SystemPowerManager: budget below the admitted jobs' floors");
  }
  machine_budget_ = budget;
  rebalance();
}

Watts SystemPowerManager::budget_of(const std::string& name) const {
  const auto it = jobs_.find(name);
  if (it == jobs_.end()) {
    throw std::invalid_argument("SystemPowerManager: unknown job " + name);
  }
  return it->second.granted;
}

std::vector<std::string> SystemPowerManager::jobs() const {
  std::vector<std::string> names;
  names.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) {
    names.push_back(name);
  }
  return names;
}

Watts SystemPowerManager::total_granted() const {
  Watts total = 0.0;
  for (const auto& [name, job] : jobs_) {
    total += job.granted;
  }
  return total;
}

void SystemPowerManager::rebalance() {
  // Floors first, remainder water-filled by priority weight.
  std::vector<WaterfillItem> items;
  items.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) {
    items.push_back(WaterfillItem{static_cast<double>(job.priority),
                                  job.min_budget, job.max_budget, 0.0});
  }
  waterfill(items, machine_budget_);
  // Cascade to the job managers (jobs_ is ordered, items parallel it).
  std::size_t i = 0;
  for (auto& [name, job] : jobs_) {
    job.granted = items[i++].granted;
    job.manager->set_budget(job.granted);
    PROCAP_DEBUG << "system: " << name << " -> " << job.granted << " W";
  }
}

}  // namespace procap::job
