// fit.hpp — evaluating and fitting the progress model against data.
//
// The paper fixes alpha = 2 and reports per-cap error percentages
// (Section VI, Fig. 4).  It also observes that the best alpha "varies
// between 1 and 4 depending on the range of the power cap being applied".
// This module computes the same per-point and summary errors, and fits
// alpha by grid + golden-section refinement — the basis of the
// alpha-sensitivity ablation bench.
#pragma once

#include <span>
#include <vector>

#include "model/progress_model.hpp"

namespace procap::model {

/// One (cap, measured delta-progress) observation.
struct CapObservation {
  Watts p_core_cap = 0.0;
  double measured_delta = 0.0;
};

/// Per-point model evaluation.
struct PointError {
  Watts p_core_cap = 0.0;
  double measured_delta = 0.0;
  double predicted_delta = 0.0;
  /// Signed percent error: (predicted - measured) / measured * 100.
  double error_pct = 0.0;
};

/// Summary error metrics over a set of observations.
struct ErrorSummary {
  double mape = 0.0;      ///< mean |error_pct|
  double rmse = 0.0;      ///< in progress units
  double max_abs_pct = 0.0;
  /// Mean signed error in percent: positive means the model systematically
  /// overestimates the impact (as the paper found for QMCPACK/AMG),
  /// negative means it underestimates (LAMMPS at stringent caps, STREAM).
  double bias_pct = 0.0;
};

/// Evaluate the model at each observation.
[[nodiscard]] std::vector<PointError> evaluate(
    const ModelParams& params, std::span<const CapObservation> observations);

/// Summarize point errors.
[[nodiscard]] ErrorSummary summarize(std::span<const PointError> points);

/// Result of an alpha fit.
struct AlphaFit {
  double alpha = 2.0;
  double mape = 0.0;
};

/// Fit alpha in [lo, hi] minimizing MAPE of delta-progress predictions,
/// holding the other parameters fixed.  Coarse grid then golden-section.
[[nodiscard]] AlphaFit fit_alpha(ModelParams params,
                                 std::span<const CapObservation> observations,
                                 double lo = 1.0, double hi = 4.0);

}  // namespace procap::model
