// beta.hpp — the compute-boundedness metric (Hsu & Kremer).
//
// Eq. (1) of the paper relates execution time to frequency:
//
//   T(f) / T(fmax) = beta * (fmax / f - 1) + 1
//
// beta in [0, 1]; 1 means ideally compute-bound (time scales inversely
// with frequency), 0 means frequency-insensitive (memory-bound).  The
// paper measures beta from execution times at 3300 MHz and 1600 MHz
// (Section IV-A); these helpers invert Eq. (1) from either timings or
// progress rates (progress ~ 1/T, Eq. (3)).
#pragma once

#include "util/units.hpp"

namespace procap::model {

/// Eq. (1): time dilation factor T(f)/T(fmax) for a given beta.
[[nodiscard]] double time_dilation(double beta, Hertz f, Hertz fmax);

/// Invert Eq. (1) from execution times at a probe frequency `f` and at
/// `fmax`.  The result is clamped to [0, 1] (measurement noise can push
/// the raw value slightly outside).
[[nodiscard]] double beta_from_times(Seconds t_at_f, Seconds t_at_fmax,
                                     Hertz f, Hertz fmax);

/// Invert Eq. (1) from progress rates (rate ~ 1/T, Eq. (3)):
/// beta = (r_fmax / r_f - 1) / (fmax / f - 1), clamped to [0, 1].
[[nodiscard]] double beta_from_rates(double rate_at_f, double rate_at_fmax,
                                     Hertz f, Hertz fmax);

}  // namespace procap::model
