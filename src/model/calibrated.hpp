// calibrated.hpp — the paper's proposed model improvement.
//
// Section VIII: "our current model could be improved by ... more
// accurately modeling the relation between power cap and processor
// behavior", and Section VI-3 observes the best-fit alpha "varies between
// 1 and 4 depending on the range of the power cap being applied" — the
// turbo band is steep (alpha ~ 3-4), the deep-DVFS and duty-cycling
// bands shallow (alpha ~ 1.5-2).
//
// CalibratedModel operationalizes that: partition the core-budget axis
// into contiguous bands of the calibration observations and fit alpha per
// band (grid + golden-section, as model::fit_alpha).  Prediction picks
// the band containing the queried cap.  A handful of step-cap
// measurements — exactly what the paper's Fig. 4 procedure produces —
// is enough to calibrate a node/application pair.
#pragma once

#include <span>
#include <vector>

#include "model/fit.hpp"
#include "model/progress_model.hpp"

namespace procap::model {

/// One calibrated cap band.
struct AlphaBand {
  Watts lo = 0.0;   ///< inclusive lower core-budget bound
  Watts hi = 0.0;   ///< inclusive upper core-budget bound
  double alpha = 2.0;
  double fit_mape = 0.0;  ///< in-band MAPE at the fitted alpha
};

/// Piecewise-alpha progress model calibrated from cap observations.
class CalibratedModel {
 public:
  /// `base` supplies beta, p_core_max and r_max (alpha is ignored);
  /// `observations` are (core cap, measured delta) pairs as produced by
  /// the Fig. 4 procedure; `bands` contiguous regimes are fitted
  /// (each band needs at least two observations).  Throws
  /// std::invalid_argument when the data cannot support the split.
  CalibratedModel(ModelParams base,
                  std::span<const CapObservation> observations,
                  unsigned bands = 3);

  /// Predicted progress drop at a core budget.  Caps outside the
  /// calibrated range use the nearest band's alpha.
  [[nodiscard]] double predict_delta(Watts p_core_cap) const;

  /// Predicted absolute progress rate at a core budget.
  [[nodiscard]] double predict_rate(Watts p_core_cap) const;

  /// The fitted bands, ordered by increasing cap.
  [[nodiscard]] const std::vector<AlphaBand>& bands() const { return bands_; }

  /// The base parameters (beta, p_core_max, r_max).
  [[nodiscard]] const ModelParams& base() const { return base_; }

  /// In-sample MAPE of this calibrated model over its own observations.
  [[nodiscard]] double calibration_mape() const { return mape_; }

 private:
  [[nodiscard]] double alpha_for(Watts p_core_cap) const;

  ModelParams base_;
  std::vector<AlphaBand> bands_;
  double mape_ = 0.0;
};

}  // namespace procap::model
