#include "model/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procap::model {

std::vector<PointError> evaluate(
    const ModelParams& params, std::span<const CapObservation> observations) {
  std::vector<PointError> points;
  points.reserve(observations.size());
  for (const auto& obs : observations) {
    PointError pt;
    pt.p_core_cap = obs.p_core_cap;
    pt.measured_delta = obs.measured_delta;
    pt.predicted_delta = delta_progress(params, obs.p_core_cap);
    pt.error_pct = obs.measured_delta != 0.0
                       ? (pt.predicted_delta - pt.measured_delta) /
                             std::abs(obs.measured_delta) * 100.0
                       : 0.0;
    points.push_back(pt);
  }
  return points;
}

ErrorSummary summarize(std::span<const PointError> points) {
  ErrorSummary summary;
  if (points.empty()) {
    return summary;
  }
  double abs_sum = 0.0;
  double signed_sum = 0.0;
  double sq_sum = 0.0;
  for (const auto& pt : points) {
    abs_sum += std::abs(pt.error_pct);
    signed_sum += pt.error_pct;
    const double d = pt.predicted_delta - pt.measured_delta;
    sq_sum += d * d;
    summary.max_abs_pct = std::max(summary.max_abs_pct,
                                   std::abs(pt.error_pct));
  }
  const auto n = static_cast<double>(points.size());
  summary.mape = abs_sum / n;
  summary.bias_pct = signed_sum / n;
  summary.rmse = std::sqrt(sq_sum / n);
  return summary;
}

namespace {
double mape_at_alpha(ModelParams params, double alpha,
                     std::span<const CapObservation> observations) {
  params.alpha = alpha;
  const auto points = evaluate(params, observations);
  return summarize(points).mape;
}
}  // namespace

AlphaFit fit_alpha(ModelParams params,
                   std::span<const CapObservation> observations, double lo,
                   double hi) {
  if (observations.empty()) {
    throw std::invalid_argument("fit_alpha: no observations");
  }
  if (lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("fit_alpha: bad range");
  }
  // Coarse grid to localize the basin (the objective can be flat or
  // multi-welled for small observation sets).
  constexpr int kGrid = 31;
  double best_alpha = lo;
  double best = mape_at_alpha(params, lo, observations);
  for (int i = 1; i < kGrid; ++i) {
    const double a = lo + (hi - lo) * i / (kGrid - 1);
    const double m = mape_at_alpha(params, a, observations);
    if (m < best) {
      best = m;
      best_alpha = a;
    }
  }
  // Golden-section refinement around the best grid cell.
  const double cell = (hi - lo) / (kGrid - 1);
  double a = std::max(lo, best_alpha - cell);
  double b = std::min(hi, best_alpha + cell);
  constexpr double kPhi = 0.6180339887498949;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = mape_at_alpha(params, x1, observations);
  double f2 = mape_at_alpha(params, x2, observations);
  for (int iter = 0; iter < 60 && (b - a) > 1e-6; ++iter) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = mape_at_alpha(params, x1, observations);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = mape_at_alpha(params, x2, observations);
    }
  }
  const double alpha = 0.5 * (a + b);
  return AlphaFit{alpha, mape_at_alpha(params, alpha, observations)};
}

}  // namespace procap::model
