#include "model/calibrated.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace procap::model {

CalibratedModel::CalibratedModel(ModelParams base,
                                 std::span<const CapObservation> observations,
                                 unsigned bands)
    : base_(base) {
  if (bands == 0) {
    throw std::invalid_argument("CalibratedModel: need at least one band");
  }
  if (observations.size() < 2 * static_cast<std::size_t>(bands)) {
    throw std::invalid_argument(
        "CalibratedModel: need >= 2 observations per band");
  }
  std::vector<CapObservation> sorted(observations.begin(),
                                     observations.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const CapObservation& a, const CapObservation& b) {
              return a.p_core_cap < b.p_core_cap;
            });

  const std::size_t per_band = sorted.size() / bands;
  double abs_err_sum = 0.0;
  std::size_t err_count = 0;
  for (unsigned b = 0; b < bands; ++b) {
    const std::size_t begin = b * per_band;
    const std::size_t end =
        (b + 1 == bands) ? sorted.size() : begin + per_band;
    const std::span<const CapObservation> slice(&sorted[begin], end - begin);

    AlphaBand band;
    band.lo = slice.front().p_core_cap;
    band.hi = slice.back().p_core_cap;
    const AlphaFit fit = fit_alpha(base_, slice);
    band.alpha = fit.alpha;
    band.fit_mape = fit.mape;
    bands_.push_back(band);

    ModelParams fitted = base_;
    fitted.alpha = band.alpha;
    for (const auto& pt : evaluate(fitted, slice)) {
      abs_err_sum += std::abs(pt.error_pct);
      ++err_count;
    }
  }
  mape_ = err_count ? abs_err_sum / static_cast<double>(err_count) : 0.0;
}

double CalibratedModel::alpha_for(Watts p_core_cap) const {
  for (const AlphaBand& band : bands_) {
    if (p_core_cap <= band.hi) {
      return band.alpha;
    }
  }
  return bands_.back().alpha;
}

double CalibratedModel::predict_delta(Watts p_core_cap) const {
  ModelParams params = base_;
  params.alpha = alpha_for(p_core_cap);
  return delta_progress(params, p_core_cap);
}

double CalibratedModel::predict_rate(Watts p_core_cap) const {
  ModelParams params = base_;
  params.alpha = alpha_for(p_core_cap);
  return progress_at_core_power(params, p_core_cap);
}

}  // namespace procap::model
