#include "model/beta.hpp"

#include <algorithm>
#include <stdexcept>

namespace procap::model {

double time_dilation(double beta, Hertz f, Hertz fmax) {
  if (f <= 0.0 || fmax <= 0.0) {
    throw std::invalid_argument("time_dilation: frequencies must be positive");
  }
  return beta * (fmax / f - 1.0) + 1.0;
}

double beta_from_times(Seconds t_at_f, Seconds t_at_fmax, Hertz f,
                       Hertz fmax) {
  if (t_at_f <= 0.0 || t_at_fmax <= 0.0) {
    throw std::invalid_argument("beta_from_times: times must be positive");
  }
  if (f <= 0.0 || fmax <= 0.0 || f == fmax) {
    throw std::invalid_argument("beta_from_times: need distinct frequencies");
  }
  const double dilation = t_at_f / t_at_fmax;
  const double beta = (dilation - 1.0) / (fmax / f - 1.0);
  return std::clamp(beta, 0.0, 1.0);
}

double beta_from_rates(double rate_at_f, double rate_at_fmax, Hertz f,
                       Hertz fmax) {
  if (rate_at_f <= 0.0 || rate_at_fmax <= 0.0) {
    throw std::invalid_argument("beta_from_rates: rates must be positive");
  }
  // rate ~ 1/T, so T(f)/T(fmax) = rate_at_fmax / rate_at_f.
  return beta_from_times(1.0 / rate_at_f, 1.0 / rate_at_fmax, f, fmax);
}

}  // namespace procap::model
