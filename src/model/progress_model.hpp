// progress_model.hpp — the paper's model of power-cap impact on progress.
//
// Assumptions (paper Section VI, validated experimentally there and in
// our simulator):
//   * RAPL splits the package budget between core and uncore in the ratio
//     of the application's compute-boundedness:  P_corecap = beta * P_cap
//     (Eq. 5), and the application consumes the whole budget (Eq. 6).
//   * Core power relates to frequency as P_core ~ f^alpha (Eq. 2), with
//     alpha nominally 2.
//
// Combining with Eq. (1) via rate ~ 1/T (Eq. 3) gives Eq. (4):
//
//   r(P_core) = r(P_coremax) / (beta * ((P_coremax/P_core)^(1/alpha) - 1) + 1)
//
// and the headline prediction, Eq. (7):
//
//   delta = r(P_coremax) * [1 - 1/(beta*((P_coremax/P_corecap)^(1/alpha)-1)+1)]
#pragma once

#include "util/units.hpp"

namespace procap::model {

/// Per-application model parameters.
struct ModelParams {
  /// Compute-boundedness in [0, 1] (Table VI).
  double beta = 1.0;
  /// Core power-law exponent; the paper fixes 2.0 for all predictions and
  /// notes the true value ranges over [1, 4] by cap regime.
  double alpha = 2.0;
  /// Core power at the uncapped operating point (estimated in the paper
  /// as beta * measured uncapped package power).
  Watts p_core_max = 0.0;
  /// Progress rate at the uncapped operating point (application units/s).
  double r_max = 0.0;
};

/// Eq. (5): the effective core budget RAPL grants under a package cap.
[[nodiscard]] Watts effective_core_cap(double beta, Watts pkg_cap);

/// Eq. (4): predicted progress rate at a core power level.
/// `p_core` above p_core_max predicts r_max (power is not the limiter).
[[nodiscard]] double progress_at_core_power(const ModelParams& params,
                                            Watts p_core);

/// Eq. (7): predicted *drop* in progress when capping the core budget to
/// `p_core_cap` from the uncapped state.
[[nodiscard]] double delta_progress(const ModelParams& params,
                                    Watts p_core_cap);

/// Inverse query (the paper's third modeling goal: "decide on the exact
/// power budget to be employed given an expectation of online
/// performance"): the minimum core budget that sustains `target_rate`.
/// Returns p_core_max when the target is unreachable only by exceeding
/// the uncapped rate.  Throws for target_rate <= 0.
[[nodiscard]] Watts core_power_for_progress(const ModelParams& params,
                                            double target_rate);

/// Package-cap convenience wrappers applying Eq. (5) around the above.
[[nodiscard]] double progress_at_pkg_cap(const ModelParams& params,
                                         Watts pkg_cap);
[[nodiscard]] Watts pkg_cap_for_progress(const ModelParams& params,
                                         double target_rate);

}  // namespace procap::model
