#include "model/progress_model.hpp"

#include <cmath>
#include <stdexcept>

namespace procap::model {

namespace {
void validate(const ModelParams& params) {
  if (params.beta < 0.0 || params.beta > 1.0) {
    throw std::invalid_argument("ModelParams: beta out of [0, 1]");
  }
  if (params.alpha <= 0.0) {
    throw std::invalid_argument("ModelParams: alpha must be positive");
  }
  if (params.p_core_max <= 0.0) {
    throw std::invalid_argument("ModelParams: p_core_max must be positive");
  }
  if (params.r_max <= 0.0) {
    throw std::invalid_argument("ModelParams: r_max must be positive");
  }
}
}  // namespace

Watts effective_core_cap(double beta, Watts pkg_cap) {
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("effective_core_cap: beta out of [0, 1]");
  }
  if (pkg_cap <= 0.0) {
    throw std::invalid_argument("effective_core_cap: cap must be positive");
  }
  return beta * pkg_cap;
}

double progress_at_core_power(const ModelParams& params, Watts p_core) {
  validate(params);
  if (p_core <= 0.0) {
    throw std::invalid_argument("progress_at_core_power: power not positive");
  }
  if (p_core >= params.p_core_max) {
    return params.r_max;  // cap above the operating point: no effect
  }
  const double freq_ratio =
      std::pow(params.p_core_max / p_core, 1.0 / params.alpha);
  const double dilation = params.beta * (freq_ratio - 1.0) + 1.0;
  return params.r_max / dilation;
}

double delta_progress(const ModelParams& params, Watts p_core_cap) {
  return params.r_max - progress_at_core_power(params, p_core_cap);
}

Watts core_power_for_progress(const ModelParams& params, double target_rate) {
  validate(params);
  if (target_rate <= 0.0) {
    throw std::invalid_argument("core_power_for_progress: bad target");
  }
  if (target_rate >= params.r_max) {
    return params.p_core_max;
  }
  if (params.beta == 0.0) {
    // Fully memory-bound: any rate below r_max is sustained by any power.
    return 0.0;
  }
  // Invert Eq. (4): dilation = r_max / target,
  // freq_ratio = (dilation - 1)/beta + 1, p = p_core_max / freq_ratio^alpha.
  const double dilation = params.r_max / target_rate;
  const double freq_ratio = (dilation - 1.0) / params.beta + 1.0;
  return params.p_core_max / std::pow(freq_ratio, params.alpha);
}

double progress_at_pkg_cap(const ModelParams& params, Watts pkg_cap) {
  validate(params);
  if (pkg_cap <= 0.0) {
    throw std::invalid_argument("progress_at_pkg_cap: cap must be positive");
  }
  if (params.beta == 0.0) {
    // Fully memory-bound: Eq. (5) grants the core no budget, and Eq. (4)
    // says frequency does not matter anyway.
    return params.r_max;
  }
  return progress_at_core_power(params,
                                effective_core_cap(params.beta, pkg_cap));
}

Watts pkg_cap_for_progress(const ModelParams& params, double target_rate) {
  validate(params);
  if (params.beta == 0.0) {
    return 0.0;
  }
  return core_power_for_progress(params, target_rate) / params.beta;
}

}  // namespace procap::model
