// sweep.hpp — parallel trial scheduler for experiment sweeps.
//
// Every figure/table reproduction runs a grid of independent trials
// (app × cap × seed); each trial builds its own SimRig, so nothing is
// shared between trials and the grid is embarrassingly parallel.  This
// module expresses that shape declaratively and shards the trials across
// a minithread::ThreadPool with dynamic scheduling:
//
//   exp::CapImpactGrid grid;
//   grid.app = apps::by_name("lammps");
//   grid.caps = {60.0, 80.0, 100.0};
//   grid.seeds = {1, 2, 3};
//   const auto swept = exp::sweep_cap_impact(grid, {.threads = 8});
//   swept.at(grid.index(0, 1));  // cap 60 W, seed 2
//
// Contracts (asserted by tests/exp_sweep_test.cpp):
//   * Determinism — results land in grid order regardless of completion
//     order, and each trial's result is bit-identical to the serial run
//     of the same (trial, seed): trials share no mutable state (the only
//     cross-trial state, the obs registry, never feeds back into
//     results), so thread count and schedule cannot perturb values.
//   * Trial isolation — each trial constructs everything it needs
//     (SimRig, app, monitor, daemon) inside the trial function; the
//     sweep machinery never shares components across trials.
//   * Failure capture — a throwing trial is recorded as a TrialFailure
//     and leaves a nullopt slot; the sweep continues and the other
//     trials' results are unaffected.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/measure.hpp"
#include "minithread/minithread.hpp"

namespace procap::exp {

/// Execution options for a sweep.
struct SweepOptions {
  /// Concurrent trial executors, counting the calling thread (1 = run
  /// serially on the caller; 0 = one per hardware thread).
  unsigned threads = 0;
  /// Trial-to-worker assignment.  kDynamic (the default) load-balances
  /// unequal trial durations; kStatic pins contiguous ranges.
  minithread::ThreadPool::Schedule schedule =
      minithread::ThreadPool::Schedule::kDynamic;
  /// Trials grabbed per dynamic dispatch (ignored for kStatic).
  std::size_t chunk = 1;
  /// Invoked after each trial completes with (done, total).  Serialized
  /// by the sweep: the callback never runs concurrently with itself, so
  /// it need not be thread-safe (it may run on any worker thread).
  std::function<void(std::size_t done, std::size_t total)> on_progress;
};

/// One failed trial: its grid index and the exception message.
struct TrialFailure {
  std::size_t index = 0;
  std::string message;
};

namespace detail {

/// Measured execution stats of one sweep.
struct SweepStats {
  unsigned threads = 1;
  double wall_seconds = 0.0;
};

/// Run trial(i) for every i in [0, n) across the pool.  `trial` must not
/// throw (the typed wrapper below catches per-trial); progress gauges
/// and the user callback are wired here.
SweepStats run_trials(std::size_t n,
                      const std::function<void(std::size_t)>& trial,
                      const SweepOptions& options);

}  // namespace detail

/// Results of a sweep, in grid order (index i = trial i, whatever order
/// trials finished in).
template <class R>
struct SweepResult {
  std::vector<std::optional<R>> trials;  ///< nullopt where the trial threw
  std::vector<TrialFailure> failures;    ///< ascending by index
  unsigned threads = 1;                  ///< executors actually used
  double wall_seconds = 0.0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::size_t size() const { return trials.size(); }
  [[nodiscard]] double trials_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(trials.size()) / wall_seconds
               : 0.0;
  }
  /// Result of trial i; throws std::runtime_error with the trial's
  /// failure message if it did not produce one.
  [[nodiscard]] const R& at(std::size_t i) const {
    if (i >= trials.size()) {
      throw std::out_of_range("SweepResult::at: index out of range");
    }
    if (!trials[i]) {
      for (const TrialFailure& f : failures) {
        if (f.index == i) {
          throw std::runtime_error("SweepResult::at: trial " +
                                   std::to_string(i) + " failed: " +
                                   f.message);
        }
      }
      throw std::runtime_error("SweepResult::at: trial " +
                               std::to_string(i) + " missing");
    }
    return *trials[i];
  }
};

/// Run `trial(i)` for every i in [0, n) and collect the results in grid
/// order.  The workhorse behind the typed grids below; use it directly
/// for bespoke trial shapes (see bench/abl_job_variability.cpp).
template <class R>
[[nodiscard]] SweepResult<R> sweep(
    std::size_t n, const std::function<R(std::size_t)>& trial,
    const SweepOptions& options = {}) {
  SweepResult<R> result;
  result.trials.resize(n);
  // One slot per trial: written by exactly one executor, read only after
  // the barrier in run_trials — no locking needed.
  std::vector<std::string> errors(n);
  std::vector<unsigned char> failed(n, 0);
  const detail::SweepStats stats = detail::run_trials(
      n,
      [&](std::size_t i) {
        try {
          result.trials[i] = trial(i);
        } catch (const std::exception& e) {
          failed[i] = 1;
          errors[i] = e.what();
        } catch (...) {
          failed[i] = 1;
          errors[i] = "unknown exception";
        }
      },
      options);
  for (std::size_t i = 0; i < n; ++i) {
    if (failed[i]) {
      result.failures.push_back(TrialFailure{i, std::move(errors[i])});
    }
  }
  result.threads = stats.threads;
  result.wall_seconds = stats.wall_seconds;
  return result;
}

/// One declarative trial of a controller sweep: workload, decision
/// policy and run options (seed lives in RunOptions).  The factory is
/// invoked inside the trial so each trial gets a fresh controller
/// instance — controllers are stateful, sharing one across trials would
/// break the determinism contract.  Build factories from the registry
/// for grid specs: `[] { return policy::make_controller("pi:..."); }`.
struct ControllerTrial {
  apps::AppModel app;
  std::function<std::unique_ptr<policy::Controller>()> make_controller;
  RunOptions options;
  policy::CapBounds bounds{};
};

/// Run every trial through exp::run_under_controller across the pool.
[[nodiscard]] SweepResult<RunTraces> sweep_controller_runs(
    const std::vector<ControllerTrial>& trials,
    const SweepOptions& options = {});

/// One declarative trial of a schedule sweep: workload, capping schedule
/// and run options (seed lives in RunOptions).  The factory is invoked
/// inside the trial so each trial gets a fresh schedule instance.
struct ScheduleTrial {
  apps::AppModel app;
  std::function<std::unique_ptr<policy::CapSchedule>()> make_schedule;
  RunOptions options;
};

/// Run every trial through exp::run_under_schedule across the pool
/// (the ScheduleController adapter under the hood).
[[nodiscard]] SweepResult<RunTraces> sweep_runs(
    const std::vector<ScheduleTrial>& trials,
    const SweepOptions& options = {});

/// Declarative (cap × seed) grid of exp::measure_cap_impact trials for
/// one workload — the Fig. 4 shape.  Grid order is cap-major,
/// seed-minor: trial index = cap_index * seeds.size() + seed_index.
struct CapImpactGrid {
  apps::AppModel app;
  std::vector<Watts> caps;
  std::vector<std::uint64_t> seeds;
  Seconds uncapped_for = 14.0;
  Seconds capped_for = 24.0;
  Seconds settle = 6.0;

  [[nodiscard]] std::size_t size() const {
    return caps.size() * seeds.size();
  }
  [[nodiscard]] std::size_t index(std::size_t cap_index,
                                  std::size_t seed_index) const {
    return cap_index * seeds.size() + seed_index;
  }
};

/// Run the grid; result i corresponds to grid.index(cap, seed).
[[nodiscard]] SweepResult<CapImpact> sweep_cap_impact(
    const CapImpactGrid& grid, const SweepOptions& options = {});

}  // namespace procap::exp
