// measure.hpp — the paper's measurement procedures.
//
// Three procedures cover every table and figure of the evaluation:
//
//   * run_under_schedule — run an application under a capping schedule,
//     recording progress/cap/power/frequency/duty traces (Figs. 1-3, 5).
//   * characterize — the beta and MPO measurement of Section IV-A:
//     timed runs pinned at 3300 and 1600 MHz plus PAPI-style counter
//     reads (Table VI).
//   * measure_cap_impact — the Fig. 4 procedure: progress from an
//     uncapped state, step down to a cap, measure the change in progress.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/suite.hpp"
#include "fault/injectors.hpp"
#include "fault/plan.hpp"
#include "msgbus/bus.hpp"
#include "obs/trace.hpp"
#include "policy/controller.hpp"
#include "policy/schedule_shapes.hpp"
#include "progress/health.hpp"
#include "util/series.hpp"

namespace procap::sim {
class Engine;
}
namespace procap::policy {
class PowerPolicyDaemon;
}
namespace procap::progress {
class Monitor;
}

namespace procap::exp {

/// The wired-up innards of one live run, handed to RunOptions::on_setup
/// before the first tick so callers can attach live tooling (samplers,
/// HTTP endpoints, alert plumbing) to the run's own components.  All
/// references are valid for the duration of the run only.
struct LiveRun {
  sim::Engine& engine;
  msgbus::Broker& broker;
  progress::Monitor& monitor;
  policy::PowerPolicyDaemon& daemon;
};

/// Time-series record of one simulated run.
struct RunTraces {
  TimeSeries progress;   ///< progress rate per 1-s window (units/s)
  TimeSeries cap;        ///< applied cap at 1 Hz (0 = uncapped)
  TimeSeries power;      ///< measured package power at 1 Hz
  TimeSeries frequency;  ///< effective core frequency (MHz), 10 Hz
  TimeSeries duty;       ///< effective duty factor, 10 Hz
  double total_progress = 0.0;
  bool app_finished = false;
  /// Per-window dropped-vs-true-zero verdicts from the monitor's
  /// telemetry-health layer.
  std::vector<progress::WindowVerdict> verdicts;
  /// Fault-injection tallies (all zero when no fault plan was active).
  fault::LinkFaultStats link_faults;
  fault::MsrFaultStats msr_faults;
  /// End-of-run signal-health snapshot from the monitor.
  progress::HealthReport health;

  /// Mean progress rate over windows in [from, to) seconds.
  [[nodiscard]] double mean_rate(Seconds from, Seconds to) const;
  /// Mean effective frequency (MHz) over [from, to) seconds.
  [[nodiscard]] double mean_frequency(Seconds from, Seconds to) const;
  /// Mean package power over [from, to) seconds.
  [[nodiscard]] double mean_power(Seconds from, Seconds to) const;
};

/// Options for run_under_schedule.
struct RunOptions {
  Seconds duration = 60.0;
  std::uint64_t seed = 1;
  /// Transport characteristics between reporter and monitor (use a drop
  /// probability to reproduce the paper's zero-progress artifact).
  msgbus::LinkOptions link{};
  /// Pin the package to this frequency via IA32_PERF_CTL (DVFS instead of
  /// RAPL; 0 = leave at maximum).
  Hertz pinned_frequency = 0.0;
  /// Scripted fault schedule: link faults wrap the reporter->monitor
  /// link, MSR faults are installed on the node's emulated MSR device.
  /// Must outlive the call.  nullptr = no injection.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Span collector wired through the daemon and monitor, recording cap
  /// changes, actuations, ticks and progress windows (and therefore the
  /// cap-to-effect flow).  Must outlive the call.  nullptr = no tracing.
  obs::TraceCollector* trace = nullptr;
  /// Pace the simulation against the wall clock: simulated seconds
  /// advanced per wall second (0 = free-running, as fast as possible).
  /// 1.0 makes live endpoints watchable in real time.
  double pace = 0.0;
  /// Invoked once after the rig is wired but before the first tick.
  std::function<void(LiveRun&)> on_setup;
};

/// Run `app` under any policy::Controller and record traces.  The
/// daemon's progress feed is wired to the run's Monitor, so closed-loop
/// controllers (pi/fft/mpc/target) see live rate/health telemetry;
/// `bounds` is the actuation range granted to the controller.
[[nodiscard]] RunTraces run_under_controller(
    const apps::AppModel& app,
    std::unique_ptr<policy::Controller> controller,
    const RunOptions& options = {}, policy::CapBounds bounds = {});

/// Run `app` under an open-loop `schedule`: run_under_controller with a
/// ScheduleController adapter (bit-identical to the legacy direct path;
/// see tests/controller_golden_test.cpp).
[[nodiscard]] RunTraces run_under_schedule(
    const apps::AppModel& app, std::unique_ptr<policy::CapSchedule> schedule,
    const RunOptions& options = {});

/// Beta / MPO characterization result (paper Table VI plus the uncapped
/// operating point the Fig. 4 model needs).
struct Characterization {
  double beta = 0.0;            ///< from execution-time ratio, Eq. (1)
  double mpo = 0.0;             ///< L3 misses / instructions
  double rate_nominal = 0.0;    ///< progress rate pinned at f_nominal
  double rate_probe = 0.0;      ///< progress rate pinned at the probe
  double rate_uncapped = 0.0;   ///< progress rate uncapped (turbo)
  Watts power_uncapped = 0.0;   ///< package power uncapped (turbo)
};

/// Measure beta (runs pinned at the nominal maximum and at `probe`, as
/// the paper does: 3300 vs 1600 MHz), MPO, and the uncapped (turbo)
/// rate/power operating point for `app`.
[[nodiscard]] Characterization characterize(const apps::AppModel& app,
                                            Hertz probe = 1.6e9,
                                            Seconds measure_for = 20.0,
                                            std::uint64_t seed = 1);

/// One point of the Fig. 4 sweep.
struct CapImpact {
  Watts pkg_cap = 0.0;
  double rate_uncapped = 0.0;
  double rate_capped = 0.0;
  /// Change in progress when the cap is applied from the uncapped state.
  double delta = 0.0;
  Watts power_uncapped = 0.0;
  Watts power_capped = 0.0;
};

/// Apply a step cap (uncapped -> `pkg_cap`) and measure the change in
/// progress, as the paper does for Fig. 4.
[[nodiscard]] CapImpact measure_cap_impact(const apps::AppModel& app,
                                           Watts pkg_cap,
                                           std::uint64_t seed = 1,
                                           Seconds uncapped_for = 14.0,
                                           Seconds capped_for = 24.0,
                                           Seconds settle = 6.0);

}  // namespace procap::exp
