// rig.hpp — a fully wired single-node experiment rig.
//
// Bundles the pieces every experiment needs, constructed in dependency
// order: simulation engine, simulated node, message-bus broker on the
// simulation clock, and a RaplInterface over the node's emulated MSRs.
// The node is registered with the engine; experiments add applications,
// monitors and policy daemons on top.
#pragma once

#include <memory>

#include "hw/node.hpp"
#include "msgbus/bus.hpp"
#include "rapl/rapl.hpp"
#include "sim/engine.hpp"

namespace procap::exp {

/// One simulated node ready for experiments.
class SimRig {
 public:
  explicit SimRig(hw::NodeSpec node_spec = {}, Nanos dt = msec(1));

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] hw::Node& node() { return node_; }
  [[nodiscard]] msgbus::Broker& broker() { return broker_; }
  [[nodiscard]] rapl::RaplInterface& rapl() { return rapl_; }
  [[nodiscard]] const TimeSource& time() const { return engine_.time(); }

  /// The package experiments run on (package 0).
  [[nodiscard]] hw::Package& package() { return node_.package(0); }

 private:
  sim::Engine engine_;
  hw::Node node_;
  msgbus::Broker broker_;
  rapl::RaplInterface rapl_;
};

}  // namespace procap::exp
