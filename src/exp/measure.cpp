#include "exp/measure.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "apps/app.hpp"
#include "counters/derived.hpp"
#include "exp/rig.hpp"
#include "model/beta.hpp"
#include "policy/daemon.hpp"
#include "progress/monitor.hpp"

namespace procap::exp {

double RunTraces::mean_rate(Seconds from, Seconds to) const {
  return progress.mean_in(to_nanos(from), to_nanos(to));
}

double RunTraces::mean_frequency(Seconds from, Seconds to) const {
  return frequency.mean_in(to_nanos(from), to_nanos(to));
}

double RunTraces::mean_power(Seconds from, Seconds to) const {
  return power.mean_in(to_nanos(from), to_nanos(to));
}

RunTraces run_under_controller(const apps::AppModel& app,
                               std::unique_ptr<policy::Controller> controller,
                               const RunOptions& options,
                               policy::CapBounds bounds) {
  if (!controller) {
    throw std::invalid_argument("run_under_controller: null controller");
  }
  SimRig rig;
  if (options.pinned_frequency > 0.0) {
    rig.rapl().set_frequency(options.pinned_frequency);
  }

  // Scripted fault injection: wrap the reporter->monitor link and hook
  // the node's MSR device.  The injectors must outlive the run.
  std::shared_ptr<fault::LinkFaultInjector> link_injector;
  std::unique_ptr<fault::MsrFaultInjector> msr_injector;
  msgbus::LinkOptions link = options.link;
  if (options.fault_plan) {
    link_injector =
        std::make_shared<fault::LinkFaultInjector>(*options.fault_plan);
    link.fault = link_injector;
    msr_injector = std::make_unique<fault::MsrFaultInjector>(
        *options.fault_plan, rig.time());
    msr_injector->install(rig.node().msr());
  }

  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, options.seed);
  progress::Monitor monitor(rig.broker().make_sub(link), app.spec.name,
                            rig.time());
  policy::DaemonConfig daemon_config;
  daemon_config.bounds = bounds;
  policy::PowerPolicyDaemon daemon(rig.rapl(), rig.time(),
                                   std::move(controller), /*pkg=*/0,
                                   daemon_config);
  // Closed-loop controllers observe the monitor's telemetry; the
  // getters are pure reads, so open-loop schedule runs are unaffected.
  policy::ProgressFeed feed;
  feed.rate = [&monitor] { return monitor.current_rate(); };
  feed.windows = [&monitor] { return monitor.windows(); };
  feed.healthy = [&monitor] {
    return monitor.health() == progress::SignalHealth::kHealthy;
  };
  daemon.set_progress_feed(std::move(feed));
  if (options.trace) {
    daemon.set_trace(options.trace);
    monitor.set_trace(options.trace);
  }
  // The monitor polls BEFORE the daemon ticks at each shared 1 s
  // boundary (same-timestamp events run in registration order), so the
  // controller observes the second that just finished — fresh samples,
  // healthy staleness.  Polling is a pure msgbus read: the swap cannot
  // perturb power or app state, so open-loop runs stay bit-identical
  // (tests/controller_golden_test.cpp holds either way).
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });
  daemon.attach(rig.engine());

  TimeSeries freq_series("frequency_mhz");
  TimeSeries duty_series("duty");
  rig.engine().every(msec(100), [&](Nanos now) {
    freq_series.add(now, as_mhz(rig.package().frequency()));
    duty_series.add(now, rig.package().duty());
  });

  // Pacing: hold the simulation to `pace` simulated seconds per wall
  // second by sleeping at a 20 ms cadence (fine enough that live viewers
  // see smooth motion, coarse enough to stay off the tick loop).
  if (options.pace > 0.0) {
    const auto wall_start = std::chrono::steady_clock::now();
    const Nanos sim_start = rig.time().now();
    rig.engine().every(msec(20), [&options, wall_start, sim_start](Nanos now) {
      const double wall_target =
          to_seconds(now - sim_start) / options.pace;
      std::this_thread::sleep_until(
          wall_start + std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(wall_target)));
    });
  }

  if (options.on_setup) {
    LiveRun live{rig.engine(), rig.broker(), monitor, daemon};
    options.on_setup(live);
  }

  // Under span batching run_until only re-checks its predicate at span
  // boundaries; the stop request ends the run at the completion event.
  sim_app.set_on_done([&rig] { rig.engine().request_stop(); });
  rig.engine().run_until([&] { return sim_app.done(); },
                         to_nanos(options.duration));
  monitor.poll();  // flush the final windows

  RunTraces traces;
  traces.progress = monitor.rates();
  traces.cap = daemon.cap_series();
  traces.power = daemon.power_series();
  traces.frequency = std::move(freq_series);
  traces.duty = std::move(duty_series);
  traces.total_progress = sim_app.total_progress();
  traces.app_finished = sim_app.done();
  traces.verdicts = monitor.verdicts();
  traces.health = monitor.health_report();
  if (link_injector) {
    traces.link_faults = link_injector->stats();
  }
  if (msr_injector) {
    traces.msr_faults = msr_injector->stats();
  }
  return traces;
}

RunTraces run_under_schedule(const apps::AppModel& app,
                             std::unique_ptr<policy::CapSchedule> schedule,
                             const RunOptions& options) {
  if (!schedule) {
    throw std::invalid_argument("run_under_schedule: null schedule");
  }
  return run_under_controller(
      app, std::make_unique<policy::ScheduleController>(std::move(schedule)),
      options);
}

namespace {

struct TimedRun {
  double rate = 0.0;
  double mpo = 0.0;
  Watts power = 0.0;
};

TimedRun timed_run(const apps::AppModel& app, Hertz frequency,
                   Seconds measure_for, std::uint64_t seed) {
  constexpr Seconds kWarmup = 3.0;
  SimRig rig;
  rig.rapl().set_frequency(frequency);

  apps::SimApp sim_app(rig.package(), rig.broker(), app.spec, seed);
  progress::Monitor monitor(rig.broker().make_sub(), app.spec.name,
                            rig.time());
  rig.engine().every(kNanosPerSecond, [&](Nanos) { monitor.poll(); });

  counters::NodeCounterSource source(rig.node());
  auto events = counters::make_standard_event_set(source, rig.time());

  TimeSeries power_series("power");
  rig.engine().every(kNanosPerSecond,
                     [&](Nanos now) { power_series.add(now, rig.rapl().pkg_power()); });

  rig.engine().run_for(to_nanos(kWarmup));
  events.start();
  rig.engine().run_for(to_nanos(measure_for));
  monitor.poll();

  TimedRun result;
  result.rate = monitor.rates().mean_in(to_nanos(kWarmup),
                                        to_nanos(kWarmup + measure_for));
  result.mpo = counters::snapshot(events).mpo();
  // Skip the first power sample (meter priming reads zero).
  result.power = power_series.mean_in(to_nanos(1.5),
                                      to_nanos(kWarmup + measure_for));
  return result;
}

}  // namespace

Characterization characterize(const apps::AppModel& app, Hertz probe,
                              Seconds measure_for, std::uint64_t seed) {
  const hw::CpuSpec spec = hw::CpuSpec::skylake24();
  const TimedRun at_nominal = timed_run(app, spec.f_nominal, measure_for,
                                        seed);
  const TimedRun at_probe = timed_run(app, probe, measure_for, seed);
  // Uncapped run (no pin): the package turbos to f_max; this is the
  // operating point the paper perturbs with power caps.
  const TimedRun uncapped = timed_run(app, spec.f_max, measure_for, seed);

  Characterization result;
  result.rate_nominal = at_nominal.rate;
  result.rate_probe = at_probe.rate;
  result.rate_uncapped = uncapped.rate;
  result.beta = model::beta_from_rates(at_probe.rate, at_nominal.rate, probe,
                                       spec.f_nominal);
  result.mpo = at_nominal.mpo;
  result.power_uncapped = uncapped.power;
  return result;
}

CapImpact measure_cap_impact(const apps::AppModel& app, Watts pkg_cap,
                             std::uint64_t seed, Seconds uncapped_for,
                             Seconds capped_for, Seconds settle) {
  constexpr Seconds kWarmup = 4.0;
  const Seconds total = uncapped_for + capped_for;
  auto schedule = std::make_unique<policy::ConstantCap>(pkg_cap, uncapped_for);
  RunOptions options;
  options.duration = total;
  options.seed = seed;
  const RunTraces traces = run_under_schedule(app, std::move(schedule),
                                              options);

  CapImpact impact;
  impact.pkg_cap = pkg_cap;
  impact.rate_uncapped = traces.mean_rate(kWarmup, uncapped_for);
  impact.rate_capped = traces.mean_rate(uncapped_for + settle, total);
  impact.delta = impact.rate_uncapped - impact.rate_capped;
  impact.power_uncapped = traces.mean_power(kWarmup, uncapped_for);
  impact.power_capped = traces.mean_power(uncapped_for + settle, total);
  return impact;
}

}  // namespace procap::exp
