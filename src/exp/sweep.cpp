#include "exp/sweep.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace procap::exp {

namespace detail {

SweepStats run_trials(std::size_t n,
                      const std::function<void(std::size_t)>& trial,
                      const SweepOptions& options) {
  unsigned threads = options.threads != 0
                         ? options.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  if (n > 0 && threads > n) {
    threads = static_cast<unsigned>(n);
  }

  PROCAP_OBS_GAUGE(threads_gauge, "exp.sweep.threads");
  PROCAP_OBS_GAUGE(total_gauge, "exp.sweep.trials_total");
  PROCAP_OBS_GAUGE(done_gauge, "exp.sweep.trials_done");
  PROCAP_OBS_COUNTER(trials_counter, "exp.sweep.trials");
  threads_gauge.set(threads);
  total_gauge.set(static_cast<double>(n));
  done_gauge.set(0.0);

  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;
  const auto instrumented = [&](std::size_t i) {
    trial(i);
    const std::size_t d = done.fetch_add(1, std::memory_order_acq_rel) + 1;
    trials_counter.inc();
    done_gauge.set(static_cast<double>(d));
    if (options.on_progress) {
      // Serialize the user callback so it need not be thread-safe.
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.on_progress(d, n);
    }
  };

  const auto start = std::chrono::steady_clock::now();
  if (threads <= 1 || n <= 1) {
    // Serial reference path: same trial code, same order, no pool — the
    // bit-identical baseline the parallel path is tested against.
    for (std::size_t i = 0; i < n; ++i) {
      instrumented(i);
    }
  } else {
    // The submitting thread participates in parallel_for, so a pool of
    // threads - 1 workers yields `threads` concurrent executors.
    minithread::ThreadPool pool(threads - 1);
    pool.parallel_for(n, instrumented, options.schedule,
                      options.chunk == 0 ? 1 : options.chunk);
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - start;

  SweepStats stats;
  stats.threads = threads;
  stats.wall_seconds = wall.count();
  return stats;
}

}  // namespace detail

SweepResult<RunTraces> sweep_controller_runs(
    const std::vector<ControllerTrial>& trials, const SweepOptions& options) {
  return sweep<RunTraces>(
      trials.size(),
      [&trials](std::size_t i) {
        const ControllerTrial& t = trials[i];
        if (!t.make_controller) {
          throw std::invalid_argument("sweep_controller_runs: trial " +
                                      std::to_string(i) +
                                      " has no controller factory");
        }
        return run_under_controller(t.app, t.make_controller(), t.options,
                                    t.bounds);
      },
      options);
}

SweepResult<RunTraces> sweep_runs(const std::vector<ScheduleTrial>& trials,
                                  const SweepOptions& options) {
  return sweep<RunTraces>(
      trials.size(),
      [&trials](std::size_t i) {
        const ScheduleTrial& t = trials[i];
        if (!t.make_schedule) {
          throw std::invalid_argument("sweep_runs: trial " +
                                      std::to_string(i) +
                                      " has no schedule factory");
        }
        return run_under_schedule(t.app, t.make_schedule(), t.options);
      },
      options);
}

SweepResult<CapImpact> sweep_cap_impact(const CapImpactGrid& grid,
                                        const SweepOptions& options) {
  const std::size_t seeds = grid.seeds.size();
  return sweep<CapImpact>(
      grid.size(),
      [&grid, seeds](std::size_t i) {
        const Watts cap = grid.caps[i / seeds];
        const std::uint64_t seed = grid.seeds[i % seeds];
        return measure_cap_impact(grid.app, cap, seed, grid.uncapped_for,
                                  grid.capped_for, grid.settle);
      },
      options);
}

}  // namespace procap::exp
