#include "exp/rig.hpp"

namespace procap::exp {

SimRig::SimRig(hw::NodeSpec node_spec, Nanos dt)
    : engine_(dt),
      node_(node_spec),
      broker_(engine_.time()),
      rapl_(node_.msr(), engine_.time(), node_.package_leaders()) {
  engine_.add(node_);
}

}  // namespace procap::exp
