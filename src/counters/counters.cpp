#include "counters/counters.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace procap::counters {

std::string event_name(Event e) {
  switch (e) {
    case Event::kTotInstructions:
      return "PAPI_TOT_INS";
    case Event::kTotCycles:
      return "PAPI_TOT_CYC";
    case Event::kRefCycles:
      return "PAPI_REF_CYC";
    case Event::kL3CacheMisses:
      return "PAPI_L3_TCM";
  }
  return "PAPI_UNKNOWN";
}

double NodeCounterSource::read(unsigned cpu, Event e) const {
  const hw::CoreCounters& c = node_->core(cpu).counters();
  switch (e) {
    case Event::kTotInstructions:
      return c.instructions;
    case Event::kTotCycles:
      return c.core_cycles;
    case Event::kRefCycles:
      return c.ref_cycles;
    case Event::kL3CacheMisses:
      return c.l3_misses;
  }
  throw std::invalid_argument("NodeCounterSource: unknown event");
}

unsigned NodeCounterSource::cpu_count() const { return node_->cpu_count(); }

EventSet::EventSet(const CounterSource& source, const TimeSource& time_source)
    : source_(&source), time_(&time_source) {
  cpus_.resize(source.cpu_count());
  std::iota(cpus_.begin(), cpus_.end(), 0U);
}

EventSet::EventSet(const CounterSource& source, const TimeSource& time_source,
                   std::vector<unsigned> cpus)
    : source_(&source), time_(&time_source), cpus_(std::move(cpus)) {
  if (cpus_.empty()) {
    throw std::invalid_argument("EventSet: empty CPU set");
  }
}

void EventSet::add(Event e) {
  if (started_) {
    throw std::logic_error("EventSet::add: set already started");
  }
  if (std::find(events_.begin(), events_.end(), e) == events_.end()) {
    events_.push_back(e);
  }
}

double EventSet::total(Event e) const {
  double sum = 0.0;
  for (const unsigned cpu : cpus_) {
    sum += source_->read(cpu, e);
  }
  return sum;
}

void EventSet::start() {
  baseline_.clear();
  baseline_.reserve(events_.size());
  for (const Event e : events_) {
    baseline_.push_back(total(e));
  }
  start_time_ = time_->now();
  started_ = true;
}

std::vector<double> EventSet::read() const {
  if (!started_) {
    throw std::logic_error("EventSet::read: not started");
  }
  std::vector<double> deltas;
  deltas.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    deltas.push_back(total(events_[i]) - baseline_[i]);
  }
  return deltas;
}

double EventSet::read(Event e) const {
  if (!started_) {
    throw std::logic_error("EventSet::read: not started");
  }
  const auto it = std::find(events_.begin(), events_.end(), e);
  if (it == events_.end()) {
    throw std::invalid_argument("EventSet::read: event not in set");
  }
  const auto idx = static_cast<std::size_t>(it - events_.begin());
  return total(e) - baseline_[idx];
}

Seconds EventSet::elapsed() const {
  if (!started_) {
    throw std::logic_error("EventSet::elapsed: not started");
  }
  return to_seconds(time_->now() - start_time_);
}

}  // namespace procap::counters
