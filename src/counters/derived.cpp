#include "counters/derived.hpp"

namespace procap::counters {

double DerivedMetrics::mips() const {
  return elapsed > 0.0 ? instructions / elapsed / 1e6 : 0.0;
}

double DerivedMetrics::ipc() const {
  return cycles > 0.0 ? instructions / cycles : 0.0;
}

double DerivedMetrics::mpo() const {
  return instructions > 0.0 ? l3_misses / instructions : 0.0;
}

DerivedMetrics snapshot(const EventSet& set) {
  DerivedMetrics m;
  m.instructions = set.read(Event::kTotInstructions);
  m.cycles = set.read(Event::kTotCycles);
  m.l3_misses = set.read(Event::kL3CacheMisses);
  m.elapsed = set.elapsed();
  return m;
}

EventSet make_standard_event_set(const CounterSource& source,
                                 const TimeSource& time_source) {
  EventSet set(source, time_source);
  set.add(Event::kTotInstructions);
  set.add(Event::kTotCycles);
  set.add(Event::kL3CacheMisses);
  return set;
}

}  // namespace procap::counters
