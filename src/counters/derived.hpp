// derived.hpp — metrics derived from raw counters.
//
// These are the "traditional" performance measures the paper contrasts
// with online progress: MIPS (Table I), IPC, and the MPO (misses per
// operation) application-characterization metric of Table VI.
#pragma once

#include "counters/counters.hpp"

namespace procap::counters {

/// Derived-metric snapshot for a measurement interval.
struct DerivedMetrics {
  double instructions = 0.0;
  double cycles = 0.0;
  double l3_misses = 0.0;
  Seconds elapsed = 0.0;

  /// Million instructions per second over the interval.
  [[nodiscard]] double mips() const;
  /// Instructions per cycle.
  [[nodiscard]] double ipc() const;
  /// Misses per operation: L3 misses / instructions (paper Section IV-A).
  [[nodiscard]] double mpo() const;
};

/// Read a full DerivedMetrics snapshot from an event set that contains
/// kTotInstructions, kTotCycles and kL3CacheMisses.
[[nodiscard]] DerivedMetrics snapshot(const EventSet& set);

/// Convenience: build an event set pre-loaded with the events needed for
/// snapshot() (not yet started).
[[nodiscard]] EventSet make_standard_event_set(const CounterSource& source,
                                               const TimeSource& time_source);

}  // namespace procap::counters
