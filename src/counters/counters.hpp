// counters.hpp — PAPI-style hardware performance counter access.
//
// The paper uses PAPI to compute MIPS (Table I) and the MPO metric,
// MPO = PAPI_L3_TCM / PAPI_TOT_INS (Table VI).  This module provides the
// same event-set workflow — add events, start, read deltas — over an
// abstract CounterSource, with an implementation that reads the simulated
// node's per-core counters.
#pragma once

#include <string>
#include <vector>

#include "hw/node.hpp"
#include "util/time.hpp"

namespace procap::counters {

/// Counter events supported by the substrate (PAPI preset equivalents).
enum class Event {
  kTotInstructions,  ///< PAPI_TOT_INS
  kTotCycles,        ///< PAPI_TOT_CYC
  kRefCycles,        ///< PAPI_REF_CYC
  kL3CacheMisses,    ///< PAPI_L3_TCM
};

/// PAPI-style preset name for an event (e.g. "PAPI_TOT_INS").
[[nodiscard]] std::string event_name(Event e);

/// Abstract per-CPU counter provider.
class CounterSource {
 public:
  virtual ~CounterSource() = default;
  /// Cumulative count of `e` on logical CPU `cpu`.
  [[nodiscard]] virtual double read(unsigned cpu, Event e) const = 0;
  [[nodiscard]] virtual unsigned cpu_count() const = 0;
};

/// CounterSource over the simulated node.
class NodeCounterSource final : public CounterSource {
 public:
  /// `node` must outlive the source.
  explicit NodeCounterSource(hw::Node& node) : node_(&node) {}

  [[nodiscard]] double read(unsigned cpu, Event e) const override;
  [[nodiscard]] unsigned cpu_count() const override;

 private:
  hw::Node* node_;
};

/// PAPI-like event set: a group of events read together as deltas over a
/// measurement interval, summed across a CPU set.
class EventSet {
 public:
  /// Measure over all CPUs of `source`.  `source` and `time_source` must
  /// outlive the set.
  EventSet(const CounterSource& source, const TimeSource& time_source);

  /// Measure over an explicit CPU subset.
  EventSet(const CounterSource& source, const TimeSource& time_source,
           std::vector<unsigned> cpus);

  /// Add an event before start(); duplicates are ignored.
  void add(Event e);

  /// Snapshot the baseline; subsequent read() calls return deltas from it.
  void start();

  /// Per-event deltas (in add() order) since start().  Requires start().
  [[nodiscard]] std::vector<double> read() const;

  /// Delta for one event; the event must have been added.
  [[nodiscard]] double read(Event e) const;

  /// Seconds elapsed since start().
  [[nodiscard]] Seconds elapsed() const;

  /// Events in this set, in add() order.
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

 private:
  [[nodiscard]] double total(Event e) const;

  const CounterSource* source_;
  const TimeSource* time_;
  std::vector<unsigned> cpus_;
  std::vector<Event> events_;
  std::vector<double> baseline_;
  Nanos start_time_ = 0;
  bool started_ = false;
};

}  // namespace procap::counters
