#include "minithread/minithread.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace procap::minithread {

struct ThreadPool::Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t, std::size_t)>* run_range = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<unsigned> finished{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  unsigned participants = 0;
};

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  workers_.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::run_job(Job& job) {
  // Chunk-grabbing loop shared by workers and the submitting thread.
  for (;;) {
    if (job.failed.load(std::memory_order_acquire)) {
      break;
    }
    const std::size_t begin =
        job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (begin >= job.n) {
      break;
    }
    const std::size_t end = std::min(job.n, begin + job.chunk);
    try {
      (*job.run_range)(begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.failed.exchange(true, std::memory_order_acq_rel)) {
        job.error = std::current_exception();
      }
    }
  }
  job.finished.fetch_add(1, std::memory_order_acq_rel);
}

void ThreadPool::worker_loop() {
  std::uint64_t last_serial = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] {
        return stopping_ || (current_job_ != nullptr &&
                             job_serial_ != last_serial);
      });
      if (stopping_) {
        return;
      }
      job = current_job_;
      last_serial = job_serial_;
    }
    run_job(*job);
    job_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              Schedule schedule, std::size_t chunk) {
  const std::function<void(std::size_t, std::size_t)> run_range =
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          body(i);
        }
      };
  if (n == 0) {
    return;
  }
  const unsigned participants = size() + 1;  // workers + this thread
  Job job;
  job.n = n;
  job.run_range = &run_range;
  job.participants = participants;
  if (schedule == Schedule::kStatic || chunk == 0) {
    // Static: ranges sized so each participant takes ~one chunk; dynamic
    // with chunk 0: the same granularity, but grabbed on demand.
    job.chunk = std::max<std::size_t>(1, (n + participants - 1) /
                                             participants);
  }
  if (schedule == Schedule::kDynamic && chunk != 0) {
    job.chunk = chunk;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++job_serial_;
  }
  work_ready_.notify_all();
  run_job(job);  // the submitting thread participates
  {
    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [&] {
      return job.finished.load(std::memory_order_acquire) ==
             job.participants;
    });
    current_job_ = nullptr;
  }
  if (job.failed.load()) {
    std::rethrow_exception(job.error);
  }
}

double ThreadPool::parallel_reduce(
    std::size_t n, const std::function<double(std::size_t)>& body,
    Schedule schedule, std::size_t chunk) {
  if (n == 0) {
    return 0.0;
  }
  // Deterministic combination: one partial per fixed-size chunk, summed
  // in chunk order afterwards.
  const std::size_t participants = size() + 1;
  std::size_t reduce_chunk = chunk;
  if (reduce_chunk == 0) {
    reduce_chunk = std::max<std::size_t>(
        1, (n + 4 * participants - 1) / (4 * participants));
  }
  const std::size_t n_chunks = (n + reduce_chunk - 1) / reduce_chunk;
  std::vector<double> partials(n_chunks, 0.0);
  parallel_for(
      n_chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * reduce_chunk;
        const std::size_t end = std::min(n, begin + reduce_chunk);
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          sum += body(i);
        }
        partials[c] = sum;
      },
      schedule, 1);
  double total = 0.0;
  for (const double partial : partials) {
    total += partial;
  }
  return total;
}

}  // namespace procap::minithread
