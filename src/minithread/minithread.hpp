// minithread.hpp — a miniature OpenMP-like work-sharing runtime.
//
// The paper's applications are parallelized with OpenMP ("24 pinned
// OpenMP threads") where they are not MPI; procap::minimpi covers the MPI
// shape, and this module covers the work-sharing shape: a persistent
// thread pool with parallel_for (static or dynamic scheduling) and a
// deterministic parallel_reduce.  Real-thread instrumented applications
// (the examples) can parallelize their do_work() with it and report
// progress at the loop level exactly as the paper instruments its codes.
//
//   minithread::ThreadPool pool(8);
//   pool.parallel_for(n, [&](std::size_t i) { work(i); });
//   double total = pool.parallel_reduce(
//       n, [&](std::size_t i) { return f(i); });
//
// Reductions are deterministic regardless of scheduling: partial sums are
// kept per chunk and combined in chunk order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace procap::minithread {

/// Persistent work-sharing thread pool.
class ThreadPool {
 public:
  /// Loop scheduling disciplines (the OpenMP static/dynamic pair).
  enum class Schedule {
    kStatic,   ///< contiguous ranges, one per worker
    kDynamic,  ///< workers grab chunks from a shared counter
  };

  /// Spawn `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Run body(i) for every i in [0, n), distributed across the pool.
  /// Blocks until all iterations complete.  If any iteration throws, the
  /// remaining chunks are abandoned and the first exception is rethrown
  /// here.  `chunk` sets the dynamic-schedule chunk size (0 = automatic);
  /// it is ignored for static scheduling.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body,
                    Schedule schedule = Schedule::kStatic,
                    std::size_t chunk = 0);

  /// Sum body(i) over [0, n).  Deterministic: partials are combined in
  /// chunk order whatever the schedule or thread timing.
  [[nodiscard]] double parallel_reduce(
      std::size_t n, const std::function<double(std::size_t)>& body,
      Schedule schedule = Schedule::kStatic, std::size_t chunk = 0);

 private:
  struct Job;
  void worker_loop();
  void run_job(Job& job);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  Job* current_job_ = nullptr;
  std::uint64_t job_serial_ = 0;
  bool stopping_ = false;
};

}  // namespace procap::minithread
