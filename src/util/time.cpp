#include "util/time.hpp"

#include <chrono>
#include <stdexcept>

namespace procap {

Nanos SteadyTimeSource::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}



}  // namespace procap
