#include "util/time.hpp"

#include <chrono>
#include <stdexcept>

namespace procap {

Nanos SteadyTimeSource::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ManualTimeSource::advance(Nanos delta) {
  if (delta < 0) {
    throw std::invalid_argument("ManualTimeSource::advance: negative delta");
  }
  now_ += delta;
}

void ManualTimeSource::set(Nanos t) {
  if (t < now_) {
    throw std::invalid_argument("ManualTimeSource::set: time moved backwards");
  }
  now_ = t;
}

}  // namespace procap
