// log.hpp — minimal leveled logging.
//
// Daemons and monitors report state transitions here; benches run with the
// default (warning) level so experiment output stays clean.
//
// Concurrency: the level lives in a relaxed atomic read exactly once per
// PROCAP_LOG expansion, so concurrent set_log_level() races cleanly under
// TSan (logging is statistical, not synchronizing).  Tests and exporters
// can capture lines structurally via set_log_sink() instead of scraping
// stderr.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace procap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
/// Level storage, inline so the macro's filter check is a single relaxed
/// load with no cross-TU call.
inline std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace detail

/// Global minimum level; messages below it are dropped.
inline void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level),
                            std::memory_order_relaxed);
}
[[nodiscard]] inline LogLevel log_level() {
  return static_cast<LogLevel>(
      detail::g_log_level.load(std::memory_order_relaxed));
}

/// Emit one line with a level prefix (thread-safe).  Respects the level
/// filter and the installed sink.
void log_message(LogLevel level, const std::string& msg);

/// Capture hook: while installed, formatted lines go to `sink` instead
/// of stderr (still level-filtered).  Pass nullptr to restore stderr.
/// The sink is invoked under the logging mutex: keep it cheap and never
/// log from inside it.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

namespace detail {
/// Stream-style one-shot logger: `Logger(kInfo).stream() << "x=" << x;`
/// flushes on destruction.
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level) {}
  ~Logger() { log_message(level_, os_.str()); }
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace procap

// The level is read once (relaxed) per expansion; the Logger body only
// runs when the line passes the filter.
#define PROCAP_LOG(level)                      \
  if (::procap::log_level() <= (level))        \
  ::procap::detail::Logger(level).stream()

#define PROCAP_DEBUG PROCAP_LOG(::procap::LogLevel::kDebug)
#define PROCAP_INFO PROCAP_LOG(::procap::LogLevel::kInfo)
#define PROCAP_WARN PROCAP_LOG(::procap::LogLevel::kWarn)
#define PROCAP_ERROR PROCAP_LOG(::procap::LogLevel::kError)
