// log.hpp — minimal leveled logging.
//
// Daemons and monitors report state transitions here; benches run with the
// default (warning) level so experiment output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace procap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line to stderr with a level prefix (thread-safe).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
/// Stream-style one-shot logger: `Logger(kInfo).stream() << "x=" << x;`
/// flushes on destruction.
class Logger {
 public:
  explicit Logger(LogLevel level) : level_(level) {}
  ~Logger() { log_message(level_, os_.str()); }
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace procap

#define PROCAP_LOG(level)                      \
  if (::procap::log_level() <= (level))        \
  ::procap::detail::Logger(level).stream()

#define PROCAP_DEBUG PROCAP_LOG(::procap::LogLevel::kDebug)
#define PROCAP_INFO PROCAP_LOG(::procap::LogLevel::kInfo)
#define PROCAP_WARN PROCAP_LOG(::procap::LogLevel::kWarn)
#define PROCAP_ERROR PROCAP_LOG(::procap::LogLevel::kError)
