#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace procap {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Take the top 53 bits; divide by 2^53.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) {
    throw std::invalid_argument("Rng::uniform_int: lo > hi");
  }
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t v = next_u64();
  while (v >= limit) {
    v = next_u64();
  }
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("Rng::exponential: rate must be positive");
  }
  // Inverse CDF; uniform() < 1 so the log argument is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace procap
