#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace procap {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[procap " << level_name(level) << "] " << msg << "\n";
}

}  // namespace procap
