#include "util/log.hpp"

#include <iostream>
#include <mutex>
#include <utility>

namespace procap {

namespace {
std::mutex g_mutex;
LogSink g_sink;  // guarded by g_mutex; empty = stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) {
    return;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::cerr << "[procap " << level_name(level) << "] " << msg << "\n";
}

}  // namespace procap
