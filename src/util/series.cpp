#include "util/series.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace procap {

void TimeSeries::add(Nanos t, double value) {
  if (!samples_.empty() && t < samples_.back().t) {
    throw std::invalid_argument("TimeSeries::add: time moved backwards");
  }
  samples_.push_back(Sample{t, value});
}

Nanos TimeSeries::start_time() const {
  if (samples_.empty()) {
    throw std::out_of_range("TimeSeries::start_time: empty series");
  }
  return samples_.front().t;
}

Nanos TimeSeries::end_time() const {
  if (samples_.empty()) {
    throw std::out_of_range("TimeSeries::end_time: empty series");
  }
  return samples_.back().t;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) {
    out.push_back(s.value);
  }
  return out;
}

namespace {
// Iterator range of samples with t in [t0, t1), relying on sorted order.
auto range_in(const std::vector<Sample>& samples, Nanos t0, Nanos t1) {
  const auto lo = std::lower_bound(
      samples.begin(), samples.end(), t0,
      [](const Sample& s, Nanos t) { return s.t < t; });
  const auto hi = std::lower_bound(
      lo, samples.end(), t1, [](const Sample& s, Nanos t) { return s.t < t; });
  return std::pair{lo, hi};
}
}  // namespace

TimeSeries TimeSeries::slice(Nanos t0, Nanos t1) const {
  TimeSeries out(name_);
  const auto [lo, hi] = range_in(samples_, t0, t1);
  for (auto it = lo; it != hi; ++it) {
    out.samples_.push_back(*it);
  }
  return out;
}

double TimeSeries::sum_in(Nanos t0, Nanos t1) const {
  const auto [lo, hi] = range_in(samples_, t0, t1);
  double s = 0.0;
  for (auto it = lo; it != hi; ++it) {
    s += it->value;
  }
  return s;
}

double TimeSeries::mean_in(Nanos t0, Nanos t1) const {
  const auto [lo, hi] = range_in(samples_, t0, t1);
  if (lo == hi) {
    return 0.0;
  }
  double s = 0.0;
  for (auto it = lo; it != hi; ++it) {
    s += it->value;
  }
  return s / static_cast<double>(hi - lo);
}

TimeSeries TimeSeries::resample(Nanos window, Reduce reduce) const {
  if (window <= 0) {
    throw std::invalid_argument("TimeSeries::resample: window must be positive");
  }
  TimeSeries out(name_);
  if (samples_.empty()) {
    return out;
  }
  const Nanos t0 = start_time();
  const Nanos t_end = end_time();
  for (Nanos w = t0; w <= t_end; w += window) {
    const double v = reduce == Reduce::kSum ? sum_in(w, w + window)
                                            : mean_in(w, w + window);
    out.add(w, v);
  }
  return out;
}

void TimeSeries::write_csv(std::ostream& os) const {
  os << "t_seconds," << name_ << "\n";
  for (const auto& s : samples_) {
    os << to_seconds(s.t) << "," << s.value << "\n";
  }
}

}  // namespace procap
