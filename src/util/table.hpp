// table.hpp — aligned text tables and CSV output for benchmark harnesses.
//
// Every bench binary reproduces a paper table or figure as rows printed to
// stdout; TablePrinter keeps the formatting consistent across all of them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace procap {

/// Builds an aligned, pipe-separated text table.  Cells are strings; use
/// the `num()` helper for consistently formatted numbers.
class TablePrinter {
 public:
  /// Construct with column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> row);

  /// Render with a header underline to the stream.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment) to the stream.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` digits after the decimal point.
[[nodiscard]] std::string num(double v, int precision = 2);

/// Format a double in scientific notation with `precision` digits.
[[nodiscard]] std::string sci(double v, int precision = 2);

/// Simple multi-column CSV writer (header row then data rows).
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  CsvWriter(const std::string& path, std::vector<std::string> headers);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Write one row of numeric cells.
  void row(const std::vector<double>& cells);

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace procap
