// series.hpp — timestamped sample series.
//
// Every experiment in the paper is a time series: progress samples, power
// readings, frequency traces, cap schedules.  TimeSeries is the common
// container; it supports windowed resampling (the paper aggregates progress
// "once every second"), slicing, and CSV export.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace procap {

/// One (time, value) observation.
struct Sample {
  Nanos t = 0;
  double value = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Append-only series of timestamped samples (non-decreasing time).
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Construct with a name used as the CSV column header.
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  /// Append a sample; `t` must be >= the last sample's time.
  void add(Nanos t, double value);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const { return samples_[i]; }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// First/last sample time; throws std::out_of_range when empty.
  [[nodiscard]] Nanos start_time() const;
  [[nodiscard]] Nanos end_time() const;

  /// Values only (time dropped), e.g. for correlation.
  [[nodiscard]] std::vector<double> values() const;

  /// Samples with t in [t0, t1).
  [[nodiscard]] TimeSeries slice(Nanos t0, Nanos t1) const;

  /// Sum of sample values in [t0, t1).
  [[nodiscard]] double sum_in(Nanos t0, Nanos t1) const;

  /// Mean of sample values in [t0, t1); 0 if no samples fall inside.
  [[nodiscard]] double mean_in(Nanos t0, Nanos t1) const;

  /// Resample into fixed windows of `window` ns starting at start_time().
  /// Each output sample is stamped at the window start.
  /// `Reduce` selects between summing the values in the window (rates of
  /// event counts) and averaging them (already-normalized gauges).
  enum class Reduce { kSum, kMean };
  [[nodiscard]] TimeSeries resample(Nanos window, Reduce reduce) const;

  /// Write as two-column CSV ("t_seconds,<name>") to the stream.
  void write_csv(std::ostream& os) const;

 private:
  std::string name_ = "value";
  std::vector<Sample> samples_;
};

}  // namespace procap
