// time.hpp — time sources.
//
// All progress monitoring and power-policy code is written against the
// abstract `TimeSource`, so the same Reporter/Monitor/Daemon classes run
// unmodified on wall-clock time (real instrumentation, as in the paper's
// testbed) and on simulated time (the hardware substrate in src/hw).
#pragma once

#include <memory>
#include <stdexcept>

#include "util/units.hpp"

namespace procap {

/// Abstract monotonic clock.  `now()` never decreases.
class TimeSource {
 public:
  virtual ~TimeSource() = default;
  /// Current time in nanoseconds since an arbitrary (per-source) epoch.
  [[nodiscard]] virtual Nanos now() const = 0;

  /// Convenience: current time in floating-point seconds.
  [[nodiscard]] Seconds now_seconds() const { return to_seconds(now()); }
};

/// Wall-clock time source backed by std::chrono::steady_clock.
class SteadyTimeSource final : public TimeSource {
 public:
  [[nodiscard]] Nanos now() const override;
};

/// Manually advanced time source.  The simulation engine owns one and
/// advances it in fixed steps; tests use it to script exact timelines.
class ManualTimeSource final : public TimeSource {
 public:
  explicit ManualTimeSource(Nanos start = 0) : now_(start) {}

  [[nodiscard]] Nanos now() const override { return now_; }

  /// Advance the clock by `delta` nanoseconds (must be non-negative).
  /// Inline: the batched engine lands the clock on every internal event.
  void advance(Nanos delta) {
    if (delta < 0) {
      throw std::invalid_argument(
          "ManualTimeSource::advance: negative delta");
    }
    now_ += delta;
  }

  /// Jump the clock to an absolute time (must not move backwards).
  void set(Nanos t) {
    if (t < now_) {
      throw std::invalid_argument(
          "ManualTimeSource::set: time moved backwards");
    }
    now_ = t;
  }

 private:
  Nanos now_;
};

}  // namespace procap
