// fft.hpp — minimal radix-2 FFT for periodicity detection.
//
// The FFT phase-detecting controller (policy/fft_controller.hpp) needs a
// discrete Fourier transform over a short sliding window of 1 Hz power
// samples.  A full FFT library would be overkill (and an external
// dependency); an iterative in-place radix-2 Cooley-Tukey transform on a
// power-of-two window is plenty, and its operation order is fixed so
// results are bit-reproducible for a given input on a given binary —
// the determinism contract the sweep/bench layer relies on.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace procap::util {

[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward DFT (no normalization): data[k] = sum_j x[j] *
/// exp(-2*pi*i*j*k/N).  `data.size()` must be a power of two; throws
/// std::invalid_argument otherwise.
void fft(std::span<std::complex<double>> data);

}  // namespace procap::util
