// rng.hpp — deterministic pseudo-random number generation.
//
// Simulation experiments must be exactly reproducible across platforms and
// standard-library versions, so procap carries its own generator instead of
// relying on std::mt19937 + distribution implementations:
//   * SplitMix64 for seeding,
//   * xoshiro256** (Blackman & Vigna) as the workhorse generator,
//   * explicit uniform / normal / exponential draws with documented math.
#pragma once

#include <array>
#include <cstdint>

namespace procap {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed from a single 64-bit value (expanded via SplitMix64).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Marsaglia polar method; caches the pair).
  double normal();

  /// Normal draw with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential draw with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Fork a statistically independent child generator (for per-worker
  /// streams).  Derived from this generator's output, so a (seed, index)
  /// pair always produces the same child stream.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace procap
